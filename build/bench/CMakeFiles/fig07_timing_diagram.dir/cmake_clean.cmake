file(REMOVE_RECURSE
  "CMakeFiles/fig07_timing_diagram.dir/fig07_timing_diagram.cpp.o"
  "CMakeFiles/fig07_timing_diagram.dir/fig07_timing_diagram.cpp.o.d"
  "fig07_timing_diagram"
  "fig07_timing_diagram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_timing_diagram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
