#ifndef CCUBE_CCL_SYNC_PRIMITIVES_H_
#define CCUBE_CCL_SYNC_PRIMITIVES_H_

/**
 * @file
 * Device-side-style synchronization primitives (paper Fig. 11).
 *
 * The paper implements C-Cube as persistent CUDA kernels that
 * synchronize without host intervention, using an atomicCAS spin lock
 * plus thread fences, and builds semaphores (post / wait / check) on
 * top to manage receive buffers and gradient queuing. This header is
 * the faithful host-side analog over std::atomic: the same protocol,
 * with the single concession that spin loops yield to the OS scheduler
 * (a persistent GPU kernel never needs to yield; a CPU thread does).
 *
 * Every blocking spin is *bounded*: each iteration polls the abort
 * epoch of the calling thread's installed ccl::CommFaultContext (see
 * fault.h) and throws AbortedWait when a watchdog or explicit
 * Communicator::abort() has tripped it, so a dead peer can never
 * wedge a waiter forever. Threads with no installed context pay one
 * thread-local load per iteration and never throw. The *For variants
 * additionally give up after a caller-supplied timeout. All blocking
 * loops share the util::SpinWait backoff ladder, so the abort-epoch
 * poll cadence is defined in exactly one place.
 *
 * The state-machine runtime (state_machine.h) adds a third waiting
 * style: instead of blocking, a resumable rank task *parks* — it
 * registers a SemaphoreWaiter on the semaphore and returns its worker
 * thread to the pool; the next post() pops the waiter and reschedules
 * the task. The tryWait/tryPost/parkOnWait/cancelPark quartet below
 * is that non-blocking surface.
 */

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/spin_wait.h"

namespace ccube {
namespace ccl {

/**
 * Spin lock built from compare-and-swap and fences, mirroring the
 * paper's lock()/unlock() pseudocode.
 */
class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock&) = delete;
    SpinLock& operator=(const SpinLock&) = delete;

    /** Spins (yielding) until the CAS 0→1 succeeds. Polls the abort
     *  epoch every kAbortPollInterval retries. */
    void lock();

    /**
     * Deadline-aware lock(): returns false if the lock could not be
     * acquired within @p timeout. Throws AbortedWait on abort.
     */
    bool lockFor(std::chrono::nanoseconds timeout);

    /** Releases: fence then store 0 (atomicExch in the paper). */
    void unlock();

    /** Non-blocking acquisition attempt (failures count toward the
     *  CAS-retry telemetry, like contended lock() spins). */
    bool tryLock();

    /** Abort-epoch poll cadence inside lock()'s CAS loop (alias of
     *  the shared util::SpinWait cadence). */
    static constexpr std::uint64_t kAbortPollInterval =
        util::SpinWait::kPollInterval;

  private:
    std::atomic<int> flag_{0};
};

/** RAII guard for SpinLock. */
class SpinLockGuard
{
  public:
    explicit SpinLockGuard(SpinLock& lock) : lock_(lock) { lock_.lock(); }
    ~SpinLockGuard() { lock_.unlock(); }
    SpinLockGuard(const SpinLockGuard&) = delete;
    SpinLockGuard& operator=(const SpinLockGuard&) = delete;

  private:
    SpinLock& lock_;
};

/**
 * Intrusive node a parked state machine registers on a semaphore it
 * is waiting on. The semaphore owns the node only while it sits on
 * the waiter list; whoever removes it (a poster via the pop inside
 * post()/tryPost(), or the task itself via cancelPark()) claims the
 * exclusive right to reschedule the parked task — that list-removal-
 * as-ownership rule is what makes the wake exactly-once.
 */
class SemaphoreWaiter
{
  public:
    SemaphoreWaiter() = default;
    virtual ~SemaphoreWaiter() = default;
    SemaphoreWaiter(const SemaphoreWaiter&) = delete;
    SemaphoreWaiter& operator=(const SemaphoreWaiter&) = delete;

    /**
     * Invoked by the poster, outside the semaphore's lock, after the
     * count became nonzero and this node was popped. The registered
     * condition is a *hint*, not a reservation: another consumer may
     * win the race, so the resumed task must re-attempt its tryWait().
     */
    virtual void semaphoreReady() = 0;

  private:
    friend class BoundedSemaphore;
    SemaphoreWaiter* next_ = nullptr;
};

/**
 * Bounded counting semaphore with the paper's post/wait semantics:
 * post() blocks while the count is at capacity (receive buffers are
 * finite); wait() blocks while the count is zero. Used to manage the
 * P2P receive buffers of the collective implementation.
 */
class BoundedSemaphore
{
  public:
    /** Creates with the given capacity and initial count. */
    explicit BoundedSemaphore(int capacity, int initial = 0);

    BoundedSemaphore(const BoundedSemaphore&) = delete;
    BoundedSemaphore& operator=(const BoundedSemaphore&) = delete;

    /** Increments the count; blocks while count == capacity. */
    void post();

    /** Decrements the count; blocks while count == 0. */
    void wait();

    /**
     * Deadline-aware post(): returns false if the count stayed at
     * capacity for @p timeout. Throws AbortedWait on abort.
     */
    bool postFor(std::chrono::nanoseconds timeout);

    /**
     * Deadline-aware wait(): returns false if the count stayed zero
     * for @p timeout. Throws AbortedWait on abort.
     */
    bool waitFor(std::chrono::nanoseconds timeout);

    /**
     * Non-blocking wait(): decrements and returns true if the count
     * was nonzero, otherwise returns false without blocking. Never
     * touches the fault layer — state-machine callers poll abort at
     * their step boundary instead.
     */
    bool tryWait();

    /**
     * Non-blocking post(): increments and returns true if the count
     * was below capacity, otherwise returns false. On success, pops
     * and wakes one parked waiter (like post()).
     */
    bool tryPost();

    /**
     * Registers @p waiter to be woken by a future post(). Rechecks
     * the condition under the lock: returns false — without
     * registering — if the count is already nonzero (the caller
     * should retry tryWait() instead of parking). On true, the task
     * is parked: the next post() pops the node and calls
     * semaphoreReady() exactly once.
     */
    bool parkOnWait(SemaphoreWaiter& waiter);

    /**
     * Removes @p waiter from the list if still registered. Returns
     * true if this call removed it — the caller now owns the wake —
     * or false if a poster already popped it (its semaphoreReady()
     * has been or is about to be invoked). Used by the abort sweep
     * and by wake/cancel races in the engine.
     */
    bool cancelPark(SemaphoreWaiter& waiter);

    /** Current count (racy snapshot, for tests/telemetry). */
    int value() const;

    /** Capacity. */
    int capacity() const { return capacity_; }

    /**
     * Forces the count back to @p value. Only valid while no thread is
     * blocked on this semaphore (post-abort reinitialization).
     */
    void reset(int value);

  private:
    /** Pops the head waiter (FIFO); caller must hold lock_. */
    SemaphoreWaiter* popWaiterLocked();

    mutable SpinLock lock_;
    int count_;
    const int capacity_;
    SemaphoreWaiter* waiters_head_ = nullptr;
    SemaphoreWaiter* waiters_tail_ = nullptr;
};

/**
 * Monotonic counter with the paper's check semantics: post()
 * increments forever (no capacity — the gradient queue reuses gradient
 * memory so nothing is consumed), and check(v) blocks until the count
 * reaches @p v without modifying it. This is the Enqueue Semaphore of
 * the gradient-queuing architecture (Fig. 9): broadcast posts once per
 * fully-reduced chunk; each layer checks for its last chunk offset.
 */
class CheckableCounter
{
  public:
    CheckableCounter() = default;
    CheckableCounter(const CheckableCounter&) = delete;
    CheckableCounter& operator=(const CheckableCounter&) = delete;

    /** Increments the counter. */
    void post();

    /** Blocks until the counter is ≥ @p value (paper's check()). */
    void check(std::int64_t value) const;

    /**
     * Deadline-aware check(): returns false if the counter stayed
     * below @p value for @p timeout. Throws AbortedWait on abort.
     */
    bool checkFor(std::int64_t value,
                  std::chrono::nanoseconds timeout) const;

    /** Non-blocking form of check(). */
    bool checkNow(std::int64_t value) const;

    /** Current value. */
    std::int64_t value() const;

    /** Resets to zero (between iterations). */
    void reset();

  private:
    mutable SpinLock lock_;
    std::int64_t count_ = 0;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_SYNC_PRIMITIVES_H_
