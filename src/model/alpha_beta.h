#ifndef CCUBE_MODEL_ALPHA_BETA_H_
#define CCUBE_MODEL_ALPHA_BETA_H_

/**
 * @file
 * Linear (α + βN) communication cost model (§II-C, after Thakur et
 * al.). α is the per-transfer latency, β the inverse bandwidth.
 */

namespace ccube {
namespace model {

/**
 * Parameters of one point-to-point transfer.
 */
struct AlphaBeta {
    double alpha = 4.6e-6; ///< latency component, seconds
    double beta = 4e-11;   ///< inverse bandwidth, seconds per byte

    /** Builds from a latency and a bandwidth in bytes/second. */
    static AlphaBeta
    fromBandwidth(double alpha_seconds, double bytes_per_second)
    {
        return AlphaBeta{alpha_seconds, 1.0 / bytes_per_second};
    }

    /** Time to move @p bytes over one channel: α + βN. */
    double time(double bytes) const { return alpha + beta * bytes; }

    /** Bandwidth implied by β, bytes/second. */
    double bandwidth() const { return 1.0 / beta; }
};

/**
 * Per-protocol cost adjustment, mirroring ccl::protocolCosts without
 * a ccl:: dependency (the model layer stays leaf-only): LL packs one
 * inline arrival flag per payload word — halving effective bandwidth
 * (β × payload_factor) — but skips the semaphore lock/post/fence
 * round-trip, cutting the per-transfer latency to α × alpha_factor.
 * Simple is the identity. The LL-vs-Simple crossover falls where
 *   α·(1−alpha_factor) = β·N·(payload_factor−1),
 * i.e. N = 0.75·α/β ≈ 86 KB at the defaults.
 */
inline AlphaBeta
applyProtocol(const AlphaBeta& base, double payload_factor,
              double alpha_factor)
{
    return AlphaBeta{base.alpha * alpha_factor,
                     base.beta * payload_factor};
}

/** Tree depth term: log2(p) as a real number (p ≥ 2). */
double log2Nodes(int p);

/** Tree depth in whole steps: ⌈log2(p)⌉. */
int treeDepth(int p);

} // namespace model
} // namespace ccube

#endif // CCUBE_MODEL_ALPHA_BETA_H_
