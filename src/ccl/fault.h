#ifndef CCUBE_CCL_FAULT_H_
#define CCUBE_CCL_FAULT_H_

/**
 * @file
 * Fault tolerance for the functional collective runtime.
 *
 * The paper's persistent-kernel protocol (Fig. 11 lock/unlock/post/
 * wait/check) assumes every peer eventually arrives: a hung or dead
 * rank turns every collective into a silent spin-deadlock. Production
 * stacks (NCCL's async error propagation + ncclCommAbort) pair the
 * spin protocol with an abort channel; this header is that channel.
 *
 * The pieces:
 *
 *   - AbortState     — a per-communicator *abort epoch*. Even values
 *                      mean "running"; tripping an abort flips the
 *                      epoch odd and stores a structured description.
 *                      Every bounded spin in ccl:: polls the epoch of
 *                      the thread's installed CommFaultContext and
 *                      bails with AbortedWait instead of spinning
 *                      forever.
 *   - CollectiveError— the structured, user-facing error a failed
 *                      collective surfaces (failed rank, op, mailbox,
 *                      flow, last posted sequence number) instead of a
 *                      hang.
 *   - CommFaultContext — per-communicator runtime state: the abort
 *                      epoch, a per-rank progress table (mailbox ops,
 *                      last posted seq, current blocking wait site)
 *                      that the watchdog snapshots to attribute a
 *                      deadline overrun to the slowest rank, and the
 *                      optional FaultInjector.
 *   - FaultInjector  — test hook that kills, stalls, or delays a
 *                      chosen rank at a chosen mailbox operation, so
 *                      every abort path is actually exercised.
 *
 * Threading: rank bodies and their helpers install the communicator's
 * context via ScopedFaultContext (the Communicator and RankExecutor do
 * this automatically); the watchdog thread only reads atomics and
 * trips the epoch.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/profiler.h"

namespace ccube {
namespace ccl {

/**
 * Structured description of an aborted collective — what NCCL would
 * report through ncclCommGetAsyncError, with C-Cube-level detail.
 */
class CollectiveError : public std::runtime_error
{
  public:
    struct Info {
        int failed_rank = -1;       ///< rank blamed for the abort
        std::string op;             ///< collective op ("tree_allreduce")
        std::string mailbox;        ///< wait-site mailbox label ("" unknown)
        int flow = -1;              ///< flow id of that mailbox
        std::int64_t last_posted_seq = -1; ///< failed rank's last post
        std::int64_t ops_completed = -1;   ///< failed rank's mailbox ops
        double deadline_s = 0.0;    ///< configured deadline (0 = manual)
        std::string reason;         ///< human-readable cause
        std::string stall_chain;    ///< formatted wait-for chain ("" none)
        int chain_terminus = -1;    ///< rank the chain ends at (-1 none)
        int chain_len = 0;          ///< blocked ranks along the chain
    };

    explicit CollectiveError(Info info);

    /** The structured fields (the what() string is derived from them). */
    const Info& info() const { return info_; }

  private:
    Info info_;
};

/**
 * Thrown out of a bounded spin (semaphore wait, lock, barrier, check)
 * when the communicator's abort epoch flips. Internal control flow:
 * Communicator::run converts it into the communicator's structured
 * CollectiveError before returning to the caller.
 */
class AbortedWait : public std::runtime_error
{
  public:
    AbortedWait();
};

/** Thrown by the FaultInjector to simulate a rank dying mid-collective. */
class RankKilled : public std::runtime_error
{
  public:
    explicit RankKilled(int rank);

    int rank() const { return rank_; }

  private:
    int rank_;
};

/**
 * The per-communicator abort epoch plus the first-abort-wins error
 * record. Epoch parity is the wire protocol: even = running, odd =
 * aborted; clear() re-arms by advancing to the next even value, so a
 * generation count is carried for free.
 */
class AbortState
{
  public:
    AbortState() = default;
    AbortState(const AbortState&) = delete;
    AbortState& operator=(const AbortState&) = delete;

    /** True while tripped (epoch odd). One relaxed load — this is the
     *  poll every bounded spin performs. */
    bool aborted() const
    {
        return (epoch_.load(std::memory_order_acquire) & 1) != 0;
    }

    /** Current epoch value (parity = abort flag). */
    std::uint64_t epoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    /**
     * Trips the abort: stores @p info and flips the epoch odd. Only
     * the first trip per generation wins; returns whether this call
     * was it. Every call — winner or loser — bumps tripAttempts(), so
     * a clear can detect trips that lost first-trip-wins.
     */
    bool trip(CollectiveError::Info info);

    /** Re-arms after an abort was consumed (epoch odd → next even). */
    void clear();

    /**
     * Total trip() calls ever, including ones that lost
     * first-trip-wins. A trip on an already-aborted generation does
     * not move the epoch, but its caller may have had side effects
     * (posts in flight) that a racing clearAbort() flush missed —
     * this counter is how clearIfEpoch() sees it.
     */
    std::uint64_t tripAttempts() const
    {
        return trip_attempts_.load(std::memory_order_acquire);
    }

    /**
     * Epoch-checked clear: re-arms ONLY when the current epoch still
     * equals @p expected_epoch AND no trip() call — not even one that
     * lost first-trip-wins — landed since @p expected_attempts was
     * captured. Returns true when the state is clean afterwards
     * (cleared now, or @p expected_epoch was already even and nothing
     * tripped since); false means an abort raced the caller's
     * pre-clear work (mailbox flush) and that work must re-run before
     * clearing. This closes the abort-during-clearAbort window where
     * an unconditional clear() would silently retire a generation
     * whose damage was never flushed.
     */
    bool clearIfEpoch(std::uint64_t expected_epoch,
                      std::uint64_t expected_attempts);

    /** The stored description; meaningful while aborted(). */
    CollectiveError::Info info() const;

  private:
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint64_t> trip_attempts_{0};
    mutable std::mutex mutex_;
    CollectiveError::Info info_;
};

/**
 * Deterministic fault injection for abort-path testing: kill (throw
 * RankKilled), stall (spin until the abort epoch flips), or delay a
 * chosen rank when it reaches a chosen mailbox operation. Arm any
 * number of faults; each fires at most once per arm().
 */
class FaultInjector
{
  public:
    enum class Action {
        kKill,  ///< rank dies: throws RankKilled out of the mailbox op
        kStall, ///< rank wedges: spins until aborted, then AbortedWait
        kDelay, ///< rank hiccups: sleeps delay_s, then proceeds
    };

    struct Fault {
        int rank = -1;            ///< rank to fault
        Action action = Action::kKill;
        std::int64_t at_op = 0;   ///< fire before the rank's at_op-th
                                  ///< mailbox operation (0 = pre-post)
        double delay_s = 0.0;     ///< sleep length for kDelay
    };

    FaultInjector() = default;
    FaultInjector(const FaultInjector&) = delete;
    FaultInjector& operator=(const FaultInjector&) = delete;

    /** Adds @p fault to the plan. */
    void arm(const Fault& fault);

    /** Clears the plan and the per-rank op counters. */
    void reset();

    /** Mailbox operations observed for @p rank so far. */
    std::int64_t opsSeen(int rank) const;

    /**
     * Runtime side: counts one mailbox operation for @p rank and
     * checks the plan. Returns true (filling @p out) when an armed
     * fault fires at this operation; each armed fault fires once.
     */
    bool onOp(int rank, Fault* out);

  private:
    static constexpr int kMaxRanks = 64;

    struct alignas(64) Slot {
        std::atomic<std::int64_t> ops{0};
    };

    Slot slots_[kMaxRanks];
    mutable std::mutex mutex_;
    std::vector<Fault> plan_;
    std::vector<bool> fired_;
};

/**
 * Per-communicator fault runtime: abort epoch, per-rank progress
 * table, optional injector. Installed thread-locally on every rank
 * (and helper) thread of a running collective so the sync primitives
 * can poll the abort epoch without any signature plumbing — the
 * host-side analog of the abort flag the paper's persistent kernels
 * would poll in their spin loops.
 */
class CommFaultContext
{
  public:
    explicit CommFaultContext(int num_ranks);
    CommFaultContext(const CommFaultContext&) = delete;
    CommFaultContext& operator=(const CommFaultContext&) = delete;

    int numRanks() const { return num_ranks_; }

    AbortState& abortState() { return abort_; }
    const AbortState& abortState() const { return abort_; }

    /** Attaches @p injector (borrowed; null detaches). */
    void setInjector(FaultInjector* injector);

    FaultInjector* injector() const
    {
        return injector_.load(std::memory_order_acquire);
    }

    /** Marks the start of a collective named @p op (a string literal —
     *  the pointer is stored, not the contents). */
    void beginCollective(const char* op);

    /** Marks the end of the collective (progress table kept for
     *  post-mortem reads until the next beginCollective). */
    void endCollective();

    /** Name of the running (or last) collective. */
    const char* currentOp() const;

    // ---- hooks called by Mailbox on the acting rank's thread ----

    /**
     * Called at the top of every mailbox send/recv. Runs the injector
     * (may throw RankKilled, stall until abort, or sleep) and counts
     * the op against the calling thread's rank.
     */
    void onMailboxOp(const std::string& label, int flow);

    /**
     * Declares the calling rank blocked on @p label / @p flow,
     * expecting @p peer to post it (-1 = unknown). The peer edge
     * feeds the wait-for graph the watchdog walks at deadline
     * expiry; progress-table attribution works without it.
     */
    void noteWaitBegin(const char* label, int flow, int peer = -1);

    /** Clears the calling rank's blocked-on record. */
    void noteWaitEnd();

    /** Records the calling rank's last posted mailbox sequence. */
    void notePosted(std::int64_t seq);

    // ---- watchdog side ----

    /**
     * Attribution snapshot for a deadline overrun: blames the first
     * rank marked dead by the injector, else the running rank with the
     * fewest completed mailbox ops, and reports that rank's blocked
     * wait site and last posted sequence number.
     */
    CollectiveError::Info deadlineInfo(double deadline_s) const;

    /** Marks @p rank dead (killed or wedged by the injector). */
    void markDead(int rank);

    /** Live rank→rank wait-for graph (the profiler's stall-chain
     *  substrate; deadlineInfo() walks it for the stall report). */
    const obs::WaitForRegistry& waitForGraph() const
    {
        return waitfor_;
    }

    /** The context installed on the calling thread (null outside a
     *  running collective). */
    static CommFaultContext* current();

  private:
    friend class ScopedFaultContext;

    struct alignas(64) RankSlot {
        std::atomic<std::int64_t> ops{0};
        std::atomic<std::int64_t> posted_seq{-1};
        std::atomic<const char*> wait_label{nullptr};
        std::atomic<int> wait_flow{-1};
        std::atomic<bool> dead{false};
    };

    RankSlot& slotForCurrentThread();

    const int num_ranks_;
    std::vector<RankSlot> slots_;
    AbortState abort_;
    obs::WaitForRegistry waitfor_;
    std::atomic<const char*> op_{nullptr};
    std::atomic<FaultInjector*> injector_{nullptr};
};

/**
 * RAII thread-local install of a communicator's fault context; nests
 * (restores the previous context on destruction). A null context is a
 * no-op installation.
 */
class ScopedFaultContext
{
  public:
    explicit ScopedFaultContext(CommFaultContext* context);
    ~ScopedFaultContext();

    ScopedFaultContext(const ScopedFaultContext&) = delete;
    ScopedFaultContext& operator=(const ScopedFaultContext&) = delete;

  private:
    CommFaultContext* previous_;
};

/**
 * Poll point for bounded spins: throws AbortedWait when the calling
 * thread's installed context has tripped its abort epoch. A thread
 * with no context (plain tests, non-collective use) never throws —
 * the cost is one thread-local load.
 */
void abortPoll();

/** Non-throwing form of abortPoll(). */
bool abortPending();

/**
 * Multi-line, human-facing stall report for a watchdog abort: the
 * blamed rank, its wait site, and the full wait-for chain when one
 * was captured. This is what the scale-smoke CI leg uploads as an
 * artifact and what operators read before any trace.
 */
std::string formatStallReport(const CollectiveError::Info& info);

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_FAULT_H_
