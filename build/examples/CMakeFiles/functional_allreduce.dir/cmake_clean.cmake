file(REMOVE_RECURSE
  "CMakeFiles/functional_allreduce.dir/functional_allreduce.cpp.o"
  "CMakeFiles/functional_allreduce.dir/functional_allreduce.cpp.o.d"
  "functional_allreduce"
  "functional_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
