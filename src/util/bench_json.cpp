#include "util/bench_json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace ccube {
namespace util {

namespace {

const char kPrefix[] = "{\"schema\":\"bench_ccl/v1\",\"records\":[";
const char kSuffix[] = "\n]}\n";

std::string
escapeJson(const std::string& in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
formatRecord(const BenchRecord& record)
{
    std::ostringstream out;
    out << "\n{\"source\":\"" << escapeJson(record.source)
        << "\",\"kind\":\"" << escapeJson(record.kind)
        << "\",\"name\":\"" << escapeJson(record.name)
        << "\",\"mode\":\"" << escapeJson(record.mode)
        << "\",\"bytes\":" << record.bytes
        << ",\"ns_per_op\":" << record.ns_per_op;
    if (!record.extra.empty()) {
        out << ",\"extra\":{";
        bool first = true;
        for (const auto& [key, value] : record.extra) {
            if (!first)
                out << ",";
            first = false;
            out << "\"" << escapeJson(key) << "\":" << value;
        }
        out << "}";
    }
    out << "}";
    return out.str();
}

/** Existing record-array body (between prefix and suffix), or empty. */
std::string
existingBody(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    const std::string prefix(kPrefix);
    const std::string suffix(kSuffix);
    if (content.size() < prefix.size() + suffix.size() ||
        content.compare(0, prefix.size(), prefix) != 0 ||
        content.compare(content.size() - suffix.size(), suffix.size(),
                        suffix) != 0) {
        logWarn("bench",
                "existing " + path +
                    " is not bench_ccl/v1 — replacing it");
        return {};
    }
    return content.substr(prefix.size(), content.size() -
                                             prefix.size() -
                                             suffix.size());
}

/**
 * Minimal JSON scanner for the bench_ccl/v1 subset this writer emits:
 * objects, string keys, string/number values, one level of nested
 * object ("extra"). No arrays inside records, no booleans, no nulls.
 */
class BenchScanner
{
  public:
    explicit BenchScanner(const std::string& text) : text_(text) {}

    bool parse(std::vector<BenchRecord>& out)
    {
        skipWs();
        if (!consume('{'))
            return false;
        // Scan top-level keys until "records".
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            if (key == "records")
                break;
            std::string ignored;
            if (!parseString(ignored))
                return false;
            skipWs();
            if (!consume(','))
                return false;
        }
        if (!consume('['))
            return false;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            BenchRecord record;
            if (!parseRecord(record))
                return false;
            out.push_back(std::move(record));
            skipWs();
            if (consume(','))
                continue;
            return consume(']');
        }
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool parseString(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\' && pos_ < text_.size()) {
                out.push_back(text_[pos_++]);
                continue;
            }
            out.push_back(c);
        }
        return false;
    }

    bool parseNumber(double& out)
    {
        const char* begin = text_.c_str() + pos_;
        char* end = nullptr;
        out = std::strtod(begin, &end);
        if (end == begin)
            return false;
        pos_ += static_cast<std::size_t>(end - begin);
        return true;
    }

    bool parseExtra(std::map<std::string, double>& out)
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            double value = 0.0;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            if (!parseNumber(value))
                return false;
            out[key] = value;
            skipWs();
            if (consume(','))
                continue;
            return consume('}');
        }
    }

    bool parseRecord(BenchRecord& record)
    {
        skipWs();
        if (!consume('{'))
            return false;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            if (key == "source" || key == "kind" || key == "name" ||
                key == "mode") {
                std::string value;
                if (!parseString(value))
                    return false;
                if (key == "source")
                    record.source = std::move(value);
                else if (key == "kind")
                    record.kind = std::move(value);
                else if (key == "name")
                    record.name = std::move(value);
                else
                    record.mode = std::move(value);
            } else if (key == "extra") {
                if (!parseExtra(record.extra))
                    return false;
            } else {
                double value = 0.0;
                if (!parseNumber(value))
                    return false;
                if (key == "bytes")
                    record.bytes = static_cast<std::int64_t>(value);
                else if (key == "ns_per_op")
                    record.ns_per_op = value;
                // Unknown numeric keys: parsed and dropped.
            }
            skipWs();
            if (consume(','))
                continue;
            return consume('}');
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

} // namespace

void
writeBenchRecords(const std::string& path,
                  const std::vector<BenchRecord>& records, bool append)
{
    std::string body = append ? existingBody(path) : std::string();
    for (const BenchRecord& record : records) {
        if (!body.empty())
            body += ",";
        body += formatRecord(record);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        logWarn("bench", "cannot write " + path);
        return;
    }
    out << kPrefix << body << kSuffix;
}

std::vector<BenchRecord>
readBenchRecords(const std::string& path)
{
    std::vector<BenchRecord> records;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        logWarn("bench", "cannot read " + path);
        return records;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    BenchScanner scanner(content);
    if (!scanner.parse(records)) {
        logWarn("bench", path + " is not bench_ccl/v1");
        records.clear();
    }
    return records;
}

std::string
benchOutputPath()
{
    return benchOutputPath("BENCH_ccl.json");
}

std::string
benchOutputPath(const std::string& fallback)
{
    const char* env = std::getenv("CCUBE_BENCH_OUT");
    return env && *env ? std::string(env) : fallback;
}

} // namespace util
} // namespace ccube
