/**
 * @file
 * Monitoring-overhead microbenchmark for the perf gate.
 *
 * Two workloads are each timed with observability fully off and with
 * the live obs::Monitor enabled:
 *
 *  - "functional": the micro_primitives AllReduce (double tree on the
 *    persistent rank executor). Monitoring here is the SLO collective
 *    edge — one snapshot per collective — which is the overhead a
 *    real training loop pays. This is the gated ratio.
 *  - "des": the simulated double-tree schedule, where monitoring also
 *    records per-grant busy intervals and heartbeat gauge snapshots.
 *    Telemetry density per unit of wall time is orders of magnitude
 *    higher than any real deployment (the DES collapses milliseconds
 *    of simulated transfer into microseconds of wall time), so this
 *    ratio is recorded for trend-watching, not gated at 5%.
 *
 * A third paired workload gates the obs::Profiler: a P=256 double-
 * tree AllReduce on the state-machine pool — the engine whose park/
 * resume stamps and phase publications carry the profiler's cost —
 * timed with the sampler off vs running, reported as
 * "profiler_overhead_ratio" and held to the same 5% threshold.
 *
 * Measurement is paired: off and on blocks alternate round-robin so
 * slow machine drift (frequency scaling, noisy neighbours) hits both
 * sides equally, and the reported ratio is the median of per-round
 * ratios, which shrugs off one-off scheduling spikes.
 *
 * Results land in BENCH_obs.json (schema bench_ccl/v1; set
 * CCUBE_BENCH_OUT to override): ns/op per workload and side, plus a
 * dimensionless "monitor_overhead_ratio" record (on/off, so 1.05 =
 * 5% overhead) that bench_compare diffs against
 * bench/baselines/BENCH_obs_baseline.json with --threshold=0.05.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "obs/monitor.h"
#include "obs/profiler.h"
#include "sim/simulation.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/tree_embedding.h"
#include "util/bench_json.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/units.h"

namespace {

using namespace ccube;

double sink_ = 0.0; ///< defeats over-eager dead-code elimination

/** Wall ns/op over @p reps back-to-back calls of @p op. */
double
timeBlock(int reps, const std::function<double()>& op)
{
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i)
        sink_ += op();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::nano>(elapsed).count() /
           reps;
}

struct PairedResult {
    double off_ns = 0.0; ///< median of per-round off blocks
    double on_ns = 0.0;  ///< median of per-round on blocks
    double ratio = 1.0;  ///< median of per-round on/off ratios
};

/**
 * Runs @p rounds alternating off/on blocks of @p reps calls each; the
 * monitor redirect is installed only around the on blocks.
 */
PairedResult
measurePaired(obs::Monitor& monitor, int rounds, int reps, int warmup,
              const std::function<double()>& op)
{
    for (int i = 0; i < warmup; ++i) {
        timeBlock(reps, op);
        obs::ScopedMonitorRedirect redirect(&monitor);
        timeBlock(reps, op);
    }
    std::vector<double> off_rounds, on_rounds, ratios;
    for (int round = 0; round < rounds; ++round) {
        const double off = timeBlock(reps, op);
        double on = 0.0;
        {
            obs::ScopedMonitorRedirect redirect(&monitor);
            on = timeBlock(reps, op);
        }
        off_rounds.push_back(off);
        on_rounds.push_back(on);
        ratios.push_back(off > 0.0 ? on / off : 0.0);
    }
    PairedResult result;
    result.off_ns = util::quantileInPlace(off_rounds, 0.5);
    result.on_ns = util::quantileInPlace(on_rounds, 0.5);
    result.ratio = util::quantileInPlace(ratios, 0.5);
    return result;
}

/**
 * Profiler variant of measurePaired: the sampler thread runs only
 * around the on blocks. start()/stop() (thread spawn + join) sit
 * outside the timed region — the gated cost is the steady-state
 * publication + sampling overhead, not capture setup.
 */
PairedResult
measurePairedProfiler(double hz, int rounds, int reps, int warmup,
                      const std::function<double()>& op)
{
    obs::Profiler& profiler = obs::Profiler::global();
    for (int i = 0; i < warmup; ++i) {
        timeBlock(reps, op);
        profiler.start(hz);
        timeBlock(reps, op);
        profiler.stop();
    }
    std::vector<double> off_rounds, on_rounds, ratios;
    for (int round = 0; round < rounds; ++round) {
        const double off = timeBlock(reps, op);
        profiler.start(hz);
        const double on = timeBlock(reps, op);
        profiler.stop();
        off_rounds.push_back(off);
        on_rounds.push_back(on);
        ratios.push_back(off > 0.0 ? on / off : 0.0);
    }
    PairedResult result;
    result.off_ns = util::quantileInPlace(off_rounds, 0.5);
    result.on_ns = util::quantileInPlace(on_rounds, 0.5);
    result.ratio = util::quantileInPlace(ratios, 0.5);
    return result;
}

void
report(const char* label, const PairedResult& r)
{
    std::cout << label << ": off " << r.off_ns / 1e6 << " ms/op, on "
              << r.on_ns / 1e6 << " ms/op, overhead "
              << (r.ratio - 1.0) * 100.0 << "% (median paired ratio)\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Flags flags(argc, argv);
    const int rounds = flags.getInt("rounds", 24);
    const int reps = flags.getInt("reps", 8); // per block, per round
    const int warmup = flags.getInt("warmup", 2);
    const auto elems =
        static_cast<std::size_t>(flags.getInt("elems", 16384));
    const double des_bytes = flags.getDouble("des-bytes", util::mib(8));
    const int des_chunks = flags.getInt("des-chunks", 32);
    // Heartbeat cadence in simulated seconds (DES side only; the
    // functional side snapshots on collective completion).
    const double interval = flags.getDouble("interval", 5e-4);

    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding embedding =
        topo::makeDgx1DoubleTree(graph);

    obs::Monitor monitor; // local: the bench leaves no global state
    monitor.setInterval(interval);
    obs::SloSpec slo;
    slo.collective_deadline_s = 1.0;
    monitor.setSlo(slo);
    monitor.enable();

    // --- gated: functional AllReduce (the micro_primitives path) ----
    ccl::Communicator comm(8, 4, ccl::RankExecutor::Mode::kPersistent);
    ccl::RankBuffers buffers(8, std::vector<float>(elems, 0.0f));
    const PairedResult functional = measurePaired(
        monitor, rounds, reps, warmup, [&]() {
            ccl::doubleTreeAllReduce(comm, buffers, embedding,
                                     /*num_chunks=*/4,
                                     ccl::TreePhaseMode::kOverlapped);
            return 1.0;
        });
    const std::uint64_t functional_collectives =
        monitor.collectivesTotal();

    // --- informational: DES schedule (per-grant + heartbeat path) ---
    const PairedResult des = measurePaired(
        monitor, rounds, reps, warmup, [&]() {
            sim::Simulation sim;
            simnet::Network net(sim, graph);
            return simnet::runDoubleTreeSchedule(
                       sim, net, embedding, des_bytes,
                       simnet::PhaseMode::kOverlapped, des_chunks)
                .completion_time;
        });
    monitor.disable();

    // --- gated: profiler on the state-machine engine at P=256 ------
    // The sampling profiler's cost sits in the park/resume stamps and
    // the per-site phase publication, which only the state-machine
    // runtime exercises at density — so the gate measures exactly
    // that engine, at a rank count where tasks park constantly.
    const int prof_ranks = flags.getInt("profile-ranks", 256);
    const auto prof_elems =
        static_cast<std::size_t>(flags.getInt("profile-elems", 4096));
    const double prof_hz =
        flags.getDouble("profile-hz", obs::Profiler::kDefaultHz);
    const topo::DoubleTreeEmbedding prof_tree(
        topo::directEmbedding(topo::BinaryTree::inorder(prof_ranks)),
        topo::directEmbedding(
            topo::BinaryTree::inorder(prof_ranks).mirrored()));
    ccl::Communicator sm_comm(prof_ranks, 4,
                              ccl::RankExecutor::Mode::kStateMachine);
    ccl::RankBuffers sm_buffers(
        static_cast<std::size_t>(prof_ranks),
        std::vector<float>(prof_elems, 1.0f));
    const PairedResult profiled = measurePairedProfiler(
        prof_hz, rounds, reps, warmup, [&]() {
            ccl::doubleTreeAllReduce(sm_comm, sm_buffers, prof_tree,
                                     /*num_chunks=*/2,
                                     ccl::TreePhaseMode::kTwoPhase);
            return 1.0;
        });
    if (sink_ < 0.0)
        std::cerr << "";

    report("functional", functional);
    report("des       ", des);
    report("profiler  ", profiled);

    // --profile-out=FILE keeps the last profiled round's collapsed
    // stacks as a flamegraph artifact (start() resets the capture, so
    // this is one representative round, not the whole run).
    const std::string profile_out = flags.get("profile-out");
    if (!profile_out.empty()) {
        std::ofstream prof_file(profile_out);
        if (prof_file) {
            obs::Profiler::global().writeCollapsed(prof_file);
            std::cout << "wrote collapsed-stack profile to "
                      << profile_out << "\n";
        }
    }
    std::cout << monitor.snapshotCount() << " snapshots, "
              << monitor.collectivesTotal() << " collectives ("
              << functional_collectives << " functional)\n";

    std::vector<util::BenchRecord> records;
    {
        util::BenchRecord record;
        record.source = "micro_obs_overhead";
        record.kind = "latency";
        record.mode = "functional";
        record.bytes = static_cast<std::int64_t>(elems * sizeof(float));
        record.name = "allreduce_monitor_off";
        record.ns_per_op = functional.off_ns;
        records.push_back(record);
        record.name = "allreduce_monitor_on";
        record.ns_per_op = functional.on_ns;
        records.push_back(record);
        record.mode = "des";
        record.bytes = static_cast<std::int64_t>(des_bytes);
        record.name = "allreduce_monitor_off";
        record.ns_per_op = des.off_ns;
        records.push_back(record);
        record.name = "allreduce_monitor_on";
        record.ns_per_op = des.on_ns;
        records.push_back(record);

        // Dimensionless on/off ratios: stable across machines, so the
        // perf gate can hold the functional one to a tight threshold
        // (1.05 = 5% overhead).
        util::BenchRecord gate;
        gate.source = "micro_obs_overhead";
        gate.kind = "overhead";
        gate.name = "monitor_overhead_ratio";
        gate.mode = "functional";
        gate.bytes = 0;
        gate.ns_per_op = functional.ratio;
        gate.extra["off_ns"] = functional.off_ns;
        gate.extra["on_ns"] = functional.on_ns;
        records.push_back(gate);
        gate.name = "monitor_overhead_ratio_des";
        gate.mode = "des";
        gate.ns_per_op = des.ratio;
        gate.extra["off_ns"] = des.off_ns;
        gate.extra["on_ns"] = des.on_ns;
        gate.extra["snapshots"] =
            static_cast<double>(monitor.snapshotCount());
        records.push_back(gate);

        // Sampling-profiler gate: P=256 double tree on the state-
        // machine pool, sampler off vs on (same 5% threshold).
        record.kind = "latency";
        record.mode = "statemachine";
        record.bytes =
            static_cast<std::int64_t>(prof_elems * sizeof(float));
        record.name = "allreduce_profiler_off";
        record.ns_per_op = profiled.off_ns;
        records.push_back(record);
        record.name = "allreduce_profiler_on";
        record.ns_per_op = profiled.on_ns;
        records.push_back(record);

        util::BenchRecord prof_gate;
        prof_gate.source = "micro_obs_overhead";
        prof_gate.kind = "overhead";
        prof_gate.name = "profiler_overhead_ratio";
        prof_gate.mode = "statemachine";
        prof_gate.bytes = 0;
        prof_gate.ns_per_op = profiled.ratio;
        prof_gate.extra["off_ns"] = profiled.off_ns;
        prof_gate.extra["on_ns"] = profiled.on_ns;
        records.push_back(prof_gate);
    }
    const std::string path = util::benchOutputPath("BENCH_obs.json");
    util::writeBenchRecords(path, records, /*append=*/true);
    std::cout << "wrote " << records.size() << " records to " << path
              << "\n";
    return 0;
}
