# Empty compiler generated dependencies file for fig07_timing_diagram.
# This may be replaced when dependencies are built.
