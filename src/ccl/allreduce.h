#ifndef CCUBE_CCL_ALLREDUCE_H_
#define CCUBE_CCL_ALLREDUCE_H_

/**
 * @file
 * Shared types for the functional AllReduce implementations.
 */

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace ccl {

/** One gradient buffer per rank; all must have equal length. */
using RankBuffers = std::vector<std::vector<float>>;

/**
 * Order in which fully reduced chunks became available at each rank.
 *
 * The tree algorithm's in-order property (paper Observation #3) —
 * chunks complete in index order at every rank — is what makes
 * gradient queuing possible; the ring algorithm violates it. Tests
 * assert both directions from this trace.
 */
class AllReduceTrace
{
  public:
    /** Live notification: chunk became available at rank. */
    using Observer = std::function<void(int rank, int chunk)>;

    /** Creates a trace for @p num_ranks ranks. */
    explicit AllReduceTrace(int num_ranks);

    /**
     * Installs a live observer invoked on every record() — the hook
     * gradient queuing attaches its enqueue to. Must be set before
     * the collective starts; invoked under the per-rank lock.
     */
    void setObserver(Observer observer);

    /** Records that @p chunk became available at @p rank (thread-safe
     *  across the helper threads of a single rank). */
    void record(int rank, int chunk);

    /** Completion order at @p rank. */
    const std::vector<int>& order(int rank) const;

    /** True when every rank saw chunks in ascending index order. */
    bool inOrder() const;

  private:
    struct PerRank {
        SpinLock lock;
        std::vector<int> order;
    };
    std::vector<PerRank> per_rank_;
    Observer observer_;
};

/**
 * Immutable per-chunk skip mask for resumed collectives: chunk c is
 * skipped by every rank when done(c) — its final reduced value is
 * already present in every rank's buffer (ccl::ChunkCheckpoint commits
 * a chunk only once all ranks recorded it). The mask is consulted at
 * GLOBAL chunk ids (the ids AllReduceTrace records, i.e. including any
 * per-tree chunk_id_offset). A default-constructed mask skips nothing,
 * so every algorithm entry point takes one with zero overhead on the
 * healthy path. Skipping is consistent across ranks because every rank
 * consults the same immutable mask with the same chunk-id formulas the
 * mailbox matching already relies on.
 */
class SkipMask
{
  public:
    SkipMask() = default;

    explicit SkipMask(std::vector<std::uint8_t> done)
        : done_(std::move(done))
    {
    }

    /** Whether any chunk is marked done (fast reject). */
    bool any() const
    {
        for (std::uint8_t bit : done_) {
            if (bit != 0)
                return true;
        }
        return false;
    }

    /** Whether chunk @p chunk should be skipped. Ids outside the mask
     *  are never skipped (a fresh run with an empty mask). */
    bool done(int chunk) const
    {
        return chunk >= 0 &&
               static_cast<std::size_t>(chunk) < done_.size() &&
               done_[static_cast<std::size_t>(chunk)] != 0;
    }

    /** Count of done chunks. */
    int doneCount() const
    {
        int count = 0;
        for (std::uint8_t bit : done_)
            count += bit != 0 ? 1 : 0;
        return count;
    }

  private:
    std::vector<std::uint8_t> done_;
};

/**
 * Splits [0, total) into @p chunks half-open subranges of near-equal
 * size; chunk c covers [begin(c), end(c)).
 */
class ChunkSplit
{
  public:
    ChunkSplit(std::size_t total, int chunks);

    std::size_t begin(int chunk) const;
    std::size_t end(int chunk) const;
    int count() const { return chunks_; }

    /** Subspan of @p buffer covering chunk @p chunk. */
    std::span<float> slice(std::span<float> buffer, int chunk) const;
    std::span<const float>
    slice(std::span<const float> buffer, int chunk) const;

  private:
    std::size_t total_;
    int chunks_;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_ALLREDUCE_H_
