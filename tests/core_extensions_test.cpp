/**
 * @file
 * Tests for the extension modules: the dual (per-tree) gradient
 * queue, per-tree layer-chunk tables, the multi-iteration Trainer,
 * and heterogeneous-bandwidth (straggler) behaviour of the timed
 * schedules.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "core/ccube_engine.h"
#include "core/chunk_mapper.h"
#include "core/dual_gradient_queue.h"
#include "core/timeline.h"
#include "core/trainer.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/units.h"

namespace ccube {
namespace core {
namespace {

TEST(DualGradientQueue, GatesOnBothTrees)
{
    // Layer 0 needs 2 chunks of tree 0 only; layer 1 needs one more
    // from each tree.
    DualGradientQueue queue({2, 3}, {0, 1});
    queue.enqueueChunk(0);
    EXPECT_FALSE(queue.tryDequeueLayer(0));
    queue.enqueueChunk(0);
    EXPECT_TRUE(queue.tryDequeueLayer(0));
    // Layer 1: tree0 bound 3, tree1 bound 1.
    queue.enqueueChunk(1);
    EXPECT_FALSE(queue.tryDequeueLayer(1)); // tree0 still at 2
    queue.enqueueChunk(0);
    EXPECT_TRUE(queue.tryDequeueLayer(1));
    EXPECT_EQ(queue.layerIndexCounter(), 2);
}

TEST(DualGradientQueue, BlockingDequeueAcrossThreads)
{
    DualGradientQueue queue({1, 1}, {1, 2});
    std::atomic<int> done{0};
    std::thread compute([&]() {
        queue.dequeueLayer(0);
        done.store(1);
        queue.dequeueLayer(1);
        done.store(2);
    });
    queue.enqueueChunk(0);
    EXPECT_EQ(done.load(), 0); // layer 0 also needs tree1 chunk 1
    queue.enqueueChunk(1);
    while (done.load() < 1)
        std::this_thread::yield();
    queue.enqueueChunk(1);
    compute.join();
    EXPECT_EQ(done.load(), 2);
    queue.resetIteration();
    EXPECT_EQ(queue.enqueued(0), 0);
    EXPECT_EQ(queue.enqueued(1), 0);
}

TEST(DualGradientQueue, RejectsMalformedTables)
{
    EXPECT_DEATH(DualGradientQueue({}, {}), "empty");
    EXPECT_DEATH(DualGradientQueue({1, 2}, {1}), "same layer count");
    EXPECT_DEATH(DualGradientQueue({2, 1}, {1, 1}), "non-decreasing");
}

TEST(PerTreeLayerChunkTables, SplitsAtTheHalfBoundary)
{
    // 100 bytes, 2 chunks per tree (each 25 bytes). Layers of
    // 50 / 25 / 25 bytes: layer 0 fills tree 0 exactly; layer 1 is
    // tree 1's first chunk; layer 2 its second.
    const auto [t0, t1] =
        perTreeLayerChunkTables(100.0, 2, {50.0, 25.0, 25.0});
    EXPECT_EQ(t0, (std::vector<std::int64_t>{2, 2, 2}));
    EXPECT_EQ(t1, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(PerTreeLayerChunkTables, StraddlingLayerNeedsBothTrees)
{
    // One layer of 60 bytes and one of 40: the first straddles the
    // 50-byte half boundary.
    const auto [t0, t1] =
        perTreeLayerChunkTables(100.0, 2, {60.0, 40.0});
    EXPECT_EQ(t0, (std::vector<std::int64_t>{2, 2}));
    EXPECT_EQ(t1, (std::vector<std::int64_t>{1, 2}));
}

TEST(PerTreeLayerChunkTables, ConsistentWithDualQueueOnResnet)
{
    const dnn::NetworkModel net = dnn::buildResnet50();
    const auto layer_bytes = net.layerParamBytes();
    const int chunks_per_tree = 32;
    const auto [t0, t1] = perTreeLayerChunkTables(
        net.totalParamBytes(), chunks_per_tree, layer_bytes);
    ASSERT_EQ(static_cast<int>(t0.size()), net.numLayers());
    DualGradientQueue queue(t0, t1);
    // Deliver everything; all layers must dequeue in order.
    for (int c = 0; c < chunks_per_tree; ++c) {
        queue.enqueueChunk(0);
        queue.enqueueChunk(1);
    }
    for (int l = 0; l < net.numLayers(); ++l)
        EXPECT_TRUE(queue.tryDequeueLayer(l)) << "layer " << l;
}

TEST(Trainer, SteadyStateDominatesLongRuns)
{
    CCubeEngine engine(dnn::buildResnet50());
    Trainer trainer(engine.scheduler(), 8);
    IterationConfig config;
    config.batch = 32;
    const auto short_run =
        trainer.run(Mode::kCCube, config, /*iterations=*/2);
    const auto long_run =
        trainer.run(Mode::kCCube, config, /*iterations=*/100);
    EXPECT_EQ(long_run.iterations, 100);
    EXPECT_GT(long_run.total_time, short_run.total_time);
    // Per-iteration cost converges to the steady period.
    EXPECT_NEAR(long_run.total_time / 100,
                long_run.steady_iteration_time,
                long_run.steady_iteration_time * 0.05);
    EXPECT_GT(long_run.samples_per_second, 0.0);
    EXPECT_GT(long_run.scaling_efficiency, 0.5);
    EXPECT_LE(long_run.scaling_efficiency, 1.0 + 1e-9);
}

TEST(Trainer, CCubeOutperformsBaselineThroughput)
{
    CCubeEngine engine(dnn::buildVgg16());
    Trainer trainer(engine.scheduler(), 8);
    IterationConfig config;
    config.batch = 32;
    config.bandwidth_scale = 0.25;
    const auto base = trainer.run(Mode::kBaseline, config, 50);
    const auto ccube = trainer.run(Mode::kCCube, config, 50);
    EXPECT_GT(ccube.samples_per_second, base.samples_per_second);
    EXPECT_GT(ccube.scaling_efficiency, base.scaling_efficiency);
}

TEST(Timeline, EventsAreWellFormedAndOrdered)
{
    CCubeEngine engine(dnn::buildZfNet());
    IterationConfig config;
    config.batch = 16;
    config.bandwidth_scale = 0.25;
    for (Mode mode : allModes()) {
        const auto events = TimelineBuilder::build(engine.scheduler(),
                                                   mode, config);
        ASSERT_FALSE(events.empty()) << modeName(mode);
        double fwd_prev_end = 0.0;
        bool saw_backward = false;
        for (const TimelineEvent& e : events) {
            ASSERT_LE(e.start, e.end) << modeName(mode);
            ASSERT_GE(e.start, 0.0);
            if (e.track == "backward")
                saw_backward = true;
            if (e.track == "forward") {
                // Forward layers execute strictly in order.
                ASSERT_GE(e.start, fwd_prev_end - 1e-12);
                fwd_prev_end = e.end;
            }
        }
        EXPECT_TRUE(saw_backward);
    }
}

TEST(Timeline, ChainedForwardStartsBeforeCommCompletes)
{
    CCubeEngine engine(dnn::buildResnet50());
    IterationConfig config;
    config.batch = 16;
    config.bandwidth_scale = 0.25;
    const auto events = TimelineBuilder::build(
        engine.scheduler(), Mode::kCCube, config);
    double comm_end = 0.0;
    double first_forward = 1e99;
    for (const TimelineEvent& e : events) {
        if (e.track == "allreduce")
            comm_end = std::max(comm_end, e.end);
        if (e.track == "forward")
            first_forward = std::min(first_forward, e.start);
    }
    EXPECT_LT(first_forward, comm_end); // the chaining, visible
}

TEST(Timeline, CsvHasHeaderAndRows)
{
    CCubeEngine engine(dnn::buildZfNet());
    IterationConfig config;
    const auto events = TimelineBuilder::build(
        engine.scheduler(), Mode::kBaseline, config);
    std::ostringstream oss;
    TimelineBuilder::writeCsv(oss, events);
    const std::string out = oss.str();
    EXPECT_EQ(out.rfind("track,label,start_s,end_s\n", 0), 0u);
    EXPECT_NE(out.find("backward"), std::string::npos);
    std::ostringstream gantt;
    TimelineBuilder::printAscii(gantt, events, 40);
    EXPECT_NE(gantt.str().find('#'), std::string::npos);
}

TEST(StragglerChannel, SlowsTheWholeCollective)
{
    // Degrading one channel used by the double tree slows completion
    // — the synchronous collective is gated by its slowest member.
    topo::Graph healthy = topo::makeDgx1();
    const auto dt_h = topo::makeDgx1DoubleTree(healthy);
    sim::Simulation sim_h;
    simnet::Network net_h(sim_h, healthy);
    const double t_healthy =
        simnet::runDoubleTreeSchedule(sim_h, net_h, dt_h,
                                      util::mib(64),
                                      simnet::PhaseMode::kOverlapped,
                                      32)
            .completion_time;

    topo::Graph degraded = topo::makeDgx1();
    // Slow every channel of the (2,3) pair — carries both trees.
    for (int id : degraded.channelIds(2, 3))
        degraded.scaleChannelBandwidth(id, 0.5);
    for (int id : degraded.channelIds(3, 2))
        degraded.scaleChannelBandwidth(id, 0.5);
    const auto dt_d = topo::makeDgx1DoubleTree(degraded);
    sim::Simulation sim_d;
    simnet::Network net_d(sim_d, degraded);
    const double t_degraded =
        simnet::runDoubleTreeSchedule(sim_d, net_d, dt_d,
                                      util::mib(64),
                                      simnet::PhaseMode::kOverlapped,
                                      32)
            .completion_time;
    EXPECT_GT(t_degraded, t_healthy * 1.2);
}

TEST(StragglerChannel, UnusedChannelIsHarmless)
{
    // Degrading a channel no algorithm uses must not change timing.
    topo::Graph degraded = topo::makeDgx1();
    // Pair (6,7) is not part of the C-Cube double tree (our
    // embedding resolves the cross-tree conflicts on (2,3)/(0,4)
    // instead).
    bool used = false;
    const auto dt = topo::makeDgx1DoubleTree(degraded);
    for (const topo::TreeEmbedding* emb : {&dt.tree0, &dt.tree1}) {
        for (const topo::Route& route : emb->routes) {
            for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
                if ((route.hops[i] == 6 && route.hops[i + 1] == 7) ||
                    (route.hops[i] == 7 && route.hops[i + 1] == 6)) {
                    used = true;
                }
            }
        }
    }
    ASSERT_FALSE(used);

    sim::Simulation sim_a;
    simnet::Network net_a(sim_a, degraded);
    const double before =
        simnet::runDoubleTreeSchedule(sim_a, net_a, dt, util::mib(16),
                                      simnet::PhaseMode::kOverlapped,
                                      16)
            .completion_time;
    for (int id : degraded.channelIds(6, 7))
        degraded.scaleChannelBandwidth(id, 0.01);
    sim::Simulation sim_b;
    simnet::Network net_b(sim_b, degraded);
    const double after =
        simnet::runDoubleTreeSchedule(sim_b, net_b, dt, util::mib(16),
                                      simnet::PhaseMode::kOverlapped,
                                      16)
            .completion_time;
    EXPECT_DOUBLE_EQ(before, after);
}

} // namespace
} // namespace core
} // namespace ccube
