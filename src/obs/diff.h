#ifndef CCUBE_OBS_DIFF_H_
#define CCUBE_OBS_DIFF_H_

/**
 * @file
 * Automated "why was this run slow?" analysis on top of
 * obs::TraceAnalyzer:
 *
 *  - **Root cause.** An anomaly pass correlates `fault.*` instants
 *    (channel fail/restore/degrade, dropped transfers, rank
 *    kill/stall/delay), watchdog aborts, and straggler counters
 *    against the span DAG's critical path and emits a ranked cause
 *    list — "channel GPU2->GPU6 failed at t=1.2ms, 37 transfers
 *    dropped, receiver rank 6 starved; rank 3 stalled 42% of the
 *    critical path".
 *
 *  - **Differential trace analysis.** Two captures (baseline vs
 *    current, healthy vs faulted) are aligned by span identity
 *    (name, pid, tid, occurrence) along their critical paths and the
 *    end-to-end delta is attributed segment by segment: each
 *    critical-path span's cost (duration + stall lead-in) is compared
 *    against its baseline counterpart, so the report names the
 *    concrete channels/spans that absorbed the regression.
 *
 * Both reports surface the recorder's drop counter: a truncated trace
 * gets an explicit "analysis may be partial" warning instead of
 * silently analyzing a prefix.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/analyze.h"

namespace ccube {
namespace obs {

class MetricRegistry;

/** One ranked anomaly. */
struct RootCause {
    enum class Kind {
        kChannelFail,
        kChannelDegrade,
        kRankFault, ///< injected kill / stall / delay
        kWatchdog,  ///< ccl abort (deadline trip)
        kStraggler, ///< dominant critical-path staller
    };

    Kind kind = Kind::kStraggler;
    int channel = -1; ///< channel id, when channel-scoped
    int node = -1;    ///< sim node (channel src / straggler)
    int rank = -1;    ///< blamed rank (receiver / ccl rank)
    double t_us = 0.0;
    double score = 0.0; ///< ranking weight (higher = more causal)
    std::string description;
};

/** Ranked root-cause analysis of one capture. */
struct RootCauseReport {
    std::vector<RootCause> causes; ///< score-descending
    int blamed_channel = -1; ///< top channel-scoped cause, if any
    int blamed_rank = -1;    ///< most likely victim/culprit rank
    double critical_span_us = 0.0;
    double critical_stall_us = 0.0;
    std::uint64_t dropped_trace_events = 0;

    bool truncated() const { return dropped_trace_events > 0; }
    bool empty() const { return causes.empty(); }
};

/**
 * Correlates fault instants, watchdog trips, and straggler counters
 * in @p analyzer's capture against its critical path. @p registry
 * (optional) contributes `ccl.aborts`, `trace.dropped_events`, and
 * per-rank `ccl.rank<r>.wait_stall_ns` straggler counters.
 */
RootCauseReport analyzeRootCause(const TraceAnalyzer& analyzer,
                                 const MetricRegistry* registry
                                 = nullptr);

/** Text report: blame summary, ranked causes, truncation warning. */
void writeRootCauseReport(std::ostream& out,
                          const RootCauseReport& report);

/** One aligned critical-path segment of a trace diff. */
struct DiffSegment {
    std::string name; ///< span name (channel / mailbox / reduce)
    int pid = 0;
    int tid = 0;
    int occurrence = 0;   ///< n-th (name,pid,tid) span on the path
    CostKind kind = CostKind::kOther;
    double current_us = 0.0;  ///< duration + stall lead-in
    double baseline_us = 0.0; ///< matched baseline cost (0 if none)
    double delta_us = 0.0;
    bool matched = false; ///< present on both critical paths
};

/** Differential analysis of two captures. */
struct TraceDiff {
    double baseline_span_us = 0.0; ///< baseline critical-path span
    double current_span_us = 0.0;  ///< current critical-path span
    double attributed_us = 0.0;    ///< signed sum of segment deltas
    double median_abs_delta_us = 0.0;
    std::vector<DiffSegment> segments; ///< |delta| descending

    double deltaUs() const
    {
        return current_span_us - baseline_span_us;
    }

    /**
     * Fraction of the end-to-end delta attributed to concrete
     * critical-path segments; 1 when there is no delta to explain.
     */
    double attributedFraction() const;
};

/**
 * Aligns @p baseline and @p current by span identity along their
 * critical paths and attributes the end-to-end delta per segment.
 * Segments only on the current path contribute their full cost;
 * segments only on the baseline path contribute negatively.
 */
TraceDiff diffTraces(const TraceAnalyzer& baseline,
                     const TraceAnalyzer& current);

/** Text report of the top @p max_segments segments by |delta|. */
void writeDiffReport(std::ostream& out, const TraceDiff& diff,
                     std::size_t max_segments = 24);

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_DIFF_H_
