#ifndef CCUBE_MODEL_ITERATION_MODEL_H_
#define CCUBE_MODEL_ITERATION_MODEL_H_

/**
 * @file
 * Closed-form end-to-end iteration model.
 *
 * Extends the paper's §II-C α-β communication models to the whole
 * training iteration: compute from the roofline model, communication
 * from Eqs. (2)/(6)/(7) (halved per tree for the double tree, striped
 * for the multi-ring), and chaining approximated by a linear
 * chunk-availability ramp between the gradient turnaround and the
 * collective completion. Cross-validated against the discrete-event
 * scheduler in tests — the system-level analog of Fig. 12(b).
 */

#include "dnn/compute_model.h"
#include "dnn/network.h"
#include "model/alpha_beta.h"

namespace ccube {
namespace model {

/** Machine description for the closed forms. */
struct IterationModelParams {
    AlphaBeta link;                ///< per-channel α-β
    dnn::GpuComputeParams gpu;     ///< compute roofline
    int num_gpus = 8;              ///< P
    int ring_count = 4;            ///< R's striping factor
    double bandwidth_scale = 1.0;  ///< low-bandwidth knob
};

/** Modes mirrored from core (kept independent to avoid a cycle). */
enum class ModeledMode {
    kBaseline,
    kOverlappedTree,
    kRing,
    kCCube,
};

/**
 * Closed-form predictor for communication and iteration time.
 */
class IterationModel
{
  public:
    explicit IterationModel(IterationModelParams params);

    /** AllReduce completion time for @p bytes under @p mode. */
    double commTime(ModeledMode mode, double bytes) const;

    /** Gradient turnaround for @p bytes under @p mode. */
    double turnaroundTime(ModeledMode mode, double bytes) const;

    /**
     * Steady-state iteration period. Chained (kCCube): backward, then
     * forward gated by the linear availability ramp
     *   ready(q) = turnaround + q·(completion − turnaround)
     * where q is the byte-prefix fraction of the gated layer.
     */
    double iterationTime(ModeledMode mode,
                         const dnn::NetworkModel& network,
                         int batch) const;

    /** (fwd+bwd) / iteration, the Fig. 13 normalization. */
    double normalizedPerf(ModeledMode mode,
                          const dnn::NetworkModel& network,
                          int batch) const;

  private:
    AlphaBeta scaledLink() const;

    IterationModelParams params_;
};

} // namespace model
} // namespace ccube

#endif // CCUBE_MODEL_ITERATION_MODEL_H_
