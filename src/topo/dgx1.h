#ifndef CCUBE_TOPO_DGX1_H_
#define CCUBE_TOPO_DGX1_H_

/**
 * @file
 * NVIDIA DGX-1 (V100) hybrid mesh-cube topology builder.
 *
 * The DGX-1 connects 8 V100 GPUs with 6 NVLinks each (25 GB/s per
 * direction per link). Pairs within each quad and across the cube are
 * connected, some with two parallel links — the extra connectivity
 * C-Cube exploits for its double-tree embedding (paper Fig. 10(c)).
 */

#include "topo/graph.h"

namespace ccube {
namespace topo {

/** Parameters of the DGX-1 interconnect model. */
struct Dgx1Params {
    int num_gpus = 8;                 ///< fixed by the platform
    double nvlink_bandwidth = 25e9;   ///< bytes/s per direction per link
    double nvlink_latency = 4.6e-6;   ///< α per transfer, seconds
    double pcie_bandwidth = 10e9;     ///< host-routed fallback, bytes/s
    double pcie_latency = 9.2e-6;     ///< higher latency through the host
    bool with_host = false;           ///< add host node + PCIe channels
};

/**
 * Builds the DGX-1 hybrid mesh-cube.
 *
 * GPU nodes are ids 0..7. When @p params.with_host is set, node 8 is
 * the host (CPU/PCIe switch complex) with a PCIe link to every GPU —
 * the slow path the paper's detour routes exist to avoid.
 *
 * Link multiplicity matches the V100 DGX-1: double links on pairs
 * (0,3) (0,4) (1,2) (1,5) (2,3) (4,7) (5,6) (6,7), single links on
 * (0,1) (0,2) (1,3) (2,6) (3,7) (4,5) (4,6) (5,7). Every GPU has
 * exactly 6 NVLinks.
 */
Graph makeDgx1(const Dgx1Params& params = {});

/** Host node id when built with_host (always num_gpus). */
inline constexpr NodeId kDgx1Host = 8;

/** Number of NVLinks per V100 GPU. */
inline constexpr int kDgx1LinksPerGpu = 6;

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_DGX1_H_
