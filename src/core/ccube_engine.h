#ifndef CCUBE_CORE_CCUBE_ENGINE_H_
#define CCUBE_CORE_CCUBE_ENGINE_H_

/**
 * @file
 * C-Cube engine: the library's top-level facade.
 *
 * Assembles the DGX-1 topology, the conflict-free double-tree
 * embedding with detour routes, the logical ring, and a workload
 * model, and evaluates the paper's five configurations. This is the
 * public API the examples and benchmarks drive.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/iteration_scheduler.h"
#include "dnn/catalog.h"
#include "topo/dgx1.h"
#include "topo/dgx2.h"

namespace ccube {
namespace core {

/** Engine construction parameters. */
struct EngineConfig {
    topo::Dgx1Params dgx1;       ///< machine model
    dnn::GpuComputeParams gpu;   ///< per-GPU compute model
    /** SM fraction consumed per hosted forwarding kernel (Fig. 15). */
    double detour_tax_per_kernel = 0.02;
    /** Logical rings striped by the R baseline (NCCL-style). */
    int ring_count = 4;
};

/**
 * A machine description the engine can run on: the physical graph
 * plus the logical embeddings the collectives use.
 */
struct MachineModel {
    topo::Graph graph;
    topo::DoubleTreeEmbedding double_tree;
    std::vector<topo::RingEmbedding> rings;
    int num_gpus = 0;
};

/** The paper's platform: DGX-1 with the Fig. 10 embedding and
 *  NCCL-style striped rings. */
MachineModel makeDgx1Machine(const topo::Dgx1Params& params = {},
                             int ring_count = 4);

/**
 * The future-work platform: DGX-2/NVSwitch with 3-edge-colored
 * plane-private trees; the ring baseline is a single switch-routed
 * ring (striping across planes is the trees' trick here).
 */
MachineModel makeDgx2Machine(const topo::Dgx2Params& params = {});

/**
 * One machine + one workload, ready to evaluate any mode.
 */
class CCubeEngine
{
  public:
    /** Builds the DGX-1 and binds @p network as the workload. */
    CCubeEngine(dnn::NetworkModel network, EngineConfig config = {});

    /** Runs on a custom machine (see makeDgx1Machine / ...Dgx2...). */
    CCubeEngine(dnn::NetworkModel network, MachineModel machine,
                EngineConfig config = {});

    /** Steady-state iteration result for @p mode. */
    IterationResult evaluate(Mode mode,
                             const IterationConfig& config) const;

    /** Fig. 15: per-GPU normalized performance under @p mode. */
    std::vector<double>
    perGpuNormalizedPerf(Mode mode, const IterationConfig& config) const;

    /** Same, evaluating the GPUs through the sweep pool. */
    std::vector<double>
    perGpuNormalizedPerf(Mode mode, const IterationConfig& config,
                         const sweep::Options& pool) const;

    /** Communication-only schedule for @p bytes (Fig. 12). */
    simnet::ScheduleResult commOnly(Mode mode, double bytes,
                                    double bandwidth_scale = 1.0) const;

    /** The DGX-1 graph in use. */
    const topo::Graph& graph() const { return *graph_; }

    /** The double-tree embedding in use. */
    const topo::DoubleTreeEmbedding& doubleTree() const;

    /** The logical rings in use. */
    const std::vector<topo::RingEmbedding>& rings() const;

    /** The underlying scheduler (advanced use). */
    const IterationScheduler& scheduler() const { return *scheduler_; }

    /** The workload. */
    const dnn::NetworkModel& network() const
    {
        return scheduler_->network();
    }

  private:
    EngineConfig config_;
    std::unique_ptr<topo::Graph> graph_;
    std::unique_ptr<IterationScheduler> scheduler_;
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_CCUBE_ENGINE_H_
