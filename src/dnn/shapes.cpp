#include "dnn/shapes.h"

#include "util/logging.h"

namespace ccube {
namespace dnn {

int
ConvShape::outSize() const
{
    CCUBE_CHECK(stride >= 1, "conv stride must be positive");
    const int numerator = in_size + 2 * padding - kernel;
    CCUBE_CHECK(numerator >= 0, "conv kernel larger than padded input");
    return numerator / stride + 1;
}

std::int64_t
ConvShape::params() const
{
    return static_cast<std::int64_t>(kernel) * kernel * in_channels *
               out_channels +
           out_channels;
}

std::int64_t
ConvShape::flopsPerSample() const
{
    const std::int64_t out = outSize();
    return 2 * out * out * static_cast<std::int64_t>(kernel) * kernel *
           in_channels * out_channels;
}

std::int64_t
ConvShape::outputElemsPerSample() const
{
    const std::int64_t out = outSize();
    return out * out * out_channels;
}

std::int64_t
FcShape::params() const
{
    return static_cast<std::int64_t>(in_features) * out_features +
           out_features;
}

std::int64_t
FcShape::flopsPerSample() const
{
    return 2 * static_cast<std::int64_t>(in_features) * out_features;
}

std::int64_t
FcShape::outputElemsPerSample() const
{
    return out_features;
}

int
PoolShape::outSize() const
{
    CCUBE_CHECK(stride >= 1, "pool stride must be positive");
    const int numerator = in_size - kernel;
    CCUBE_CHECK(numerator >= 0, "pool kernel larger than input");
    return numerator / stride + 1;
}

std::int64_t
PoolShape::flopsPerSample() const
{
    const std::int64_t out = outSize();
    return out * out * channels * static_cast<std::int64_t>(kernel) *
           kernel;
}

std::int64_t
PoolShape::outputElemsPerSample() const
{
    const std::int64_t out = outSize();
    return out * out * channels;
}

std::int64_t
EmbeddingShape::params() const
{
    return rows * dim;
}

std::int64_t
EmbeddingShape::flopsPerSample() const
{
    // Lookups are copies; charge one FLOP per copied element so the
    // roofline's memory term dominates.
    return static_cast<std::int64_t>(lookups_per_sample) * dim;
}

std::int64_t
EmbeddingShape::outputElemsPerSample() const
{
    return static_cast<std::int64_t>(lookups_per_sample) * dim;
}

} // namespace dnn
} // namespace ccube
