#ifndef CCUBE_CCL_MAILBOX_H_
#define CCUBE_CCL_MAILBOX_H_

/**
 * @file
 * P2P chunk mailbox: the receive-buffer abstraction between ranks.
 *
 * Models the per-channel receive buffers that the paper's persistent
 * kernels manage with device-side semaphores: a bounded single-
 * producer / single-consumer ring of float chunks. Flow control uses
 * exactly the post/wait protocol of Fig. 11.
 *
 * Fast path: slots are fixed-capacity buffers that are allocated once
 * (first use, or via reserve()) and then reused forever — a send never
 * resizes, and every consume variant reads in place out of the slot
 * buffer. consume() exposes the slot to the caller directly, so
 * forwarders move chunks downstream without a staging copy, mirroring
 * the LL-style "operate on the receive buffer" protocols of real NCCL.
 *
 * Two calling conventions share one ring:
 *
 *  - Blocking (thread-per-rank): send(), the recv variants and
 *    consume() spin in the Fig. 11 post/wait protocol, one dedicated
 *    thread per rank.
 *  - Non-blocking (state-machine runtime): a resumable rank task calls
 *    noteOpBegin() once per logical op (fault injection + telemetry,
 *    exactly like the blocking prologue), then retries trySend()/
 *    tryRecv*() and *parks* on arrivalSemaphore()/freeSlotSemaphore()
 *    when the ring says not-yet. tryPeek()/releaseFront() let a
 *    forwarder hold the front slot zero-copy while it waits for
 *    downstream capacity.
 *
 * Protocols (ccl/protocol.h): every transfer op takes a Protocol.
 * kSimple (the default) is the fenced bulk path above. kLL switches
 * the op onto a parallel low-latency ring where each 32-bit payload
 * word rides in a 64-bit line next to an inline flag word carrying
 * the message sequence number: the receiver spins on the flags
 * directly and no semaphore is posted or waited on the data path.
 * The two rings share the fault hooks, trace sequence numbers and
 * delivered() count, so watchdog blame and post/wait span pairing
 * behave identically on both paths — but an LL message can only be
 * received by an LL op (the protocol is a property of the collective,
 * not negotiated per message). LL ops never touch arrival/free-slot
 * semaphores, so state-machine tasks poll instead of parking.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ccl/protocol.h"
#include "ccl/sync_primitives.h"

namespace ccube {
namespace ccl {

/**
 * Bounded SPSC queue of float chunks with an integer tag.
 */
class Mailbox
{
  public:
    /** In-place consumer: sees the arrived chunk and its tag. */
    using Visitor = std::function<void(std::span<const float> data,
                                       int tag)>;

    /** Creates a mailbox with @p slots receive buffers. */
    explicit Mailbox(int slots);

    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;

    /**
     * Preallocates every slot buffer to hold @p elems floats, so the
     * steady state never allocates (slot capacity only ever grows).
     */
    void reserve(std::size_t elems);

    /**
     * Copies @p data into the next free slot (blocking while all
     * receive buffers are occupied) and posts its arrival. Reuses the
     * slot's existing capacity; allocates only when the chunk is
     * larger than anything the slot has carried before.
     */
    void send(std::span<const float> data, int tag = 0,
              Protocol proto = Protocol::kSimple);

    /**
     * Blocks until a chunk arrives, copies it into @p out (resized to
     * match), frees the receive buffer, and returns the tag. The slot
     * buffer is retained for reuse.
     */
    int recv(std::vector<float>& out,
             Protocol proto = Protocol::kSimple);

    /**
     * Receives directly into @p out via a single vectorized copy; the
     * incoming chunk must have exactly out.size() elements.
     */
    int recvInto(std::span<float> out,
                 Protocol proto = Protocol::kSimple);

    /**
     * Receives and element-wise accumulates into @p out (the reduction
     * step of AllReduce) via a single vectorized accumulate loop over
     * the slot buffer; sizes must match. Returns the tag. On the LL
     * path the accumulation happens per element in ascending index
     * order as each flag arrives — the same per-element float adds in
     * the same order as the Simple path, so results stay
     * byte-identical across protocols.
     */
    int recvReduce(std::span<float> out,
                   Protocol proto = Protocol::kSimple);

    /**
     * Blocks until a chunk arrives and runs @p visit on the slot
     * buffer in place (zero staging copies), then frees the receive
     * buffer. The span is valid only during the visit (LL: the chunk
     * is decoded into an internal staging buffer first). Returns the
     * tag.
     */
    int consume(const Visitor& visit,
                Protocol proto = Protocol::kSimple);

    // ---- non-blocking surface (state-machine runtime) ----

    /** Which side of the ring a logical op touches. */
    enum class OpKind { kSend, kRecv };

    /**
     * The blocking prologue, split out for the non-blocking path:
     * runs the fault injector hook (may throw RankKilled, or block a
     * worker in an injected stall) and counts the op in the per-rank
     * telemetry. A state-machine task calls this exactly once per
     * *logical* op — before its first try* attempt — so injector
     * at-op indices line up with thread-per-rank runs.
     */
    void noteOpBegin(OpKind kind);

    /**
     * Non-blocking send(): returns false (no side effects) while all
     * receive buffers are occupied. On success the chunk is copied,
     * its arrival posted, and the post sequence advanced — identical
     * to send() minus the blocking prologue (see noteOpBegin).
     */
    bool trySend(std::span<const float> data, int tag = 0,
                 Protocol proto = Protocol::kSimple);

    /**
     * Non-blocking recvInto(): returns false while no chunk has
     * arrived; on success behaves exactly like recvInto(), storing
     * the tag in @p tag when non-null. The LL variant returns false
     * while the message header flag has not landed; once it has, the
     * producer is committed to the whole message, so the remaining
     * per-word flag spins are bounded.
     */
    bool tryRecvInto(std::span<float> out, int* tag = nullptr,
                     Protocol proto = Protocol::kSimple);

    /** Non-blocking recvReduce(); see tryRecvInto(). */
    bool tryRecvReduce(std::span<float> out, int* tag = nullptr,
                       Protocol proto = Protocol::kSimple);

    /**
     * Non-blocking zero-copy front access for forwarders: claims the
     * front chunk (without freeing its receive buffer) and exposes it
     * in place. Returns false while no chunk has arrived. Repeated
     * calls before releaseFront() return the same chunk. The span is
     * valid until releaseFront(). (LL: the chunk is decoded once into
     * an internal staging buffer; the slot stays claimed until
     * releaseFront().)
     */
    bool tryPeek(std::span<const float>* data, int* tag = nullptr,
                 Protocol proto = Protocol::kSimple);

    /** Frees the receive buffer claimed by tryPeek(). */
    void releaseFront();

    /** Arrival semaphore (consumer side parks here on empty ring). */
    BoundedSemaphore& arrivalSemaphore() { return full_; }

    /** Free-slot semaphore (producer side parks here on full ring). */
    BoundedSemaphore& freeSlotSemaphore() { return empty_; }

    /** Trace label ("mb src->dst/fN"), for park blame reporting. */
    const std::string& traceLabel() const { return trace_label_; }

    /**
     * Names the producer and consumer ranks (set by the Communicator
     * at creation, like the trace label). These are the wait-for
     * graph edges: a consumer blocked here waits on srcRank(), a
     * producer blocked on a full ring waits on dstRank(). -1 when the
     * mailbox lives outside a communicator.
     */
    void setEndpoints(int src, int dst);

    /** Producer rank; -1 outside a communicator. */
    int srcRank() const { return src_; }

    /** Consumer rank; -1 outside a communicator. */
    int dstRank() const { return dst_; }

    // ---- introspection ----

    /** Number of receive buffers. */
    int slots() const { return static_cast<int>(ring_.size()); }

    /** Total chunks delivered (for telemetry/tests). */
    std::int64_t delivered() const { return delivered_.value(); }

    /**
     * Names this mailbox for trace spans (e.g. "mb 0->1/f2", set by
     * the Communicator at creation). Post/wait spans then carry the
     * label; an unlabeled mailbox still traces as "mb ?".
     */
    void setTraceLabel(std::string label);

    /**
     * Flow id this mailbox carries (Communicator::Flow), reported in
     * CollectiveError when a rank is caught blocked here. -1 when the
     * mailbox lives outside a communicator.
     */
    void setFlowId(int flow);

    int flowId() const { return flow_; }

    /**
     * Discards any undelivered chunks and reinitializes the flow-
     * control state, as if freshly constructed (slot capacity is
     * kept). Only valid while no thread is using the mailbox — the
     * Communicator calls this from clearAbort(), after an aborted
     * collective has fully unwound, so the next collective does not
     * consume stale in-flight messages.
     */
    void reset();

  private:
    struct Slot {
        std::vector<float> data; ///< capacity persists across reuse
        std::size_t size = 0;    ///< valid prefix of data
        int tag = 0;
    };

    /**
     * One LL receive buffer. Every 64-bit line packs a 32-bit value
     * in the low half and a 32-bit arrival flag (the message sequence
     * number + 1, so a freshly zeroed line never matches) in the high
     * half — the NCCL LL wire format. header carries the element
     * count, tag_line the tag, lines[i] payload word i. The producer
     * publishes header (release) after allocating lines and before
     * the payload words, so the consumer can stream: it spins on the
     * header flag, learns the size, then spins per line in ascending
     * index order while the producer is still writing the tail.
     */
    struct LLSlot {
        std::atomic<std::uint64_t> header{0};
        std::atomic<std::uint64_t> tag_line{0};
        std::unique_ptr<std::atomic<std::uint64_t>[]> lines;
        std::size_t capacity = 0; ///< allocated lines
    };

    /** Runs @p consume on the arrived slot, then releases it. */
    template <typename Fn>
    int consumeSlot(Fn&& consume);

    /** Shared tail of every successful receive: advance the consumer
     *  cursor, free the slot, count the delivery. */
    void finishConsume();

    // ---- LL lane ----

    /** Arrival flag for LL message @p seq (never 0 on first use). */
    static std::uint32_t llFlag(std::int64_t seq)
    {
        return static_cast<std::uint32_t>(seq) + 1u;
    }

    /** True while the producer's next LL slot is free to overwrite. */
    bool llSlotFree() const
    {
        return ll_post_seq_ -
                   ll_consumed_.load(std::memory_order_acquire) <
               static_cast<std::int64_t>(ring_.size());
    }

    /** Grows (if needed) and publishes the next LL slot. */
    void llWriteSlot(std::span<const float> data, int tag);

    /** Blocking LL send body (prologue already run by caller). */
    void llSend(std::span<const float> data, int tag);

    bool llTrySend(std::span<const float> data, int tag);

    struct LLHeader {
        std::size_t size = 0;
        int tag = 0;
    };

    /**
     * Blocking LL receive prologue: fault hook, telemetry, trace
     * span, then spins for the front message's header flag. Returns
     * its size and tag; the payload is still (possibly) in flight —
     * stream it with llDecodeBody, then llFinishConsume.
     */
    LLHeader llWaitHeader();

    /** Non-blocking header check; traces and fills @p out on hit. */
    bool llPeekHeader(LLHeader* out);

    /**
     * Streams the front LL message's payload words in ascending index
     * order, spinning per line (bounded once the header has landed),
     * copying or accumulating into @p dst. Per-element adds in index
     * order keep reductions byte-identical to the Simple path.
     */
    void llDecodeBody(std::size_t size, float* dst, bool reduce);

    /** Frees the consumer's LL slot and counts the delivery. */
    void llFinishConsume();

    std::vector<Slot> ring_;
    BoundedSemaphore full_;
    BoundedSemaphore empty_;
    std::size_t head_ = 0; ///< producer cursor (producer thread only)
    std::size_t tail_ = 0; ///< consumer cursor (consumer thread only)
    bool front_claimed_ = false; ///< tryPeek holds the front slot
    // Delivery sequence numbers stamped on post/wait trace spans so the
    // analyzer can pair them into cross-rank dependency edges. SPSC
    // FIFO order means wait #n always consumes post #n. Incremented
    // unconditionally (one add per op) so the pairing stays aligned
    // even when tracing is toggled mid-stream.
    std::int64_t post_seq_ = 0; ///< producer thread only
    std::int64_t wait_seq_ = 0; ///< consumer thread only
    // LL ring state. The lane keeps its own SPSC cursors (so Simple
    // and LL collectives interleaved on one mailbox cannot desync the
    // flag sequence) while still bumping post_seq_/wait_seq_ above for
    // trace-span pairing. ll_consumed_ is the only cross-thread word:
    // the consumer releases it past each finished message and the
    // producer acquires it for flow control (slot reuse safety).
    std::unique_ptr<LLSlot[]> ll_ring_;
    std::int64_t ll_post_seq_ = 0; ///< producer thread only
    std::int64_t ll_wait_seq_ = 0; ///< consumer thread only
    std::atomic<std::int64_t> ll_consumed_{0};
    Slot ll_scratch_;       ///< consumer staging (consume/tryPeek)
    bool ll_front_ = false; ///< tryPeek front came from the LL lane
    CheckableCounter delivered_;
    std::string trace_label_ = "mb ?";
    int flow_ = -1;
    int src_ = -1;
    int dst_ = -1;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_MAILBOX_H_
