#include "obs/analyze.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace ccube {
namespace obs {

namespace {

/** Tolerance for matching DES hand-off times (µs). Simulated stamps
 *  are exact doubles scaled by 1e6, so only rounding noise remains. */
constexpr double kHandoffEpsUs = 0.05;

/** Numeric argument of @p event, or @p fallback. */
double
argOf(const TraceEvent& event, const char* key, double fallback = 0.0)
{
    for (const auto& [name, value] : event.args) {
        if (name == key)
            return value;
    }
    return fallback;
}

/** Request time of a span: channel spans subtract their queue wait. */
double
readyTimeUs(const TraceEvent& event)
{
    if (event.cat == "simnet.channel")
        return event.ts_us - argOf(event, "queue_wait_us");
    return event.ts_us;
}

double
endUs(const TraceEvent& event)
{
    return event.ts_us + event.dur_us;
}

} // namespace

// --- ChannelTimeline -------------------------------------------------

double
ChannelTimeline::firstBusyUs() const
{
    return busy.empty() ? 0.0 : busy.front().start_us;
}

double
ChannelTimeline::lastBusyUs() const
{
    return busy.empty() ? 0.0 : busy.back().end_us;
}

double
ChannelTimeline::busyWithinUs(const TimeInterval& window) const
{
    double total = 0.0;
    for (const TimeInterval& interval : busy) {
        const double lo = std::max(interval.start_us, window.start_us);
        const double hi = std::min(interval.end_us, window.end_us);
        if (hi > lo)
            total += hi - lo;
    }
    return total;
}

double
ChannelTimeline::utilization(const TimeInterval& window) const
{
    const double span = window.durationUs();
    return span > 0.0 ? busyWithinUs(window) / span : 0.0;
}

double
ChannelTimeline::idleFraction(const TimeInterval& window) const
{
    const double span = window.durationUs();
    return span > 0.0 ? 1.0 - busyWithinUs(window) / span : 0.0;
}

std::vector<TimeInterval>
ChannelTimeline::idleIntervals(const TimeInterval& window,
                               double min_gap_us) const
{
    std::vector<TimeInterval> gaps;
    double cursor = window.start_us;
    for (const TimeInterval& interval : busy) {
        if (interval.end_us <= window.start_us)
            continue;
        if (interval.start_us >= window.end_us)
            break;
        const double lo = std::max(interval.start_us, window.start_us);
        if (lo - cursor > min_gap_us)
            gaps.push_back({cursor, lo});
        cursor = std::max(cursor, std::min(interval.end_us,
                                           window.end_us));
    }
    if (window.end_us - cursor > min_gap_us)
        gaps.push_back({cursor, window.end_us});
    return gaps;
}

// --- AlphaBetaFit ----------------------------------------------------

double
AlphaBetaFit::alphaRelError(const model::AlphaBeta& reference) const
{
    return reference.alpha != 0.0
               ? std::fabs(alpha_s - reference.alpha) /
                     std::fabs(reference.alpha)
               : std::fabs(alpha_s);
}

double
AlphaBetaFit::betaRelError(const model::AlphaBeta& reference) const
{
    return reference.beta != 0.0
               ? std::fabs(beta_s_per_byte - reference.beta) /
                     std::fabs(reference.beta)
               : std::fabs(beta_s_per_byte);
}

// --- classification --------------------------------------------------

CostKind
classifySpan(const TraceEvent& event)
{
    if (event.cat == "simnet.channel")
        return CostKind::kSerialization;
    if (event.cat == "ccl.mailbox" || event.cat == "ccl.sync")
        return CostKind::kSyncStall;
    if (event.name.find("reduce") != std::string::npos)
        return CostKind::kReduction;
    return CostKind::kOther;
}

const char*
costKindName(CostKind kind)
{
    switch (kind) {
      case CostKind::kStartup: return "startup";
      case CostKind::kSerialization: return "serialization";
      case CostKind::kSyncStall: return "sync_stall";
      case CostKind::kReduction: return "reduction";
      case CostKind::kOther: return "other";
    }
    return "?";
}

// --- TraceAnalyzer ---------------------------------------------------

TraceAnalyzer::TraceAnalyzer(std::vector<TraceEvent> events)
    : events_(std::move(events))
{
    std::map<int, ChannelTimeline> by_channel;
    double window_lo = std::numeric_limits<double>::infinity();
    double window_hi = -std::numeric_limits<double>::infinity();

    for (const TraceEvent& event : events_) {
        if (event.phase != 'X' || event.cat != "simnet.channel")
            continue;
        TransferSample sample;
        sample.channel = event.tid;
        sample.ts_us = event.ts_us;
        sample.dur_us = event.dur_us;
        sample.bytes = argOf(event, "bytes");
        sample.queue_wait_us = argOf(event, "queue_wait_us");
        transfers_.push_back(sample);

        ChannelTimeline& timeline = by_channel[event.tid];
        if (timeline.channel < 0) {
            timeline.channel = event.tid;
            timeline.pid = event.pid;
            timeline.name = event.name;
        }
        timeline.busy.push_back({event.ts_us, endUs(event)});
        timeline.bytes += sample.bytes;
        ++timeline.transfers;

        window_lo = std::min(window_lo, readyTimeUs(event));
        window_hi = std::max(window_hi, endUs(event));
    }

    for (auto& [id, timeline] : by_channel) {
        std::sort(timeline.busy.begin(), timeline.busy.end(),
                  [](const TimeInterval& a, const TimeInterval& b) {
                      return a.start_us < b.start_us;
                  });
        // Merge overlapping or touching intervals (FIFO channels never
        // overlap within one run; epoch-offset runs never touch).
        std::vector<TimeInterval> merged;
        for (const TimeInterval& interval : timeline.busy) {
            if (!merged.empty() &&
                interval.start_us <= merged.back().end_us) {
                merged.back().end_us =
                    std::max(merged.back().end_us, interval.end_us);
            } else {
                merged.push_back(interval);
            }
        }
        timeline.busy = std::move(merged);
        timeline.busy_us = 0.0;
        for (const TimeInterval& interval : timeline.busy)
            timeline.busy_us += interval.durationUs();
        channels_.push_back(std::move(timeline));
    }

    if (window_lo < window_hi)
        channel_window_ = {window_lo, window_hi};
}

TraceAnalyzer
TraceAnalyzer::fromRecorder(const TraceRecorder& recorder)
{
    return TraceAnalyzer(recorder.snapshot());
}

const ChannelTimeline*
TraceAnalyzer::channelById(int channel) const
{
    const auto it = std::lower_bound(
        channels_.begin(), channels_.end(), channel,
        [](const ChannelTimeline& timeline, int id) {
            return timeline.channel < id;
        });
    if (it == channels_.end() || it->channel != channel)
        return nullptr;
    return &*it;
}

double
TraceAnalyzer::idleFraction(const std::vector<int>& channel_ids,
                            const TimeInterval& window) const
{
    const double span = window.durationUs();
    if (span <= 0.0)
        return 0.0;
    double busy = 0.0;
    int counted = 0;
    for (int id : channel_ids) {
        const ChannelTimeline* timeline = channelById(id);
        if (!timeline)
            continue; // carried no traffic: not part of the schedule
        busy += timeline->busyWithinUs(window);
        ++counted;
    }
    if (counted == 0)
        return 0.0;
    return 1.0 - busy / (static_cast<double>(counted) * span);
}

double
TraceAnalyzer::idleFraction(const std::vector<int>& channel_ids) const
{
    return idleFraction(channel_ids, channel_window_);
}

AlphaBetaFit
TraceAnalyzer::fitAlphaBeta() const
{
    AlphaBetaFit fit;
    fit.samples = static_cast<int>(transfers_.size());
    if (transfers_.size() < 2)
        return fit;

    double mean_x = 0.0, mean_y = 0.0;
    for (const TransferSample& sample : transfers_) {
        mean_x += sample.bytes;
        mean_y += sample.dur_us * 1e-6;
    }
    const double n = static_cast<double>(transfers_.size());
    mean_x /= n;
    mean_y /= n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (const TransferSample& sample : transfers_) {
        const double dx = sample.bytes - mean_x;
        const double dy = sample.dur_us * 1e-6 - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if (sxx <= 0.0)
        return fit; // a single transfer size cannot anchor the line

    fit.valid = true;
    fit.beta_s_per_byte = sxy / sxx;
    fit.alpha_s = mean_y - fit.beta_s_per_byte * mean_x;
    fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
    return fit;
}

CriticalPath
TraceAnalyzer::criticalPath(double alpha_us) const
{
    CriticalPath path;

    // --- Node selection: leaf 'X' spans (containers excluded). ------
    // Flow spans duplicate their per-hop channel spans end to end, so
    // they are skipped outright.
    std::vector<const TraceEvent*> nodes;
    for (const TraceEvent& event : events_) {
        if (event.phase != 'X' || event.cat == "simnet.flow")
            continue;
        nodes.push_back(&event);
    }
    if (nodes.empty())
        return path;

    // Containers: spans that strictly enclose another span on their
    // own (pid, tid) track — phase spans around mailbox spans, say.
    // The enclosed leaves carry the time; the container is context.
    std::map<std::pair<int, int>, std::vector<std::size_t>> tracks;
    for (std::size_t i = 0; i < nodes.size(); ++i)
        tracks[{nodes[i]->pid, nodes[i]->tid}].push_back(i);
    std::vector<bool> container(nodes.size(), false);
    constexpr double kNestEps = 1e-6;
    for (auto& [track, members] : tracks) {
        std::sort(members.begin(), members.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (nodes[a]->ts_us != nodes[b]->ts_us)
                          return nodes[a]->ts_us < nodes[b]->ts_us;
                      return endUs(*nodes[a]) > endUs(*nodes[b]);
                  });
        std::vector<std::size_t> stack;
        for (std::size_t index : members) {
            while (!stack.empty() &&
                   endUs(*nodes[stack.back()]) <=
                       nodes[index]->ts_us + kNestEps)
                stack.pop_back();
            if (!stack.empty() &&
                endUs(*nodes[stack.back()]) >=
                    endUs(*nodes[index]) - kNestEps)
                container[stack.back()] = true;
            stack.push_back(index);
        }
    }

    std::vector<std::size_t> keep;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!container[i])
            keep.push_back(i);
    }

    // --- Edge construction (indices into `keep`). -------------------
    const auto node = [&](std::size_t k) -> const TraceEvent& {
        return *nodes[keep[k]];
    };
    std::vector<std::vector<std::size_t>> preds(keep.size());
    const auto addEdge = [&](std::size_t from, std::size_t to) {
        if (from != to && endUs(node(from)) <= endUs(node(to)))
            preds[to].push_back(from);
    };

    // 1. FIFO order per (pid, tid) track.
    std::map<std::pair<int, int>, std::vector<std::size_t>> leaf_tracks;
    for (std::size_t k = 0; k < keep.size(); ++k)
        leaf_tracks[{node(k).pid, node(k).tid}].push_back(k);
    for (auto& [track, members] : leaf_tracks) {
        std::sort(members.begin(), members.end(),
                  [&](std::size_t a, std::size_t b) {
                      return node(a).ts_us < node(b).ts_us;
                  });
        for (std::size_t i = 1; i < members.size(); ++i)
            addEdge(members[i - 1], members[i]);
    }

    // 2. DES hand-offs: a span whose request time equals another
    //    span's completion depends on it (chained transfers).
    std::vector<std::pair<double, std::size_t>> ends;
    ends.reserve(keep.size());
    for (std::size_t k = 0; k < keep.size(); ++k)
        ends.emplace_back(endUs(node(k)), k);
    std::sort(ends.begin(), ends.end());
    for (std::size_t k = 0; k < keep.size(); ++k) {
        const double ready = readyTimeUs(node(k));
        auto lo = std::lower_bound(
            ends.begin(), ends.end(),
            std::make_pair(ready - kHandoffEpsUs, std::size_t{0}));
        for (auto it = lo;
             it != ends.end() && it->first <= ready + kHandoffEpsUs;
             ++it)
            addEdge(it->second, k);
    }

    // 3. Mailbox post → wait, matched by label + sequence number.
    std::map<std::pair<std::string, std::int64_t>, std::size_t> posts;
    for (std::size_t k = 0; k < keep.size(); ++k) {
        const TraceEvent& event = node(k);
        if (event.cat != "ccl.mailbox" ||
            event.name.rfind("post ", 0) != 0)
            continue;
        const auto seq =
            static_cast<std::int64_t>(argOf(event, "seq", -1.0));
        if (seq >= 0)
            posts[{event.name.substr(5), seq}] = k;
    }
    for (std::size_t k = 0; k < keep.size(); ++k) {
        const TraceEvent& event = node(k);
        if (event.cat != "ccl.mailbox" ||
            event.name.rfind("wait ", 0) != 0)
            continue;
        const auto seq =
            static_cast<std::int64_t>(argOf(event, "seq", -1.0));
        if (seq < 0)
            continue;
        const auto it = posts.find({event.name.substr(5), seq});
        if (it != posts.end())
            addEdge(it->second, k);
    }

    // --- Longest busy chain (DP in completion order). ---------------
    std::vector<std::size_t> order(keep.size());
    for (std::size_t k = 0; k < keep.size(); ++k)
        order[k] = k;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (endUs(node(a)) != endUs(node(b)))
                      return endUs(node(a)) < endUs(node(b));
                  return node(a).ts_us < node(b).ts_us;
              });
    std::vector<std::size_t> position(keep.size());
    for (std::size_t p = 0; p < order.size(); ++p)
        position[order[p]] = p;

    std::vector<double> best(keep.size(), 0.0);
    std::vector<std::ptrdiff_t> came_from(keep.size(), -1);
    std::size_t best_tail = 0;
    for (std::size_t p = 0; p < order.size(); ++p) {
        const std::size_t k = order[p];
        double incoming = 0.0;
        std::ptrdiff_t chosen = -1;
        for (std::size_t pred : preds[k]) {
            if (position[pred] >= p)
                continue; // tie on completion time: keep it acyclic
            if (best[pred] > incoming) {
                incoming = best[pred];
                chosen = static_cast<std::ptrdiff_t>(pred);
            }
        }
        best[k] = incoming + node(k).dur_us;
        came_from[k] = chosen;
        if (best[k] > best[best_tail])
            best_tail = k;
    }

    std::vector<std::size_t> chain;
    for (std::ptrdiff_t k = static_cast<std::ptrdiff_t>(best_tail);
         k >= 0; k = came_from[static_cast<std::size_t>(k)])
        chain.push_back(static_cast<std::size_t>(k));
    std::reverse(chain.begin(), chain.end());

    // --- Attribution. -----------------------------------------------
    if (alpha_us < 0.0) {
        const AlphaBetaFit fit = fitAlphaBeta();
        alpha_us = fit.valid ? fit.alpha_s * 1e6 : 0.0;
    }
    alpha_us = std::max(alpha_us, 0.0);

    // Stall accounting uses wall-clock gaps between consecutive path
    // spans: a queue wait that overlaps the predecessor's occupancy is
    // NOT a critical-path stall (the channel was busy doing critical
    // work), so queue_wait args deliberately don't feed this sum.
    double previous_end = node(chain.front()).ts_us;
    for (std::size_t k : chain) {
        const TraceEvent& event = node(k);
        PathStep step;
        step.span = event;
        step.kind = classifySpan(event);
        step.stall_before_us =
            std::max(0.0, event.ts_us - previous_end);
        path.breakdown.sync_stall_us += step.stall_before_us;
        switch (step.kind) {
          case CostKind::kSerialization: {
            const double startup = std::min(alpha_us, event.dur_us);
            path.breakdown.startup_us += startup;
            path.breakdown.serialization_us += event.dur_us - startup;
            break;
          }
          case CostKind::kSyncStall:
            path.breakdown.sync_stall_us += event.dur_us;
            break;
          case CostKind::kReduction:
            path.breakdown.reduction_us += event.dur_us;
            break;
          default:
            path.breakdown.other_us += event.dur_us;
            break;
        }
        path.busy_us += event.dur_us;
        previous_end = endUs(event);
        path.steps.push_back(std::move(step));
    }
    path.start_us = readyTimeUs(node(chain.front()));
    path.end_us = endUs(node(chain.back()));
    return path;
}

} // namespace obs
} // namespace ccube
