# Empty compiler generated dependencies file for fig17_resnet_layers.
# This may be replaced when dependencies are built.
