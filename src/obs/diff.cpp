#include "obs/diff.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>

#include "obs/metrics.h"
#include "util/stats.h"

namespace ccube {
namespace obs {

namespace {

const char*
causeKindName(RootCause::Kind kind)
{
    switch (kind) {
    case RootCause::Kind::kChannelFail:
        return "channel-fail";
    case RootCause::Kind::kChannelDegrade:
        return "channel-degrade";
    case RootCause::Kind::kRankFault:
        return "rank-fault";
    case RootCause::Kind::kWatchdog:
        return "watchdog";
    case RootCause::Kind::kStraggler:
        return "straggler";
    }
    return "?";
}

/** "GPU3->GPU4#10" → src 3, dst 4; false when unparsable. */
bool
parseChannelEndpoints(const std::string& name, int* src, int* dst)
{
    const std::size_t arrow = name.find("->");
    if (arrow == std::string::npos)
        return false;
    std::size_t hash = name.find('#', arrow);
    if (hash == std::string::npos)
        hash = name.size();
    // Trailing digits of each endpoint label ("GPU12" → 12).
    auto trailing = [](const std::string& label) {
        std::size_t digits = 0;
        while (digits < label.size() &&
               std::isdigit(static_cast<unsigned char>(
                   label[label.size() - 1 - digits])) != 0)
            ++digits;
        if (digits == 0)
            return -1;
        return std::atoi(label.c_str() + (label.size() - digits));
    };
    const int a = trailing(name.substr(0, arrow));
    const int b = trailing(name.substr(arrow + 2, hash - arrow - 2));
    if (a < 0 || b < 0)
        return false;
    *src = a;
    *dst = b;
    return true;
}

/** Pretty label for a channel: endpoints when known, id otherwise. */
std::string
channelLabel(const TraceAnalyzer& analyzer, int channel, int fallback_pid)
{
    if (const ChannelTimeline* timeline = analyzer.channelById(channel))
        return timeline->name;
    std::ostringstream out;
    if (fallback_pid >= 100 && fallback_pid < 1000)
        out << "GPU" << fallback_pid - 100 << "->?";
    out << "#" << channel;
    return out.str();
}

double
eventArg(const TraceEvent& event, const std::string& key,
         double fallback)
{
    for (const auto& arg : event.args) {
        if (arg.first == key)
            return arg.second;
    }
    return fallback;
}

std::string
formatMs(double t_us)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(3) << t_us / 1000.0 << "ms";
    return out.str();
}

/** pid → human name ("node 3", "rank 2", "core"). */
std::string
pidLabel(int pid)
{
    std::ostringstream out;
    if (pid >= 1000)
        out << "rank " << pid - 1000;
    else if (pid >= 100)
        out << "node " << pid - 100;
    else
        out << "pid " << pid;
    return out.str();
}

} // namespace

RootCauseReport
analyzeRootCause(const TraceAnalyzer& analyzer,
                 const MetricRegistry* registry)
{
    RootCauseReport report;

    // --- Fault-instant scan -------------------------------------------
    struct ChannelFaults {
        int pid = -1;
        int src = -1; ///< from fault.channel_fail args, when present
        int dst = -1;
        double fail_us = -1.0;
        double restore_us = -1.0;
        double degrade_us = -1.0;
        double degrade_factor = 1.0;
        int drops = 0;
        double first_drop_us = -1.0;
    };
    std::map<int, ChannelFaults> channel_faults;
    struct RankFault {
        std::string name;
        int rank = -1;
        double t_us = 0.0;
        int terminus = -1; ///< wait-for chain terminus (aborts only)
        int chain_len = 0;
    };
    std::vector<RankFault> rank_faults;
    std::vector<RankFault> aborts;

    for (const TraceEvent& event : analyzer.events()) {
        if (event.phase != 'i')
            continue;
        if (event.cat == "simnet.fault") {
            ChannelFaults& faults = channel_faults[event.tid];
            faults.pid = event.pid;
            if (event.name == "fault.channel_fail") {
                if (faults.fail_us < 0.0)
                    faults.fail_us = event.ts_us;
                faults.src = static_cast<int>(
                    eventArg(event, "src", faults.src));
                faults.dst = static_cast<int>(
                    eventArg(event, "dst", faults.dst));
            } else if (event.name == "fault.channel_restore") {
                faults.restore_us = event.ts_us;
            } else if (event.name == "fault.channel_degrade") {
                faults.degrade_us = event.ts_us;
                faults.degrade_factor =
                    eventArg(event, "factor", faults.degrade_factor);
            } else if (event.name == "fault.transfer_dropped") {
                ++faults.drops;
                if (faults.first_drop_us < 0.0)
                    faults.first_drop_us = event.ts_us;
            }
        } else if (event.cat == "ccl.fault") {
            RankFault fault;
            fault.name = event.name;
            fault.rank = event.pid >= 1000 ? event.pid - 1000 : -1;
            fault.t_us = event.ts_us;
            if (event.name == "ccl.abort") {
                fault.terminus = static_cast<int>(
                    eventArg(event, "terminus", -1.0));
                fault.chain_len = static_cast<int>(
                    eventArg(event, "chain_len", 0.0));
                aborts.push_back(fault);
            } else {
                rank_faults.push_back(fault);
            }
        }
    }

    // --- Critical-path straggler shares -------------------------------
    const CriticalPath path = analyzer.criticalPath();
    report.critical_span_us = path.spanUs();
    report.critical_stall_us = path.breakdown.sync_stall_us;
    std::map<int, double> stall_by_pid;
    for (const PathStep& step : path.steps)
        stall_by_pid[step.span.pid] += step.stall_before_us;

    // --- Channel causes ------------------------------------------------
    for (const auto& entry : channel_faults) {
        const int channel = entry.first;
        const ChannelFaults& faults = entry.second;
        const std::string label =
            channelLabel(analyzer, channel, faults.pid);
        const int src_node =
            faults.pid >= 100 && faults.pid < 1000 ? faults.pid - 100
                                                   : -1;
        int parsed_src = faults.src;
        int parsed_dst = faults.dst;
        if (parsed_src < 0 || parsed_dst < 0)
            parseChannelEndpoints(label, &parsed_src, &parsed_dst);
        const bool endpoints = parsed_src >= 0 && parsed_dst >= 0;

        if (faults.fail_us >= 0.0 || faults.drops > 0) {
            RootCause cause;
            cause.kind = RootCause::Kind::kChannelFail;
            cause.channel = channel;
            cause.node = src_node >= 0 ? src_node : parsed_src;
            cause.rank = endpoints ? parsed_dst : -1;
            cause.t_us = faults.fail_us >= 0.0 ? faults.fail_us
                                               : faults.first_drop_us;
            cause.score = 1000.0 + faults.drops;
            std::ostringstream desc;
            desc << "channel " << label;
            if (faults.fail_us >= 0.0)
                desc << " failed at t=" << formatMs(faults.fail_us);
            else
                desc << " dropping transfers from t="
                     << formatMs(faults.first_drop_us);
            if (faults.drops > 0)
                desc << "; " << faults.drops << " transfer"
                     << (faults.drops == 1 ? "" : "s") << " dropped";
            if (endpoints)
                desc << "; receiver rank " << parsed_dst << " starved";
            if (faults.restore_us > faults.fail_us &&
                faults.restore_us >= 0.0)
                desc << " (restored at t=" << formatMs(faults.restore_us)
                     << ")";
            cause.description = desc.str();
            report.causes.push_back(std::move(cause));
        }
        if (faults.degrade_us >= 0.0 && faults.degrade_factor != 1.0) {
            RootCause cause;
            cause.kind = RootCause::Kind::kChannelDegrade;
            cause.channel = channel;
            cause.node = src_node >= 0 ? src_node : parsed_src;
            cause.rank = endpoints ? parsed_dst : -1;
            cause.t_us = faults.degrade_us;
            const double slowdown =
                faults.degrade_factor > 0.0 &&
                        faults.degrade_factor < 1.0
                    ? 1.0 / faults.degrade_factor
                    : faults.degrade_factor;
            cause.score = 100.0 * std::max(1.0, slowdown);
            std::ostringstream desc;
            desc << "channel " << label << " degraded x"
                 << std::fixed << std::setprecision(2) << slowdown
                 << " at t=" << formatMs(faults.degrade_us);
            cause.description = desc.str();
            report.causes.push_back(std::move(cause));
        }
    }

    // --- Rank faults and watchdog trips --------------------------------
    for (const RankFault& fault : rank_faults) {
        RootCause cause;
        cause.kind = RootCause::Kind::kRankFault;
        cause.rank = fault.rank;
        cause.t_us = fault.t_us;
        cause.score = 900.0;
        std::ostringstream desc;
        desc << fault.name << " injected on rank " << fault.rank
             << " at t=" << formatMs(fault.t_us);
        cause.description = desc.str();
        report.causes.push_back(std::move(cause));
    }
    for (const RankFault& fault : aborts) {
        RootCause cause;
        cause.kind = RootCause::Kind::kWatchdog;
        cause.rank = fault.rank;
        cause.t_us = fault.t_us;
        cause.score = 800.0;
        std::ostringstream desc;
        if (fault.terminus >= 0) {
            // The stall report walked the wait-for graph: name the
            // chain terminus (the truly stuck rank), which may differ
            // from the channel endpoint the watchdog blamed.
            cause.rank = fault.terminus;
            desc << "watchdog tripped; stall chain terminus rank "
                 << fault.terminus << " (chain length "
                 << fault.chain_len << "; blamed rank " << fault.rank
                 << ")";
        } else {
            desc << "watchdog tripped; blamed rank " << fault.rank;
        }
        cause.description = desc.str();
        report.causes.push_back(std::move(cause));
    }
    if (aborts.empty() && registry != nullptr &&
        registry->counter("ccl.aborts") > 0.0) {
        RootCause cause;
        cause.kind = RootCause::Kind::kWatchdog;
        cause.score = 800.0;
        std::ostringstream desc;
        desc << "watchdog tripped "
             << static_cast<long>(registry->counter("ccl.aborts"))
             << "x (no abort instant in trace)";
        cause.description = desc.str();
        report.causes.push_back(std::move(cause));
    }

    // --- Stragglers ----------------------------------------------------
    if (report.critical_span_us > 0.0) {
        int worst_pid = -1;
        double worst_stall = 0.0;
        for (const auto& entry : stall_by_pid) {
            if (entry.second > worst_stall) {
                worst_pid = entry.first;
                worst_stall = entry.second;
            }
        }
        const double share = worst_stall / report.critical_span_us;
        if (worst_pid >= 0 && share > 0.05) {
            RootCause cause;
            cause.kind = RootCause::Kind::kStraggler;
            if (worst_pid >= 1000)
                cause.rank = worst_pid - 1000;
            else if (worst_pid >= 100)
                cause.node = worst_pid - 100;
            cause.score = 200.0 * share;
            std::ostringstream desc;
            desc << pidLabel(worst_pid) << " stalled "
                 << std::fixed << std::setprecision(0) << share * 100.0
                 << "% of critical path (" << formatMs(worst_stall)
                 << " of " << formatMs(report.critical_span_us) << ")";
            cause.description = desc.str();
            report.causes.push_back(std::move(cause));
        }
    }

    // Per-rank wall-clock straggler counters (functional ccl runs).
    if (registry != nullptr) {
        int worst_rank = -1;
        double worst_ns = 0.0;
        for (const auto& name_kind : registry->names()) {
            const std::string& name = name_kind.first;
            if (name.rfind("ccl.rank", 0) != 0)
                continue;
            const std::size_t suffix = name.find(".wait_stall_ns");
            if (suffix == std::string::npos)
                continue;
            const double ns = registry->counter(name);
            if (ns > worst_ns) {
                worst_ns = ns;
                worst_rank = std::atoi(name.c_str() + 8);
            }
        }
        if (worst_rank >= 0 && worst_ns > 0.0) {
            RootCause cause;
            cause.kind = RootCause::Kind::kStraggler;
            cause.rank = worst_rank;
            cause.score = 150.0;
            std::ostringstream desc;
            desc << "rank " << worst_rank
                 << " accumulated the most wait-stall ("
                 << formatMs(worst_ns / 1000.0) << ")";
            cause.description = desc.str();
            report.causes.push_back(std::move(cause));
        }
        report.dropped_trace_events = static_cast<std::uint64_t>(
            registry->counter("trace.dropped_events"));
    }

    std::stable_sort(report.causes.begin(), report.causes.end(),
                     [](const RootCause& a, const RootCause& b) {
                         return a.score > b.score;
                     });

    // --- Blame ---------------------------------------------------------
    for (const RootCause& cause : report.causes) {
        if (cause.channel >= 0) {
            report.blamed_channel = cause.channel;
            break;
        }
    }
    // Rank blame priority: explicit rank faults > watchdog blame >
    // failed-channel receiver > straggler.
    auto firstRankOf = [&report](RootCause::Kind kind) {
        for (const RootCause& cause : report.causes) {
            if (cause.kind == kind && cause.rank >= 0)
                return cause.rank;
        }
        return -1;
    };
    report.blamed_rank = firstRankOf(RootCause::Kind::kRankFault);
    if (report.blamed_rank < 0)
        report.blamed_rank = firstRankOf(RootCause::Kind::kWatchdog);
    if (report.blamed_rank < 0)
        report.blamed_rank = firstRankOf(RootCause::Kind::kChannelFail);
    if (report.blamed_rank < 0)
        report.blamed_rank = firstRankOf(RootCause::Kind::kStraggler);

    return report;
}

void
writeRootCauseReport(std::ostream& out, const RootCauseReport& report)
{
    out << "=== root-cause analysis ===\n";
    if (report.truncated())
        out << "WARNING: trace truncated (" << report.dropped_trace_events
            << " events dropped), analysis may be partial\n";
    if (report.empty()) {
        out << "no anomalies detected\n";
        return;
    }
    out << "blamed channel: ";
    if (report.blamed_channel >= 0)
        out << report.blamed_channel;
    else
        out << "-";
    out << "  blamed rank: ";
    if (report.blamed_rank >= 0)
        out << report.blamed_rank;
    else
        out << "-";
    out << "\n";
    if (report.critical_span_us > 0.0) {
        out << "critical path: " << formatMs(report.critical_span_us)
            << " (" << formatMs(report.critical_stall_us)
            << " sync stall)\n";
    }
    int index = 1;
    for (const RootCause& cause : report.causes) {
        out << "  " << index++ << ". [" << causeKindName(cause.kind)
            << " score=" << std::fixed << std::setprecision(1)
            << cause.score << "] " << cause.description << "\n";
    }
}

double
TraceDiff::attributedFraction() const
{
    const double delta = deltaUs();
    if (std::fabs(delta) < 1e-9)
        return 1.0;
    return attributed_us / delta;
}

TraceDiff
diffTraces(const TraceAnalyzer& baseline, const TraceAnalyzer& current)
{
    TraceDiff diff;
    const CriticalPath base_path = baseline.criticalPath();
    const CriticalPath cur_path = current.criticalPath();
    diff.baseline_span_us = base_path.spanUs();
    diff.current_span_us = cur_path.spanUs();

    // Span identity along a critical path: (name, pid, tid, n-th
    // occurrence). Ring step k of channel c aligns with ring step k of
    // the same channel in the other capture.
    using Key = std::tuple<std::string, int, int, int>;
    struct BaseEntry {
        double cost_us = 0.0;
        CostKind kind = CostKind::kOther;
        bool matched = false;
    };
    std::map<Key, BaseEntry> base_costs;
    std::map<std::tuple<std::string, int, int>, int> occurrence;
    for (const PathStep& step : base_path.steps) {
        const auto id = std::make_tuple(step.span.name, step.span.pid,
                                        step.span.tid);
        const int n = occurrence[id]++;
        BaseEntry& entry = base_costs[std::make_tuple(
            step.span.name, step.span.pid, step.span.tid, n)];
        entry.cost_us += step.span.dur_us + step.stall_before_us;
        entry.kind = step.kind;
    }

    occurrence.clear();
    for (const PathStep& step : cur_path.steps) {
        const auto id = std::make_tuple(step.span.name, step.span.pid,
                                        step.span.tid);
        const int n = occurrence[id]++;
        const Key key = std::make_tuple(step.span.name, step.span.pid,
                                        step.span.tid, n);
        DiffSegment segment;
        segment.name = step.span.name;
        segment.pid = step.span.pid;
        segment.tid = step.span.tid;
        segment.occurrence = n;
        segment.kind = step.kind;
        segment.current_us = step.span.dur_us + step.stall_before_us;
        const auto it = base_costs.find(key);
        if (it != base_costs.end()) {
            segment.baseline_us = it->second.cost_us;
            segment.matched = true;
            it->second.matched = true;
        }
        segment.delta_us = segment.current_us - segment.baseline_us;
        diff.segments.push_back(std::move(segment));
    }
    // Baseline-only segments: work the current path no longer does.
    for (const auto& entry : base_costs) {
        if (entry.second.matched)
            continue;
        DiffSegment segment;
        segment.name = std::get<0>(entry.first);
        segment.pid = std::get<1>(entry.first);
        segment.tid = std::get<2>(entry.first);
        segment.occurrence = std::get<3>(entry.first);
        segment.kind = entry.second.kind;
        segment.baseline_us = entry.second.cost_us;
        segment.delta_us = -entry.second.cost_us;
        diff.segments.push_back(std::move(segment));
    }

    diff.attributed_us = 0.0;
    std::vector<double> abs_deltas;
    abs_deltas.reserve(diff.segments.size());
    for (const DiffSegment& segment : diff.segments) {
        diff.attributed_us += segment.delta_us;
        abs_deltas.push_back(std::fabs(segment.delta_us));
    }
    if (!abs_deltas.empty())
        diff.median_abs_delta_us =
            util::quantileInPlace(abs_deltas, 0.5);

    std::stable_sort(diff.segments.begin(), diff.segments.end(),
                     [](const DiffSegment& a, const DiffSegment& b) {
                         return std::fabs(a.delta_us) >
                                std::fabs(b.delta_us);
                     });
    return diff;
}

void
writeDiffReport(std::ostream& out, const TraceDiff& diff,
                std::size_t max_segments)
{
    out << "=== trace diff ===\n";
    out << std::fixed << std::setprecision(3);
    out << "baseline span: " << formatMs(diff.baseline_span_us)
        << "  current span: " << formatMs(diff.current_span_us)
        << "  delta: " << formatMs(diff.deltaUs()) << "\n";
    out << "attributed to critical-path segments: "
        << formatMs(diff.attributed_us) << " ("
        << std::setprecision(1) << diff.attributedFraction() * 100.0
        << "% of delta)\n";
    const std::size_t shown =
        std::min(max_segments, diff.segments.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const DiffSegment& segment = diff.segments[i];
        out << "  " << std::setw(2) << i + 1 << ". "
            << (segment.delta_us >= 0.0 ? "+" : "")
            << formatMs(segment.delta_us) << "  " << segment.name
            << " [" << pidLabel(segment.pid) << " tid "
            << segment.tid << " #" << segment.occurrence << ", "
            << costKindName(segment.kind) << "] "
            << formatMs(segment.baseline_us) << " -> "
            << formatMs(segment.current_us)
            << (segment.matched ? "" : " (unmatched)") << "\n";
    }
    if (diff.segments.size() > shown)
        out << "  ... " << diff.segments.size() - shown
            << " more segments (median |delta| "
            << formatMs(diff.median_abs_delta_us) << ")\n";
}

} // namespace obs
} // namespace ccube
