file(REMOVE_RECURSE
  "CMakeFiles/timeline_dump.dir/timeline_dump.cpp.o"
  "CMakeFiles/timeline_dump.dir/timeline_dump.cpp.o.d"
  "timeline_dump"
  "timeline_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
