file(REMOVE_RECURSE
  "CMakeFiles/core_queue_test.dir/core_queue_test.cpp.o"
  "CMakeFiles/core_queue_test.dir/core_queue_test.cpp.o.d"
  "core_queue_test"
  "core_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
