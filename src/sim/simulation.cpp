#include "sim/simulation.h"

namespace ccube {
namespace sim {

void
Simulation::after(Time delay, EventFn fn, int priority)
{
    queue_.schedule(queue_.now() + delay, std::move(fn), priority);
}

void
Simulation::at(Time when, EventFn fn, int priority)
{
    queue_.schedule(when, std::move(fn), priority);
}

void
Simulation::addStat(const std::string& name, double delta)
{
    stats_[name] += delta;
}

double
Simulation::stat(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

void
Simulation::reset()
{
    queue_.reset();
    stats_.clear();
}

} // namespace sim
} // namespace ccube
