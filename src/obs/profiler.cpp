#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <ostream>
#include <sstream>

#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"

namespace ccube {
namespace obs {

const char* profPhaseName(ProfPhase phase)
{
    switch (phase) {
    case ProfPhase::kIdle:
        return "idle";
    case ProfPhase::kStep:
        return "step";
    case ProfPhase::kMailboxPost:
        return "mailbox_post";
    case ProfPhase::kMailboxWait:
        return "mailbox_wait";
    case ProfPhase::kSteal:
        return "steal";
    case ProfPhase::kParked:
        return "parked";
    case ProfPhase::kLLSpin:
        return "ll_spin";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

Profiler& Profiler::global()
{
    static Profiler instance;
    return instance;
}

Profiler::~Profiler()
{
    stop();
}

// Packed slot layout: high 32 bits = phase + 1, low 32 bits =
// rank + 1. Zero means "nothing published", which is also what
// restore(0) writes, so an empty previous-state round-trips.
std::uint64_t Profiler::pack(ProfPhase phase, int rank)
{
    const std::uint64_t p = static_cast<std::uint64_t>(
        static_cast<int>(phase) + 1);
    const std::uint64_t r =
        static_cast<std::uint32_t>(std::min(rank, kMaxRanks - 1) + 1);
    return (p << 32) | r;
}

int Profiler::threadSlot()
{
    // Slot indices are assigned once per thread for the process
    // lifetime; a thread keeps its slot across captures.
    thread_local int slot = -2;
    if (slot == -2) {
        const int next =
            slots_used_.fetch_add(1, std::memory_order_relaxed);
        slot = next < kMaxThreads ? next : -1;
    }
    return slot;
}

std::uint64_t Profiler::publish(ProfPhase phase, int rank)
{
    if (!enabled()) {
        return 0;
    }
    const int slot = threadSlot();
    if (slot < 0) {
        return 0;
    }
    return thread_slots_[slot].state.exchange(
        pack(phase, rank), std::memory_order_relaxed);
}

void Profiler::restore(std::uint64_t packed)
{
    const int slot = threadSlot();
    if (slot < 0) {
        return;
    }
    thread_slots_[slot].state.store(packed, std::memory_order_relaxed);
}

void Profiler::addParkedNs(int rank, std::uint64_t ns)
{
    const int idx =
        (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    parked_ns_[idx].ns.fetch_add(ns, std::memory_order_relaxed);
}

std::uint64_t Profiler::parkedNs(int rank) const
{
    const int idx =
        (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    return parked_ns_[idx].ns.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::totalParkedNs() const
{
    std::uint64_t total = 0;
    for (const ParkSlot& slot : parked_ns_) {
        total += slot.ns.load(std::memory_order_relaxed);
    }
    return total;
}

void Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counts_.assign(
        static_cast<std::size_t>(kProfPhaseCount) * (kMaxRanks + 1),
        0);
    for (ParkSlot& slot : parked_ns_) {
        slot.ns.store(0, std::memory_order_relaxed);
    }
    ticks_.store(0, std::memory_order_relaxed);
}

void Profiler::start(double hz)
{
    reset();
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) {
        return;
    }
    hz_ = hz > 0.0 ? hz : kDefaultHz;
    running_ = true;
    enabled_.store(true, std::memory_order_release);
    sampler_ = std::thread([this] { samplerLoop(); });

    Monitor& monitor = Monitor::process();
    monitor_token_ = monitor.addSource(
        [this](double,
               std::vector<std::pair<std::string, double>>& values) {
            values.emplace_back(
                "ccl.prof.ticks", static_cast<double>(ticks()));
            values.emplace_back(
                "ccl.prof.threads",
                static_cast<double>(std::min(
                    slots_used_.load(std::memory_order_relaxed),
                    kMaxThreads)));
            values.emplace_back(
                "ccl.prof.parked_ns",
                static_cast<double>(totalParkedNs()));
        });
}

void Profiler::stop()
{
    std::thread sampler;
    int token = -1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_) {
            return;
        }
        running_ = false;
        enabled_.store(false, std::memory_order_release);
        sampler = std::move(sampler_);
        token = monitor_token_;
        monitor_token_ = -1;
    }
    if (sampler.joinable()) {
        sampler.join();
    }
    if (token >= 0) {
        Monitor::process().removeSource(token);
    }
}

void Profiler::samplerLoop()
{
    const auto period = std::chrono::nanoseconds(
        static_cast<std::int64_t>(1e9 / hz_));
    while (enabled_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(period);
        const int used = std::min(
            slots_used_.load(std::memory_order_relaxed), kMaxThreads);
        std::lock_guard<std::mutex> lock(mutex_);
        for (int i = 0; i < used; ++i) {
            const std::uint64_t packed =
                thread_slots_[i].state.load(std::memory_order_relaxed);
            if (packed == 0) {
                continue;
            }
            const int phase = static_cast<int>(packed >> 32) - 1;
            const int rank =
                static_cast<int>(packed & 0xffffffffu) - 1;
            if (phase < 0 || phase >= kProfPhaseCount) {
                continue;
            }
            const int ridx =
                (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
            ++counts_[static_cast<std::size_t>(phase) *
                          (kMaxRanks + 1) +
                      ridx];
        }
        ticks_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::uint64_t Profiler::samples(ProfPhase phase) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counts_.empty()) {
        return 0;
    }
    const std::size_t base =
        static_cast<std::size_t>(static_cast<int>(phase)) *
        (kMaxRanks + 1);
    std::uint64_t total = 0;
    for (int r = 0; r <= kMaxRanks; ++r) {
        total += counts_[base + r];
    }
    return total;
}

std::uint64_t Profiler::samples(ProfPhase phase, int rank) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counts_.empty()) {
        return 0;
    }
    const int ridx =
        (rank >= 0 && rank < kMaxRanks) ? rank + 1 : 0;
    return counts_[static_cast<std::size_t>(
                       static_cast<int>(phase)) *
                       (kMaxRanks + 1) +
                   ridx];
}

void Profiler::writeCollapsed(std::ostream& out) const
{
    // Worker-centric phases (idle, steal) are not rank work; they
    // fold under a shared `worker` frame. Parked time has no thread
    // to sample, so the exact ns feed is converted into sample-period
    // units (ns * hz / 1e9) to share the flamegraph scale.
    std::lock_guard<std::mutex> lock(mutex_);
    if (!counts_.empty()) {
        for (int phase = 0; phase < kProfPhaseCount; ++phase) {
            const ProfPhase p = static_cast<ProfPhase>(phase);
            if (p == ProfPhase::kParked) {
                continue; // exact feed below, not sampled counts
            }
            const std::size_t base =
                static_cast<std::size_t>(phase) * (kMaxRanks + 1);
            for (int ridx = 0; ridx <= kMaxRanks; ++ridx) {
                const std::uint64_t n = counts_[base + ridx];
                if (n == 0) {
                    continue;
                }
                if (p == ProfPhase::kIdle || p == ProfPhase::kSteal) {
                    out << "ccl;worker;" << profPhaseName(p) << ' '
                        << n << '\n';
                } else if (ridx == 0) {
                    out << "ccl;rank?;" << profPhaseName(p) << ' '
                        << n << '\n';
                } else {
                    out << "ccl;rank" << (ridx - 1) << ';'
                        << profPhaseName(p) << ' ' << n << '\n';
                }
            }
        }
    }
    for (int ridx = 0; ridx <= kMaxRanks; ++ridx) {
        const std::uint64_t ns =
            parked_ns_[ridx].ns.load(std::memory_order_relaxed);
        if (ns == 0) {
            continue;
        }
        const std::uint64_t units = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(ns) * hz_ / 1e9));
        if (ridx == 0) {
            out << "ccl;rank?;parked " << units << '\n';
        } else {
            out << "ccl;rank" << (ridx - 1) << ";parked " << units
                << '\n';
        }
    }
}

void Profiler::exportTo(MetricRegistry& registry) const
{
    for (int phase = 0; phase < kProfPhaseCount; ++phase) {
        const ProfPhase p = static_cast<ProfPhase>(phase);
        if (p == ProfPhase::kParked) {
            continue;
        }
        const std::uint64_t n = samples(p);
        if (n > 0) {
            registry.addCounter(
                std::string("profiler.samples.") + profPhaseName(p),
                static_cast<double>(n));
        }
    }
    const std::uint64_t parked = totalParkedNs();
    if (parked > 0) {
        registry.addCounter("profiler.parked_ns.total",
                            static_cast<double>(parked));
    }
    registry.addCounter("profiler.ticks",
                        static_cast<double>(ticks()));
}

void Profiler::foldIntoTrace() const
{
    TraceRecorder& recorder = TraceRecorder::global();
    if (!recorder.enabled()) {
        return;
    }
    TraceEvent event;
    event.name = "obs.profiler.summary";
    event.cat = "obs.profiler";
    event.phase = 'i';
    event.pid = pids::core();
    event.tid = 0;
    event.ts_us = recorder.wallNowUs();
    event.args.emplace_back("hz", hz_);
    event.args.emplace_back("ticks", static_cast<double>(ticks()));
    for (int phase = 0; phase < kProfPhaseCount; ++phase) {
        const ProfPhase p = static_cast<ProfPhase>(phase);
        if (p == ProfPhase::kParked) {
            continue;
        }
        event.args.emplace_back(profPhaseName(p),
                                static_cast<double>(samples(p)));
    }
    event.args.emplace_back("parked_ns",
                            static_cast<double>(totalParkedNs()));
    recorder.record(std::move(event));
}

// ---------------------------------------------------------------------------
// ScopedProfPhase
// ---------------------------------------------------------------------------

ScopedProfPhase::ScopedProfPhase(ProfPhase phase)
    : ScopedProfPhase(phase, threadRank())
{
}

ScopedProfPhase::ScopedProfPhase(ProfPhase phase, int rank)
{
    Profiler& profiler = Profiler::global();
    if (!profiler.enabled()) {
        return;
    }
    previous_ = profiler.publish(phase, rank);
    active_ = true;
}

ScopedProfPhase::~ScopedProfPhase()
{
    if (active_) {
        Profiler::global().restore(previous_);
    }
}

// ---------------------------------------------------------------------------
// WaitForRegistry
// ---------------------------------------------------------------------------

WaitForRegistry::WaitForRegistry(int num_ranks)
    : slots_(static_cast<std::size_t>(std::max(num_ranks, 0)))
{
}

void WaitForRegistry::noteWait(int rank, int peer, const char* label,
                               int flow)
{
    if (rank < 0 || rank >= numRanks()) {
        return;
    }
    Slot& slot = slots_[rank];
    // peer/flow land before the label: the label doubles as the
    // "this rank is waiting" flag, so a reader that sees it non-null
    // (acquire) also sees a matching peer/flow pair.
    slot.peer.store(peer, std::memory_order_relaxed);
    slot.flow.store(flow, std::memory_order_relaxed);
    slot.label.store(label, std::memory_order_release);
}

void WaitForRegistry::clearWait(int rank)
{
    if (rank < 0 || rank >= numRanks()) {
        return;
    }
    slots_[rank].label.store(nullptr, std::memory_order_release);
}

void WaitForRegistry::markDead(int rank)
{
    if (rank < 0 || rank >= numRanks()) {
        return;
    }
    slots_[rank].dead.store(true, std::memory_order_release);
}

bool WaitForRegistry::waiting(int rank) const
{
    if (rank < 0 || rank >= numRanks()) {
        return false;
    }
    return slots_[rank].label.load(std::memory_order_acquire) !=
           nullptr;
}

bool WaitForRegistry::dead(int rank) const
{
    if (rank < 0 || rank >= numRanks()) {
        return false;
    }
    return slots_[rank].dead.load(std::memory_order_acquire);
}

void WaitForRegistry::reset()
{
    for (Slot& slot : slots_) {
        slot.label.store(nullptr, std::memory_order_relaxed);
        slot.peer.store(-1, std::memory_order_relaxed);
        slot.flow.store(-1, std::memory_order_relaxed);
        slot.dead.store(false, std::memory_order_relaxed);
    }
}

WaitForRegistry::Chain WaitForRegistry::chain(int start) const
{
    Chain chain;
    std::vector<bool> visited(slots_.size(), false);
    int rank = start;
    while (rank >= 0 && rank < numRanks()) {
        const Slot& slot = slots_[rank];
        const char* label =
            slot.label.load(std::memory_order_acquire);
        if (label == nullptr) {
            // Not waiting: the chain terminates here.
            chain.terminus = rank;
            chain.terminus_dead =
                slot.dead.load(std::memory_order_acquire);
            return chain;
        }
        if (visited[rank]) {
            chain.terminus = rank;
            chain.cycle = true;
            return chain;
        }
        visited[rank] = true;
        Link link;
        link.rank = rank;
        link.peer = slot.peer.load(std::memory_order_relaxed);
        link.label = label;
        link.flow = slot.flow.load(std::memory_order_relaxed);
        chain.links.push_back(std::move(link));
        rank = chain.links.back().peer;
    }
    // Fell off the graph: expected poster unknown or out of range.
    chain.terminus = -1;
    return chain;
}

WaitForRegistry::Chain WaitForRegistry::longestChain() const
{
    Chain best;
    for (int rank = 0; rank < numRanks(); ++rank) {
        if (!waiting(rank)) {
            continue;
        }
        Chain candidate = chain(rank);
        if (candidate.length() > best.length()) {
            best = std::move(candidate);
        }
    }
    return best;
}

std::string WaitForRegistry::formatChain(const Chain& chain)
{
    if (chain.empty()) {
        return std::string();
    }
    std::ostringstream out;
    for (std::size_t i = 0; i < chain.links.size(); ++i) {
        const Link& link = chain.links[i];
        if (i > 0) {
            out << " <- ";
        }
        out << 'r' << link.rank << " parked on " << link.label;
    }
    if (!chain.links.empty()) {
        out << " <- ";
    }
    if (chain.cycle) {
        out << 'r' << chain.terminus << " (wait cycle)";
    } else if (chain.terminus < 0) {
        out << "<external>";
    } else if (chain.terminus_dead) {
        out << 'r' << chain.terminus << " killed";
    } else {
        out << 'r' << chain.terminus << " running";
    }
    return out.str();
}

} // namespace obs
} // namespace ccube
