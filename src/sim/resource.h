#ifndef CCUBE_SIM_RESOURCE_H_
#define CCUBE_SIM_RESOURCE_H_

/**
 * @file
 * FIFO-serialized resource for the discrete-event simulator.
 *
 * A unidirectional network channel is the canonical instance: at most
 * one transfer occupies it at a time and waiters are served in request
 * order. Invariant #6 in DESIGN.md is enforced here.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulation.h"

namespace ccube {
namespace sim {

/**
 * A resource with unit capacity and FIFO admission.
 *
 * Usage: call request() with a function that returns the busy duration;
 * the resource runs it when granted and frees itself that much later.
 * An optional completion callback fires when the occupancy ends.
 */
class FifoResource
{
  public:
    /** Computes the occupancy duration, called at grant time. */
    using HoldFn = std::function<Time()>;

    /** Invoked when the occupancy ends (resource freed). */
    using DoneFn = std::function<void()>;

    /** Creates a resource bound to @p simulation with a debug name. */
    FifoResource(Simulation& simulation, std::string name);

    FifoResource(const FifoResource&) = delete;
    FifoResource& operator=(const FifoResource&) = delete;

    /**
     * Requests the resource. When granted, @p hold is evaluated to get
     * the busy duration; @p done fires when the busy period elapses.
     */
    void request(HoldFn hold, DoneFn done);

    /** True while a grant is outstanding. */
    bool busy() const { return busy_; }

    /** Number of queued (not yet granted) requests. */
    std::size_t queueLength() const { return waiting_.size(); }

    /** Cumulative busy time, for utilization reporting. */
    Time busyTime() const { return busy_time_; }

    /** Total grants made. */
    std::uint64_t grants() const { return grants_; }

    /** Debug name. */
    const std::string& name() const { return name_; }

  private:
    struct Pending {
        HoldFn hold;
        DoneFn done;
    };

    void grant(Pending pending);
    void release();

    Simulation& sim_;
    std::string name_;
    bool busy_ = false;
    std::deque<Pending> waiting_;
    Time busy_time_ = 0.0;
    std::uint64_t grants_ = 0;
};

} // namespace sim
} // namespace ccube

#endif // CCUBE_SIM_RESOURCE_H_
