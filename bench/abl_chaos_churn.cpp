/**
 * @file
 * Ablation: fault churn under the resilience supervisor — the MTTR
 * and re-promotion bandwidth gate (BENCH_fault.json).
 *
 * Two measurements:
 *
 *   1. Churn cycles: a real threaded collective is killed mid-call
 *      (injected rank death), the fabric manager reports the whole
 *      NVLink fabric down while the abort clears, and the supervisor
 *      descends the ladder to the PCIe fallback ring. The links then
 *      restore, probation passes, and the supervisor re-promotes to
 *      the C-Cube embedding. Per cycle this reports MTTR (wall time
 *      from first failure to the completed retry) and, after
 *      re-promotion, the DES bandwidth of the supervisor's live plan
 *      relative to the healthy C-Cube plan — the >=95% recovery
 *      criterion.
 *
 *   2. Chaos-fuzz summary: seeded simnet::ChaosPlan schedules against
 *      the DES fabric, counting completions, casualties, and dropped
 *      transfers — the same liveness/safety surface as
 *      chaos_fuzz_test, summarized for the perf-gate artifact.
 *
 * Artifacts: bench_ccl/v1 records (append), --mttr-out (MTTR table),
 * --chaos-summary-out (chaos-fuzz summary). The MTTR SLO budget comes
 * from --slo-mttr-ms / $CCUBE_SLO_MTTR_MS via obs::Monitor.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/fault.h"
#include "core/recovery.h"
#include "core/report.h"
#include "core/supervisor.h"
#include "obs/monitor.h"
#include "simnet/chaos.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/fault_plan.h"
#include "simnet/multi_ring_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/graph.h"
#include "util/bench_json.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;
using namespace std::chrono_literals;

constexpr int kRanks = 8;

/**
 * DGX-1 NVLink fabric plus a PCIe peer ring (same testbed as
 * supervisor_test / chaos_fuzz_test): tree embeddings can route over
 * PCIe, so only a fabric-wide NVLink outage forces the ladder down to
 * the ring rung — which is exactly the churn this bench exercises.
 */
topo::Graph
makeTestbed()
{
    topo::Graph graph = topo::makeDgx1();
    const topo::Dgx1Params params;
    for (int g = 0; g < kRanks; ++g)
        graph.addLink(g, (g + 1) % kRanks, params.pcie_bandwidth,
                      params.pcie_latency, topo::LinkKind::kPcie);
    return graph;
}

/** DES completion time of @p recovery's schedule at @p bytes. */
double
planTime(const core::RecoveryResult& recovery, double bytes)
{
    sim::Simulation sim;
    simnet::Network net(sim, recovery.graph);
    switch (recovery.kind) {
    case core::RecoveryKind::kCCube:
        return simnet::runDoubleTreeSchedule(
                   sim, net, *recovery.double_tree, bytes,
                   simnet::PhaseMode::kOverlapped, 32)
            .completion_time;
    case core::RecoveryKind::kDoubleTree:
        return simnet::runDoubleTreeSchedule(
                   sim, net, *recovery.double_tree, bytes,
                   simnet::PhaseMode::kTwoPhase, 32)
            .completion_time;
    case core::RecoveryKind::kRing:
        // The DES transfer engine routes NVLink-only; a fallback ring
        // over PCIe peer links is not simulable. The churn loop only
        // measures the plan after re-promotion, so this is a guard,
        // not a path the bench expects to take.
        if (recovery.graph.shortestPath(0, 1, topo::LinkKind::kNvlink)
                .empty())
            return 0.0;
        return simnet::runMultiRingSchedule(sim, net, recovery.rings,
                                            bytes)
            .completion_time;
    case core::RecoveryKind::kNone:
        break;
    }
    return 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Flags flags(argc, argv);
    const int cycles = flags.getInt("cycles", 4);
    const double bytes = util::mib(64);
    const std::size_t elems = 4096;

    std::cout << "=== Ablation: fault churn under the resilience "
                 "supervisor (DGX-1 + PCIe ring testbed) ===\n\n";

    const topo::Graph graph = makeTestbed();
    core::RecoveryOptions recovery_options;
    recovery_options.search.num_ranks = graph.nodeCount();
    recovery_options.search.seed = 7;

    // Healthy reference: the C-Cube plan's DES bandwidth — the 100%
    // mark the re-promoted plan is measured against.
    const core::RecoveryResult healthy =
        core::recoverSchedule(graph, {}, recovery_options);
    const double healthy_time = planTime(healthy, bytes);
    const double healthy_bw = bytes / healthy_time;
    std::cout << "healthy C-Cube plan: "
              << util::formatDouble(healthy_time * 1e3, 3) << " ms ("
              << util::formatDouble(healthy_bw / 1e9, 2)
              << " GB/s simulated)\n\n";

    // The whole NVLink fabric: the fail set each churn cycle reports.
    std::vector<int> nvlink_set;
    for (int id = 0; id < graph.channelCount(); ++id)
        if (graph.channel(id).kind == topo::LinkKind::kNvlink)
            nvlink_set.push_back(id);

    obs::Monitor& monitor = obs::Monitor::global();
    monitor.clear();
    monitor.setSlo(obs::SloSpec::fromFlags(flags));
    monitor.enable();

    ccl::Communicator comm(kRanks, 4);
    comm.setDeadline(200ms); // kill-detection latency, the MTTR floor
    ccl::FaultInjector injector;
    comm.setFaultInjector(&injector);

    core::SupervisorOptions options;
    options.recovery = recovery_options;
    options.backoff_base_s = 0.001;
    options.backoff_max_s = 0.01;
    options.health.probation_runs = 2;
    core::ResilienceSupervisor supervisor(comm, graph, options);

    auto runOnce = [&]() {
        ccl::RankBuffers buffers(kRanks);
        for (std::size_t r = 0; r < buffers.size(); ++r)
            buffers[r].assign(elems, static_cast<float>(r + 1));
        return supervisor.allReduce(buffers);
    };

    util::Table churn_table({"cycle", "mttr_ms", "retries",
                             "fallback_rung", "settle_runs",
                             "recovered_rung",
                             "recovered_bw_ratio_%"});
    std::vector<double> mttr_ms_samples;
    std::vector<double> ratio_samples;
    std::vector<util::BenchRecord> records;

    for (int cycle = 0; cycle < cycles; ++cycle) {
        // Steady state on C-Cube before the fault lands.
        runOnce();

        // Mid-call failure: the victim rank dies on its next mailbox
        // op; while the abort clears, the fabric manager reports the
        // NVLink outage, so the retry re-plans onto the fallback.
        const int victim = 1 + cycle % (kRanks - 1);
        ccl::FaultInjector::Fault kill;
        kill.rank = victim;
        kill.action = ccl::FaultInjector::Action::kKill;
        kill.at_op = injector.opsSeen(victim);
        injector.arm(kill);
        std::atomic<bool> fed{false};
        comm.setClearAbortHook([&]() {
            if (fed.exchange(true))
                return;
            for (int id : nvlink_set)
                supervisor.noteChannelFail(id);
        });
        const core::SupervisorReport fault_report = runOnce();
        comm.setClearAbortHook({});
        const core::RecoveryKind fallback_rung = fault_report.rung;

        // Links restore; the supervisor climbs back once probation is
        // served AND the health scores recover (repeated churn cycles
        // decay scores below the quarantine threshold and mark links
        // flapping, which doubles their sit-out — so the settle count
        // grows with churn history instead of being a constant).
        for (int id : nvlink_set)
            supervisor.noteChannelRestore(id);
        int settle_runs = 0;
        core::SupervisorReport promoted;
        for (; settle_runs < 16; ++settle_runs) {
            promoted = runOnce();
            if (promoted.rung == core::RecoveryKind::kCCube)
                break;
        }

        // Bandwidth of the LIVE plan after re-promotion, versus the
        // healthy C-Cube plan — the >=95% recovery criterion.
        const double recovered_time =
            planTime(supervisor.plan(), bytes);
        const double ratio =
            recovered_time > 0.0 ? healthy_time / recovered_time : 0.0;

        const double mttr_ms = fault_report.mttr_s * 1e3;
        mttr_ms_samples.push_back(mttr_ms);
        ratio_samples.push_back(ratio);
        churn_table.addRow(
            {std::to_string(cycle), util::formatDouble(mttr_ms, 3),
             std::to_string(fault_report.attempts - 1),
             core::recoveryKindName(fallback_rung),
             std::to_string(settle_runs),
             core::recoveryKindName(promoted.rung),
             util::formatDouble(ratio * 100.0, 1)});

        util::BenchRecord record;
        record.source = "abl_chaos_churn";
        record.kind = "chaos_churn";
        record.name = "cycle_" + std::to_string(cycle);
        record.mode = core::recoveryKindName(fallback_rung);
        record.bytes = static_cast<std::int64_t>(bytes);
        record.ns_per_op = fault_report.mttr_s * 1e9;
        record.extra["mttr_ms"] = mttr_ms;
        record.extra["retries"] =
            static_cast<double>(fault_report.attempts - 1);
        record.extra["replans"] =
            static_cast<double>(fault_report.replans);
        record.extra["recovered_bw_ratio"] = ratio;
        record.extra["healthy_bw_gbps"] = healthy_bw / 1e9;
        record.extra["fallback_rung"] = static_cast<double>(
            static_cast<int>(fallback_rung));
        record.extra["recovered_rung"] =
            static_cast<double>(static_cast<int>(promoted.rung));
        record.extra["settle_runs"] =
            static_cast<double>(settle_runs);
        records.push_back(std::move(record));
    }
    comm.setFaultInjector(nullptr);
    monitor.disable();

    churn_table.print(std::cout);
    const double worst_ratio =
        *std::min_element(ratio_samples.begin(), ratio_samples.end());
    std::cout << "\nsupervisor stats: "
              << supervisor.stats().collectives << " collectives, "
              << supervisor.stats().retries << " retries, "
              << supervisor.stats().demotions << " demotions, "
              << supervisor.stats().promotions
              << " promotions; monitor recorded "
              << monitor.recoveriesTotal() << " recoveries ("
              << monitor.recoveryViolations()
              << " MTTR budget violations)\n";
    std::cout << "worst post-churn bandwidth ratio: "
              << util::formatDouble(worst_ratio * 100.0, 1)
              << "% of healthy C-Cube (criterion: >= 95%)\n";

    util::Table mttr_table = core::makeQuantileTable();
    core::addQuantileRow(mttr_table, "mttr", mttr_ms_samples);
    std::cout << "\n";
    mttr_table.print(std::cout);

    // Chaos-fuzz summary: seeded DES chaos plans, the liveness/safety
    // counts for the perf-gate artifact.
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    double des_healthy = 0.0;
    {
        sim::Simulation sim;
        simnet::Network net(sim, dgx1);
        des_healthy = simnet::runDoubleTreeSchedule(
                          sim, net, dt, util::mib(1),
                          simnet::PhaseMode::kOverlapped, 8)
                          .completion_time;
    }
    int fuzz_completions = 0;
    int fuzz_casualties = 0;
    std::size_t fuzz_dropped = 0;
    const int fuzz_runs = flags.getInt("fuzz-runs", 40);
    for (int seed = 1; seed <= fuzz_runs; ++seed) {
        simnet::ChaosOptions chaos_options;
        chaos_options.horizon_s = des_healthy;
        chaos_options.max_faults = 3;
        const simnet::ChaosPlan chaos(
            dgx1, static_cast<std::uint64_t>(seed), chaos_options);
        sim::Simulation sim;
        simnet::Network net(sim, dgx1);
        const simnet::FaultedRunResult run =
            simnet::runDoubleTreeWithFaults(
                sim, net, dt, util::mib(1),
                simnet::PhaseMode::kOverlapped, 8, chaos.plan());
        fuzz_completions += run.completed ? 1 : 0;
        fuzz_casualties += run.completed ? 0 : 1;
        fuzz_dropped += run.dropped_transfers;
    }
    std::ostringstream fuzz_summary;
    fuzz_summary << "chaos-fuzz (DES): " << fuzz_runs
                 << " seeded runs, " << fuzz_completions
                 << " completed, " << fuzz_casualties
                 << " casualties, " << fuzz_dropped
                 << " dropped transfers, 0 hangs\n";
    std::cout << "\n" << fuzz_summary.str();

    util::BenchRecord fuzz_record;
    fuzz_record.source = "abl_chaos_churn";
    fuzz_record.kind = "chaos_fuzz";
    fuzz_record.name = "des_sweep";
    fuzz_record.mode = "seeded";
    fuzz_record.bytes = static_cast<std::int64_t>(util::mib(1));
    fuzz_record.ns_per_op = 0.0;
    fuzz_record.extra["runs"] = static_cast<double>(fuzz_runs);
    fuzz_record.extra["completions"] =
        static_cast<double>(fuzz_completions);
    fuzz_record.extra["casualties"] =
        static_cast<double>(fuzz_casualties);
    fuzz_record.extra["dropped_transfers"] =
        static_cast<double>(fuzz_dropped);
    fuzz_record.extra["worst_recovered_bw_ratio"] = worst_ratio;
    records.push_back(std::move(fuzz_record));

    const std::string path = util::benchOutputPath();
    util::writeBenchRecords(path, records, /*append=*/true);
    std::cout << "\nwrote " << records.size() << " records to " << path
              << "\n";

    const std::string mttr_path = flags.get("mttr-out", "");
    if (!mttr_path.empty()) {
        std::ofstream out(mttr_path);
        churn_table.print(out);
        out << "\n";
        mttr_table.print(out);
        std::cout << "wrote MTTR table to " << mttr_path << "\n";
    }
    const std::string summary_path = flags.get("chaos-summary-out", "");
    if (!summary_path.empty()) {
        std::ofstream out(summary_path);
        out << fuzz_summary.str();
        std::cout << "wrote chaos-fuzz summary to " << summary_path
                  << "\n";
    }
    return 0;
}
