#include "core/dual_gradient_queue.h"

#include "util/logging.h"

namespace ccube {
namespace core {

DualGradientQueue::DualGradientQueue(
    std::vector<std::int64_t> table_tree0,
    std::vector<std::int64_t> table_tree1)
{
    tables_[0] = std::move(table_tree0);
    tables_[1] = std::move(table_tree1);
    CCUBE_CHECK(!tables_[0].empty(), "empty layer table");
    CCUBE_CHECK(tables_[0].size() == tables_[1].size(),
                "per-tree tables must have the same layer count");
    for (int t = 0; t < 2; ++t) {
        for (std::size_t i = 1; i < tables_[t].size(); ++i) {
            CCUBE_CHECK(tables_[t][i] >= tables_[t][i - 1],
                        "layer-chunk table must be non-decreasing");
        }
    }
}

void
DualGradientQueue::enqueueChunk(int tree)
{
    CCUBE_CHECK(tree == 0 || tree == 1, "bad tree index " << tree);
    semaphores_[tree].post();
    CCUBE_CHECK(semaphores_[tree].value() <= tables_[tree].back(),
                "tree " << tree << " delivered too many chunks");
}

void
DualGradientQueue::dequeueLayer(int layer)
{
    CCUBE_CHECK(layer == layerIndexCounter(),
                "layers must be dequeued in order");
    semaphores_[0].check(bound(0, layer));
    semaphores_[1].check(bound(1, layer));
    lic_.store(layer + 1, std::memory_order_release);
}

bool
DualGradientQueue::tryDequeueLayer(int layer)
{
    CCUBE_CHECK(layer == layerIndexCounter(),
                "layers must be dequeued in order");
    if (!semaphores_[0].checkNow(bound(0, layer)) ||
        !semaphores_[1].checkNow(bound(1, layer))) {
        return false;
    }
    lic_.store(layer + 1, std::memory_order_release);
    return true;
}

std::int64_t
DualGradientQueue::enqueued(int tree) const
{
    CCUBE_CHECK(tree == 0 || tree == 1, "bad tree index " << tree);
    return semaphores_[tree].value();
}

void
DualGradientQueue::resetIteration()
{
    CCUBE_CHECK(layerIndexCounter() == numLayers() ||
                    layerIndexCounter() == 0,
                "reset mid-iteration");
    semaphores_[0].reset();
    semaphores_[1].reset();
    lic_.store(0, std::memory_order_release);
}

std::int64_t
DualGradientQueue::bound(int tree, int layer) const
{
    CCUBE_CHECK(layer >= 0 && layer < numLayers(),
                "bad layer index " << layer);
    return tables_[tree][static_cast<std::size_t>(layer)];
}

} // namespace core
} // namespace ccube
