#ifndef CCUBE_SIMNET_DOUBLE_TREE_SCHEDULE_H_
#define CCUBE_SIMNET_DOUBLE_TREE_SCHEDULE_H_

/**
 * @file
 * Timed double-tree AllReduce: the paper's baseline B (two-phase) and
 * the C-Cube double tree (overlapped) on a conflict-aware embedding.
 *
 * Each tree carries half the payload concurrently. Tree 0 prefers
 * channel lane 0 and tree 1 lane 1, so on double-NVLink pairs the two
 * trees ride private channels; on shared single channels the FIFO
 * resource makes them contend — exactly the behaviour that renders
 * the naive embedding of Fig. 10(a) unable to overlap.
 */

#include "simnet/tree_schedule.h"
#include "topo/double_tree.h"

namespace ccube {
namespace simnet {

/**
 * Channel-lane assignment per tree and direction.
 *
 * kPointToPoint suits topologies where every logical edge owns a
 * dedicated physical pair (DGX-1): tree i keeps lane i for both
 * directions, so the two trees split double links. kSharedPort suits
 * switched fabrics where all of a node's flows exit through its
 * endpoint links: reduction rides lane 0 and broadcast lane 1, so an
 * early chunk's broadcast never queues behind reduction traffic
 * (preserving Observation #2's separate-channel premise).
 */
enum class LanePolicy {
    kPointToPoint,
    kSharedPort,
};

/**
 * Runs a double-tree AllReduce of @p total_bytes. Global chunk ids:
 * tree 0 carries [0, chunks_per_tree), tree 1 the rest.
 */
ScheduleResult
runDoubleTreeSchedule(sim::Simulation& simulation, Network& network,
                      const topo::DoubleTreeEmbedding& embedding,
                      double total_bytes, PhaseMode mode,
                      int chunks_per_tree,
                      LanePolicy lanes = LanePolicy::kPointToPoint,
                      ccl::Protocol proto = ccl::Protocol::kSimple);

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_DOUBLE_TREE_SCHEDULE_H_
