#include "sim/event_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace ccube {
namespace sim {

void
EventQueue::schedule(Time when, EventFn fn, int priority)
{
    CCUBE_CHECK(when >= now_, "cannot schedule event in the past: "
                                  << when << " < " << now_);
    heap_.push(Entry{when, priority, next_seq_++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() returns const&; the callback must be moved
    // out before pop, so copy the entry (std::function copy is cheap
    // relative to event work).
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.when;
    ++executed_;
    entry.fn();
    return true;
}

Time
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Time
EventQueue::runUntil(Time deadline)
{
    while (!heap_.empty() && heap_.top().when <= deadline)
        step();
    now_ = std::max(now_, deadline);
    return now_;
}

void
EventQueue::reset()
{
    heap_ = {};
    now_ = 0.0;
    next_seq_ = 0;
    executed_ = 0;
}

} // namespace sim
} // namespace ccube
