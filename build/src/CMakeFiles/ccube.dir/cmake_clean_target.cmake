file(REMOVE_RECURSE
  "libccube.a"
)
