#ifndef CCUBE_OBS_TRACE_H_
#define CCUBE_OBS_TRACE_H_

/**
 * @file
 * Chrome/Perfetto trace recording — the unified span substrate for
 * all three execution layers.
 *
 * Emits the `trace_event` JSON format (`ph:"X"` complete events plus
 * process/thread metadata) that `chrome://tracing` and Perfetto load
 * directly. Producers are grouped into pid namespaces:
 *
 *   - `pids::simNode(n)`  — DES network nodes; spans carry *simulated*
 *     time (channel occupancy, queue wait, multi-hop flows);
 *   - `pids::cclRank(r)`  — functional-runtime rank threads; spans
 *     carry *wall-clock* time since the recorder was enabled (mailbox
 *     post/wait, allreduce roles, barrier);
 *   - `pids::core()`      — analytic iteration timelines (backward /
 *     allreduce-chunk / forward phases, trainer iterations).
 *
 * Successive DES runs all start at simulated t = 0; the recorder keeps
 * a *sim epoch offset* that callers advance between runs so each run
 * lands after the previous one on the trace timeline.
 *
 * Overhead discipline: every producer checks `enabled()` (one relaxed
 * atomic load) before building an event; a disabled recorder costs one
 * branch per call site and records nothing.
 *
 * Memory discipline: retention is bounded. By default events land in a
 * vector capped at `capacity()` (overridable with setCapacity() or the
 * CCUBE_TRACE_CAPACITY environment variable); events beyond the cap
 * are counted in droppedEvents() instead of accumulating without
 * limit, so long sweeps with tracing left on cannot OOM. Alternatively
 * setFlightCapacity() swaps the backend for an obs::FlightRecorder
 * ring that keeps the most recent events (drop-oldest) — the
 * always-on "flight recorder" capture mode.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ccube {
namespace obs {

class FlightRecorder;
class MetricRegistry;

/** Pid namespaces separating the three producer layers in the UI. */
namespace pids {

/** Analytic iteration timeline (core::). */
constexpr int core() { return 1; }

/** DES network node @p node (simnet::). */
constexpr int simNode(int node) { return 100 + node; }

/** Functional-runtime rank @p rank (ccl::). */
constexpr int cclRank(int rank) { return 1000 + rank; }

} // namespace pids

/** Track (tid) used for multi-hop flow spans within a sim-node pid;
 *  channel occupancy spans use the channel id itself (small ints). */
constexpr int kFlowTrackBase = 1000;

/** One recorded event (complete span or instant). */
struct TraceEvent {
    std::string name;
    std::string cat;
    char phase = 'X'; ///< 'X' complete, 'i' instant
    int pid = 0;
    int tid = 0;
    double ts_us = 0.0;  ///< start, microseconds
    double dur_us = 0.0; ///< duration, microseconds ('X' only)
    std::vector<std::pair<std::string, double>> args;
};

/**
 * Thread-safe span/event recorder with Chrome trace JSON export.
 */
class TraceRecorder
{
  public:
    /** Default event cap when CCUBE_TRACE_CAPACITY is not set. */
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    TraceRecorder();
    ~TraceRecorder();
    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /**
     * The recorder the instrumentation hooks feed: the process-wide
     * instance, unless the calling thread has an active
     * ScopedTraceRedirect — the mechanism the sweep runner uses to give
     * each parallel task a private capture that is later absorb()ed
     * into the parent in deterministic task order.
     */
    static TraceRecorder& global();

    /** The process-wide instance, ignoring any thread redirect. */
    static TraceRecorder& process();

    /**
     * Merges @p other into this recorder as if its events had been
     * recorded here sequentially after everything recorded so far:
     * event timestamps are shifted by this recorder's current sim
     * epoch offset, process/thread names are adopted (theirs win on
     * collision, matching later-run-overwrites semantics), the drop
     * count is added, and this recorder's sim epoch advances by
     * @p other's accumulated offset. Ignores the enabled() gate; the
     * retention cap still applies. @p other is left unchanged.
     */
    void absorb(const TraceRecorder& other);

    /** Starts recording; resets the wall-clock epoch. */
    void enable();

    /** Stops recording (already-recorded events are kept). */
    void disable();

    /** True while recording. Producers gate on this before building
     *  events — the disabled cost is this single relaxed load. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Wall-clock microseconds since enable() (0 when disabled). */
    double wallNowUs() const;

    /** Records a complete ('X') span. Timestamps in microseconds;
     *  the caller owns the time domain (simulated or wall-clock). */
    void completeEvent(
        std::string_view name, std::string_view cat, int pid, int tid,
        double ts_us, double dur_us,
        std::initializer_list<std::pair<std::string_view, double>>
            args = {});

    /** Records an instant ('i') event. */
    void instantEvent(std::string_view name, std::string_view cat,
                      int pid, int tid, double ts_us);

    /** Records a fully-built event (producers that batch args). */
    void record(TraceEvent event);

    /** Names a pid group in the trace UI (metadata event). */
    void setProcessName(int pid, std::string_view name);

    /** Names a (pid, tid) track in the trace UI (metadata event). */
    void setThreadName(int pid, int tid, std::string_view name);

    /**
     * Offset (µs) added by DES producers to their simulated
     * timestamps, so that successive simulation runs serialize on the
     * trace timeline instead of stacking at t = 0.
     */
    double simOffsetUs() const;

    /** Advances the sim epoch past @p run_end_us (relative time of the
     *  run's completion). Call once after each simulation run. */
    void advanceSimEpoch(double run_end_us);

    /** Number of recorded events (metadata excluded). */
    std::size_t eventCount() const;

    /** Snapshot of all recorded events (metadata excluded); oldest
     *  first in flight mode. */
    std::vector<TraceEvent> snapshot() const;

    /** Drops all events, metadata, the sim epoch, and the dropped-
     *  event counter (capacity and backend mode are kept). */
    void clear();

    /** Writes `{"traceEvents": [...]}` Chrome trace JSON. */
    void writeJson(std::ostream& out) const;

    /**
     * Caps retained events at @p capacity (≥ 1). Events recorded past
     * the cap are dropped (newest-dropped) and counted. Leaves flight
     * mode if it was active.
     */
    void setCapacity(std::size_t capacity);

    /** Current retention cap (vector or ring, whichever is active). */
    std::size_t capacity() const;

    /**
     * Switches the backend to a FlightRecorder ring of @p capacity
     * events: recording never stops, the *oldest* events are evicted
     * when full. Existing events are migrated into the ring.
     */
    void setFlightCapacity(std::size_t capacity);

    /** True while the flight-ring backend is active. */
    bool flightMode() const;

    /**
     * Events lost to the retention bound: drop-newest rejections in
     * the default mode plus ring evictions in flight mode.
     */
    std::uint64_t droppedEvents() const;

    /** Exports `trace.events`, `trace.dropped_events` counters into
     *  @p registry (unconditionally — callers gate on their own). */
    void exportTo(MetricRegistry& registry) const;

  private:
    void push(TraceEvent&& event);

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_{};

    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::size_t capacity_ = kDefaultCapacity;
    std::uint64_t dropped_ = 0; ///< drop-newest count (default mode)
    std::unique_ptr<FlightRecorder> flight_; ///< non-null in flight mode
    std::map<int, std::string> process_names_;
    std::map<std::pair<int, int>, std::string> thread_names_;
    double sim_offset_us_ = 0.0;
};

/**
 * RAII thread-local redirect: while alive, TraceRecorder::global() on
 * this thread returns @p recorder instead of the process instance.
 * Redirects nest (restores the previous target on destruction); a
 * null recorder is a no-op. This is how sweep::run() gives each
 * worker-thread task a private capture.
 */
class ScopedTraceRedirect
{
  public:
    explicit ScopedTraceRedirect(TraceRecorder* recorder);
    ~ScopedTraceRedirect();

    ScopedTraceRedirect(const ScopedTraceRedirect&) = delete;
    ScopedTraceRedirect& operator=(const ScopedTraceRedirect&) = delete;

  private:
    TraceRecorder* previous_ = nullptr;
    bool active_ = false;
};

/**
 * RAII wall-clock span against a recorder: measures from construction
 * to destruction and records one complete event. A no-op (no clock
 * reads, no allocation) when the recorder is disabled at construction.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceRecorder& recorder, std::string_view name,
               std::string_view cat, int pid, int tid);

    /** Convenience: spans the global recorder. */
    ScopedSpan(std::string_view name, std::string_view cat, int pid,
               int tid);

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** Attaches a numeric argument to the span (recorded at close). */
    void arg(std::string_view key, double value);

  private:
    TraceRecorder* recorder_ = nullptr; ///< null when disabled
    std::string name_;
    std::string cat_;
    int pid_ = 0;
    int tid_ = 0;
    double start_us_ = 0.0;
    std::vector<std::pair<std::string, double>> args_;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_TRACE_H_
