#ifndef CCUBE_SIMNET_OVERLAPPED_TREE_SCHEDULE_H_
#define CCUBE_SIMNET_OVERLAPPED_TREE_SCHEDULE_H_

/**
 * @file
 * Convenience wrapper: timed overlapped tree AllReduce (C1).
 */

#include "simnet/tree_schedule.h"

namespace ccube {
namespace simnet {

/** Tree AllReduce with reduction-broadcast chaining (paper C1). */
ScheduleResult
runOverlappedTreeSchedule(sim::Simulation& simulation, Network& network,
                          const topo::TreeEmbedding& embedding,
                          double total_bytes, int num_chunks,
                          int lane = 0,
                          ccl::Protocol proto =
                              ccl::Protocol::kSimple);

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_OVERLAPPED_TREE_SCHEDULE_H_
