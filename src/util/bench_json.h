#ifndef CCUBE_UTIL_BENCH_JSON_H_
#define CCUBE_UTIL_BENCH_JSON_H_

/**
 * @file
 * Machine-readable benchmark output (BENCH_ccl.json).
 *
 * Records performance samples in a stable, diff- and before/after-
 * friendly schema so CI can archive the perf trajectory:
 *
 *   {"schema": "bench_ccl/v1",
 *    "records": [
 *      {"source": "micro_primitives", "kind": "allreduce_latency",
 *       "name": "double_tree", "mode": "persistent", "bytes": 65536,
 *       "ns_per_op": 123456.0, "extra": {...}},
 *      ...]}
 *
 * Several binaries contribute to one file: writeBenchRecords() in
 * append mode splices new records into the existing array (the file
 * format is fully controlled by this writer, so the splice is exact).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ccube {
namespace util {

/** One benchmark sample. */
struct BenchRecord {
    std::string source; ///< emitting binary, e.g. "micro_primitives"
    std::string kind;   ///< e.g. "allreduce_latency"
    std::string name;   ///< algorithm / strategy under test
    std::string mode;   ///< "persistent" or "spawn"
    std::int64_t bytes = 0;  ///< message size (0 when not applicable)
    double ns_per_op = 0.0;  ///< nanoseconds per operation
    std::map<std::string, double> extra; ///< free-form numeric fields
};

/**
 * Writes @p records to @p path in the bench_ccl/v1 schema. With
 * @p append true and an existing bench_ccl/v1 file at @p path, the
 * records are merged into its array; otherwise the file is replaced.
 */
void writeBenchRecords(const std::string& path,
                       const std::vector<BenchRecord>& records,
                       bool append);

/**
 * Reads a bench_ccl/v1 file back into records. Tolerates whitespace
 * variations but expects this writer's schema; unknown keys are
 * ignored. Returns an empty vector (with a warning) when @p path is
 * missing or not bench_ccl/v1.
 */
std::vector<BenchRecord> readBenchRecords(const std::string& path);

/** Resolves the output path: $CCUBE_BENCH_OUT or "BENCH_ccl.json". */
std::string benchOutputPath();

/** Resolves the output path: $CCUBE_BENCH_OUT or @p fallback. */
std::string benchOutputPath(const std::string& fallback);

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_BENCH_JSON_H_
