#include "obs/metrics.h"

#include <algorithm>
#include <ostream>

namespace ccube {
namespace obs {

namespace {

void
writeJsonKey(std::ostream& out, const std::string& s)
{
    out << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out << '\\';
        out << c;
    }
    out << '"';
}

} // namespace

namespace {

/** Per-thread redirect target installed by ScopedMetricsRedirect. */
thread_local MetricRegistry* t_redirect = nullptr;

} // namespace

MetricRegistry&
MetricRegistry::global()
{
    return t_redirect ? *t_redirect : process();
}

MetricRegistry&
MetricRegistry::process()
{
    static MetricRegistry registry;
    return registry;
}

void
MetricRegistry::absorb(const MetricRegistry& other)
{
    if (&other == this)
        return;
    std::scoped_lock guard(mutex_, other.mutex_);
    for (const auto& [name, value] : other.counters_)
        counters_[name] += value;
    for (const auto& [name, value] : other.gauges_)
        gauges_[name] = value;
    for (const auto& [name, stats] : other.histograms_)
        histograms_[name].merge(stats);
    for (const auto& [name, histogram] : other.quantile_histograms_)
        quantile_histograms_[name].merge(histogram);
}

ScopedMetricsRedirect::ScopedMetricsRedirect(MetricRegistry* registry)
{
    if (!registry)
        return;
    previous_ = t_redirect;
    t_redirect = registry;
    active_ = true;
}

ScopedMetricsRedirect::~ScopedMetricsRedirect()
{
    if (active_)
        t_redirect = previous_;
}

void
MetricRegistry::addCounter(const std::string& name, double delta)
{
    std::lock_guard<std::mutex> guard(mutex_);
    counters_[name] += delta;
}

double
MetricRegistry::counter(const std::string& name) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

void
MetricRegistry::setGauge(const std::string& name, double value)
{
    std::lock_guard<std::mutex> guard(mutex_);
    gauges_[name] = value;
}

double
MetricRegistry::gauge(const std::string& name) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

bool
MetricRegistry::hasGauge(const std::string& name) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return gauges_.count(name) != 0;
}

void
MetricRegistry::observe(const std::string& name, double sample)
{
    std::lock_guard<std::mutex> guard(mutex_);
    histograms_[name].add(sample);
}

void
MetricRegistry::mergeHistogram(const std::string& name,
                               const util::RunningStats& stats)
{
    std::lock_guard<std::mutex> guard(mutex_);
    histograms_[name].merge(stats);
}

util::RunningStats
MetricRegistry::histogram(const std::string& name) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? util::RunningStats{} : it->second;
}

void
MetricRegistry::observeQuantile(const std::string& name, double sample)
{
    std::lock_guard<std::mutex> guard(mutex_);
    quantile_histograms_[name].add(sample);
}

void
MetricRegistry::mergeQuantileHistogram(const std::string& name,
                                       const LogHistogram& histogram)
{
    std::lock_guard<std::mutex> guard(mutex_);
    quantile_histograms_[name].merge(histogram);
}

LogHistogram
MetricRegistry::quantileHistogram(const std::string& name) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = quantile_histograms_.find(name);
    return it == quantile_histograms_.end() ? LogHistogram{}
                                            : it->second;
}

std::vector<std::pair<std::string, std::string>>
MetricRegistry::names() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(counters_.size() + gauges_.size() +
                histograms_.size() + quantile_histograms_.size());
    for (const auto& [name, value] : counters_)
        out.emplace_back(name, "counter");
    for (const auto& [name, value] : gauges_)
        out.emplace_back(name, "gauge");
    for (const auto& [name, stats] : histograms_)
        out.emplace_back(name, "histogram");
    for (const auto& [name, histogram] : quantile_histograms_)
        out.emplace_back(name, "qhist");
    std::sort(out.begin(), out.end());
    return out;
}

void
MetricRegistry::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    quantile_histograms_.clear();
}

void
MetricRegistry::writeCsv(std::ostream& out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    out << "name,kind,count,value,mean,min,max,stddev\n";
    for (const auto& [name, value] : counters_)
        out << name << ",counter,," << value << ",,,,\n";
    for (const auto& [name, value] : gauges_)
        out << name << ",gauge,," << value << ",,,,\n";
    for (const auto& [name, stats] : histograms_) {
        out << name << ",histogram," << stats.count() << ","
            << stats.sum() << "," << stats.mean() << ",";
        if (stats.count() > 0)
            out << stats.min() << "," << stats.max();
        else
            out << ",";
        out << "," << stats.stddev() << "\n";
    }
    // Quantile histograms reuse the fixed columns: `value` carries
    // p99 (the SLO-relevant figure); p50/p999 live in the JSON export.
    for (const auto& [name, histogram] : quantile_histograms_) {
        out << name << ",qhist," << histogram.count() << ","
            << histogram.quantile(0.99) << "," << histogram.mean()
            << ",";
        if (!histogram.empty())
            out << histogram.min() << "," << histogram.max();
        else
            out << ",";
        out << ",\n";
    }
}

void
MetricRegistry::writeJson(std::ostream& out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    out << "{\n";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",\n";
        first = false;
    };
    for (const auto& [name, value] : counters_) {
        sep();
        writeJsonKey(out, name);
        out << ": {\"kind\": \"counter\", \"value\": " << value << "}";
    }
    for (const auto& [name, value] : gauges_) {
        sep();
        writeJsonKey(out, name);
        out << ": {\"kind\": \"gauge\", \"value\": " << value << "}";
    }
    for (const auto& [name, stats] : histograms_) {
        sep();
        writeJsonKey(out, name);
        out << ": {\"kind\": \"histogram\", \"count\": "
            << stats.count() << ", \"sum\": " << stats.sum()
            << ", \"mean\": " << stats.mean();
        if (stats.count() > 0) {
            out << ", \"min\": " << stats.min()
                << ", \"max\": " << stats.max();
        }
        out << ", \"stddev\": " << stats.stddev() << "}";
    }
    for (const auto& [name, histogram] : quantile_histograms_) {
        sep();
        writeJsonKey(out, name);
        out << ": {\"kind\": \"qhist\", \"count\": "
            << histogram.count() << ", \"sum\": " << histogram.sum()
            << ", \"mean\": " << histogram.mean();
        if (!histogram.empty()) {
            out << ", \"min\": " << histogram.min()
                << ", \"max\": " << histogram.max()
                << ", \"p50\": " << histogram.quantile(0.50)
                << ", \"p99\": " << histogram.quantile(0.99)
                << ", \"p999\": " << histogram.quantile(0.999);
        }
        out << "}";
    }
    out << "\n}\n";
}

} // namespace obs
} // namespace ccube
