/**
 * @file
 * GPU device-model tests: SM tax of forwarding kernels (Fig. 15's
 * mechanism) and simulated stream semantics.
 */

#include <gtest/gtest.h>

#include "dnn/catalog.h"
#include "gpu/device.h"
#include "gpu/stream.h"

namespace ccube {
namespace gpu {
namespace {

TEST(Device, NoKernelsNoTax)
{
    Device device(0, {});
    EXPECT_DOUBLE_EQ(device.forwardingTax(), 0.0);
    EXPECT_DOUBLE_EQ(device.computeSlowdown(), 1.0);
}

TEST(Device, TaxAccumulatesPerKernel)
{
    Device device(3, {});
    device.hostForwardingKernels(2, 0.02);
    EXPECT_DOUBLE_EQ(device.forwardingTax(), 0.04);
    EXPECT_NEAR(device.computeSlowdown(), 1.0 / 0.96, 1e-12);
    device.hostForwardingKernels(1, 0.02);
    EXPECT_DOUBLE_EQ(device.forwardingTax(), 0.06);
}

TEST(Device, TaxedComputeModelIsSlower)
{
    const dnn::NetworkModel net = dnn::buildZfNet();
    Device clean(0, {});
    Device taxed(1, {});
    taxed.hostForwardingKernels(2, 0.02);
    const double t_clean = clean.computeModel().forwardTime(net, 32);
    const double t_taxed = taxed.computeModel().forwardTime(net, 32);
    EXPECT_GT(t_taxed, t_clean);
    // Compute-bound layers slow by exactly the slowdown factor;
    // memory-bound terms and overheads dilute it slightly.
    EXPECT_LT(t_taxed, t_clean * taxed.computeSlowdown() + 1e-9);
}

TEST(Device, RejectsAbsurdTax)
{
    Device device(0, {});
    EXPECT_DEATH(device.hostForwardingKernels(1, 1.5), "out of range");
    EXPECT_DEATH(device.hostForwardingKernels(200, 0.01),
                 "whole GPU");
}

TEST(Stream, KernelsExecuteInOrder)
{
    sim::Simulation sim;
    Stream stream(sim, "compute");
    std::vector<double> done;
    stream.launch(1.0, [&]() { done.push_back(sim.now()); });
    stream.launch(2.0, [&]() { done.push_back(sim.now()); });
    stream.launch(0.5, [&]() { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_DOUBLE_EQ(done[0], 1.0);
    EXPECT_DOUBLE_EQ(done[1], 3.0);
    EXPECT_DOUBLE_EQ(done[2], 3.5);
    EXPECT_DOUBLE_EQ(stream.busyTime(), 3.5);
    EXPECT_EQ(stream.launches(), 3u);
}

TEST(Stream, TwoStreamsRunConcurrently)
{
    // Communication and computation streams on one GPU overlap —
    // the property C-Cube's chaining exploits.
    sim::Simulation sim;
    Stream compute(sim, "compute");
    Stream comm(sim, "comm");
    double compute_done = -1.0;
    double comm_done = -1.0;
    compute.launch(2.0, [&]() { compute_done = sim.now(); });
    comm.launch(2.0, [&]() { comm_done = sim.now(); });
    const double end = sim.run();
    EXPECT_DOUBLE_EQ(compute_done, 2.0);
    EXPECT_DOUBLE_EQ(comm_done, 2.0);
    EXPECT_DOUBLE_EQ(end, 2.0); // not 4.0: true overlap
}

TEST(Stream, ZeroDurationKernelAllowed)
{
    sim::Simulation sim;
    Stream stream(sim, "s");
    bool done = false;
    stream.launch(0.0, [&]() { done = true; });
    sim.run();
    EXPECT_TRUE(done);
}

} // namespace
} // namespace gpu
} // namespace ccube
