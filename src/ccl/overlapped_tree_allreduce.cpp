#include "ccl/overlapped_tree_allreduce.h"

#include <utility>

namespace ccube {
namespace ccl {

AllReduceTrace
overlappedTreeAllReduce(Communicator& comm, RankBuffers& buffers,
                        const topo::TreeEmbedding& embedding,
                        int num_chunks, TreeFlowIds flows,
                        Protocol proto, AllReduceTrace::Observer observer,
                        const SkipMask& resume)
{
    return treeAllReduce(comm, buffers, embedding, num_chunks,
                         TreePhaseMode::kOverlapped, flows,
                         std::move(observer), proto, resume);
}

} // namespace ccl
} // namespace ccube
