#include "core/trainer.h"

#include <string>

#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace core {

TrainingRunResult
Trainer::run(Mode mode, const IterationConfig& config,
             int iterations) const
{
    CCUBE_CHECK(iterations >= 1, "need at least one iteration");

    const IterationResult steady = scheduler_.run(mode, config);

    // Cold start: iteration 0 has no previous collective to chain
    // against, so its forward runs unchained; its backward and
    // AllReduce then feed iteration 1. The cold iteration costs
    // fwd + bwd; the collective's cost lands in the next period.
    const double cold = steady.forward_time + steady.backward_time;

    TrainingRunResult result;
    result.iterations = iterations;
    result.cold_start_time = cold;
    result.steady_iteration_time = steady.iteration_time;
    result.total_time =
        cold + static_cast<double>(iterations - 1) *
                   steady.iteration_time;

    const double samples_per_iteration =
        static_cast<double>(config.batch) *
        static_cast<double>(num_gpus_);
    result.samples_per_second =
        samples_per_iteration * static_cast<double>(iterations) /
        result.total_time;

    // Single-GPU baseline processes `batch` samples in fwd+bwd with
    // no communication at all.
    const double single_gpu_rate =
        static_cast<double>(config.batch) /
        (steady.forward_time + steady.backward_time);
    result.scaling_efficiency =
        result.samples_per_second /
        (single_gpu_rate * static_cast<double>(num_gpus_));

    // One span per simulated iteration on the trainer track, so a
    // `--trace-out=` capture shows the cold start next to the steady
    // periods.
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        const int pid = obs::pids::core();
        recorder.setThreadName(pid, kTrainerTrack,
                               std::string("trainer ") + modeName(mode));
        recorder.completeEvent("iter 0 (cold)", "core.trainer", pid,
                               kTrainerTrack, 0.0, cold * 1e6,
                               {{"batch", double(config.batch)}});
        for (int i = 1; i < iterations; ++i) {
            const double start =
                cold + static_cast<double>(i - 1) *
                           steady.iteration_time;
            recorder.completeEvent(
                "iter " + std::to_string(i), "core.trainer", pid,
                kTrainerTrack, start * 1e6,
                steady.iteration_time * 1e6,
                {{"batch", double(config.batch)}});
        }
    }
    return result;
}

} // namespace core
} // namespace ccube
