#include "topo/embedding_search.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "sweep/sweep.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ccube {
namespace topo {

namespace {

/**
 * Immutable per-graph lookup shared by all attempts: a representative
 * channel id per directed pair (flattened src*N+dst), the link-count
 * capacity stored against that id, and per-node neighbor lists. Built
 * once so the per-attempt Budget is a plain flat array.
 */
class ChannelIndex
{
  public:
    explicit ChannelIndex(const Graph& graph)
        : nodes_(graph.nodeCount()),
          rep_(static_cast<std::size_t>(nodes_) * nodes_, -1),
          cap_(static_cast<std::size_t>(graph.channelCount()), 0),
          neighbors_(static_cast<std::size_t>(nodes_))
    {
        for (NodeId src = 0; src < nodes_; ++src) {
            for (int id : graph.outChannels(src)) {
                const ChannelDesc& ch = graph.channel(id);
                int& slot = rep_[pairSlot(src, ch.dst)];
                if (slot < 0) {
                    slot = id;
                    cap_[static_cast<std::size_t>(id)] =
                        graph.linkCount(src, ch.dst);
                }
            }
            neighbors_[static_cast<std::size_t>(src)] =
                graph.neighbors(src);
        }
    }

    /** Representative channel id for src → dst, or -1 when absent. */
    int
    repChannel(NodeId src, NodeId dst) const
    {
        return rep_[pairSlot(src, dst)];
    }

    int
    capacity(int rep) const
    {
        return cap_[static_cast<std::size_t>(rep)];
    }

    int channelCount() const { return static_cast<int>(cap_.size()); }

    const std::vector<NodeId>&
    neighbors(NodeId node) const
    {
        return neighbors_[static_cast<std::size_t>(node)];
    }

  private:
    std::size_t
    pairSlot(NodeId src, NodeId dst) const
    {
        return static_cast<std::size_t>(src) * nodes_ +
               static_cast<std::size_t>(dst);
    }

    int nodes_;
    std::vector<int> rep_; ///< directed pair → representative channel
    std::vector<int> cap_; ///< by channel id: linkCount of its pair
    std::vector<std::vector<NodeId>> neighbors_;
};

/** Remaining per-direction channel budget during construction. */
class Budget
{
  public:
    explicit Budget(const ChannelIndex& index)
        : index_(index),
          used_(static_cast<std::size_t>(index.channelCount()), 0)
    {
    }

    int
    remaining(NodeId src, NodeId dst) const
    {
        const int rep = index_.repChannel(src, dst);
        if (rep < 0)
            return 0;
        return index_.capacity(rep) -
               used_[static_cast<std::size_t>(rep)];
    }

    /** A logical edge on route r consumes both directions of every
     *  segment (the overlapped algorithm drives up and down at once). */
    bool
    canTake(const Route& route) const
    {
        for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
            if (remaining(route.hops[i], route.hops[i + 1]) < 1 ||
                remaining(route.hops[i + 1], route.hops[i]) < 1) {
                return false;
            }
        }
        return true;
    }

    void
    take(const Route& route)
    {
        for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
            ++used_[static_cast<std::size_t>(
                index_.repChannel(route.hops[i], route.hops[i + 1]))];
            ++used_[static_cast<std::size_t>(
                index_.repChannel(route.hops[i + 1], route.hops[i]))];
        }
    }

  private:
    const ChannelIndex& index_;
    std::vector<int> used_; ///< flat, indexed by channel id
};

/**
 * Candidate routes from @p from to @p to within the hop budget and
 * channel budget: the direct channel if present, else all two-hop
 * GPU detours with available capacity.
 */
std::vector<Route>
candidateRoutes(const ChannelIndex& index, const Budget& budget,
                NodeId from, NodeId to, int max_hops)
{
    std::vector<Route> routes;
    Route direct{{from, to}};
    if (budget.canTake(direct))
        routes.push_back(std::move(direct));
    if (max_hops >= 2) {
        for (NodeId mid : index.neighbors(from)) {
            if (mid == to)
                continue;
            Route detour{{from, mid, to}};
            if (budget.canTake(detour))
                routes.push_back(std::move(detour));
        }
    }
    return routes;
}

/**
 * Grows one spanning binary tree from @p root, preferring direct
 * edges, consuming @p budget. @p cost is advanced by the hop count of
 * every accepted route; growth aborts (nullopt) as soon as the
 * optimistic completion bound — current cost plus one hop for each
 * still-unplaced rank — exceeds @p cost_cap, so attempts that cannot
 * beat an already-found embedding stop early. Returns nullopt when
 * the tree cannot span all ranks within the budget.
 */
std::optional<TreeEmbedding>
growTree(const ChannelIndex& index, Budget& budget, int num_ranks,
         NodeId root, util::Rng& rng, int max_hops, int cost_cap,
         int& cost)
{
    BinaryTree tree(num_ranks);
    tree.setRoot(root);
    TreeEmbedding embedding(std::move(tree));

    std::vector<bool> in_tree(static_cast<std::size_t>(num_ranks),
                              false);
    in_tree[static_cast<std::size_t>(root)] = true;
    std::vector<int> arity(static_cast<std::size_t>(num_ranks), 0);
    std::vector<NodeId> frontier{root};
    int placed = 1;

    while (placed < num_ranks) {
        if (cost + (num_ranks - placed) > cost_cap)
            return std::nullopt; // cannot beat the incumbent
        // Collect all feasible (parent, child, route) extensions.
        struct Extension {
            NodeId parent;
            NodeId child;
            Route route;
        };
        std::vector<Extension> extensions;
        for (NodeId parent : frontier) {
            if (arity[static_cast<std::size_t>(parent)] >= 2)
                continue;
            for (NodeId child = 0; child < num_ranks; ++child) {
                if (in_tree[static_cast<std::size_t>(child)])
                    continue;
                for (Route& route : candidateRoutes(index, budget,
                                                    parent, child,
                                                    max_hops)) {
                    extensions.push_back(
                        Extension{parent, child, std::move(route)});
                }
            }
        }
        if (extensions.empty())
            return std::nullopt;
        // Prefer direct routes; among equals pick randomly.
        std::stable_sort(extensions.begin(), extensions.end(),
                         [](const Extension& a, const Extension& b) {
                             return a.route.hopCount() <
                                    b.route.hopCount();
                         });
        const int best_hops = extensions.front().route.hopCount();
        std::size_t pool = 0;
        while (pool < extensions.size() &&
               extensions[pool].route.hopCount() == best_hops) {
            ++pool;
        }
        Extension& pick = extensions[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(pool) - 1))];

        budget.take(pick.route);
        cost += pick.route.hopCount();
        embedding.tree.addEdge(pick.parent, pick.child);
        embedding.routes.push_back(std::move(pick.route));
        in_tree[static_cast<std::size_t>(pick.child)] = true;
        ++arity[static_cast<std::size_t>(pick.parent)];
        frontier.push_back(pick.child);
        ++placed;
    }
    // Routes were appended in insertion order; edges() returns BFS
    // order, so rebuild the route list aligned with edges().
    std::map<std::pair<NodeId, NodeId>, Route> by_edge;
    {
        const auto edges = embedding.tree.edges();
        for (const Route& route : embedding.routes)
            by_edge[{route.hops.front(), route.hops.back()}] = route;
        std::vector<Route> ordered;
        for (const auto& [parent, child] : edges)
            ordered.push_back(by_edge.at({parent, child}));
        embedding.routes = std::move(ordered);
    }
    return embedding;
}

/** One restart: outcome and its total route-hop cost. */
struct AttemptResult {
    std::optional<DoubleTreeEmbedding> embedding;
    int cost = 0;
};

/** RNG stream for one attempt, independent of all other attempts. */
util::Rng
attemptRng(std::uint64_t seed, int attempt)
{
    return util::Rng(
        seed ^ (0x9E3779B97F4A7C15ull *
                (static_cast<std::uint64_t>(attempt) + 1)));
}

AttemptResult
runAttempt(const Graph& graph, const ChannelIndex& index,
           int num_ranks, const EmbeddingSearchOptions& options,
           int attempt, int cost_cap)
{
    AttemptResult result;
    util::Rng rng = attemptRng(options.seed, attempt);
    Budget budget(index);
    const NodeId root0 =
        static_cast<NodeId>(rng.uniformInt(0, num_ranks - 1));
    NodeId root1 =
        static_cast<NodeId>(rng.uniformInt(0, num_ranks - 1));
    if (root1 == root0)
        root1 = (root1 + 1) % num_ranks;

    int cost = 0;
    auto tree0 = growTree(index, budget, num_ranks, root0, rng,
                          options.max_detour_hops, cost_cap, cost);
    if (!tree0)
        return result;
    // The second tree adds at least one hop per non-root rank.
    if (cost + (num_ranks - 1) > cost_cap)
        return result;
    auto tree1 = growTree(index, budget, num_ranks, root1, rng,
                          options.max_detour_hops, cost_cap, cost);
    if (!tree1)
        return result;

    DoubleTreeEmbedding candidate(std::move(*tree0),
                                  std::move(*tree1));
    if (!isConflictFree(graph, candidate))
        return result;
    result.embedding = std::move(candidate);
    result.cost = cost;
    return result;
}

/** Attempts per parallel batch; fixed so results never depend on the
 *  worker count (the prune bound only advances between batches). */
constexpr int kAttemptBatch = 32;

} // namespace

std::optional<DoubleTreeEmbedding>
findConflictFreeDoubleTree(const Graph& graph,
                           const EmbeddingSearchOptions& options)
{
    const int num_ranks =
        options.num_ranks > 0 ? options.num_ranks : graph.nodeCount();
    CCUBE_CHECK(num_ranks >= 2, "need at least two ranks");
    CCUBE_CHECK(num_ranks <= graph.nodeCount(),
                "more ranks than graph nodes");

    const ChannelIndex index(graph);
    sweep::Options pool;
    pool.jobs = options.jobs;
    pool.capture_obs = false; // compute-only; nothing records

    std::optional<DoubleTreeEmbedding> best;
    int best_cost = std::numeric_limits<int>::max();
    for (int base = 0; base < options.max_attempts;
         base += kAttemptBatch) {
        const int batch =
            std::min(kAttemptBatch, options.max_attempts - base);
        // Prune against the best of *previous* batches only: the bound
        // is fixed before the batch starts, so concurrent attempts
        // cannot observe each other and the outcome is independent of
        // scheduling order.
        const int cost_cap = best ? best_cost - 1
                                  : std::numeric_limits<int>::max();
        std::vector<AttemptResult> results(
            static_cast<std::size_t>(batch));
        sweep::runIndexed(
            pool, static_cast<std::size_t>(batch),
            [&](std::size_t i) {
                results[i] = runAttempt(graph, index, num_ranks,
                                        options,
                                        base + static_cast<int>(i),
                                        cost_cap);
            });
        // Merge in attempt order: cheapest cost, earliest index wins.
        for (AttemptResult& result : results) {
            if (result.embedding && result.cost < best_cost) {
                best_cost = result.cost;
                best = std::move(result.embedding);
            }
        }
        if (best && !options.exhaustive)
            return best;
    }
    return best;
}

} // namespace topo
} // namespace ccube
