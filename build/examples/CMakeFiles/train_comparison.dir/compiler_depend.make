# Empty compiler generated dependencies file for train_comparison.
# This may be replaced when dependencies are built.
