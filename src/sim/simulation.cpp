#include "sim/simulation.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/monitor.h"

namespace ccube {
namespace sim {

namespace {

/**
 * Drains @p queue in monitor-interval slices, firing a heartbeat
 * snapshot at each tick boundary. Events scheduled exactly on a tick
 * execute before the tick's snapshot (runUntil is inclusive), so a
 * heartbeat always observes a consistent post-event state.
 */
Time
runWithHeartbeats(EventQueue& queue, obs::Monitor& monitor,
                  double interval)
{
    Time next = queue.now() + interval;
    while (!queue.empty()) {
        queue.runUntil(next);
        if (queue.empty())
            break;
        monitor.heartbeat(next);
        next += interval;
    }
    return queue.now();
}

} // namespace

Time
Simulation::run()
{
    obs::MetricRegistry& registry = obs::MetricRegistry::global();
    obs::Monitor& monitor = obs::Monitor::global();
    const bool monitored = monitor.enabled();
    if (!registry.enabled() && !monitored)
        return queue_.run();

    double heartbeat_interval = 0.0;
    if (monitored) {
        monitor.beginRun();
        heartbeat_interval = monitor.interval();
    }
    const std::uint64_t before = queue_.executedCount();
    const auto start = std::chrono::steady_clock::now();
    const Time end =
        heartbeat_interval > 0.0
            ? runWithHeartbeats(queue_, monitor, heartbeat_interval)
            : queue_.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (registry.enabled()) {
        const double events =
            static_cast<double>(queue_.executedCount() - before);
        registry.addCounter("sim.events", events);
        if (elapsed.count() > 0.0 && events > 0.0)
            registry.observe("sim.events_per_sec",
                             events / elapsed.count());
    }
    return end;
}

void
Simulation::after(Time delay, EventFn fn, int priority)
{
    queue_.schedule(queue_.now() + delay, std::move(fn), priority);
}

void
Simulation::at(Time when, EventFn fn, int priority)
{
    queue_.schedule(when, std::move(fn), priority);
}

void
Simulation::addStat(const std::string& name, double delta)
{
    stats_[name] += delta;
}

double
Simulation::stat(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

void
Simulation::reset()
{
    queue_.reset();
    stats_.clear();
}

} // namespace sim
} // namespace ccube
