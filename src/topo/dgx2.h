#ifndef CCUBE_TOPO_DGX2_H_
#define CCUBE_TOPO_DGX2_H_

/**
 * @file
 * NVIDIA DGX-2 (NVSwitch) topology builder — the paper's future-work
 * direction ("it remains to be seen how alternative physical
 * topologies in large-scale systems can be exploited for efficient
 * collective communications", §VI).
 *
 * The DGX-2 connects 16 V100 GPUs through 6 NVSwitch planes: every
 * GPU has one NVLink into each plane, and any GPU pair can talk at
 * full link bandwidth through any plane (non-blocking). Consequences
 * for C-Cube:
 *   - no pair is direct, every logical edge routes GPU→switch→GPU
 *     (cut-through at the switch);
 *   - there are effectively six parallel lanes per GPU, so a double
 *     tree (or even several trees) never conflicts — the conflict
 *     problem of the hybrid mesh-cube disappears;
 *   - detours are unnecessary: the switch plane *is* the detour.
 */

#include "topo/double_tree.h"
#include "topo/graph.h"

namespace ccube {
namespace topo {

/** Parameters of the DGX-2 interconnect model. */
struct Dgx2Params {
    int num_gpus = 16;               ///< fixed by the platform
    int num_switch_planes = 6;       ///< NVSwitch planes
    double nvlink_bandwidth = 25e9;  ///< bytes/s per direction per link
    double nvlink_latency = 4.6e-6;  ///< α per transfer, seconds
    double switch_latency = 0.3e-6;  ///< extra NVSwitch traversal
};

/**
 * Builds the DGX-2. GPU nodes are ids 0..15; switch planes follow
 * (ids 16..21), marked as switches so transfers cut through.
 */
Graph makeDgx2(const Dgx2Params& params = {});

/** Node id of switch plane @p plane (0-based). */
inline NodeId
dgx2SwitchNode(const Dgx2Params& params, int plane)
{
    return params.num_gpus + plane;
}

/**
 * C-Cube double tree on the DGX-2: mirrored trees over the 16 GPUs
 * with every logical edge routed through a dedicated NVSwitch plane
 * per tree (tree 0 → plane 0, tree 1 → plane 1). Because each tree
 * owns a plane, the embedding is conflict-free with four planes to
 * spare — the NVSwitch generation dissolves the channel-conflict
 * problem the hybrid mesh-cube forced the paper to solve.
 */
DoubleTreeEmbedding makeDgx2DoubleTree(const Graph& dgx2,
                                       const Dgx2Params& params = {});

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_DGX2_H_
