#ifndef CCUBE_CCL_ALGORITHM_TASKS_H_
#define CCUBE_CCL_ALGORITHM_TASKS_H_

/**
 * @file
 * RankTask builders for the collective algorithms — the resumable
 * (state-machine) form of the per-rank bodies in primitives.cpp,
 * ring_allreduce.cpp, tree_allreduce.cpp and double_tree_allreduce.cpp.
 *
 * Every builder constructs the complete task set of one collective up
 * front: one task per rank role (ring body; tree reducer/broadcaster;
 * the second tree of a double tree) plus one ForwardTask per detour
 * forwarding rule — the state-machine analog of the helper threads
 * thread-per-rank mode submits. Mailbox plans are resolved at build
 * time, exactly like the thread bodies hoist them before the chunk
 * loop.
 *
 * Protocol fidelity: each task performs the same mailbox operations in
 * the same per-rank order as its blocking counterpart (same Fig. 11
 * post/wait sequence, same reduction order over children, same chunk
 * tags), so float results are byte-identical across engine modes and
 * FaultInjector at-op indices keep their thread-mode meaning.
 *
 * Wire protocol: every builder takes a ccl::Protocol. Under kLL the
 * mailbox never posts a semaphore, so a task cannot park on one — a
 * failed LL try* op polls the abort epoch and returns kContinue
 * (cooperative spinning across the pool) instead of registering a
 * waiter that would never be woken.
 */

#include <memory>
#include <vector>

#include "ccl/allreduce.h"
#include "ccl/communicator.h"
#include "ccl/state_machine.h"
#include "ccl/tree_allreduce.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace ccl {

/** Which phases of the ring protocol the tasks execute. */
enum class RingPhase {
    kReduceScatter, ///< ringReduceScatter primitive
    kAllGather,     ///< ringAllGather primitive
    kAllReduce,     ///< full AllReduce (RS + AG, completion recorded)
};

/**
 * One task per rank running the ring body. @p trace is recorded only
 * for RingPhase::kAllReduce (may be null otherwise). @p resume skips
 * chunks already final at every rank (see ccl::ChunkCheckpoint); every
 * task copies the mask, so the caller's may go out of scope.
 */
std::vector<std::unique_ptr<RankTask>>
buildRingTasks(Communicator& comm, RankBuffers& buffers,
               const topo::RingEmbedding& ring, RingPhase phase,
               AllReduceTrace* trace,
               Protocol proto = Protocol::kSimple,
               const SkipMask& resume = {});

/** Which direction(s) of the tree protocol the tasks execute. */
enum class TreeDirection {
    kReduce,    ///< treeReduce primitive (up only)
    kBroadcast, ///< treeBroadcast primitive (down only)
    kAllReduce, ///< full AllReduce (reduction chained into broadcast)
};

/**
 * Appends the task set of one tree instance operating on the buffer
 * region [region_offset, region_offset + region_size) of every rank:
 * per-rank tree tasks (two per non-root rank in overlapped mode — the
 * concurrent reducer/broadcaster pipelines) plus forwarders for the
 * embedding's detour rules. Chunk ids recorded into @p trace (when
 * non-null, kAllReduce only) are offset by @p chunk_id_offset;
 * @p label names the main tree tasks in watchdog blame ("tree0",
 * "tree1", ...; a string literal, stored by pointer). The one-
 * direction primitives pass the same flow for both TreeFlowIds slots.
 * @p resume (consulted at global ids, i.e. after adding
 * @p chunk_id_offset) drops already-final chunks from every pipeline
 * and forwarder of this tree.
 */
void appendTreeTasks(std::vector<std::unique_ptr<RankTask>>& out,
                     Communicator& comm, RankBuffers& buffers,
                     const topo::TreeEmbedding& embedding,
                     std::size_t region_offset,
                     std::size_t region_size, const ChunkSplit& split,
                     TreePhaseMode mode, TreeFlowIds flows,
                     TreeDirection direction, AllReduceTrace* trace,
                     int chunk_id_offset, const char* label,
                     Protocol proto = Protocol::kSimple,
                     const SkipMask& resume = {});

/**
 * Full double-tree AllReduce task set: tree0 over the lower buffer
 * half, tree1 over the upper, with the standard flow-id split.
 */
std::vector<std::unique_ptr<RankTask>>
buildDoubleTreeTasks(Communicator& comm, RankBuffers& buffers,
                     const topo::DoubleTreeEmbedding& embedding,
                     int chunks_per_tree, TreePhaseMode mode,
                     AllReduceTrace& trace,
                     Protocol proto = Protocol::kSimple,
                     const SkipMask& resume = {});

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_ALGORITHM_TASKS_H_
