# Empty compiler generated dependencies file for ccl_sync_test.
# This may be replaced when dependencies are built.
