/**
 * @file
 * Tests for the P2P mailbox (receive-buffer model) and communicator.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/mailbox.h"

namespace ccube {
namespace ccl {
namespace {

TEST(Mailbox, SendRecvRoundTrip)
{
    Mailbox box(2);
    const std::vector<float> payload{1.0f, 2.0f, 3.0f};
    box.send(payload, /*tag=*/7);
    std::vector<float> out;
    EXPECT_EQ(box.recv(out), 7);
    EXPECT_EQ(out, payload);
    EXPECT_EQ(box.delivered(), 1);
}

TEST(Mailbox, RecvIntoOverwrites)
{
    Mailbox box(1);
    box.send(std::vector<float>{5.0f, 6.0f}, 1);
    std::vector<float> out{0.0f, 0.0f};
    EXPECT_EQ(box.recvInto(out), 1);
    EXPECT_EQ(out, (std::vector<float>{5.0f, 6.0f}));
}

TEST(Mailbox, RecvReduceAccumulates)
{
    Mailbox box(1);
    box.send(std::vector<float>{1.0f, 2.0f}, 0);
    std::vector<float> acc{10.0f, 20.0f};
    box.recvReduce(acc);
    EXPECT_EQ(acc, (std::vector<float>{11.0f, 22.0f}));
}

TEST(Mailbox, PreservesFifoOrderAcrossThreads)
{
    Mailbox box(3);
    constexpr int kChunks = 200;
    std::thread producer([&]() {
        for (int c = 0; c < kChunks; ++c)
            box.send(std::vector<float>{static_cast<float>(c)}, c);
    });
    for (int c = 0; c < kChunks; ++c) {
        std::vector<float> out;
        const int tag = box.recv(out);
        EXPECT_EQ(tag, c);
        EXPECT_EQ(out[0], static_cast<float>(c));
    }
    producer.join();
    EXPECT_EQ(box.delivered(), kChunks);
}

TEST(Mailbox, BackpressureWithOneSlot)
{
    // With a single receive buffer, the producer can run at most one
    // chunk ahead of the consumer — flow control via post/wait.
    Mailbox box(1);
    constexpr int kChunks = 100;
    std::atomic<int> sent{0};
    std::thread producer([&]() {
        for (int c = 0; c < kChunks; ++c) {
            box.send(std::vector<float>{0.0f}, c);
            sent.fetch_add(1);
        }
    });
    std::vector<float> out;
    for (int c = 0; c < kChunks; ++c) {
        box.recv(out);
        EXPECT_LE(sent.load(), c + 2);
    }
    producer.join();
}

TEST(Communicator, MailboxIdentityPerFlow)
{
    Communicator comm(4);
    Mailbox& a = comm.mailbox(0, 1, kFlowTree0Reduce);
    Mailbox& b = comm.mailbox(0, 1, kFlowTree0Reduce);
    Mailbox& c = comm.mailbox(0, 1, kFlowTree0Broadcast);
    Mailbox& d = comm.mailbox(1, 0, kFlowTree0Reduce);
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    EXPECT_NE(&a, &d);
}

TEST(Communicator, RunExecutesEveryRank)
{
    Communicator comm(8);
    std::vector<std::atomic<int>> hits(8);
    comm.run([&](int rank) { hits[static_cast<std::size_t>(rank)]++; });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Communicator, BarrierSynchronizes)
{
    Communicator comm(4);
    std::atomic<int> before{0};
    std::atomic<bool> violated{false};
    comm.run([&](int) {
        before.fetch_add(1);
        comm.barrier();
        if (before.load() != 4)
            violated.store(true);
    });
    EXPECT_FALSE(violated.load());
}

TEST(Communicator, BarrierReusable)
{
    Communicator comm(3);
    std::atomic<int> phase_sum{0};
    std::atomic<bool> violated{false};
    comm.run([&](int) {
        for (int phase = 0; phase < 5; ++phase) {
            phase_sum.fetch_add(1);
            comm.barrier();
            if (phase_sum.load() < (phase + 1) * 3)
                violated.store(true);
            comm.barrier();
        }
    });
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(phase_sum.load(), 15);
}

} // namespace
} // namespace ccl
} // namespace ccube
