#ifndef CCUBE_TOPO_DOUBLE_TREE_H_
#define CCUBE_TOPO_DOUBLE_TREE_H_

/**
 * @file
 * Double binary trees (Sanders et al.) and the C-Cube DGX-1 embedding.
 *
 * A double tree splits the message across two trees to use full
 * bandwidth. The paper's key physical-topology observation (§IV-A):
 * naively, overlapping reduction and broadcast in *both* trees
 * oversubscribes channels that the two trees share in opposite
 * directions; on the DGX-1 this can be resolved by placing the shared
 * pairs on double NVLinks. The conflict analysis here verifies that
 * property (DESIGN.md invariant #8).
 */

#include <map>
#include <utility>
#include <vector>

#include "topo/graph.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace topo {

/** Two embedded trees, each carrying half the message. */
struct DoubleTreeEmbedding {
    TreeEmbedding tree0;
    TreeEmbedding tree1;

    DoubleTreeEmbedding(TreeEmbedding t0, TreeEmbedding t1)
        : tree0(std::move(t0)), tree1(std::move(t1))
    {
    }
};

/**
 * Per-direction usage of a physical node pair by an overlapped
 * double-tree schedule.
 */
struct ChannelUsage {
    int forward = 0;  ///< concurrent uses of the a→b direction
    int backward = 0; ///< concurrent uses of the b→a direction
};

/** Usage keyed by ordered pair (a < b). */
using UsageMap = std::map<std::pair<NodeId, NodeId>, ChannelUsage>;

/**
 * Counts, for every physical pair, how many (tree, direction) roles
 * use each channel direction when both trees run the overlapped
 * algorithm simultaneously. Each logical edge contributes one use per
 * direction; detour routes contribute on every segment.
 */
UsageMap analyzeChannelUsage(const DoubleTreeEmbedding& embedding);

/**
 * True when every channel direction's usage is within the physical
 * link multiplicity of the pair — i.e. the overlapped double tree can
 * run with no channel shared between the two trees.
 */
bool isConflictFree(const Graph& graph, const DoubleTreeEmbedding& embedding);

/** Pairs whose usage exceeds multiplicity (empty when conflict-free). */
std::vector<std::pair<NodeId, NodeId>>
conflictingPairs(const Graph& graph, const DoubleTreeEmbedding& embedding);

/**
 * Builds the C-Cube double-tree embedding for the DGX-1 (paper
 * Fig. 10(b,c)): both trees span GPUs 0..7; tree0 uses a detour
 * (GPU2 → GPU0 → GPU4) and tree1 a detour (GPU3 → GPU1 → GPU5), so
 * GPU0 and GPU1 are the forwarding nodes; the only pairs carrying
 * both trees sit on double NVLinks.
 */
DoubleTreeEmbedding makeDgx1DoubleTree(const Graph& dgx1);

/**
 * Builds the *naive* double tree for the DGX-1: tree and mirrored
 * tree via the generic construction, without conflict-aware placement.
 * Used to demonstrate the channel conflicts of Fig. 10(a).
 */
DoubleTreeEmbedding makeNaiveDgx1DoubleTree(const Graph& dgx1);

/**
 * Generic mirror-pair double tree over endpoint nodes 0..num_ranks-1
 * of @p graph (e.g. a switch fabric, where routes pass through switch
 * nodes with ids ≥ num_ranks).
 */
DoubleTreeEmbedding makeMirroredDoubleTree(const Graph& graph,
                                           int num_ranks);

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_DOUBLE_TREE_H_
