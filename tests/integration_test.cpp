/**
 * @file
 * End-to-end integration tests.
 *
 * 1. Functional C-Cube step: the overlapped tree AllReduce (threaded
 *    mini-NCCL with Fig. 11 semaphores) feeds per-rank gradient
 *    queues (Fig. 9); concurrent "forward compute" threads dequeue
 *    layers in order and apply the reduced gradients. Verifies the
 *    whole §III pipeline: correct sums, in-order chaining, no layer
 *    computed before its gradients arrive.
 *
 * 2. Cross-validation: the timed simulator and the analytical model
 *    agree on the C1-over-B benefit (the paper's Fig. 12(b) check).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "ccl/double_tree_allreduce.h"
#include "ccl/overlapped_tree_allreduce.h"
#include "core/chunk_mapper.h"
#include "core/dual_gradient_queue.h"
#include "core/gradient_queue.h"
#include "model/overlapped_tree_model.h"
#include "model/tree_model.h"
#include "simnet/channel.h"
#include "simnet/tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/rng.h"

namespace ccube {
namespace {

TEST(FunctionalCCube, TrainingStepWithGradientQueuing)
{
    constexpr int kRanks = 8;
    constexpr int kChunks = 6;
    // Fig. 8's running example: L1 has 1 chunk, L2 has 2, L3 has 3.
    const std::vector<std::int64_t> layer_table{1, 3, 6};
    constexpr int kLayers = 3;
    constexpr std::size_t kElems = 60; // 10 per chunk
    const std::vector<double> layer_bytes{10.0, 20.0, 30.0};

    // Per-rank gradient buffers ("weights' gradients").
    ccl::RankBuffers gradients(kRanks);
    util::Rng rng(99);
    for (auto& buf : gradients) {
        buf.resize(kElems);
        rng.fill(buf, -1.0f, 1.0f);
    }
    std::vector<float> expected(kElems, 0.0f);
    for (const auto& buf : gradients)
        for (std::size_t i = 0; i < kElems; ++i)
            expected[i] += buf[i];

    // One gradient queue per rank (the real system keeps it in GPU
    // memory; we key enqueues off the broadcast's record events).
    std::vector<std::unique_ptr<core::GradientQueue>> queues;
    for (int r = 0; r < kRanks; ++r)
        queues.push_back(
            std::make_unique<core::GradientQueue>(layer_table));

    // Compute threads: dequeue layers in order; record, per layer,
    // how many chunks had been enqueued at dequeue time.
    std::vector<std::vector<std::int64_t>> observed(
        static_cast<std::size_t>(kRanks));
    std::vector<std::thread> compute;
    for (int r = 0; r < kRanks; ++r) {
        compute.emplace_back([r, &queues, &observed]() {
            for (int l = 0; l < kLayers; ++l) {
                queues[static_cast<std::size_t>(r)]->dequeueLayer(l);
                observed[static_cast<std::size_t>(r)].push_back(
                    queues[static_cast<std::size_t>(r)]->enqueued());
            }
        });
    }

    // The collective: overlapped tree on the C-Cube DGX-1 tree 0,
    // with the broadcast enqueuing each chunk as it lands.
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    ccl::Communicator comm(kRanks);
    const ccl::AllReduceTrace trace = ccl::treeAllReduce(
        comm, gradients, dt.tree0, kChunks,
        ccl::TreePhaseMode::kOverlapped, {},
        [&queues](int rank, int) {
            queues[static_cast<std::size_t>(rank)]->enqueueChunk();
        });

    for (auto& t : compute)
        t.join();

    // (a) AllReduce correctness.
    for (int r = 0; r < kRanks; ++r) {
        for (std::size_t i = 0; i < kElems; ++i) {
            ASSERT_NEAR(gradients[static_cast<std::size_t>(r)][i],
                        expected[i], 1e-4f)
                << "rank " << r;
        }
    }
    // (b) In-order broadcast (the property the queue relies on).
    EXPECT_TRUE(trace.inOrder());
    // (c) No layer computed before its chunks: at dequeue of layer l
    //     at least table[l] chunks had been enqueued.
    for (int r = 0; r < kRanks; ++r) {
        ASSERT_EQ(observed[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(kLayers));
        for (int l = 0; l < kLayers; ++l) {
            EXPECT_GE(observed[static_cast<std::size_t>(r)]
                              [static_cast<std::size_t>(l)],
                      layer_table[static_cast<std::size_t>(l)])
                << "rank " << r << " layer " << l;
        }
        EXPECT_EQ(queues[static_cast<std::size_t>(r)]
                      ->layerIndexCounter(),
                  kLayers);
    }
    // (d) The layer table used here matches what the chunk mapper
    //     derives from the layer byte layout.
    const core::ChunkMapper mapper =
        core::ChunkMapper::singleTree(60.0, kChunks);
    EXPECT_EQ(mapper.layerChunkTable(layer_bytes), layer_table);
}

TEST(FunctionalCCube, MultipleIterationsWithReset)
{
    const std::vector<std::int64_t> table{2, 4};
    core::GradientQueue queue(table);
    for (int iter = 0; iter < 3; ++iter) {
        std::thread broadcaster([&queue]() {
            for (int c = 0; c < 4; ++c)
                queue.enqueueChunk();
        });
        queue.dequeueLayer(0);
        queue.dequeueLayer(1);
        broadcaster.join();
        EXPECT_EQ(queue.enqueued(), 4);
        queue.resetIteration();
    }
}

TEST(FunctionalCCube, DoubleTreeWithDualGradientQueue)
{
    // The full C-Cube data path: overlapped *double* tree (both trees
    // concurrent on the DGX-1 embedding, detour forwarders on
    // GPU0/GPU1) feeding per-rank dual gradient queues keyed by the
    // observer's global chunk ids; forward threads dequeue layers in
    // order.
    constexpr int kRanks = 8;
    constexpr int kChunksPerTree = 4;
    constexpr std::size_t kElems = 80;
    const std::vector<double> layer_bytes{80.0, 120.0, 120.0};
    const double total_bytes = kElems * 4.0;

    const auto [t0, t1] = core::perTreeLayerChunkTables(
        total_bytes, kChunksPerTree, layer_bytes);

    ccl::RankBuffers gradients(kRanks);
    util::Rng rng(501);
    for (auto& buf : gradients) {
        buf.resize(kElems);
        rng.fill(buf, -1.0f, 1.0f);
    }
    std::vector<float> expected(kElems, 0.0f);
    for (const auto& buf : gradients)
        for (std::size_t i = 0; i < kElems; ++i)
            expected[i] += buf[i];

    std::vector<std::unique_ptr<core::DualGradientQueue>> queues;
    for (int r = 0; r < kRanks; ++r)
        queues.push_back(
            std::make_unique<core::DualGradientQueue>(t0, t1));

    std::vector<std::thread> forward;
    std::atomic<int> layers_done{0};
    for (int r = 0; r < kRanks; ++r) {
        forward.emplace_back([r, &queues, &layers_done,
                              layers = layer_bytes.size()]() {
            for (int l = 0; l < static_cast<int>(layers); ++l) {
                queues[static_cast<std::size_t>(r)]->dequeueLayer(l);
                layers_done.fetch_add(1);
            }
        });
    }

    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    ccl::Communicator comm(kRanks);
    ccl::doubleTreeAllReduce(
        comm, gradients, dt, kChunksPerTree,
        ccl::TreePhaseMode::kOverlapped,
        [&queues, kChunksPerTree](int rank, int chunk) {
            queues[static_cast<std::size_t>(rank)]->enqueueChunk(
                chunk < kChunksPerTree ? 0 : 1);
        });

    for (auto& t : forward)
        t.join();

    EXPECT_EQ(layers_done.load(),
              kRanks * static_cast<int>(layer_bytes.size()));
    for (int r = 0; r < kRanks; ++r) {
        for (std::size_t i = 0; i < kElems; ++i) {
            ASSERT_NEAR(gradients[static_cast<std::size_t>(r)][i],
                        expected[i], 1e-4f)
                << "rank " << r;
        }
        EXPECT_EQ(queues[static_cast<std::size_t>(r)]->enqueued(0),
                  kChunksPerTree);
        EXPECT_EQ(queues[static_cast<std::size_t>(r)]->enqueued(1),
                  kChunksPerTree);
    }
}

TEST(SimVsModel, OverlapBenefitMatchesFig12b)
{
    // Fig. 12(b): the measured C1-over-B benefit tracks the α-β model.
    // On an ideal clique the DES must match Eq.(6)/Eq.(7) closely at
    // the model's own K_opt.
    const double alpha = 4.6e-6;
    const double bw = 25e9;
    const model::AlphaBeta link =
        model::AlphaBeta::fromBandwidth(alpha, bw);
    const model::TreeModel tree(link);
    const model::OverlappedTreeModel overlapped(link);

    topo::Graph clique("clique");
    for (int n = 0; n < 8; ++n)
        clique.addNode("N" + std::to_string(n));
    for (int a = 0; a < 8; ++a)
        for (int b = a + 1; b < 8; ++b)
            clique.addLink(a, b, bw, alpha);
    const topo::TreeEmbedding embedding =
        topo::embedTree(clique, topo::BinaryTree::inorder(8));

    for (double n : {4e6, 16e6, 64e6}) {
        const int k = tree.optimalChunksInt(8, n);

        sim::Simulation sim_b;
        simnet::Network net_b(sim_b, clique);
        const double sim_base =
            simnet::runTreeSchedule(sim_b, net_b, embedding, n,
                                    simnet::PhaseMode::kTwoPhase, k)
                .completion_time;

        sim::Simulation sim_c;
        simnet::Network net_c(sim_c, clique);
        const double sim_over =
            simnet::runTreeSchedule(sim_c, net_c, embedding, n,
                                    simnet::PhaseMode::kOverlapped, k)
                .completion_time;

        const double model_ratio =
            tree.allReduceTime(8, n) / overlapped.allReduceTime(8, n);
        const double sim_ratio = sim_base / sim_over;
        // The inorder(8) tree is one level deeper than log2(8) on its
        // longest path, so allow a modest tolerance.
        EXPECT_NEAR(sim_ratio, model_ratio, model_ratio * 0.15)
            << "n=" << n;
    }
}

} // namespace
} // namespace ccube
