#include "core/timeline.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "core/chunk_mapper.h"
#include "util/logging.h"
#include "util/table.h"

namespace ccube {
namespace core {

namespace {

/** Display name of a timeline track. */
const char*
trackName(int tid)
{
    switch (tid) {
      case TimelineBuilder::kBackwardTrack: return "backward";
      case TimelineBuilder::kAllReduceTrack: return "allreduce";
      case TimelineBuilder::kForwardTrack: return "forward";
    }
    return "?";
}

} // namespace

void
TimelineBuilder::record(obs::TraceRecorder& recorder,
                        const IterationScheduler& scheduler, Mode mode,
                        const IterationConfig& config, int pid)
{
    if (!recorder.enabled())
        return;

    const dnn::NetworkModel& network = scheduler.network();
    const dnn::ComputeModel compute(scheduler.gpuParams());
    const std::vector<double> fwd_times =
        compute.layerForwardTimes(network, config.batch);
    const double bwd = compute.backwardTime(network, config.batch);
    const double bytes = network.totalParamBytes();
    const simnet::ScheduleResult schedule =
        scheduler.commSchedule(mode, bytes, config.bandwidth_scale);

    recorder.setProcessName(pid, std::string("core iteration ") +
                                     modeName(mode));
    for (int tid : {kBackwardTrack, kAllReduceTrack, kForwardTrack})
        recorder.setThreadName(pid, tid, trackName(tid));

    const std::string cat = "core.iteration";
    recorder.completeEvent("backward", cat, pid, kBackwardTrack, 0.0,
                           bwd * 1e6);

    // AllReduce: one span per chunk, from the previous chunk's
    // availability (per tree) to this one's. For the multi-ring all
    // chunks share the collective span.
    const int chunks = schedule.num_chunks;
    std::vector<double> sorted_ready = schedule.chunk_ready;
    std::sort(sorted_ready.begin(), sorted_ready.end());
    double prev = 0.0;
    for (int c = 0; c < chunks; ++c) {
        const double ready = sorted_ready[static_cast<std::size_t>(c)];
        recorder.completeEvent("chunk " + std::to_string(c), cat, pid,
                               kAllReduceTrack, (bwd + prev) * 1e6,
                               (ready - prev) * 1e6);
        prev = ready;
    }

    // Forward: chained modes gate each layer on its gradients.
    const bool chained = mode == Mode::kComputeChaining ||
                         mode == Mode::kCCube;
    const std::vector<double> layer_bytes = network.layerParamBytes();
    const ChunkMapper mapper =
        ChunkMapper::doubleTree(bytes, std::max(1, chunks / 2));
    double t = chained ? 0.0 : bwd + schedule.completion_time;
    for (int l = 0; l < network.numLayers(); ++l) {
        double start = t;
        if (chained) {
            const double ready =
                bwd + mapper.layerReadyTime(layer_bytes, l,
                                            schedule.chunk_ready);
            start = std::max(t, ready);
        }
        const double end =
            start + fwd_times[static_cast<std::size_t>(l)];
        recorder.completeEvent(network.layer(l).name, cat, pid,
                               kForwardTrack, start * 1e6,
                               (end - start) * 1e6);
        t = end;
    }
}

std::vector<TimelineEvent>
TimelineBuilder::build(const IterationScheduler& scheduler, Mode mode,
                       const IterationConfig& config)
{
    // The recorder is the single source of truth: record into a local
    // one and project its spans back onto the flat event list.
    obs::TraceRecorder recorder;
    recorder.enable();
    record(recorder, scheduler, mode, config);

    std::vector<TimelineEvent> events;
    for (const obs::TraceEvent& e : recorder.snapshot()) {
        events.push_back(TimelineEvent{trackName(e.tid), e.name,
                                       e.ts_us / 1e6,
                                       (e.ts_us + e.dur_us) / 1e6});
    }
    return events;
}

void
TimelineBuilder::writeCsv(std::ostream& out,
                          const std::vector<TimelineEvent>& events)
{
    out << "track,label,start_s,end_s\n";
    for (const TimelineEvent& e : events) {
        out << e.track << ',' << e.label << ',' << e.start << ','
            << e.end << "\n";
    }
}

void
TimelineBuilder::printAscii(std::ostream& out,
                            const std::vector<TimelineEvent>& events,
                            int width)
{
    CCUBE_CHECK(width >= 10, "ascii timeline too narrow");
    if (events.empty())
        return;
    double horizon = 0.0;
    for (const TimelineEvent& e : events)
        horizon = std::max(horizon, e.end);
    CCUBE_CHECK(horizon > 0.0, "empty timeline horizon");

    // Merge each track's events into one occupancy row.
    std::map<std::string, std::string> rows;
    for (const TimelineEvent& e : events) {
        auto& row = rows[e.track];
        if (row.empty())
            row.assign(static_cast<std::size_t>(width), ' ');
        int lo = static_cast<int>(e.start / horizon * width);
        int hi = static_cast<int>(e.end / horizon * width);
        lo = std::clamp(lo, 0, width - 1);
        hi = std::clamp(hi, lo + 1, width);
        for (int i = lo; i < hi; ++i)
            row[static_cast<std::size_t>(i)] = '#';
    }
    std::size_t name_width = 0;
    for (const auto& [track, row] : rows)
        name_width = std::max(name_width, track.size());
    for (const auto& [track, row] : rows) {
        out << track;
        for (std::size_t p = track.size(); p < name_width + 2; ++p)
            out << ' ';
        out << '|' << row << "|\n";
    }
    out << "0" << std::string(static_cast<std::size_t>(name_width) + 2 +
                                  static_cast<std::size_t>(width) - 8,
                              ' ')
        << util::formatDouble(horizon * 1e3, 2) << " ms\n";
}

} // namespace core
} // namespace ccube
