/**
 * @file
 * Ablation: fault recovery — fail an NVLink mid-collective, detect,
 * re-plan, re-run.
 *
 * For every unordered NVLink pair of the DGX-1, this harness:
 *
 *   1. runs the healthy overlapped double tree (baseline bandwidth),
 *   2. re-runs it with a FaultPlan that kills both directions of the
 *      pair at 30% of the healthy completion time — the DES drains
 *      with arrivals outstanding, the detection signal,
 *   3. charges a watchdog deadline (--watchdog-ms, simulated) for
 *      detection, then calls core::recoverSchedule over the survivor
 *      graph,
 *   4. re-runs the collective on whatever rung the ladder landed on
 *      (C-Cube overlapped, contended double tree two-phase, or
 *      disjoint rings),
 *
 * and reports time-to-recover (detect + search + re-run) and
 * post-recovery bandwidth per fault scenario, as a table and as
 * bench_ccl/v1 records.
 */

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/recovery.h"
#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/fault_plan.h"
#include "simnet/multi_ring_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/bench_json.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

/** All unordered NVLink pairs of @p graph (the fault scenarios). */
std::vector<std::pair<topo::NodeId, topo::NodeId>>
nvlinkPairs(const topo::Graph& graph)
{
    std::vector<std::pair<topo::NodeId, topo::NodeId>> pairs;
    for (int id = 0; id < graph.channelCount(); ++id) {
        const topo::ChannelDesc& desc = graph.channel(id);
        if (desc.kind != topo::LinkKind::kNvlink)
            continue;
        const auto pair = desc.src < desc.dst
                              ? std::make_pair(desc.src, desc.dst)
                              : std::make_pair(desc.dst, desc.src);
        bool seen = false;
        for (const auto& existing : pairs)
            seen = seen || existing == pair;
        if (!seen)
            pairs.push_back(pair);
    }
    return pairs;
}

/** Every directed channel id between the two endpoints of @p pair. */
std::vector<int>
pairChannelIds(const topo::Graph& graph,
               const std::pair<topo::NodeId, topo::NodeId>& pair)
{
    std::vector<int> ids = graph.channelIds(pair.first, pair.second);
    for (int id : graph.channelIds(pair.second, pair.first))
        ids.push_back(id);
    return ids;
}

/** Simulated completion time of the recovered schedule. */
double
rerunRecovered(const core::RecoveryResult& recovery, double bytes)
{
    sim::Simulation sim;
    simnet::Network net(sim, recovery.graph);
    switch (recovery.kind) {
    case core::RecoveryKind::kCCube:
        // Conflict-free: the overlapped schedule is valid again.
        return simnet::runDoubleTreeSchedule(
                   sim, net, *recovery.double_tree, bytes,
                   simnet::PhaseMode::kOverlapped, 32)
            .completion_time;
    case core::RecoveryKind::kDoubleTree:
        // Contended embedding: overlap premise is gone, run two-phase.
        return simnet::runDoubleTreeSchedule(
                   sim, net, *recovery.double_tree, bytes,
                   simnet::PhaseMode::kTwoPhase, 32)
            .completion_time;
    case core::RecoveryKind::kRing:
        return simnet::runMultiRingSchedule(sim, net, recovery.rings,
                                            bytes)
            .completion_time;
    case core::RecoveryKind::kNone:
        break;
    }
    return 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);
    const double bytes = util::mib(64);
    const double watchdog_s =
        flags.getDouble("watchdog-ms", 5.0) * 1e-3;

    std::cout << "=== Ablation: fault recovery (DGX-1, 64 MiB, each "
                 "NVLink pair failed mid-collective) ===\n\n";

    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding healthy_tree =
        topo::makeDgx1DoubleTree(graph);

    // Healthy baseline: what the fabric delivers with no faults.
    double healthy_time = 0.0;
    {
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        healthy_time =
            simnet::runDoubleTreeSchedule(
                sim, net, healthy_tree, bytes,
                simnet::PhaseMode::kOverlapped, 32)
                .completion_time;
    }
    const double healthy_bw = bytes / healthy_time;
    const double t_fail = 0.3 * healthy_time;
    std::cout << "healthy completion: "
              << util::formatDouble(healthy_time * 1e3, 3)
              << " ms (" << util::formatDouble(healthy_bw / 1e9, 2)
              << " GB/s); links fail at t="
              << util::formatDouble(t_fail * 1e3, 3)
              << " ms, watchdog deadline "
              << util::formatDouble(watchdog_s * 1e3, 3) << " ms\n\n";

    util::Table table({"failed_pair", "dropped", "rung", "detect_ms",
                       "search_ms", "rerun_ms", "recover_ms",
                       "post_bw_GB/s", "bw_retained_%"});
    std::vector<util::BenchRecord> records;

    // Serial scenario loop: recoverSchedule fans its own embedding
    // attempts across workers, so the sweep stays single-stream here.
    for (const auto& pair : nvlinkPairs(graph)) {
        const std::vector<int> failed = pairChannelIds(graph, pair);

        // Fault injection: both directions die mid-collective.
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        simnet::FaultPlan plan;
        for (int id : failed)
            plan.failChannel(t_fail, id);
        const simnet::FaultedRunResult faulted =
            simnet::runDoubleTreeWithFaults(
                sim, net, healthy_tree, bytes,
                simnet::PhaseMode::kOverlapped, 32, plan);

        // Detection: the flow dies at t_fail, the watchdog fires one
        // deadline later. A pair the schedule never routed over still
        // completes — recovery is then purely precautionary re-plan.
        const double detect_s =
            faulted.completed ? 0.0 : watchdog_s;

        core::RecoveryOptions options;
        options.search.num_ranks = graph.nodeCount();
        const core::RecoveryResult recovery =
            core::recoverSchedule(graph, failed, options);

        const double rerun_time =
            recovery.usable() ? rerunRecovered(recovery, bytes) : 0.0;
        const double recover_s =
            detect_s + recovery.search_seconds + rerun_time;
        const double post_bw =
            rerun_time > 0.0 ? bytes / rerun_time : 0.0;

        const std::string pair_name = std::to_string(pair.first) +
                                      "_" + std::to_string(pair.second);
        table.addRow(
            {"(" + std::to_string(pair.first) + "," +
                 std::to_string(pair.second) + ")",
             std::to_string(faulted.dropped_transfers),
             core::recoveryKindName(recovery.kind),
             util::formatDouble(detect_s * 1e3, 3),
             util::formatDouble(recovery.search_seconds * 1e3, 3),
             util::formatDouble(rerun_time * 1e3, 3),
             util::formatDouble(recover_s * 1e3, 3),
             util::formatDouble(post_bw / 1e9, 2),
             util::formatDouble(post_bw / healthy_bw * 100.0, 1)});

        util::BenchRecord record;
        record.source = "abl_fault_recovery";
        record.kind = "fault_recovery";
        record.name = "pair_" + pair_name;
        record.mode = core::recoveryKindName(recovery.kind);
        record.bytes = static_cast<std::int64_t>(bytes);
        record.ns_per_op = recover_s * 1e9;
        record.extra["t_fail_s"] = t_fail;
        record.extra["detect_s"] = detect_s;
        record.extra["search_s"] = recovery.search_seconds;
        record.extra["rerun_s"] = rerun_time;
        record.extra["post_bw_gbps"] = post_bw / 1e9;
        record.extra["healthy_bw_gbps"] = healthy_bw / 1e9;
        record.extra["dropped_transfers"] =
            static_cast<double>(faulted.dropped_transfers);
        record.extra["rung"] =
            static_cast<double>(static_cast<int>(recovery.kind));
        records.push_back(std::move(record));
    }

    table.print(std::cout);
    std::cout << "\nEvery single-link failure on the DGX-1 leaves a "
                 "usable schedule: most survivor graphs still embed a "
                 "conflict-free double tree (full C-Cube bandwidth), "
                 "and the rest fall back down the ladder rather than "
                 "hanging the job.\n";

    const std::string path = util::benchOutputPath();
    util::writeBenchRecords(path, records, /*append=*/true);
    std::cout << "\nwrote " << records.size() << " records to " << path
              << "\n";
    return 0;
}
