#include "topo/graph.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace ccube {
namespace topo {

Graph::Graph(std::string name)
    : name_(std::move(name))
{
}

NodeId
Graph::addNode(std::string label)
{
    labels_.push_back(std::move(label));
    is_switch_.push_back(false);
    out_.emplace_back();
    return static_cast<NodeId>(labels_.size()) - 1;
}

void
Graph::markSwitch(NodeId node)
{
    checkNode(node);
    is_switch_[static_cast<std::size_t>(node)] = true;
}

bool
Graph::isSwitch(NodeId node) const
{
    checkNode(node);
    return is_switch_[static_cast<std::size_t>(node)];
}

void
Graph::scaleChannelBandwidth(int id, double factor)
{
    CCUBE_CHECK(id >= 0 && id < channelCount(), "bad channel id " << id);
    CCUBE_CHECK(factor > 0.0, "non-positive bandwidth factor");
    channels_[static_cast<std::size_t>(id)].bandwidth *= factor;
}

int
Graph::addChannel(NodeId src, NodeId dst, double bandwidth, double latency,
                  LinkKind kind)
{
    checkNode(src);
    checkNode(dst);
    CCUBE_CHECK(src != dst, "self-channel on node " << src);
    CCUBE_CHECK(bandwidth > 0.0, "non-positive bandwidth");
    CCUBE_CHECK(latency >= 0.0, "negative latency");
    const int id = static_cast<int>(channels_.size());
    channels_.push_back(ChannelDesc{id, src, dst, bandwidth, latency, kind});
    out_[static_cast<std::size_t>(src)].push_back(id);
    return id;
}

void
Graph::addLink(NodeId a, NodeId b, double bandwidth, double latency,
               LinkKind kind)
{
    addChannel(a, b, bandwidth, latency, kind);
    addChannel(b, a, bandwidth, latency, kind);
}

const ChannelDesc&
Graph::channel(int id) const
{
    CCUBE_CHECK(id >= 0 && id < channelCount(), "bad channel id " << id);
    return channels_[static_cast<std::size_t>(id)];
}

const std::string&
Graph::nodeLabel(NodeId node) const
{
    checkNode(node);
    return labels_[static_cast<std::size_t>(node)];
}

const std::vector<int>&
Graph::outChannels(NodeId node) const
{
    checkNode(node);
    return out_[static_cast<std::size_t>(node)];
}

std::vector<int>
Graph::channelIds(NodeId src, NodeId dst) const
{
    std::vector<int> ids;
    for (int id : outChannels(src)) {
        if (channels_[static_cast<std::size_t>(id)].dst == dst)
            ids.push_back(id);
    }
    return ids;
}

bool
Graph::hasChannel(NodeId src, NodeId dst) const
{
    return !channelIds(src, dst).empty();
}

int
Graph::linkCount(NodeId a, NodeId b) const
{
    // A bidirectional link contributes one a→b channel; counting the
    // a→b direction alone therefore counts each link once.
    return static_cast<int>(channelIds(a, b).size());
}

std::vector<NodeId>
Graph::neighbors(NodeId node) const
{
    std::vector<NodeId> result;
    for (int id : outChannels(node)) {
        const NodeId dst = channels_[static_cast<std::size_t>(id)].dst;
        if (std::find(result.begin(), result.end(), dst) == result.end())
            result.push_back(dst);
    }
    return result;
}

std::vector<NodeId>
Graph::shortestPath(NodeId src, NodeId dst, LinkKind kind) const
{
    checkNode(src);
    checkNode(dst);
    if (src == dst)
        return {src};

    std::vector<NodeId> prev(labels_.size(), kInvalidNode);
    std::vector<bool> seen(labels_.size(), false);
    std::deque<NodeId> frontier{src};
    seen[static_cast<std::size_t>(src)] = true;

    while (!frontier.empty()) {
        const NodeId here = frontier.front();
        frontier.pop_front();
        for (int id : outChannels(here)) {
            const ChannelDesc& ch = channels_[static_cast<std::size_t>(id)];
            if (ch.kind != kind || seen[static_cast<std::size_t>(ch.dst)])
                continue;
            seen[static_cast<std::size_t>(ch.dst)] = true;
            prev[static_cast<std::size_t>(ch.dst)] = here;
            if (ch.dst == dst) {
                std::vector<NodeId> path{dst};
                for (NodeId n = here; n != kInvalidNode;
                     n = prev[static_cast<std::size_t>(n)]) {
                    path.push_back(n);
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push_back(ch.dst);
        }
    }
    return {};
}

void
Graph::checkNode(NodeId node) const
{
    CCUBE_CHECK(node >= 0 && node < nodeCount(), "bad node id " << node);
}

Graph
withoutChannels(const Graph& graph, const std::vector<int>& channel_ids)
{
    std::vector<bool> removed(
        static_cast<std::size_t>(graph.channelCount()), false);
    for (int id : channel_ids) {
        if (id >= 0 && id < graph.channelCount())
            removed[static_cast<std::size_t>(id)] = true;
    }
    Graph survivor(graph.name() + " (degraded)");
    for (NodeId n = 0; n < graph.nodeCount(); ++n) {
        survivor.addNode(graph.nodeLabel(n));
        if (graph.isSwitch(n))
            survivor.markSwitch(n);
    }
    for (const ChannelDesc& ch : graph.channels()) {
        if (removed[static_cast<std::size_t>(ch.id)])
            continue;
        survivor.addChannel(ch.src, ch.dst, ch.bandwidth, ch.latency,
                            ch.kind);
    }
    return survivor;
}

} // namespace topo
} // namespace ccube
