#include "core/iteration_scheduler.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/chunk_mapper.h"
#include "model/tree_model.h"
#include "obs/metrics.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/multi_ring_schedule.h"
#include "sweep/sweep.h"
#include "topo/detour_router.h"
#include "util/logging.h"

namespace ccube {
namespace core {

const char*
modeName(Mode mode)
{
    switch (mode) {
      case Mode::kBaseline: return "B";
      case Mode::kOverlappedTree: return "C1";
      case Mode::kComputeChaining: return "C2";
      case Mode::kRing: return "R";
      case Mode::kCCube: return "CC";
    }
    return "?";
}

std::vector<Mode>
allModes()
{
    return {Mode::kBaseline, Mode::kOverlappedTree,
            Mode::kComputeChaining, Mode::kRing, Mode::kCCube};
}

IterationScheduler::IterationScheduler(
    const topo::Graph& graph, topo::DoubleTreeEmbedding double_tree,
    std::vector<topo::RingEmbedding> rings, dnn::NetworkModel network,
    dnn::GpuComputeParams gpu_params)
    : graph_(graph),
      double_tree_(std::move(double_tree)),
      rings_(std::move(rings)),
      network_(std::move(network)),
      gpu_params_(gpu_params)
{
    CCUBE_CHECK(!rings_.empty() && rings_.front().size() >= 2,
                "ring embeddings missing");
}

model::AlphaBeta
IterationScheduler::linkModel() const
{
    for (const topo::ChannelDesc& desc : graph_.channels()) {
        if (desc.kind == topo::LinkKind::kNvlink) {
            return model::AlphaBeta::fromBandwidth(desc.latency,
                                                   desc.bandwidth);
        }
    }
    util::panic("topology has no NVLink channels");
}

int
IterationScheduler::chunksPerTree(double bytes_per_tree) const
{
    const model::TreeModel tree(linkModel());
    return tree.optimalChunksInt(rings_.front().size(), bytes_per_tree);
}

simnet::ScheduleResult
IterationScheduler::commSchedule(Mode mode, double bytes,
                                 double bandwidth_scale) const
{
    sim::Simulation simulation;
    simnet::Network network(simulation, graph_, bandwidth_scale);
    simnet::ScheduleResult result;
    switch (mode) {
      case Mode::kRing:
        result = simnet::runMultiRingSchedule(simulation, network,
                                              rings_, bytes);
        break;
      case Mode::kBaseline:
      case Mode::kComputeChaining:
        result = simnet::runDoubleTreeSchedule(
            simulation, network, double_tree_, bytes,
            simnet::PhaseMode::kTwoPhase, chunksPerTree(bytes / 2.0));
        break;
      case Mode::kOverlappedTree:
      case Mode::kCCube:
        result = simnet::runDoubleTreeSchedule(
            simulation, network, double_tree_, bytes,
            simnet::PhaseMode::kOverlapped, chunksPerTree(bytes / 2.0));
        break;
      default:
        util::panic("unknown mode");
    }

    // Observability: serialize this DES run on the trace timeline and
    // export per-channel telemetry when a metrics capture is active.
    network.closeTraceEpoch(result.completion_time);
    obs::MetricRegistry& registry = obs::MetricRegistry::global();
    if (registry.enabled() && result.completion_time > 0.0) {
        network.exportMetrics(registry, result.completion_time,
                              std::string("simnet.") + modeName(mode));
    }
    return result;
}

IterationResult
IterationScheduler::run(Mode mode, const IterationConfig& config) const
{
    return evaluate(mode, config, /*compute_slowdown=*/1.0);
}

IterationResult
IterationScheduler::evaluate(Mode mode, const IterationConfig& config,
                             double compute_slowdown) const
{
    CCUBE_CHECK(config.batch >= 1, "batch must be positive");
    CCUBE_CHECK(config.bandwidth_scale > 0.0,
                "bandwidth scale must be positive");

    const dnn::ComputeModel compute(gpu_params_);
    std::vector<double> fwd_times =
        compute.layerForwardTimes(network_, config.batch);
    for (double& t : fwd_times)
        t *= compute_slowdown;
    const double fwd =
        std::accumulate(fwd_times.begin(), fwd_times.end(), 0.0);
    const double bwd =
        compute.backwardTime(network_, config.batch) * compute_slowdown;

    const double bytes = network_.totalParamBytes();
    const simnet::ScheduleResult schedule =
        commSchedule(mode, bytes, config.bandwidth_scale);

    IterationResult result;
    result.forward_time = fwd;
    result.backward_time = bwd;
    result.comm_time = schedule.completion_time;
    result.turnaround_time = schedule.turnaroundTime();

    const bool chained = mode == Mode::kComputeChaining ||
                         mode == Mode::kCCube;
    if (!chained) {
        // One-shot AllReduce strictly between backward and the next
        // forward (Fig. 2(a) dependencies, no chaining).
        result.iteration_time = bwd + schedule.completion_time + fwd;
    } else {
        // Gradient queuing: layer L's forward launches once the
        // previous layer finished and L's chunks all arrived
        // (Fig. 8(b)).
        const int chunks_per_tree = schedule.num_chunks / 2;
        const ChunkMapper mapper =
            ChunkMapper::doubleTree(bytes, chunks_per_tree);
        const std::vector<double> layer_bytes =
            network_.layerParamBytes();
        double t = 0.0;
        for (int l = 0; l < network_.numLayers(); ++l) {
            const double ready =
                bwd + mapper.layerReadyTime(layer_bytes, l,
                                            schedule.chunk_ready);
            t = std::max(t, ready) +
                fwd_times[static_cast<std::size_t>(l)];
        }
        result.iteration_time = t;
    }

    const double ideal = fwd + bwd;
    result.normalized_perf = ideal / result.iteration_time;
    result.exposed_comm = result.iteration_time - ideal;
    result.chain_efficiency =
        result.comm_time > 0.0
            ? 1.0 - result.exposed_comm / result.comm_time
            : 1.0;
    return result;
}

std::vector<double>
IterationScheduler::perGpuNormalizedPerf(Mode mode,
                                         const IterationConfig& config,
                                         double tax_per_kernel,
                                         const sweep::Options& pool) const
{
    // Count forwarding kernels per GPU from the detour rules.
    // Switch transits (NVSwitch planes, fabric switches) forward in
    // hardware and cost no GPU SMs.
    const int num_gpus = rings_.front().size();
    std::vector<int> kernels(static_cast<std::size_t>(num_gpus), 0);
    for (const topo::ForwardingRule& rule :
         topo::extractForwardingRules(double_tree_)) {
        if (rule.transit < num_gpus && !graph_.isSwitch(rule.transit))
            ++kernels[static_cast<std::size_t>(rule.transit)];
    }

    const IterationResult nominal =
        evaluate(mode, config, /*compute_slowdown=*/1.0);

    std::vector<double> perf(static_cast<std::size_t>(num_gpus), 0.0);
    sweep::runIndexed(
        pool, static_cast<std::size_t>(num_gpus),
        [&](std::size_t g) {
            const double tax = tax_per_kernel * kernels[g];
            CCUBE_CHECK(tax < 1.0, "forwarding tax too large");
            const IterationResult taxed =
                evaluate(mode, config, 1.0 / (1.0 - tax));
            // Per-GPU throughput normalized to an untaxed GPU.
            perf[g] = nominal.iteration_time / taxed.iteration_time;
        });
    return perf;
}

std::vector<double>
IterationScheduler::perGpuNormalizedPerf(
    Mode mode, const IterationConfig& config,
    double tax_per_kernel) const
{
    return perGpuNormalizedPerf(mode, config, tax_per_kernel,
                                sweep::Options{});
}

} // namespace core
} // namespace ccube
