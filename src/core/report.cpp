#include "core/report.h"

#include <algorithm>

#include "obs/analyze.h"
#include "util/stats.h"
#include "util/units.h"

namespace ccube {
namespace core {

util::Table
makeIterationTable()
{
    return util::Table({"workload", "bw", "batch", "mode", "fwd_ms",
                        "bwd_ms", "comm_ms", "turnaround_ms", "iter_ms",
                        "norm_perf", "chain_eff"});
}

void
addIterationRow(util::Table& table, const std::string& workload,
                const std::string& bandwidth, int batch, Mode mode,
                const IterationResult& result)
{
    table.addRow({workload, bandwidth, std::to_string(batch),
                  modeName(mode),
                  util::formatDouble(result.forward_time * 1e3, 3),
                  util::formatDouble(result.backward_time * 1e3, 3),
                  util::formatDouble(result.comm_time * 1e3, 3),
                  util::formatDouble(result.turnaround_time * 1e3, 3),
                  util::formatDouble(result.iteration_time * 1e3, 3),
                  util::formatDouble(result.normalized_perf, 3),
                  util::formatDouble(result.chain_efficiency, 3)});
}

util::Table
makeCommTable()
{
    return util::Table({"algorithm", "size", "completion_ms",
                        "turnaround_ms", "bandwidth_GBps"});
}

void
addCommRow(util::Table& table, const std::string& algorithm,
           double bytes, const simnet::ScheduleResult& schedule)
{
    table.addRow(
        {algorithm, util::formatBytes(bytes),
         util::formatDouble(schedule.completion_time * 1e3, 3),
         util::formatDouble(schedule.turnaroundTime() * 1e3, 3),
         util::formatDouble(
             schedule.effectiveBandwidth(bytes) / 1e9, 2)});
}

util::Table
makeChannelClassTable()
{
    return util::Table({"schedule", "channel_class", "channels",
                        "busy_ms", "util_frac", "idle_frac"});
}

void
addChannelClassRow(util::Table& table, const std::string& schedule,
                   const std::string& channel_class,
                   const obs::TraceAnalyzer& analyzer,
                   const std::vector<int>& channel_ids)
{
    const obs::TimeInterval window = analyzer.channelWindow();
    int active = 0;
    double busy_us = 0.0;
    for (int id : channel_ids) {
        const obs::ChannelTimeline* timeline = analyzer.channelById(id);
        if (!timeline)
            continue;
        ++active;
        busy_us += timeline->busyWithinUs(window);
    }
    const double capacity_us = window.durationUs() * active;
    const double util =
        capacity_us > 0.0 ? busy_us / capacity_us : 0.0;
    table.addRow({schedule, channel_class, std::to_string(active),
                  util::formatDouble(busy_us * 1e-3, 3),
                  util::formatDouble(util, 3),
                  util::formatDouble(1.0 - util, 3)});
}

util::Table
makeQuantileTable()
{
    return util::Table({"label", "count", "min_ms", "p50_ms", "p90_ms",
                        "p99_ms", "max_ms"});
}

void
addQuantileRow(util::Table& table, const std::string& label,
               std::vector<double>& samples_ms)
{
    if (samples_ms.empty()) {
        table.addRow({label, "0", "-", "-", "-", "-", "-"});
        return;
    }
    std::sort(samples_ms.begin(), samples_ms.end());
    const std::vector<double>& sorted = samples_ms;
    table.addRow({label, std::to_string(sorted.size()),
                  util::formatDouble(sorted.front(), 3),
                  util::formatDouble(util::quantileSorted(sorted, 0.5), 3),
                  util::formatDouble(util::quantileSorted(sorted, 0.9), 3),
                  util::formatDouble(util::quantileSorted(sorted, 0.99), 3),
                  util::formatDouble(sorted.back(), 3)});
}

util::Table
makeCostBreakdownTable()
{
    return util::Table({"label", "steps", "span_ms", "startup_ms",
                        "serial_ms", "stall_ms", "reduce_ms",
                        "other_ms"});
}

void
addCostBreakdownRow(util::Table& table, const std::string& label,
                    const obs::CriticalPath& path)
{
    table.addRow({label, std::to_string(path.steps.size()),
                  util::formatDouble(path.spanUs() * 1e-3, 3),
                  util::formatDouble(path.breakdown.startup_us * 1e-3, 3),
                  util::formatDouble(
                      path.breakdown.serialization_us * 1e-3, 3),
                  util::formatDouble(
                      path.breakdown.sync_stall_us * 1e-3, 3),
                  util::formatDouble(
                      path.breakdown.reduction_us * 1e-3, 3),
                  util::formatDouble(path.breakdown.other_us * 1e-3, 3)});
}

} // namespace core
} // namespace ccube
