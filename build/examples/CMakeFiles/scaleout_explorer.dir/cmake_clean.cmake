file(REMOVE_RECURSE
  "CMakeFiles/scaleout_explorer.dir/scaleout_explorer.cpp.o"
  "CMakeFiles/scaleout_explorer.dir/scaleout_explorer.cpp.o.d"
  "scaleout_explorer"
  "scaleout_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
