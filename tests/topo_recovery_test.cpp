/**
 * @file
 * Degraded-topology recovery: removing any single NVLink channel (or
 * any full bidirectional pair) from the DGX-1 must leave
 * core::recoverSchedule with a valid schedule — a conflict-free
 * double tree, a routable contended one, or a ring fallback — and
 * never an unroutable panic. Property-style over all channel ids.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/recovery.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/graph.h"
#include "topo/ring_embedding.h"

namespace ccube {
namespace core {
namespace {

/** Small deterministic search budget to keep the sweep fast. */
RecoveryOptions
testOptions(const topo::Graph& graph)
{
    RecoveryOptions options;
    options.search.num_ranks = graph.nodeCount();
    options.search.max_attempts = 500;
    options.search.seed = 7;
    return options;
}

void
expectUsable(const topo::Graph& graph, const RecoveryResult& result)
{
    ASSERT_TRUE(result.usable())
        << "surviving graph reported unroutable";
    switch (result.kind) {
    case RecoveryKind::kCCube:
        ASSERT_TRUE(result.double_tree.has_value());
        EXPECT_TRUE(
            topo::isConflictFree(result.graph, *result.double_tree));
        break;
    case RecoveryKind::kDoubleTree:
        ASSERT_TRUE(result.double_tree.has_value());
        // Contended by construction (rung 1 failed), but routable.
        break;
    case RecoveryKind::kRing:
        ASSERT_FALSE(result.rings.empty());
        for (const topo::RingEmbedding& ring : result.rings)
            EXPECT_TRUE(topo::ringIsPhysical(result.graph, ring));
        break;
    case RecoveryKind::kNone:
        FAIL() << "unreachable";
    }
    (void)graph;
}

TEST(WithoutChannels, RemovesExactlyTheNamedChannels)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::Graph degraded = topo::withoutChannels(graph, {0, 5});
    EXPECT_EQ(degraded.nodeCount(), graph.nodeCount());
    EXPECT_EQ(degraded.channelCount(), graph.channelCount() - 2);

    // Out-of-range ids are ignored, not fatal.
    const topo::Graph same =
        topo::withoutChannels(graph, {-1, graph.channelCount() + 3});
    EXPECT_EQ(same.channelCount(), graph.channelCount());
}

TEST(RecoverSchedule, EverySingleChannelRemovalStaysRoutable)
{
    const topo::Graph graph = topo::makeDgx1();
    for (int id = 0; id < graph.channelCount(); ++id) {
        SCOPED_TRACE("removed channel " + std::to_string(id));
        const RecoveryResult result =
            recoverSchedule(graph, {id}, testOptions(graph));
        expectUsable(graph, result);
        EXPECT_EQ(result.graph.channelCount(),
                  graph.channelCount() - 1);
    }
}

TEST(RecoverSchedule, EveryNvlinkPairRemovalStaysRoutable)
{
    const topo::Graph graph = topo::makeDgx1();
    std::vector<std::pair<topo::NodeId, topo::NodeId>> pairs;
    for (int id = 0; id < graph.channelCount(); ++id) {
        const topo::ChannelDesc& desc = graph.channel(id);
        const auto pair = desc.src < desc.dst
                              ? std::make_pair(desc.src, desc.dst)
                              : std::make_pair(desc.dst, desc.src);
        bool seen = false;
        for (const auto& existing : pairs)
            seen = seen || existing == pair;
        if (!seen)
            pairs.push_back(pair);
    }
    ASSERT_FALSE(pairs.empty());
    for (const auto& pair : pairs) {
        SCOPED_TRACE("removed pair (" + std::to_string(pair.first) +
                     "," + std::to_string(pair.second) + ")");
        std::vector<int> failed =
            graph.channelIds(pair.first, pair.second);
        for (int id : graph.channelIds(pair.second, pair.first))
            failed.push_back(id);
        const RecoveryResult result =
            recoverSchedule(graph, failed, testOptions(graph));
        expectUsable(graph, result);
    }
}

TEST(RecoverSchedule, HealthyGraphRecoversAtFullPerformance)
{
    const topo::Graph graph = topo::makeDgx1();
    const RecoveryResult result =
        recoverSchedule(graph, {}, testOptions(graph));
    EXPECT_EQ(result.kind, RecoveryKind::kCCube);
    EXPECT_GE(result.search_seconds, 0.0);
}

TEST(RecoverSchedule, UnroutableSurvivorReportsNoneWithoutPanicking)
{
    const topo::Graph graph = topo::makeDgx1();
    std::vector<int> all;
    for (int id = 0; id < graph.channelCount(); ++id)
        all.push_back(id);
    const RecoveryResult result =
        recoverSchedule(graph, all, testOptions(graph));
    EXPECT_EQ(result.kind, RecoveryKind::kNone);
    EXPECT_FALSE(result.usable());
}

} // namespace
} // namespace core
} // namespace ccube
