#ifndef CCUBE_TOPO_TREE_EMBEDDING_H_
#define CCUBE_TOPO_TREE_EMBEDDING_H_

/**
 * @file
 * Logical binary trees and their embedding onto physical topologies.
 *
 * The tree AllReduce algorithm (§II-C, §III) runs over a *logical*
 * binary tree; this header provides the tree structure, standard
 * constructions, and routed embeddings where each logical edge maps to
 * a physical path (possibly a detour through an intermediate GPU,
 * §IV-A).
 */

#include <memory>
#include <utility>
#include <vector>

#include "topo/graph.h"

namespace ccube {
namespace topo {

/**
 * A rooted binary tree over nodes 0..P-1.
 */
class BinaryTree
{
  public:
    /** Creates an empty (invalid) tree over @p num_nodes nodes. */
    explicit BinaryTree(int num_nodes);

    /**
     * Builds a balanced binary tree by inorder midpoint recursion over
     * ranks 0..P-1; depth is ⌈log2(P+1)⌉.
     */
    static BinaryTree inorder(int num_nodes);

    /**
     * Returns this tree relabeled by rank → P-1-rank (the "mirror"
     * construction from Sanders et al.'s two-tree algorithm): interior
     * nodes of one tree tend to be leaves of the other, balancing load.
     */
    BinaryTree mirrored() const;

    /**
     * Returns this tree relabeled by rank → (rank+shift) mod P; used
     * by NCCL-style double-tree constructions on power-of-two sizes.
     */
    BinaryTree shifted(int shift) const;

    /** Declares @p child a child of @p parent. */
    void addEdge(NodeId parent, NodeId child);

    /** Sets the root. */
    void setRoot(NodeId root);

    /** Number of nodes P. */
    int numNodes() const { return static_cast<int>(parent_.size()); }

    /** The root node. */
    NodeId root() const { return root_; }

    /** Parent of @p node, kInvalidNode for the root. */
    NodeId parent(NodeId node) const;

    /** Children of @p node (0, 1, or 2 entries). */
    const std::vector<NodeId>& children(NodeId node) const;

    /** Depth of @p node (root = 0). */
    int depthOf(NodeId node) const;

    /** Number of levels (max depth + 1). */
    int height() const;

    /** Nodes with no children. */
    std::vector<NodeId> leaves() const;

    /** Nodes with at least one child (includes the root). */
    std::vector<NodeId> interior() const;

    /** All (parent, child) edges, in BFS order from the root. */
    std::vector<std::pair<NodeId, NodeId>> edges() const;

    /** Nodes in BFS order starting at the root. */
    std::vector<NodeId> bfsOrder() const;

    /**
     * True when the tree spans all nodes, every non-root has exactly
     * one parent, arity ≤ 2, and there are no cycles.
     */
    bool valid() const;

  private:
    NodeId root_ = kInvalidNode;
    std::vector<NodeId> parent_;
    std::vector<std::vector<NodeId>> children_;
};

/**
 * A physical route implementing one logical edge, as the node sequence
 * from parent to child (length ≥ 2). Length > 2 means a detour through
 * intermediate forwarding nodes.
 */
struct Route {
    std::vector<NodeId> hops;

    /** Number of physical channels traversed. */
    int hopCount() const { return static_cast<int>(hops.size()) - 1; }

    /** True when this route needs a forwarding intermediate. */
    bool isDetour() const { return hops.size() > 2; }

    /** Intermediate (forwarding) nodes, empty for direct routes. */
    std::vector<NodeId> transits() const;

    /** The same route in the child → parent direction. */
    Route reversed() const;
};

/** Lazily-built forwarding-rule cache (defined in detour_router.h). */
struct ForwardingRuleCache;

/**
 * A logical tree plus the physical route for each edge.
 */
struct TreeEmbedding {
    BinaryTree tree;
    /** routes[i] corresponds to tree.edges()[i], parent → child. */
    std::vector<Route> routes;

    /**
     * Shared cache of the embedding's detour forwarding rules, filled
     * lazily by topo::cachedForwardingRules(). Copies of an embedding
     * share the cache; routes are expected to be immutable once the
     * embedding is in use (they are — embeddings are built once and
     * then only read by the collectives).
     */
    std::shared_ptr<ForwardingRuleCache> forwarding_cache;

    explicit TreeEmbedding(BinaryTree t);

    /** Route for the edge to @p child from its parent. */
    const Route& routeToChild(NodeId child) const;
};

/**
 * Embeds @p tree onto @p graph: direct channels where available,
 * otherwise the shortest NVLink-only detour (never through the host).
 * Panics when some edge is unreachable over NVLink.
 */
TreeEmbedding embedTree(const Graph& graph, BinaryTree tree);

/**
 * Embeds @p tree with every logical edge mapped to a direct route —
 * for purely logical experiments with no physical topology (e.g.
 * functional tests at arbitrary P, or fully-connected fabrics).
 */
TreeEmbedding directEmbedding(BinaryTree tree);

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_TREE_EMBEDDING_H_
