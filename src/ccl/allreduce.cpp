#include "ccl/allreduce.h"

#include "util/logging.h"

namespace ccube {
namespace ccl {

AllReduceTrace::AllReduceTrace(int num_ranks)
    : per_rank_(static_cast<std::size_t>(num_ranks))
{
    CCUBE_CHECK(num_ranks >= 1, "trace needs at least one rank");
}

void
AllReduceTrace::setObserver(Observer observer)
{
    observer_ = std::move(observer);
}

void
AllReduceTrace::record(int rank, int chunk)
{
    CCUBE_CHECK(rank >= 0 &&
                    rank < static_cast<int>(per_rank_.size()),
                "bad rank " << rank);
    PerRank& entry = per_rank_[static_cast<std::size_t>(rank)];
    {
        SpinLockGuard guard(entry.lock);
        entry.order.push_back(chunk);
    }
    if (observer_)
        observer_(rank, chunk);
}

const std::vector<int>&
AllReduceTrace::order(int rank) const
{
    CCUBE_CHECK(rank >= 0 &&
                    rank < static_cast<int>(per_rank_.size()),
                "bad rank " << rank);
    return per_rank_[static_cast<std::size_t>(rank)].order;
}

bool
AllReduceTrace::inOrder() const
{
    for (const PerRank& entry : per_rank_) {
        for (std::size_t i = 1; i < entry.order.size(); ++i)
            if (entry.order[i] < entry.order[i - 1])
                return false;
    }
    return true;
}

ChunkSplit::ChunkSplit(std::size_t total, int chunks)
    : total_(total), chunks_(chunks)
{
    CCUBE_CHECK(chunks >= 1, "need at least one chunk");
    CCUBE_CHECK(total >= static_cast<std::size_t>(chunks),
                "fewer elements (" << total << ") than chunks ("
                                   << chunks << ")");
}

std::size_t
ChunkSplit::begin(int chunk) const
{
    CCUBE_CHECK(chunk >= 0 && chunk < chunks_, "bad chunk " << chunk);
    return total_ * static_cast<std::size_t>(chunk) /
           static_cast<std::size_t>(chunks_);
}

std::size_t
ChunkSplit::end(int chunk) const
{
    CCUBE_CHECK(chunk >= 0 && chunk < chunks_, "bad chunk " << chunk);
    return total_ * (static_cast<std::size_t>(chunk) + 1) /
           static_cast<std::size_t>(chunks_);
}

std::span<float>
ChunkSplit::slice(std::span<float> buffer, int chunk) const
{
    CCUBE_CHECK(buffer.size() == total_, "buffer/split size mismatch");
    return buffer.subspan(begin(chunk), end(chunk) - begin(chunk));
}

std::span<const float>
ChunkSplit::slice(std::span<const float> buffer, int chunk) const
{
    CCUBE_CHECK(buffer.size() == total_, "buffer/split size mismatch");
    return buffer.subspan(begin(chunk), end(chunk) - begin(chunk));
}

} // namespace ccl
} // namespace ccube
