/**
 * @file
 * Functional AllReduce correctness and ordering properties
 * (DESIGN.md invariants #1–#3):
 *   - every rank ends with the elementwise sum, for every algorithm,
 *     across a parameter sweep of P and chunk counts;
 *   - tree algorithms deliver chunks in order at every rank
 *     (Observation #3), the ring does not;
 *   - the overlapped tree produces identical results to the baseline.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "ccl/double_tree_allreduce.h"
#include "ccl/overlapped_tree_allreduce.h"
#include "ccl/ring_allreduce.h"
#include "ccl/tree_allreduce.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/rng.h"

namespace ccube {
namespace ccl {
namespace {

RankBuffers
makeBuffers(int ranks, std::size_t elems, std::uint64_t seed)
{
    util::Rng rng(seed);
    RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (auto& b : buffers) {
        b.resize(elems);
        rng.fill(b, -2.0f, 2.0f);
    }
    return buffers;
}

std::vector<float>
expectedSum(const RankBuffers& buffers)
{
    std::vector<float> sum(buffers[0].size(), 0.0f);
    for (const auto& b : buffers)
        for (std::size_t i = 0; i < sum.size(); ++i)
            sum[i] += b[i];
    return sum;
}

void
expectAllEqualSum(const RankBuffers& buffers,
                  const std::vector<float>& sum)
{
    for (std::size_t r = 0; r < buffers.size(); ++r) {
        for (std::size_t i = 0; i < sum.size(); ++i) {
            ASSERT_NEAR(buffers[r][i], sum[i],
                        1e-4f * std::fabs(sum[i]) + 1e-4f)
                << "rank " << r << " elem " << i;
        }
    }
}

// ---------------------------------------------------------------- ring

class RingSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RingSweep, EveryRankGetsTheSum)
{
    const auto [ranks, elems_per_chunk] = GetParam();
    const std::size_t elems =
        static_cast<std::size_t>(ranks) * elems_per_chunk;
    RankBuffers buffers = makeBuffers(ranks, elems, 101);
    const std::vector<float> sum = expectedSum(buffers);
    Communicator comm(ranks);
    ringAllReduce(comm, buffers, topo::makeSequentialRing(ranks));
    expectAllEqualSum(buffers, sum);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(1, 7, 64)));

TEST(RingAllReduce, ChunksCompleteOutOfOrderAcrossRanks)
{
    const int ranks = 4;
    RankBuffers buffers = makeBuffers(ranks, 64, 5);
    Communicator comm(ranks);
    const AllReduceTrace trace =
        ringAllReduce(comm, buffers, topo::makeSequentialRing(ranks));
    // Each rank sees a rotation starting at (pos+1): only the rank at
    // position P−1 sees 0,1,...,P−1 in ascending order; globally the
    // ring violates the in-order property.
    EXPECT_FALSE(trace.inOrder());
    // But every rank sees every chunk exactly once.
    for (int r = 0; r < ranks; ++r)
        EXPECT_EQ(trace.order(r).size(), static_cast<std::size_t>(ranks));
}

TEST(RingAllReduce, WorksOnDgx1HamiltonianRing)
{
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::RingEmbedding ring = topo::findHamiltonianRing(dgx1, 8);
    RankBuffers buffers = makeBuffers(8, 128, 17);
    const std::vector<float> sum = expectedSum(buffers);
    Communicator comm(8);
    ringAllReduce(comm, buffers, ring);
    expectAllEqualSum(buffers, sum);
}

// ---------------------------------------------------------------- tree

class TreeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, TreePhaseMode>>
{
};

TEST_P(TreeSweep, EveryRankGetsTheSumInOrder)
{
    const auto [ranks, chunks, mode] = GetParam();
    const std::size_t elems = static_cast<std::size_t>(chunks) * 5;
    RankBuffers buffers = makeBuffers(ranks, elems, 23);
    const std::vector<float> sum = expectedSum(buffers);
    Communicator comm(ranks);
    const topo::TreeEmbedding embedding =
        topo::directEmbedding(topo::BinaryTree::inorder(ranks));
    const AllReduceTrace trace =
        treeAllReduce(comm, buffers, embedding, chunks, mode);
    expectAllEqualSum(buffers, sum);
    // Observation #3: in-order delivery at every rank.
    EXPECT_TRUE(trace.inOrder());
    for (int r = 0; r < ranks; ++r)
        EXPECT_EQ(trace.order(r).size(),
                  static_cast<std::size_t>(chunks));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(1, 4, 16),
                       ::testing::Values(TreePhaseMode::kTwoPhase,
                                         TreePhaseMode::kOverlapped)));

TEST(TreeAllReduce, OverlappedMatchesTwoPhaseResults)
{
    const int ranks = 8;
    RankBuffers a = makeBuffers(ranks, 96, 31);
    RankBuffers b = a;
    const topo::TreeEmbedding embedding =
        topo::directEmbedding(topo::BinaryTree::inorder(ranks));
    {
        Communicator comm(ranks);
        treeAllReduce(comm, a, embedding, 8, TreePhaseMode::kTwoPhase);
    }
    {
        Communicator comm(ranks);
        treeAllReduce(comm, b, embedding, 8,
                      TreePhaseMode::kOverlapped);
    }
    for (int r = 0; r < ranks; ++r)
        EXPECT_EQ(a[static_cast<std::size_t>(r)],
                  b[static_cast<std::size_t>(r)]);
}

TEST(TreeAllReduce, DetourForwardingOnDgx1)
{
    // The C-Cube DGX-1 tree 0 contains the 2→4 detour through GPU0;
    // the functional algorithm must forward through it transparently.
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    RankBuffers buffers = makeBuffers(8, 64, 41);
    const std::vector<float> sum = expectedSum(buffers);
    Communicator comm(8);
    const AllReduceTrace trace = treeAllReduce(
        comm, buffers, dt.tree0, 4, TreePhaseMode::kOverlapped);
    expectAllEqualSum(buffers, sum);
    EXPECT_TRUE(trace.inOrder());
}

// ---------------------------------------------------------- double tree

class DoubleTreeSweep
    : public ::testing::TestWithParam<std::tuple<int, TreePhaseMode>>
{
};

TEST_P(DoubleTreeSweep, EveryRankGetsTheSum)
{
    const auto [chunks_per_tree, mode] = GetParam();
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    const std::size_t elems =
        static_cast<std::size_t>(chunks_per_tree) * 2 * 3;
    RankBuffers buffers = makeBuffers(8, elems, 57);
    const std::vector<float> sum = expectedSum(buffers);
    Communicator comm(8);
    const AllReduceTrace trace =
        doubleTreeAllReduce(comm, buffers, dt, chunks_per_tree, mode);
    expectAllEqualSum(buffers, sum);
    // Every rank sees every global chunk exactly once.
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(trace.order(r).size(),
                  static_cast<std::size_t>(2 * chunks_per_tree));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DoubleTreeSweep,
    ::testing::Combine(::testing::Values(1, 3, 8),
                       ::testing::Values(TreePhaseMode::kTwoPhase,
                                         TreePhaseMode::kOverlapped)));

TEST(DoubleTreeAllReduce, PerTreeChunksStayInOrder)
{
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    const int chunks_per_tree = 6;
    RankBuffers buffers = makeBuffers(8, 48, 71);
    Communicator comm(8);
    const AllReduceTrace trace = doubleTreeAllReduce(
        comm, buffers, dt, chunks_per_tree,
        TreePhaseMode::kOverlapped);
    // Within each tree's id range, arrival order is ascending at
    // every rank (the property gradient queuing relies on).
    for (int r = 0; r < 8; ++r) {
        int last_t0 = -1;
        int last_t1 = -1;
        for (int chunk : trace.order(r)) {
            if (chunk < chunks_per_tree) {
                EXPECT_GT(chunk, last_t0);
                last_t0 = chunk;
            } else {
                EXPECT_GT(chunk, last_t1);
                last_t1 = chunk;
            }
        }
    }
}

TEST(ChunkSplit, CoversBufferWithoutOverlap)
{
    const ChunkSplit split(100, 7);
    std::size_t covered = 0;
    for (int c = 0; c < 7; ++c) {
        EXPECT_EQ(split.begin(c), covered);
        EXPECT_GT(split.end(c), split.begin(c));
        covered = split.end(c);
    }
    EXPECT_EQ(covered, 100u);
}

TEST(AllReduceTrace, InOrderDetection)
{
    AllReduceTrace trace(2);
    trace.record(0, 0);
    trace.record(0, 1);
    trace.record(1, 0);
    EXPECT_TRUE(trace.inOrder());
    trace.record(1, 2);
    trace.record(1, 1);
    EXPECT_FALSE(trace.inOrder());
}

} // namespace
} // namespace ccl
} // namespace ccube
