#include "model/invocation_model.h"

#include <numeric>

#include "model/tree_model.h"
#include "util/logging.h"

namespace ccube {
namespace model {

double
InvocationModel::totalTime(int p,
                           const std::vector<double>& buffer_bytes) const
{
    CCUBE_CHECK(!buffer_bytes.empty(), "no buffers to reduce");
    const TreeModel tree(params_.link);
    double total = 0.0;
    for (double bytes : buffer_bytes) {
        CCUBE_CHECK(bytes > 0.0, "non-positive buffer size");
        total += params_.setup_overhead + tree.allReduceTime(p, bytes);
    }
    return total;
}

std::vector<double>
InvocationModel::invocationSizes(const std::vector<double>& layer_bytes,
                                 InvocationStrategy strategy) const
{
    switch (strategy) {
      case InvocationStrategy::kOneShot: {
        const double total = std::accumulate(layer_bytes.begin(),
                                             layer_bytes.end(), 0.0);
        return {total};
      }
      case InvocationStrategy::kLayerWise:
        return layer_bytes;
      case InvocationStrategy::kSlicing: {
        std::vector<double> slices;
        for (double bytes : layer_bytes) {
            const int n = params_.slices_per_layer;
            for (int s = 0; s < n; ++s)
                slices.push_back(bytes / n);
        }
        return slices;
      }
    }
    util::panic("unknown invocation strategy");
}

double
InvocationModel::effectiveBandwidth(int p,
                                    const std::vector<double>& layer_bytes,
                                    InvocationStrategy strategy) const
{
    const std::vector<double> sizes =
        invocationSizes(layer_bytes, strategy);
    const double total_bytes =
        std::accumulate(sizes.begin(), sizes.end(), 0.0);
    return total_bytes / totalTime(p, sizes);
}

} // namespace model
} // namespace ccube
