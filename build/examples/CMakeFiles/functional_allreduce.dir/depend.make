# Empty dependencies file for functional_allreduce.
# This may be replaced when dependencies are built.
