/**
 * @file
 * Unit tests for the topology graph, DGX-1 builder, switch fabric,
 * and ring embeddings.
 */

#include <gtest/gtest.h>

#include <set>

#include "topo/dgx1.h"
#include "topo/graph.h"
#include "topo/ring_embedding.h"
#include "topo/switch_fabric.h"

namespace ccube {
namespace topo {
namespace {

Graph
triangle()
{
    Graph g("triangle");
    g.addNode("a");
    g.addNode("b");
    g.addNode("c");
    g.addLink(0, 1, 1e9, 1e-6);
    g.addLink(1, 2, 1e9, 1e-6);
    g.addLink(2, 0, 1e9, 1e-6);
    return g;
}

TEST(Graph, AddLinkCreatesBothDirections)
{
    Graph g = triangle();
    EXPECT_EQ(g.nodeCount(), 3);
    EXPECT_EQ(g.channelCount(), 6);
    EXPECT_TRUE(g.hasChannel(0, 1));
    EXPECT_TRUE(g.hasChannel(1, 0));
    EXPECT_FALSE(g.hasChannel(0, 0));
}

TEST(Graph, LinkCountCountsMultiplicity)
{
    Graph g("multi");
    g.addNode("a");
    g.addNode("b");
    g.addLink(0, 1, 1e9, 1e-6);
    g.addLink(0, 1, 1e9, 1e-6);
    EXPECT_EQ(g.linkCount(0, 1), 2);
    EXPECT_EQ(g.linkCount(1, 0), 2);
    EXPECT_EQ(g.channelIds(0, 1).size(), 2u);
}

TEST(Graph, NeighborsDeduplicated)
{
    Graph g("multi");
    g.addNode("a");
    g.addNode("b");
    g.addLink(0, 1, 1e9, 1e-6);
    g.addLink(0, 1, 1e9, 1e-6);
    EXPECT_EQ(g.neighbors(0), std::vector<NodeId>{1});
}

TEST(Graph, ShortestPathDirect)
{
    Graph g = triangle();
    EXPECT_EQ(g.shortestPath(0, 1), (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(g.shortestPath(2, 2), (std::vector<NodeId>{2}));
}

TEST(Graph, ShortestPathAvoidsWrongKind)
{
    Graph g("mixed");
    g.addNode("a");
    g.addNode("b");
    g.addNode("host");
    g.addLink(0, 2, 1e9, 1e-6, LinkKind::kPcie);
    g.addLink(2, 1, 1e9, 1e-6, LinkKind::kPcie);
    // Only a PCIe path exists: the NVLink search must fail.
    EXPECT_TRUE(g.shortestPath(0, 1, LinkKind::kNvlink).empty());
    EXPECT_EQ(g.shortestPath(0, 1, LinkKind::kPcie).size(), 3u);
}

TEST(Dgx1, SixLinksPerGpu)
{
    const Graph g = makeDgx1();
    EXPECT_EQ(g.nodeCount(), 8);
    // 24 bidirectional links = 48 unidirectional channels.
    EXPECT_EQ(g.channelCount(), 48);
    for (NodeId gpu = 0; gpu < 8; ++gpu)
        EXPECT_EQ(static_cast<int>(g.outChannels(gpu).size()),
                  kDgx1LinksPerGpu);
}

TEST(Dgx1, DoubleLinkPairs)
{
    const Graph g = makeDgx1();
    const std::set<std::pair<int, int>> doubles{
        {0, 3}, {0, 4}, {1, 2}, {1, 5},
        {2, 3}, {4, 7}, {5, 6}, {6, 7}};
    for (NodeId a = 0; a < 8; ++a) {
        for (NodeId b = a + 1; b < 8; ++b) {
            const int count = g.linkCount(a, b);
            if (doubles.count({a, b})) {
                EXPECT_EQ(count, 2) << a << "-" << b;
            } else {
                EXPECT_LE(count, 1) << a << "-" << b;
            }
        }
    }
}

TEST(Dgx1, MissingPairsNeedDetours)
{
    const Graph g = makeDgx1();
    // The pairs the paper's detours exist for.
    EXPECT_FALSE(g.hasChannel(2, 4));
    EXPECT_FALSE(g.hasChannel(3, 5));
    // Two-hop NVLink paths exist.
    EXPECT_EQ(g.shortestPath(2, 4).size(), 3u);
    EXPECT_EQ(g.shortestPath(3, 5).size(), 3u);
}

TEST(Dgx1, HostOnlyWhenRequested)
{
    Dgx1Params params;
    params.with_host = true;
    const Graph g = makeDgx1(params);
    EXPECT_EQ(g.nodeCount(), 9);
    EXPECT_TRUE(g.hasChannel(0, kDgx1Host));
    // PCIe path 2→host→4 exists but NVLink search avoids it.
    const auto nvlink_path = g.shortestPath(2, 4, LinkKind::kNvlink);
    ASSERT_EQ(nvlink_path.size(), 3u);
    EXPECT_NE(nvlink_path[1], kDgx1Host);
}

TEST(SwitchFabric, StructureAndReachability)
{
    SwitchFabricParams params;
    params.num_nodes = 16;
    params.leaf_radix = 8;
    const Graph g = makeSwitchFabric(params);
    // 16 endpoints + 2 leaves + 1 spine.
    EXPECT_EQ(g.nodeCount(), 19);
    // Same leaf: 2 hops; across leaves: 4 hops.
    EXPECT_EQ(g.shortestPath(0, 1).size(), 3u);
    EXPECT_EQ(g.shortestPath(0, 15).size(), 5u);
    EXPECT_EQ(fabricHopCount(params, 0, 1), 2);
    EXPECT_EQ(fabricHopCount(params, 0, 15), 4);
}

TEST(SwitchFabric, SingleLeafHasNoSpine)
{
    SwitchFabricParams params;
    params.num_nodes = 4;
    params.leaf_radix = 8;
    const Graph g = makeSwitchFabric(params);
    EXPECT_EQ(g.nodeCount(), 5);
}

TEST(RingEmbedding, Dgx1HamiltonianRingExists)
{
    const Graph g = makeDgx1();
    const RingEmbedding ring = findHamiltonianRing(g, 8);
    ASSERT_EQ(ring.size(), 8);
    EXPECT_TRUE(ringIsPhysical(g, ring));
    // Every GPU appears exactly once.
    std::set<NodeId> seen(ring.order.begin(), ring.order.end());
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RingEmbedding, SequentialRing)
{
    const RingEmbedding ring = makeSequentialRing(4);
    EXPECT_EQ(ring.order, (std::vector<NodeId>{0, 1, 2, 3}));
    EXPECT_EQ(ring.next(3), 0);
}

TEST(RingEmbedding, DisjointRingsRespectCapacity)
{
    const Graph g = makeDgx1();
    const auto rings = findDisjointRings(g, 8, 8);
    // 48 directed channels / 8 per ring = at most 6 rings.
    EXPECT_GE(rings.size(), 3u);
    EXPECT_LE(rings.size(), 6u);
    // Count directed usage; must never exceed multiplicity.
    std::map<std::pair<NodeId, NodeId>, int> used;
    for (const RingEmbedding& ring : rings) {
        EXPECT_TRUE(ringIsPhysical(g, ring));
        for (int i = 0; i < ring.size(); ++i) {
            ++used[{ring.order[static_cast<std::size_t>(i)],
                    ring.next(i)}];
        }
    }
    for (const auto& [pair, count] : used)
        EXPECT_LE(count, g.linkCount(pair.first, pair.second))
            << pair.first << "→" << pair.second;
}

TEST(RingEmbedding, NoRingOnAPath)
{
    Graph g("path");
    g.addNode("a");
    g.addNode("b");
    g.addNode("c");
    g.addLink(0, 1, 1e9, 1e-6);
    g.addLink(1, 2, 1e9, 1e-6);
    EXPECT_EQ(findHamiltonianRing(g, 3).size(), 0);
}

} // namespace
} // namespace topo
} // namespace ccube
