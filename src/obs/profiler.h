#ifndef CCUBE_OBS_PROFILER_H_
#define CCUBE_OBS_PROFILER_H_

/**
 * @file
 * obs::Profiler — always-on sampling profiler and wait-for-graph
 * introspection for the ccl runtime.
 *
 * The state-machine engine multiplexes hundreds of functional ranks
 * onto a handful of pool workers, which breaks the two debugging
 * tools the thread-per-rank runtime got for free: `top`-style "where
 * is the time going" (worker threads carry many ranks, so OS-level
 * profiles attribute everything to "sm worker 0"), and "who is
 * waiting on whom" (a parked task is not a blocked thread any
 * debugger can see). This header restores both:
 *
 *  - **Sampling profiler.** Instrumented sites publish their current
 *    (phase, rank) pair into a per-thread slot — one relaxed atomic
 *    store on entry/exit, nothing else — and a single sampler thread
 *    wakes at --profile-hz, reads every slot, and accumulates
 *    per-rank × per-phase sample counts: step (reduce/copy inside a
 *    rank task), mailbox post, mailbox wait, steal scan, worker
 *    idle. Parked time cannot be sampled from thread slots (a parked
 *    task occupies no thread), so the engine feeds it exactly:
 *    the park/resume transitions in state_machine.cpp measure each
 *    park episode with a steady clock and add it per rank here.
 *    Results export as collapsed-stack flamegraph text
 *    (writeCollapsed, `flamegraph.pl`-compatible), as
 *    `profiler.*` counters in the MetricRegistry, and as live
 *    `ccl.prof.*` gauges in obs::Monitor while running.
 *
 *  - **Wait-for graph registry.** WaitForRegistry records, per rank,
 *    which mailbox/semaphore the rank is blocked on and which peer
 *    rank is expected to post it (the mailbox table knows its
 *    endpoints). The registry can materialize the rank→rank wait-for
 *    graph at any instant, follow stall chains with cycle detection,
 *    and format the full blocked chain — which is what the
 *    CommWatchdog dumps on deadline expiry instead of a single
 *    blamed rank:
 *
 *        r17 parked on mb 3->17/f2 <- r3 parked on mb 9->3/f1
 *            <- r9 killed
 *
 * Overhead discipline: publication sites gate on one relaxed load
 * (enabled()) and are no-ops while no sampler is running; the
 * wait-for registry writes only on blocking slow paths (a rank about
 * to park or spin), so both halves stay always-on. The sampler is a
 * single thread regardless of rank count.
 *
 * Layering: this header has no ccl:: dependencies — the ccl runtime
 * calls in (CommFaultContext owns a WaitForRegistry; the mailbox and
 * state-machine publish phases), never the other way around.
 */

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ccube {
namespace obs {

class MetricRegistry;

/** What an instrumented thread is doing right now. */
enum class ProfPhase : int {
    kIdle = 0,        ///< pool worker with no runnable task
    kStep = 1,        ///< inside a rank task step / rank body
    kMailboxPost = 2, ///< mailbox send side (copy + flow control)
    kMailboxWait = 3, ///< mailbox receive side (wait + reduce/copy)
    kSteal = 4,       ///< worker scanning victim queues
    kParked = 5,      ///< task parked (fed exactly, never sampled)
    kLLSpin = 6,      ///< spinning on an LL inline arrival flag
};

/** Number of distinct ProfPhase values. */
constexpr int kProfPhaseCount = 7;

/** Stable short name ("step", "mailbox_wait", ...). */
const char* profPhaseName(ProfPhase phase);

/**
 * Sampling profiler: per-thread phase publication + one sampler
 * thread. start()/stop() bound a capture; the publication sites stay
 * compiled in and cost one relaxed load while stopped.
 */
class Profiler
{
  public:
    /** Publication slots; threads beyond this are not sampled. */
    static constexpr int kMaxThreads = 256;

    /** Per-rank attribution slots (the state-machine runtime targets
     *  P=512–1024; deliberately NOT RankCounters::kMaxRanks). */
    static constexpr int kMaxRanks = 1024;

    /** Default sampling rate (prime, so it cannot phase-lock with
     *  millisecond-periodic runtime behavior). */
    static constexpr double kDefaultHz = 997.0;

    Profiler() = default;
    ~Profiler();
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    /** Process-wide instance the instrumentation publishes to. */
    static Profiler& global();

    /** True while a sampler is running (publication gate). */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Clears accumulated samples and starts the sampler thread at
     * @p hz (<= 0 selects kDefaultHz). No-op when already running.
     * Registers live `ccl.prof.*` gauges with obs::Monitor.
     */
    void start(double hz);

    /** Stops and joins the sampler; accumulated samples are kept. */
    void stop();

    /** Sampling rate of the current/last capture. */
    double hz() const { return hz_; }

    /** Sampler wakeups so far. */
    std::uint64_t ticks() const
    {
        return ticks_.load(std::memory_order_relaxed);
    }

    // ---- publication (instrumented threads) ----

    /**
     * Publishes (phase, rank) for the calling thread and returns the
     * previous packed state so ScopedProfPhase can restore nesting.
     * Returns 0 without publishing while disabled.
     */
    std::uint64_t publish(ProfPhase phase, int rank);

    /** Restores a packed state returned by publish(). */
    void restore(std::uint64_t packed);

    // ---- exact park attribution (always on; engine slow path) ----

    /** Adds @p ns of measured parked time for @p rank. */
    void addParkedNs(int rank, std::uint64_t ns);

    /** Accumulated parked ns for @p rank (-1 = unknown slot). */
    std::uint64_t parkedNs(int rank) const;

    /** Parked ns summed over every rank slot. */
    std::uint64_t totalParkedNs() const;

    // ---- results ----

    /** Samples observed in @p phase, summed over ranks. */
    std::uint64_t samples(ProfPhase phase) const;

    /** Samples observed in @p phase for @p rank (-1 = unknown). */
    std::uint64_t samples(ProfPhase phase, int rank) const;

    /**
     * Collapsed-stack flamegraph text, one `frame;frame count` line
     * per non-zero (rank, phase) bucket. Parked time is folded in as
     * `parked` frames scaled by hz so one unit ≈ one sample period.
     */
    void writeCollapsed(std::ostream& out) const;

    /** Exports `profiler.*` counters into @p registry. */
    void exportTo(MetricRegistry& registry) const;

    /** Folds a capture summary into the Chrome trace (one instant
     *  per phase with sample/ns args) when the recorder is enabled. */
    void foldIntoTrace() const;

    /** Zeroes samples, parked time, and tick counts. */
    void reset();

  private:
    struct alignas(64) ThreadSlot {
        std::atomic<std::uint64_t> state{0}; ///< packed (phase, rank)
    };

    struct alignas(64) ParkSlot {
        std::atomic<std::uint64_t> ns{0};
    };

    static std::uint64_t pack(ProfPhase phase, int rank);

    /** Slot index for the calling thread (registers on first use);
     *  -1 when the slot table is full. */
    int threadSlot();

    void samplerLoop();

    std::atomic<bool> enabled_{false};
    double hz_ = kDefaultHz;
    std::atomic<std::uint64_t> ticks_{0};

    std::atomic<int> slots_used_{0};
    ThreadSlot thread_slots_[kMaxThreads];
    ParkSlot parked_ns_[kMaxRanks + 1]; ///< [0] = unknown rank

    // Sample accumulation: written by the sampler thread, read by
    // reporters; the mutex also serializes start/stop.
    mutable std::mutex mutex_;
    std::vector<std::uint64_t> counts_; ///< [phase][rank+1], flat
    std::thread sampler_;
    bool running_ = false; ///< guarded by mutex_
    int monitor_token_ = -1;
};

/**
 * RAII phase publication: publishes (phase, rank) on construction and
 * restores the previous phase on destruction, so nested sites (a
 * mailbox wait inside a task step) attribute to the innermost phase.
 * A disabled profiler makes both ends one relaxed load.
 */
class ScopedProfPhase
{
  public:
    /** Publishes with the calling thread's obs::threadRank(). */
    explicit ScopedProfPhase(ProfPhase phase);

    ScopedProfPhase(ProfPhase phase, int rank);
    ~ScopedProfPhase();

    ScopedProfPhase(const ScopedProfPhase&) = delete;
    ScopedProfPhase& operator=(const ScopedProfPhase&) = delete;

  private:
    std::uint64_t previous_ = 0;
    bool active_ = false;
};

/**
 * Rank→rank wait-for graph: per-rank record of "blocked on mailbox L,
 * expecting rank P to post". Writers are the blocking ranks
 * themselves (one store on the slow path before blocking/parking, one
 * on wake); the reader is the watchdog thread materializing stall
 * chains at deadline expiry. Sized by the communicator's rank count —
 * no 64-rank cap, the P=512–1024 runtime is the target.
 *
 * Labels are stored by pointer (mailbox trace labels outlive the
 * communicator; tests use string literals). One slot per rank:
 * when several helper roles of one rank block concurrently the last
 * writer wins — the graph is a best-effort snapshot, and a chain
 * simply ends early when an edge is missing.
 */
class WaitForRegistry
{
  public:
    explicit WaitForRegistry(int num_ranks);
    WaitForRegistry(const WaitForRegistry&) = delete;
    WaitForRegistry& operator=(const WaitForRegistry&) = delete;

    int numRanks() const
    {
        return static_cast<int>(slots_.size());
    }

    /** Declares @p rank blocked on @p label, expecting @p peer to
     *  post it (peer -1 = unknown poster). */
    void noteWait(int rank, int peer, const char* label, int flow);

    /** Clears @p rank's blocked record (woken / gave up). */
    void clearWait(int rank);

    /** Marks @p rank dead (killed or wedged by the injector). */
    void markDead(int rank);

    bool waiting(int rank) const;
    bool dead(int rank) const;

    /** Clears every edge and dead mark (next collective). */
    void reset();

    /** One wait-for edge snapshot. */
    struct Link {
        int rank = -1;     ///< the blocked rank
        int peer = -1;     ///< rank expected to post (-1 unknown)
        std::string label; ///< mailbox/semaphore label
        int flow = -1;
    };

    /** A materialized stall chain. */
    struct Chain {
        std::vector<Link> links; ///< blocked ranks, waiter first
        int terminus = -1;       ///< first non-waiting rank reached
        bool terminus_dead = false;
        bool cycle = false; ///< terminus closes a wait-for cycle

        bool empty() const { return links.empty() && terminus < 0; }
        std::size_t length() const { return links.size(); }
    };

    /**
     * Follows wait-for edges from @p start until a rank that is not
     * waiting (the terminus — dead, running, or outside the graph) or
     * a previously-visited rank (a cycle). Each link is a snapshot;
     * concurrent wakes can truncate the chain but never loop it.
     */
    Chain chain(int start) const;

    /** The longest chain over all currently-waiting start ranks
     *  (ties: lowest start rank). Empty when nobody waits. */
    Chain longestChain() const;

    /**
     * One-line rendering of @p chain:
     * `r17 parked on mb 3->17/f2 <- r3 parked on mb 9->3/f1
     *  <- r9 killed`. The terminus renders as `killed` (dead),
     * `running` (alive, not waiting), `wait cycle` (cycle), or the
     * chain ends at `<external>` when the poster is unknown.
     */
    static std::string formatChain(const Chain& chain);

  private:
    struct alignas(64) Slot {
        std::atomic<const char*> label{nullptr}; ///< null = not waiting
        std::atomic<int> peer{-1};
        std::atomic<int> flow{-1};
        std::atomic<bool> dead{false};
    };

    std::vector<Slot> slots_;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_PROFILER_H_
