file(REMOVE_RECURSE
  "CMakeFiles/ccl_sync_test.dir/ccl_sync_test.cpp.o"
  "CMakeFiles/ccl_sync_test.dir/ccl_sync_test.cpp.o.d"
  "ccl_sync_test"
  "ccl_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccl_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
