/**
 * @file
 * Micro-benchmarks (google-benchmark) for the building blocks whose
 * cost the paper's design leans on: the device-side-style sync
 * primitives (Fig. 11), the mailbox path, the event queue, and the
 * gradient queue's enqueue/dequeue.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "ccl/mailbox.h"
#include "ccl/sync_primitives.h"
#include "core/gradient_queue.h"
#include "sim/event_queue.h"
#include "sim/resource.h"

namespace {

using namespace ccube;

void
BM_SpinLockUncontended(benchmark::State& state)
{
    ccl::SpinLock lock;
    for (auto _ : state) {
        lock.lock();
        lock.unlock();
    }
}
BENCHMARK(BM_SpinLockUncontended);

void
BM_SemaphorePostWait(benchmark::State& state)
{
    ccl::BoundedSemaphore sem(1024);
    for (auto _ : state) {
        sem.post();
        sem.wait();
    }
}
BENCHMARK(BM_SemaphorePostWait);

void
BM_CheckableCounterPostCheck(benchmark::State& state)
{
    ccl::CheckableCounter counter;
    std::int64_t target = 0;
    for (auto _ : state) {
        counter.post();
        counter.check(++target);
    }
}
BENCHMARK(BM_CheckableCounterPostCheck);

void
BM_MailboxSendRecv(benchmark::State& state)
{
    ccl::Mailbox box(8);
    const std::vector<float> chunk(
        static_cast<std::size_t>(state.range(0)), 1.0f);
    std::vector<float> out;
    for (auto _ : state) {
        box.send(chunk, 0);
        box.recv(out);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_MailboxSendRecv)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_MailboxRecvReduce(benchmark::State& state)
{
    ccl::Mailbox box(8);
    const std::vector<float> chunk(
        static_cast<std::size_t>(state.range(0)), 1.0f);
    std::vector<float> acc(chunk.size(), 0.0f);
    for (auto _ : state) {
        box.send(chunk, 0);
        box.recvReduce(acc);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_MailboxRecvReduce)->Arg(4096)->Arg(65536);

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    const int events = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue queue;
        for (int i = 0; i < events; ++i)
            queue.schedule(static_cast<double>(i), []() {});
        queue.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_FifoResourcePipeline(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim::FifoResource res(sim, "ch");
        for (int i = 0; i < 1000; ++i)
            res.request([]() { return 1.0; }, nullptr);
        sim.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_FifoResourcePipeline);

void
BM_GradientQueueIteration(benchmark::State& state)
{
    const int layers = static_cast<int>(state.range(0));
    std::vector<std::int64_t> table;
    for (int l = 1; l <= layers; ++l)
        table.push_back(4 * l);
    for (auto _ : state) {
        core::GradientQueue queue(table);
        for (int l = 0; l < layers; ++l) {
            for (int c = 0; c < 4; ++c)
                queue.enqueueChunk();
            queue.dequeueLayer(l);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * layers);
}
BENCHMARK(BM_GradientQueueIteration)->Arg(16)->Arg(128);

} // namespace

BENCHMARK_MAIN();
