#include "simnet/overlapped_tree_schedule.h"

namespace ccube {
namespace simnet {

ScheduleResult
runOverlappedTreeSchedule(sim::Simulation& simulation, Network& network,
                          const topo::TreeEmbedding& embedding,
                          double total_bytes, int num_chunks, int lane)
{
    return runTreeSchedule(simulation, network, embedding, total_bytes,
                           PhaseMode::kOverlapped, num_chunks, lane);
}

} // namespace simnet
} // namespace ccube
