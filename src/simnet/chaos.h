#ifndef CCUBE_SIMNET_CHAOS_H_
#define CCUBE_SIMNET_CHAOS_H_

/**
 * @file
 * Seeded chaos engine: deterministic fault-churn scenario generation.
 *
 * A FaultPlan is hand-authored; a ChaosPlan is drawn from a seed — the
 * fuzzing side of the resilience story. Given a topology and a seed it
 * generates a randomized but fully reproducible churn scenario (link
 * kills, flapping fail/restore cycles, bandwidth degradations, node
 * slowdowns) expressed as an ordinary simnet::FaultPlan, so the same
 * scenario can drive both the DES fabric (applyFaultPlan) and, via
 * deadAtHorizon(), the functional supervisor's event feed.
 *
 * Determinism contract: two ChaosPlans built from the same graph,
 * seed, and options are identical event-for-event. The chaos fuzz
 * harness (tests/chaos_fuzz_test.cpp) leans on this to rerun any
 * failing seed exactly.
 *
 * Link granularity: faults hit *links* (both directed channels of a
 * pair), matching how a physical NVLink dies. On multi-link pairs the
 * paired reverse channel is chosen by position, so one link of a
 * double-NVLink pair can fail while its twin stays up — the scenario
 * the C-Cube double tree is most sensitive to.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/fault_plan.h"
#include "topo/graph.h"

namespace ccube {
namespace simnet {

/** Knobs for ChaosPlan generation. */
struct ChaosOptions {
    /** Simulated window fault events land in: every event time is
     *  drawn uniformly from (0, horizon_s). */
    double horizon_s = 0.05;

    /** Scenario size: number of independent fault draws (each draw may
     *  expand into several events, e.g. a flap cycle). */
    int min_faults = 1;
    int max_faults = 3;

    /** Relative draw weights of the fault kinds. */
    double link_fail_weight = 0.5;  ///< kill a link (maybe restore)
    double degrade_weight = 0.3;    ///< degrade a link's bandwidth
    double slow_node_weight = 0.2;  ///< slow every link of one node

    /** Probability a killed link restores within the horizon. */
    double restore_probability = 0.6;

    /** Probability a restored link immediately flaps (fails again,
     *  then restores again); applied repeatedly, so flap cycles have
     *  geometrically distributed length. */
    double flap_probability = 0.35;

    /** Bandwidth factor range for degrade / slowdown draws. */
    double min_factor = 0.25;
    double max_factor = 0.85;
};

/**
 * One deterministic chaos scenario over a fixed topology.
 */
class ChaosPlan
{
  public:
    /** Draws the scenario. @p graph is only read (channel structure);
     *  ids in the plan are @p graph's channel ids. */
    ChaosPlan(const topo::Graph& graph, std::uint64_t seed,
              ChaosOptions options = {});

    /** The generating seed. */
    std::uint64_t seed() const { return seed_; }

    /** The scenario as a timed fault plan for applyFaultPlan(). */
    const FaultPlan& plan() const { return plan_; }

    /** Directed channel ids still failed once every event has fired —
     *  the persistent damage a re-planner must route around (empty
     *  when every kill restored within the horizon). */
    const std::vector<int>& deadAtHorizon() const { return dead_; }

    /** Event count of the underlying plan. */
    int eventCount() const
    {
        return static_cast<int>(plan_.events().size());
    }

    /** One-line description for logs / failure reports, e.g.
     *  "seed=42 events=7 fail=3 restore=2 degrade=1 slow=1 dead=2". */
    std::string summary() const;

  private:
    std::uint64_t seed_ = 0;
    FaultPlan plan_;
    std::vector<int> dead_;
    int fails_ = 0;
    int restores_ = 0;
    int degrades_ = 0;
    int slowdowns_ = 0;
};

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_CHAOS_H_
