#ifndef CCUBE_TOPO_RING_EMBEDDING_H_
#define CCUBE_TOPO_RING_EMBEDDING_H_

/**
 * @file
 * Logical ring embedding for the ring AllReduce baseline (R).
 *
 * The physical topology need not be a ring: a logical ring is embedded
 * onto it (§III-A). For the DGX-1, a Hamiltonian NVLink cycle exists
 * and is found by backtracking search.
 */

#include <vector>

#include "topo/graph.h"

namespace ccube {
namespace topo {

/**
 * A logical ring: node order; node i sends to order[(i+1) % P].
 */
struct RingEmbedding {
    std::vector<NodeId> order;

    /** Number of ranks on the ring. */
    int size() const { return static_cast<int>(order.size()); }

    /** Successor of the node at ring position @p pos. */
    NodeId next(int pos) const
    {
        return order[static_cast<std::size_t>((pos + 1) % size())];
    }
};

/**
 * Finds a Hamiltonian cycle over nodes 0..num_ranks-1 using only
 * direct NVLink channels (backtracking; practical for small node
 * counts such as the 8-GPU DGX-1). Returns an empty embedding when no
 * such cycle exists.
 */
RingEmbedding findHamiltonianRing(const Graph& graph, int num_ranks);

/**
 * Returns the trivial ring 0,1,...,P-1 (suitable for switch fabrics
 * where every pair is routable at uniform cost).
 */
RingEmbedding makeSequentialRing(int num_ranks);

/** True when consecutive ring hops all have direct channels. */
bool ringIsPhysical(const Graph& graph, const RingEmbedding& ring);

/**
 * Finds up to @p max_rings channel-disjoint Hamiltonian cycles over
 * nodes 0..num_ranks-1, respecting per-direction link multiplicity
 * (a double NVLink can carry two rings in the same direction). This
 * is how NCCL exploits all six NVLinks per GPU on the DGX-1: data is
 * striped across several logical rings running concurrently.
 *
 * Greedy: rings are found one at a time, each consuming capacity.
 * Returns fewer rings when the residual graph has no Hamiltonian
 * cycle left.
 */
std::vector<RingEmbedding> findDisjointRings(const Graph& graph,
                                             int num_ranks,
                                             int max_rings);

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_RING_EMBEDDING_H_
