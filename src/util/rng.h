#ifndef CCUBE_UTIL_RNG_H_
#define CCUBE_UTIL_RNG_H_

/**
 * @file
 * Deterministic random number generation for tests and workloads.
 *
 * All stochastic behaviour in the library flows through this class so
 * that every experiment is reproducible from a seed.
 */

#include <cstdint>
#include <vector>

namespace ccube {
namespace util {

/**
 * Deterministic PRNG (xoshiro256**) with convenience distributions.
 */
class Rng
{
  public:
    /** Seeds the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller). */
    double normal();

    /** Fills @p out with uniform floats in [lo, hi). */
    void fill(std::vector<float>& out, float lo, float hi);

  private:
    std::uint64_t state_[4];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_RNG_H_
