#include "core/ccube_engine.h"

#include <utility>

#include "topo/ring_embedding.h"
#include "util/logging.h"

namespace ccube {
namespace core {

MachineModel
makeDgx1Machine(const topo::Dgx1Params& params, int ring_count)
{
    topo::Graph graph = topo::makeDgx1(params);
    topo::DoubleTreeEmbedding double_tree =
        topo::makeDgx1DoubleTree(graph);
    CCUBE_CHECK(topo::isConflictFree(graph, double_tree),
                "DGX-1 double tree embedding has channel conflicts");
    std::vector<topo::RingEmbedding> rings = topo::findDisjointRings(
        graph, params.num_gpus, ring_count);
    CCUBE_CHECK(!rings.empty(),
                "no Hamiltonian NVLink ring found on the DGX-1");
    return MachineModel{std::move(graph), std::move(double_tree),
                        std::move(rings), params.num_gpus};
}

MachineModel
makeDgx2Machine(const topo::Dgx2Params& params)
{
    topo::Graph graph = topo::makeDgx2(params);
    topo::DoubleTreeEmbedding double_tree =
        topo::makeDgx2DoubleTree(graph, params);
    CCUBE_CHECK(topo::isConflictFree(graph, double_tree),
                "DGX-2 double tree embedding has channel conflicts");
    std::vector<topo::RingEmbedding> rings{
        topo::makeSequentialRing(params.num_gpus)};
    return MachineModel{std::move(graph), std::move(double_tree),
                        std::move(rings), params.num_gpus};
}

CCubeEngine::CCubeEngine(dnn::NetworkModel network, EngineConfig config)
    : CCubeEngine(std::move(network),
                  makeDgx1Machine(config.dgx1, config.ring_count),
                  config)
{
}

CCubeEngine::CCubeEngine(dnn::NetworkModel network, MachineModel machine,
                         EngineConfig config)
    : config_(config)
{
    graph_ = std::make_unique<topo::Graph>(std::move(machine.graph));
    scheduler_ = std::make_unique<IterationScheduler>(
        *graph_, std::move(machine.double_tree),
        std::move(machine.rings), std::move(network), config.gpu);
}

IterationResult
CCubeEngine::evaluate(Mode mode, const IterationConfig& config) const
{
    return scheduler_->run(mode, config);
}

std::vector<double>
CCubeEngine::perGpuNormalizedPerf(Mode mode,
                                  const IterationConfig& config) const
{
    return scheduler_->perGpuNormalizedPerf(
        mode, config, config_.detour_tax_per_kernel);
}

std::vector<double>
CCubeEngine::perGpuNormalizedPerf(Mode mode,
                                  const IterationConfig& config,
                                  const sweep::Options& pool) const
{
    return scheduler_->perGpuNormalizedPerf(
        mode, config, config_.detour_tax_per_kernel, pool);
}

simnet::ScheduleResult
CCubeEngine::commOnly(Mode mode, double bytes,
                      double bandwidth_scale) const
{
    return scheduler_->commSchedule(mode, bytes, bandwidth_scale);
}

const topo::DoubleTreeEmbedding&
CCubeEngine::doubleTree() const
{
    return scheduler_->doubleTree();
}

const std::vector<topo::RingEmbedding>&
CCubeEngine::rings() const
{
    return scheduler_->rings();
}

} // namespace core
} // namespace ccube
