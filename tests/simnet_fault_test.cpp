/**
 * @file
 * Fault injection in the simulated fabric: failed channels drop
 * transfers (their completion never fires), degraded channels slow
 * down, restores re-enable traffic, and runDoubleTreeWithFaults
 * reports partial results instead of panicking when a plan kills the
 * collective mid-flight.
 */

#include <gtest/gtest.h>

#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/fault_plan.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/units.h"

namespace ccube {
namespace simnet {
namespace {

TEST(NetworkFaults, FailedChannelDropsTransfers)
{
    sim::Simulation sim;
    const topo::Graph graph = topo::makeDgx1();
    Network net(sim, graph);

    net.failChannel(0);
    EXPECT_TRUE(net.channelFailed(0));
    bool done = false;
    net.transferOnChannel(0, 1024.0, [&]() { done = true; });
    sim.run();
    EXPECT_FALSE(done); // completion never fires on a dead link
    EXPECT_EQ(net.droppedTransfers(), 1u);
    EXPECT_DOUBLE_EQ(net.droppedBytes(), 1024.0);

    net.restoreChannel(0);
    EXPECT_FALSE(net.channelFailed(0));
    net.transferOnChannel(0, 1024.0, [&]() { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(net.droppedTransfers(), 1u);
}

TEST(NetworkFaults, DegradeScalesOccupancyAndCompounds)
{
    sim::Simulation sim;
    const topo::Graph graph = topo::makeDgx1();
    Network net(sim, graph);

    net.setChannelBandwidthFactor(0, 0.5);
    EXPECT_DOUBLE_EQ(net.channelBandwidthFactor(0), 0.5);
    net.setChannelBandwidthFactor(0, 0.5);
    EXPECT_DOUBLE_EQ(net.channelBandwidthFactor(0), 0.25);

    double slow_end = 0.0;
    net.transferOnChannel(0, util::mib(1), [&]() {});
    slow_end = sim.run();

    sim::Simulation sim_ref;
    Network net_ref(sim_ref, graph);
    net_ref.transferOnChannel(0, util::mib(1), [&]() {});
    const double ref_end = sim_ref.run();
    EXPECT_GT(slow_end, ref_end);
}

TEST(NetworkFaults, SlowNodeDegradesEveryIncidentChannel)
{
    sim::Simulation sim;
    const topo::Graph graph = topo::makeDgx1();
    Network net(sim, graph);
    net.slowNode(3, 0.5);
    for (int id = 0; id < graph.channelCount(); ++id) {
        const topo::ChannelDesc& desc = graph.channel(id);
        if (desc.src == 3 || desc.dst == 3)
            EXPECT_DOUBLE_EQ(net.channelBandwidthFactor(id), 0.5);
        else
            EXPECT_DOUBLE_EQ(net.channelBandwidthFactor(id), 1.0);
    }
}

TEST(FaultPlan, EventsFireAtTheirScheduledTimes)
{
    sim::Simulation sim;
    const topo::Graph graph = topo::makeDgx1();
    Network net(sim, graph);

    FaultPlan plan;
    plan.failChannel(1.0, 0).restoreChannel(2.0, 0);
    ASSERT_EQ(plan.events().size(), 2u);
    applyFaultPlan(net, plan);

    int completed = 0;
    // Before the failure, inside the outage, and after the restore.
    sim.at(0.5, [&]() {
        net.transferOnChannel(0, 1024.0, [&]() { ++completed; });
    });
    sim.at(1.5, [&]() {
        net.transferOnChannel(0, 1024.0, [&]() { ++completed; });
    });
    sim.at(2.5, [&]() {
        net.transferOnChannel(0, 1024.0, [&]() { ++completed; });
    });
    sim.run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(net.droppedTransfers(), 1u);
}

TEST(FaultedRun, EmptyPlanMatchesTheHealthySchedule)
{
    const topo::Graph graph = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(graph);
    const double bytes = util::mib(4);

    sim::Simulation sim_ref;
    Network net_ref(sim_ref, graph);
    const ScheduleResult healthy = runDoubleTreeSchedule(
        sim_ref, net_ref, dt, bytes, PhaseMode::kOverlapped, 8);

    sim::Simulation sim;
    Network net(sim, graph);
    const FaultedRunResult faulted = runDoubleTreeWithFaults(
        sim, net, dt, bytes, PhaseMode::kOverlapped, 8, FaultPlan());
    EXPECT_TRUE(faulted.completed);
    EXPECT_EQ(faulted.dropped_transfers, 0u);
    EXPECT_DOUBLE_EQ(faulted.result.completion_time,
                     healthy.completion_time);
}

TEST(FaultedRun, MidCollectiveLinkFailureYieldsPartialResult)
{
    const topo::Graph graph = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(graph);
    const double bytes = util::mib(4);

    sim::Simulation sim_ref;
    Network net_ref(sim_ref, graph);
    const double healthy_time =
        runDoubleTreeSchedule(sim_ref, net_ref, dt, bytes,
                              PhaseMode::kOverlapped, 8)
            .completion_time;

    // Kill both directions of a tree-carrying pair mid-flight.
    FaultPlan plan;
    for (int id : graph.channelIds(2, 3))
        plan.failChannel(0.3 * healthy_time, id);
    for (int id : graph.channelIds(3, 2))
        plan.failChannel(0.3 * healthy_time, id);

    sim::Simulation sim;
    Network net(sim, graph);
    const FaultedRunResult faulted = runDoubleTreeWithFaults(
        sim, net, dt, bytes, PhaseMode::kOverlapped, 8, plan);
    EXPECT_FALSE(faulted.completed);
    EXPECT_GT(faulted.dropped_transfers, 0u);

    // Chunks that never arrived everywhere carry the -1.0 sentinel;
    // chunks finished before the failure carry real timestamps.
    int unfinished = 0;
    for (double ready : faulted.result.chunk_ready)
        if (ready < 0.0)
            ++unfinished;
    EXPECT_GT(unfinished, 0);
    EXPECT_LT(unfinished,
              static_cast<int>(faulted.result.chunk_ready.size()));
    EXPECT_LE(faulted.end_time, healthy_time);
}

TEST(FaultedRun, DegradePlanSlowsCompletionWithoutKillingIt)
{
    const topo::Graph graph = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(graph);
    const double bytes = util::mib(4);

    sim::Simulation sim_ref;
    Network net_ref(sim_ref, graph);
    const double healthy_time =
        runDoubleTreeSchedule(sim_ref, net_ref, dt, bytes,
                              PhaseMode::kOverlapped, 8)
            .completion_time;

    FaultPlan plan;
    for (int id : graph.channelIds(2, 3))
        plan.degradeChannel(0.0, id, 0.25);
    for (int id : graph.channelIds(3, 2))
        plan.degradeChannel(0.0, id, 0.25);

    sim::Simulation sim;
    Network net(sim, graph);
    const FaultedRunResult faulted = runDoubleTreeWithFaults(
        sim, net, dt, bytes, PhaseMode::kOverlapped, 8, plan);
    EXPECT_TRUE(faulted.completed);
    EXPECT_EQ(faulted.dropped_transfers, 0u);
    EXPECT_GT(faulted.result.completion_time, healthy_time);
}

} // namespace
} // namespace simnet
} // namespace ccube
