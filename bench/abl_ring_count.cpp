/**
 * @file
 * Ablation: how many parallel rings the R baseline stripes across.
 *
 * NCCL exploits all six NVLinks per GPU by striping data over several
 * channel-disjoint rings; the paper's R-vs-C1 relationship depends on
 * how aggressive that striping is. This harness sweeps the ring
 * count on the DGX-1 and shows where R crosses C1.
 */

#include <iostream>
#include <vector>

#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/multi_ring_schedule.h"
#include "sweep/sweep.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    using namespace ccube;

    std::cout << "=== Ablation: ring striping count vs overlapped "
                 "tree (DGX-1, 64 MiB) ===\n\n";

    const topo::Graph dgx1 = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(dgx1);
    const double bytes = util::mib(64);

    sim::Simulation sim_c;
    simnet::Network net_c(sim_c, dgx1);
    const double t_c1 =
        simnet::runDoubleTreeSchedule(sim_c, net_c, dt, bytes,
                                      simnet::PhaseMode::kOverlapped,
                                      32)
            .completion_time;

    util::Table table({"rings", "ring_ms", "ring_GBps",
                       "ring_vs_C1_%"});
    const auto all_rings = topo::findDisjointRings(dgx1, 8, 6);
    // One simulation per striping count through the sweep pool; rows
    // fill pre-assigned slots and print in count order.
    std::vector<simnet::ScheduleResult> results(all_rings.size());
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), all_rings.size(),
        [&](std::size_t i) {
            const std::vector<topo::RingEmbedding> rings(
                all_rings.begin(),
                all_rings.begin() + static_cast<std::ptrdiff_t>(i + 1));
            sim::Simulation sim;
            simnet::Network net(sim, dgx1);
            results[i] =
                simnet::runMultiRingSchedule(sim, net, rings, bytes);
        });
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& result = results[i];
        table.addRow(
            {std::to_string(i + 1),
             util::formatDouble(result.completion_time * 1e3, 3),
             util::formatDouble(
                 result.effectiveBandwidth(bytes) / 1e9, 2),
             util::formatDouble(
                 (t_c1 / result.completion_time - 1.0) * 100, 1)});
    }
    table.print(std::cout);
    std::cout << "\nC1 (overlapped double tree) = "
              << util::formatDouble(t_c1 * 1e3, 3)
              << " ms. With 1-2 rings the tree wins; from ~3 rings the "
                 "bandwidth-optimal ring pulls ahead on this small "
                 "system (paper: R up to 27% over C1). The default R "
                 "baseline stripes 4 rings.\n";
    return 0;
}
