# Empty dependencies file for abl_detour_vs_pcie.
# This may be replaced when dependencies are built.
