#include "topo/embedding_search.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace ccube {
namespace topo {

namespace {

/** Remaining per-direction channel budget during construction. */
class Budget
{
  public:
    explicit Budget(const Graph& graph) : graph_(graph) {}

    int
    remaining(NodeId src, NodeId dst) const
    {
        const auto it = used_.find({src, dst});
        const int used = it == used_.end() ? 0 : it->second;
        return graph_.linkCount(src, dst) - used;
    }

    /** A logical edge on route r consumes both directions of every
     *  segment (the overlapped algorithm drives up and down at once). */
    bool
    canTake(const Route& route) const
    {
        for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
            if (remaining(route.hops[i], route.hops[i + 1]) < 1 ||
                remaining(route.hops[i + 1], route.hops[i]) < 1) {
                return false;
            }
        }
        return true;
    }

    void
    take(const Route& route)
    {
        for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
            ++used_[{route.hops[i], route.hops[i + 1]}];
            ++used_[{route.hops[i + 1], route.hops[i]}];
        }
    }

  private:
    const Graph& graph_;
    std::map<std::pair<NodeId, NodeId>, int> used_;
};

/**
 * Candidate routes from @p from to @p to within the hop budget and
 * channel budget: the direct channel if present, else all two-hop
 * GPU detours with available capacity.
 */
std::vector<Route>
candidateRoutes(const Graph& graph, const Budget& budget, NodeId from,
                NodeId to, int max_hops)
{
    std::vector<Route> routes;
    Route direct{{from, to}};
    if (graph.hasChannel(from, to) && budget.canTake(direct))
        routes.push_back(std::move(direct));
    if (max_hops >= 2) {
        for (NodeId mid : graph.neighbors(from)) {
            if (mid == to || !graph.hasChannel(mid, to))
                continue;
            Route detour{{from, mid, to}};
            if (budget.canTake(detour))
                routes.push_back(std::move(detour));
        }
    }
    return routes;
}

/**
 * Grows one spanning binary tree from @p root, preferring direct
 * edges, consuming @p budget. Returns nullopt when the tree cannot
 * span all ranks within the budget.
 */
std::optional<TreeEmbedding>
growTree(const Graph& graph, Budget& budget, int num_ranks, NodeId root,
         util::Rng& rng, int max_hops)
{
    BinaryTree tree(num_ranks);
    tree.setRoot(root);
    TreeEmbedding embedding(std::move(tree));

    std::vector<bool> in_tree(static_cast<std::size_t>(num_ranks),
                              false);
    in_tree[static_cast<std::size_t>(root)] = true;
    std::vector<int> arity(static_cast<std::size_t>(num_ranks), 0);
    std::vector<NodeId> frontier{root};
    int placed = 1;

    while (placed < num_ranks) {
        // Collect all feasible (parent, child, route) extensions.
        struct Extension {
            NodeId parent;
            NodeId child;
            Route route;
        };
        std::vector<Extension> extensions;
        for (NodeId parent : frontier) {
            if (arity[static_cast<std::size_t>(parent)] >= 2)
                continue;
            for (NodeId child = 0; child < num_ranks; ++child) {
                if (in_tree[static_cast<std::size_t>(child)])
                    continue;
                for (Route& route : candidateRoutes(graph, budget,
                                                    parent, child,
                                                    max_hops)) {
                    extensions.push_back(
                        Extension{parent, child, std::move(route)});
                }
            }
        }
        if (extensions.empty())
            return std::nullopt;
        // Prefer direct routes; among equals pick randomly.
        std::stable_sort(extensions.begin(), extensions.end(),
                         [](const Extension& a, const Extension& b) {
                             return a.route.hopCount() <
                                    b.route.hopCount();
                         });
        const int best_hops = extensions.front().route.hopCount();
        std::size_t pool = 0;
        while (pool < extensions.size() &&
               extensions[pool].route.hopCount() == best_hops) {
            ++pool;
        }
        Extension& pick = extensions[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(pool) - 1))];

        budget.take(pick.route);
        embedding.tree.addEdge(pick.parent, pick.child);
        embedding.routes.push_back(std::move(pick.route));
        in_tree[static_cast<std::size_t>(pick.child)] = true;
        ++arity[static_cast<std::size_t>(pick.parent)];
        frontier.push_back(pick.child);
        ++placed;
    }
    // Routes were appended in insertion order; edges() returns BFS
    // order, so rebuild the route list aligned with edges().
    std::map<std::pair<NodeId, NodeId>, Route> by_edge;
    {
        const auto edges = embedding.tree.edges();
        // Insertion order of addEdge matches the order routes were
        // pushed; reconstruct the mapping via parent/child endpoints.
        std::size_t i = 0;
        for (const Route& route : embedding.routes) {
            by_edge[{route.hops.front(), route.hops.back()}] = route;
            ++i;
        }
        std::vector<Route> ordered;
        for (const auto& [parent, child] : edges)
            ordered.push_back(by_edge.at({parent, child}));
        embedding.routes = std::move(ordered);
    }
    return embedding;
}

} // namespace

std::optional<DoubleTreeEmbedding>
findConflictFreeDoubleTree(const Graph& graph,
                           const EmbeddingSearchOptions& options)
{
    const int num_ranks =
        options.num_ranks > 0 ? options.num_ranks : graph.nodeCount();
    CCUBE_CHECK(num_ranks >= 2, "need at least two ranks");
    CCUBE_CHECK(num_ranks <= graph.nodeCount(),
                "more ranks than graph nodes");

    util::Rng rng(options.seed);
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
        Budget budget(graph);
        const NodeId root0 = static_cast<NodeId>(
            rng.uniformInt(0, num_ranks - 1));
        NodeId root1 = static_cast<NodeId>(
            rng.uniformInt(0, num_ranks - 1));
        if (root1 == root0)
            root1 = (root1 + 1) % num_ranks;

        auto tree0 = growTree(graph, budget, num_ranks, root0, rng,
                              options.max_detour_hops);
        if (!tree0)
            continue;
        auto tree1 = growTree(graph, budget, num_ranks, root1, rng,
                              options.max_detour_hops);
        if (!tree1)
            continue;

        DoubleTreeEmbedding candidate(std::move(*tree0),
                                      std::move(*tree1));
        if (isConflictFree(graph, candidate))
            return candidate;
    }
    return std::nullopt;
}

} // namespace topo
} // namespace ccube
