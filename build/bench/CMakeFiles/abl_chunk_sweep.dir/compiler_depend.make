# Empty compiler generated dependencies file for abl_chunk_sweep.
# This may be replaced when dependencies are built.
