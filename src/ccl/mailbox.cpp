#include "ccl/mailbox.h"

#include <bit>
#include <chrono>
#include <utility>

#include "ccl/fault.h"
#include "ccl/reduce_kernels.h"
#include "obs/context.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/spin_wait.h"

namespace ccube {
namespace ccl {

namespace {

/** Span pid/tid for the calling thread (rank-attributed). */
int
spanPid()
{
    return obs::pids::cclRank(obs::threadRank());
}

/** Emits the consumer-side "wait" span for a non-blocking receive. */
void
traceTryWaitSpan(const std::string& label, std::int64_t seq)
{
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (!recorder.enabled())
        return;
    obs::ScopedSpan span(recorder, "wait " + label, "ccl.mailbox",
                         spanPid(), obs::threadTrack());
    span.arg("seq", static_cast<double>(seq));
}

/** Packs an LL line: payload word low, arrival flag high. */
std::uint64_t
llPack(std::uint32_t value, std::uint32_t flag)
{
    return static_cast<std::uint64_t>(value) |
           (static_cast<std::uint64_t>(flag) << 32);
}

std::uint32_t
llValue(std::uint64_t line)
{
    return static_cast<std::uint32_t>(line);
}

std::uint32_t
llLineFlag(std::uint64_t line)
{
    return static_cast<std::uint32_t>(line >> 32);
}

/**
 * Spins until @p pred holds. The fast path (already true) costs one
 * call; an actual spin runs the bounded SpinWait ladder with the
 * abort epoch polled, attributed to the kLLSpin profiler phase and
 * the ll_spin_ns rank counter — NOT wait_stall_ns, which stays the
 * semaphore path's stall account.
 */
template <typename Pred>
void
llSpinUntil(Pred&& pred)
{
    if (pred())
        return;
    obs::ScopedProfPhase prof(obs::ProfPhase::kLLSpin);
    const auto start = std::chrono::steady_clock::now();
    util::SpinWait spin;
    while (!pred())
        spin.once([] { abortPoll(); });
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    obs::RankCounters::global().addLLSpin(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
}

} // namespace

Mailbox::Mailbox(int slots)
    : ring_(static_cast<std::size_t>(slots)),
      full_(slots, 0),
      empty_(slots, slots),
      ll_ring_(std::make_unique<LLSlot[]>(
          static_cast<std::size_t>(slots)))
{
    CCUBE_CHECK(slots >= 1, "mailbox needs at least one slot");
}

void
Mailbox::reserve(std::size_t elems)
{
    for (Slot& slot : ring_) {
        if (slot.data.size() < elems)
            slot.data.resize(elems);
    }
    for (int i = 0; i < slots(); ++i) {
        LLSlot& slot = ll_ring_[static_cast<std::size_t>(i)];
        if (slot.capacity < elems) {
            slot.lines =
                std::make_unique<std::atomic<std::uint64_t>[]>(elems);
            slot.capacity = elems;
        }
    }
}

void
Mailbox::setTraceLabel(std::string label)
{
    trace_label_ = std::move(label);
}

void
Mailbox::reset()
{
    for (Slot& slot : ring_) {
        slot.size = 0;
        slot.tag = 0;
    }
    full_.reset(0);
    empty_.reset(slots());
    head_ = 0;
    tail_ = 0;
    front_claimed_ = false;
    post_seq_ = 0;
    wait_seq_ = 0;
    // LL lane: zero every published flag (a stale flag from the dead
    // collective would satisfy the first spin of the next epoch) and
    // restart the sequence space.
    for (int i = 0; i < slots(); ++i) {
        LLSlot& slot = ll_ring_[static_cast<std::size_t>(i)];
        slot.header.store(0, std::memory_order_relaxed);
        slot.tag_line.store(0, std::memory_order_relaxed);
        for (std::size_t w = 0; w < slot.capacity; ++w)
            slot.lines[w].store(0, std::memory_order_relaxed);
    }
    ll_post_seq_ = 0;
    ll_wait_seq_ = 0;
    ll_consumed_.store(0, std::memory_order_relaxed);
    ll_scratch_.size = 0;
    ll_scratch_.tag = 0;
    ll_front_ = false;
    delivered_.reset();
}

void
Mailbox::setFlowId(int flow)
{
    flow_ = flow;
}

void
Mailbox::setEndpoints(int src, int dst)
{
    src_ = src;
    dst_ = dst;
}

void
Mailbox::send(std::span<const float> data, int tag, Protocol proto)
{
    if (proto == Protocol::kLL) {
        llSend(data, tag);
        return;
    }
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxPost);
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)

    obs::RankCounters& counters = obs::RankCounters::global();
    counters.addMailboxSend();
    // Flow control (paper Fig. 11): all receive buffers occupied means
    // the producer stalls until the consumer frees one. The snapshot
    // is racy but only feeds telemetry, never the protocol.
    const bool stalled = empty_.value() == 0;
    if (stalled)
        counters.addSlotFullStall();

    const std::int64_t seq = post_seq_++;
    // A producer stalled on a full ring is waiting for the consumer
    // (dst_) to free a slot — that is its wait-for edge.
    if (fault != nullptr)
        fault->noteWaitBegin(trace_label_.c_str(), flow_, dst_);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "post " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("bytes", static_cast<double>(data.size() *
                                              sizeof(float)));
        span.arg("stalled", stalled ? 1.0 : 0.0);
        span.arg("seq", static_cast<double>(seq));
        empty_.wait(); // block while all receive buffers are occupied
    } else {
        empty_.wait();
    }
    if (fault != nullptr) {
        fault->noteWaitEnd();
        fault->notePosted(seq);
    }
    Slot& slot = ring_[head_];
    // Fixed-capacity fast path: the slot buffer grows at most once per
    // high-water chunk size and is then reused verbatim.
    if (slot.data.size() < data.size())
        slot.data.resize(data.size());
    kernels::copyInto(slot.data.data(), data.data(), data.size());
    slot.size = data.size();
    slot.tag = tag;
    head_ = (head_ + 1) % ring_.size();
    full_.post(); // signal arrival (paper: post on chunk arrival)
}

void
Mailbox::llWriteSlot(std::span<const float> data, int tag)
{
    LLSlot& slot = ll_ring_[static_cast<std::size_t>(
        ll_post_seq_ % static_cast<std::int64_t>(ring_.size()))];
    const std::uint32_t flag = llFlag(ll_post_seq_);
    // Growing lines is safe here: flow control guarantees the
    // consumer is done with this slot's previous message, and the
    // header release below publishes the new pointer before any flag
    // the consumer will accept.
    if (slot.capacity < data.size()) {
        slot.lines = std::make_unique<std::atomic<std::uint64_t>[]>(
            data.size());
        slot.capacity = data.size();
    }
    slot.tag_line.store(
        llPack(static_cast<std::uint32_t>(tag), flag),
        std::memory_order_relaxed);
    // Header first (after the tag line, which it covers): the
    // consumer may start streaming payload words while we are still
    // writing the tail.
    slot.header.store(
        llPack(static_cast<std::uint32_t>(data.size()), flag),
        std::memory_order_release);
    for (std::size_t i = 0; i < data.size(); ++i)
        slot.lines[i].store(
            llPack(std::bit_cast<std::uint32_t>(data[i]), flag),
            std::memory_order_release);
    ++ll_post_seq_;
}

void
Mailbox::llSend(std::span<const float> data, int tag)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxPost);
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)

    obs::RankCounters& counters = obs::RankCounters::global();
    counters.addMailboxSend();
    const bool stalled = !llSlotFree();
    if (stalled)
        counters.addSlotFullStall();

    const std::int64_t seq = post_seq_++;
    if (fault != nullptr)
        fault->noteWaitBegin(trace_label_.c_str(), flow_, dst_);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "post " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("bytes", static_cast<double>(data.size() *
                                              sizeof(float)));
        span.arg("stalled", stalled ? 1.0 : 0.0);
        span.arg("seq", static_cast<double>(seq));
        span.arg("ll", 1.0);
        llSpinUntil([this] { return llSlotFree(); });
    } else {
        llSpinUntil([this] { return llSlotFree(); });
    }
    if (fault != nullptr) {
        fault->noteWaitEnd();
        fault->notePosted(seq);
    }
    llWriteSlot(data, tag);
}

bool
Mailbox::llTrySend(std::span<const float> data, int tag)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxPost);
    if (!llSlotFree())
        return false;
    const std::int64_t seq = post_seq_++;
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->notePosted(seq);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "post " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("bytes", static_cast<double>(data.size() *
                                              sizeof(float)));
        span.arg("stalled", 0.0);
        span.arg("seq", static_cast<double>(seq));
        span.arg("ll", 1.0);
    }
    llWriteSlot(data, tag);
    return true;
}

Mailbox::LLHeader
Mailbox::llWaitHeader()
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)

    obs::RankCounters::global().addMailboxRecv();
    const std::int64_t seq = wait_seq_++;
    if (fault != nullptr)
        fault->noteWaitBegin(trace_label_.c_str(), flow_, src_);

    LLSlot& slot = ll_ring_[static_cast<std::size_t>(
        ll_wait_seq_ % static_cast<std::int64_t>(ring_.size()))];
    const std::uint32_t flag = llFlag(ll_wait_seq_);
    const auto arrived = [&] {
        return llLineFlag(slot.header.load(
                   std::memory_order_acquire)) == flag;
    };
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "wait " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("seq", static_cast<double>(seq));
        span.arg("ll", 1.0);
        llSpinUntil(arrived);
    } else {
        llSpinUntil(arrived);
    }
    if (fault != nullptr)
        fault->noteWaitEnd();

    LLHeader header;
    header.size = llValue(slot.header.load(std::memory_order_acquire));
    // tag_line was written before the header we just acquired.
    header.tag = static_cast<int>(
        llValue(slot.tag_line.load(std::memory_order_relaxed)));
    return header;
}

bool
Mailbox::llPeekHeader(LLHeader* out)
{
    LLSlot& slot = ll_ring_[static_cast<std::size_t>(
        ll_wait_seq_ % static_cast<std::int64_t>(ring_.size()))];
    const std::uint32_t flag = llFlag(ll_wait_seq_);
    const std::uint64_t header =
        slot.header.load(std::memory_order_acquire);
    if (llLineFlag(header) != flag)
        return false;
    traceTryWaitSpan(trace_label_, wait_seq_++);
    out->size = llValue(header);
    out->tag = static_cast<int>(
        llValue(slot.tag_line.load(std::memory_order_relaxed)));
    return true;
}

void
Mailbox::llDecodeBody(std::size_t size, float* dst, bool reduce)
{
    LLSlot& slot = ll_ring_[static_cast<std::size_t>(
        ll_wait_seq_ % static_cast<std::int64_t>(ring_.size()))];
    const std::uint32_t flag = llFlag(ll_wait_seq_);
    // The producer committed the whole message with the header, so
    // these per-line spins are bounded by its remaining store loop.
    for (std::size_t i = 0; i < size; ++i) {
        std::uint64_t line;
        llSpinUntil([&] {
            line = slot.lines[i].load(std::memory_order_acquire);
            return llLineFlag(line) == flag;
        });
        const float value = std::bit_cast<float>(llValue(line));
        if (reduce)
            dst[i] += value;
        else
            dst[i] = value;
    }
}

void
Mailbox::llFinishConsume()
{
    ++ll_wait_seq_;
    ll_consumed_.store(ll_wait_seq_, std::memory_order_release);
    delivered_.post();
}

template <typename Fn>
int
Mailbox::consumeSlot(Fn&& consume)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)

    obs::RankCounters::global().addMailboxRecv();
    const std::int64_t seq = wait_seq_++;
    // A consumer blocked on an empty ring is waiting for the
    // producer (src_) to post a chunk.
    if (fault != nullptr)
        fault->noteWaitBegin(trace_label_.c_str(), flow_, src_);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "wait " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("seq", static_cast<double>(seq));
        full_.wait();
    } else {
        full_.wait();
    }
    if (fault != nullptr)
        fault->noteWaitEnd();
    Slot& slot = ring_[tail_];
    const int tag = slot.tag;
    consume(slot);
    finishConsume();
    return tag;
}

void
Mailbox::noteOpBegin(OpKind kind)
{
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)
    obs::RankCounters& counters = obs::RankCounters::global();
    if (kind == OpKind::kSend)
        counters.addMailboxSend();
    else
        counters.addMailboxRecv();
}

bool
Mailbox::trySend(std::span<const float> data, int tag, Protocol proto)
{
    if (proto == Protocol::kLL)
        return llTrySend(data, tag);
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxPost);
    if (!empty_.tryWait())
        return false;
    // A slot is claimed — from here this is the tail of send():
    // stamp the post sequence, trace the post span (zero wait time on
    // this path, but the seq arg keeps post/wait edge pairing alive in
    // the analyzer), copy, publish.
    const std::int64_t seq = post_seq_++;
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->notePosted(seq);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "post " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("bytes", static_cast<double>(data.size() *
                                              sizeof(float)));
        span.arg("stalled", 0.0);
        span.arg("seq", static_cast<double>(seq));
    }
    Slot& slot = ring_[head_];
    if (slot.data.size() < data.size())
        slot.data.resize(data.size());
    kernels::copyInto(slot.data.data(), data.data(), data.size());
    slot.size = data.size();
    slot.tag = tag;
    head_ = (head_ + 1) % ring_.size();
    full_.post();
    return true;
}

void
Mailbox::finishConsume()
{
    tail_ = (tail_ + 1) % ring_.size();
    empty_.post();
    delivered_.post();
}

bool
Mailbox::tryRecvInto(std::span<float> out, int* tag, Protocol proto)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    if (proto == Protocol::kLL) {
        LLHeader header;
        if (!llPeekHeader(&header))
            return false;
        CCUBE_CHECK(header.size == out.size(),
                    "chunk size mismatch: " << header.size << " vs "
                                            << out.size());
        llDecodeBody(header.size, out.data(), /*reduce=*/false);
        if (tag != nullptr)
            *tag = header.tag;
        llFinishConsume();
        return true;
    }
    if (!full_.tryWait())
        return false;
    traceTryWaitSpan(trace_label_, wait_seq_++);
    Slot& slot = ring_[tail_];
    CCUBE_CHECK(slot.size == out.size(),
                "chunk size mismatch: " << slot.size << " vs "
                                        << out.size());
    kernels::copyInto(out.data(), slot.data.data(), slot.size);
    if (tag != nullptr)
        *tag = slot.tag;
    finishConsume();
    return true;
}

bool
Mailbox::tryRecvReduce(std::span<float> out, int* tag, Protocol proto)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    if (proto == Protocol::kLL) {
        LLHeader header;
        if (!llPeekHeader(&header))
            return false;
        CCUBE_CHECK(header.size == out.size(),
                    "chunk size mismatch: " << header.size << " vs "
                                            << out.size());
        llDecodeBody(header.size, out.data(), /*reduce=*/true);
        if (tag != nullptr)
            *tag = header.tag;
        llFinishConsume();
        return true;
    }
    if (!full_.tryWait())
        return false;
    traceTryWaitSpan(trace_label_, wait_seq_++);
    Slot& slot = ring_[tail_];
    CCUBE_CHECK(slot.size == out.size(),
                "chunk size mismatch: " << slot.size << " vs "
                                        << out.size());
    kernels::reduceAdd(out.data(), slot.data.data(), slot.size);
    if (tag != nullptr)
        *tag = slot.tag;
    finishConsume();
    return true;
}

bool
Mailbox::tryPeek(std::span<const float>* data, int* tag,
                 Protocol proto)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    // Idempotent while the front is claimed: a forwarder that parked
    // on downstream capacity re-peeks the same chunk on resume.
    if (!front_claimed_) {
        if (proto == Protocol::kLL) {
            LLHeader header;
            if (!llPeekHeader(&header))
                return false;
            // Decode once into the staging slot; repeated peeks and
            // the eventual releaseFront() work off the copy.
            if (ll_scratch_.data.size() < header.size)
                ll_scratch_.data.resize(header.size);
            llDecodeBody(header.size, ll_scratch_.data.data(),
                         /*reduce=*/false);
            ll_scratch_.size = header.size;
            ll_scratch_.tag = header.tag;
            front_claimed_ = true;
            ll_front_ = true;
        } else {
            if (!full_.tryWait())
                return false;
            traceTryWaitSpan(trace_label_, wait_seq_++);
            front_claimed_ = true;
        }
    }
    const Slot& slot = ll_front_ ? ll_scratch_ : ring_[tail_];
    if (data != nullptr)
        *data = std::span<const float>(slot.data.data(), slot.size);
    if (tag != nullptr)
        *tag = slot.tag;
    return true;
}

void
Mailbox::releaseFront()
{
    CCUBE_CHECK(front_claimed_, "releaseFront without tryPeek");
    front_claimed_ = false;
    if (ll_front_) {
        ll_front_ = false;
        llFinishConsume();
        return;
    }
    finishConsume();
}

int
Mailbox::recv(std::vector<float>& out, Protocol proto)
{
    if (proto == Protocol::kLL) {
        const LLHeader header = llWaitHeader();
        out.resize(header.size);
        llDecodeBody(header.size, out.data(), /*reduce=*/false);
        llFinishConsume();
        return header.tag;
    }
    return consumeSlot([&](Slot& slot) {
        // Copy out, keep the slot buffer (its capacity is the whole
        // point of the preallocated ring).
        out.resize(slot.size);
        kernels::copyInto(out.data(), slot.data.data(), slot.size);
    });
}

int
Mailbox::recvInto(std::span<float> out, Protocol proto)
{
    if (proto == Protocol::kLL) {
        const LLHeader header = llWaitHeader();
        CCUBE_CHECK(header.size == out.size(),
                    "chunk size mismatch: " << header.size << " vs "
                                            << out.size());
        llDecodeBody(header.size, out.data(), /*reduce=*/false);
        llFinishConsume();
        return header.tag;
    }
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.size == out.size(),
                    "chunk size mismatch: " << slot.size << " vs "
                                            << out.size());
        kernels::copyInto(out.data(), slot.data.data(), slot.size);
    });
}

int
Mailbox::recvReduce(std::span<float> out, Protocol proto)
{
    if (proto == Protocol::kLL) {
        const LLHeader header = llWaitHeader();
        CCUBE_CHECK(header.size == out.size(),
                    "chunk size mismatch: " << header.size << " vs "
                                            << out.size());
        llDecodeBody(header.size, out.data(), /*reduce=*/true);
        llFinishConsume();
        return header.tag;
    }
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.size == out.size(),
                    "chunk size mismatch: " << slot.size << " vs "
                                            << out.size());
        kernels::reduceAdd(out.data(), slot.data.data(), slot.size);
    });
}

int
Mailbox::consume(const Visitor& visit, Protocol proto)
{
    if (proto == Protocol::kLL) {
        const LLHeader header = llWaitHeader();
        if (ll_scratch_.data.size() < header.size)
            ll_scratch_.data.resize(header.size);
        llDecodeBody(header.size, ll_scratch_.data.data(),
                     /*reduce=*/false);
        ll_scratch_.size = header.size;
        ll_scratch_.tag = header.tag;
        llFinishConsume();
        visit(std::span<const float>(ll_scratch_.data.data(),
                                     ll_scratch_.size),
              ll_scratch_.tag);
        return header.tag;
    }
    return consumeSlot([&](Slot& slot) {
        visit(std::span<const float>(slot.data.data(), slot.size),
              slot.tag);
    });
}

} // namespace ccl
} // namespace ccube
