/**
 * @file
 * Reuse and stress tests: a long-lived communicator running many
 * back-to-back collectives (the steady-state training pattern), the
 * multi-ring channel budget on the DGX-1, and engine configuration
 * knobs.
 */

#include <gtest/gtest.h>

#include <map>

#include "ccl/double_tree_allreduce.h"
#include "ccl/ring_allreduce.h"
#include "core/ccube_engine.h"
#include "simnet/channel.h"
#include "simnet/multi_ring_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/rng.h"
#include "util/units.h"

namespace ccube {
namespace {

TEST(CommunicatorReuse, BackToBackTreeCollectives)
{
    // One communicator, many iterations — mailboxes must drain
    // cleanly between collectives (no stale chunks, no deadlock).
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    ccl::Communicator comm(8);
    util::Rng rng(77);
    for (int iter = 0; iter < 5; ++iter) {
        ccl::RankBuffers buffers(8);
        for (auto& b : buffers) {
            b.resize(48);
            rng.fill(b, -1.0f, 1.0f);
        }
        std::vector<float> sum(48, 0.0f);
        for (const auto& b : buffers)
            for (std::size_t i = 0; i < sum.size(); ++i)
                sum[i] += b[i];
        const auto trace = ccl::doubleTreeAllReduce(
            comm, buffers, dt, 3, ccl::TreePhaseMode::kOverlapped);
        for (int r = 0; r < 8; ++r) {
            for (std::size_t i = 0; i < sum.size(); ++i) {
                ASSERT_NEAR(buffers[static_cast<std::size_t>(r)][i],
                            sum[i], 1e-4f)
                    << "iter " << iter << " rank " << r;
            }
        }
        // Per-tree in-order delivery (global ids interleave across
        // the two concurrent trees).
        for (int r = 0; r < 8; ++r) {
            int last0 = -1;
            int last1 = -1;
            for (int chunk : trace.order(r)) {
                if (chunk < 3) {
                    EXPECT_GT(chunk, last0) << "iter " << iter;
                    last0 = chunk;
                } else {
                    EXPECT_GT(chunk, last1) << "iter " << iter;
                    last1 = chunk;
                }
            }
        }
    }
}

TEST(CommunicatorReuse, MixedAlgorithmsShareFlows)
{
    // Ring then tree on the same communicator: distinct flow ids keep
    // their mailboxes separate.
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    const topo::RingEmbedding ring = topo::findHamiltonianRing(dgx1, 8);
    ccl::Communicator comm(8);
    util::Rng rng(78);
    for (int round = 0; round < 2; ++round) {
        ccl::RankBuffers buffers(8);
        for (auto& b : buffers) {
            b.resize(64);
            rng.fill(b, -1.0f, 1.0f);
        }
        std::vector<float> sum(64, 0.0f);
        for (const auto& b : buffers)
            for (std::size_t i = 0; i < sum.size(); ++i)
                sum[i] += b[i];
        if (round == 0)
            ccl::ringAllReduce(comm, buffers, ring);
        else
            ccl::doubleTreeAllReduce(comm, buffers, dt, 4,
                                     ccl::TreePhaseMode::kTwoPhase);
        for (int r = 0; r < 8; ++r)
            for (std::size_t i = 0; i < sum.size(); ++i)
                ASSERT_NEAR(buffers[static_cast<std::size_t>(r)][i],
                            sum[i], 1e-4f);
    }
}

TEST(MultiRingBudget, NoChannelOversubscribedOnDgx1)
{
    // With lane assignment, 4 striped rings must never put two rings
    // on one physical channel: per channel, the grant count equals
    // the 2(P−1) steps of exactly one ring (or zero).
    const topo::Graph dgx1 = topo::makeDgx1();
    const auto rings = topo::findDisjointRings(dgx1, 8, 4);
    ASSERT_EQ(rings.size(), 4u);
    sim::Simulation sim;
    simnet::Network net(sim, dgx1);
    simnet::runMultiRingSchedule(sim, net, rings, util::mib(8));
    const std::uint64_t steps = 2 * (8 - 1);
    for (int id = 0; id < dgx1.channelCount(); ++id) {
        const std::uint64_t grants = net.channelGrants(id);
        EXPECT_TRUE(grants == 0 || grants == steps)
            << "channel " << id << " carried " << grants;
    }
}

TEST(EngineKnobs, RingCountChangesRBaselineOnly)
{
    core::EngineConfig three;
    three.ring_count = 3;
    core::EngineConfig four;
    four.ring_count = 4;
    core::CCubeEngine engine3(dnn::buildResnet50(), three);
    core::CCubeEngine engine4(dnn::buildResnet50(), four);
    const double bytes = util::mib(64);
    const double r3 =
        engine3.commOnly(core::Mode::kRing, bytes).completion_time;
    const double r4 =
        engine4.commOnly(core::Mode::kRing, bytes).completion_time;
    EXPECT_NEAR(r3 / r4, 4.0 / 3.0, 0.15);
    const double c3 = engine3.commOnly(core::Mode::kOverlappedTree,
                                       bytes)
                          .completion_time;
    const double c4 = engine4.commOnly(core::Mode::kOverlappedTree,
                                       bytes)
                          .completion_time;
    EXPECT_DOUBLE_EQ(c3, c4); // trees unaffected
}

TEST(EngineKnobs, DetourTaxScalesPerGpuPenalty)
{
    core::EngineConfig light;
    light.detour_tax_per_kernel = 0.01;
    core::EngineConfig heavy;
    heavy.detour_tax_per_kernel = 0.04;
    core::CCubeEngine engine_light(dnn::buildResnet50(), light);
    core::CCubeEngine engine_heavy(dnn::buildResnet50(), heavy);
    core::IterationConfig config;
    const auto p_light =
        engine_light.perGpuNormalizedPerf(core::Mode::kCCube, config);
    const auto p_heavy =
        engine_heavy.perGpuNormalizedPerf(core::Mode::kCCube, config);
    EXPECT_LT(p_heavy[0], p_light[0]);
    EXPECT_NEAR(p_light[2], 1.0, 1e-9);
    EXPECT_NEAR(p_heavy[2], 1.0, 1e-9);
}

} // namespace
} // namespace ccube
