#include "ccl/mailbox.h"

#include <utility>

#include "obs/context.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

/** Span pid/tid for the calling thread (rank-attributed). */
int
spanPid()
{
    return obs::pids::cclRank(obs::threadRank());
}

} // namespace

Mailbox::Mailbox(int slots)
    : ring_(static_cast<std::size_t>(slots)),
      full_(slots, 0),
      empty_(slots, slots)
{
    CCUBE_CHECK(slots >= 1, "mailbox needs at least one slot");
}

void
Mailbox::setTraceLabel(std::string label)
{
    trace_label_ = std::move(label);
}

void
Mailbox::send(std::span<const float> data, int tag)
{
    obs::RankCounters& counters = obs::RankCounters::global();
    counters.addMailboxSend();
    // Flow control (paper Fig. 11): all receive buffers occupied means
    // the producer stalls until the consumer frees one. The snapshot
    // is racy but only feeds telemetry, never the protocol.
    const bool stalled = empty_.value() == 0;
    if (stalled)
        counters.addSlotFullStall();

    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "post " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("bytes", static_cast<double>(data.size() *
                                              sizeof(float)));
        span.arg("stalled", stalled ? 1.0 : 0.0);
        empty_.wait(); // block while all receive buffers are occupied
    } else {
        empty_.wait();
    }
    Slot& slot = ring_[head_];
    slot.data.assign(data.begin(), data.end());
    slot.tag = tag;
    head_ = (head_ + 1) % ring_.size();
    full_.post(); // signal arrival (paper: post on chunk arrival)
}

template <typename Fn>
int
Mailbox::consumeSlot(Fn&& consume)
{
    obs::RankCounters::global().addMailboxRecv();
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "wait " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        full_.wait();
    } else {
        full_.wait();
    }
    Slot& slot = ring_[tail_];
    const int tag = slot.tag;
    consume(slot);
    tail_ = (tail_ + 1) % ring_.size();
    empty_.post();
    delivered_.post();
    return tag;
}

int
Mailbox::recv(std::vector<float>& out)
{
    return consumeSlot([&](Slot& slot) { out = std::move(slot.data); });
}

int
Mailbox::recvInto(std::span<float> out)
{
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.data.size() == out.size(),
                    "chunk size mismatch: " << slot.data.size() << " vs "
                                            << out.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = slot.data[i];
    });
}

int
Mailbox::recvReduce(std::span<float> out)
{
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.data.size() == out.size(),
                    "chunk size mismatch: " << slot.data.size() << " vs "
                                            << out.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] += slot.data[i];
    });
}

} // namespace ccl
} // namespace ccube
