file(REMOVE_RECURSE
  "CMakeFiles/ccl_allreduce_test.dir/ccl_allreduce_test.cpp.o"
  "CMakeFiles/ccl_allreduce_test.dir/ccl_allreduce_test.cpp.o.d"
  "ccl_allreduce_test"
  "ccl_allreduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccl_allreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
