file(REMOVE_RECURSE
  "CMakeFiles/ccl_primitives_test.dir/ccl_primitives_test.cpp.o"
  "CMakeFiles/ccl_primitives_test.dir/ccl_primitives_test.cpp.o.d"
  "ccl_primitives_test"
  "ccl_primitives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccl_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
