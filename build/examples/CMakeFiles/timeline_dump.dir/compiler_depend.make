# Empty compiler generated dependencies file for timeline_dump.
# This may be replaced when dependencies are built.
