file(REMOVE_RECURSE
  "CMakeFiles/train_comparison.dir/train_comparison.cpp.o"
  "CMakeFiles/train_comparison.dir/train_comparison.cpp.o.d"
  "train_comparison"
  "train_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
