# Empty dependencies file for ext_dgx2_ccube.
# This may be replaced when dependencies are built.
