#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/logging.h"

namespace ccube {
namespace util {

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    CCUBE_CHECK(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    CCUBE_CHECK(cells.size() == headers_.size(),
                "row arity mismatch: got " << cells.size() << ", want "
                                           << headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::addNumericRow(const std::vector<double>& cells, int precision)
{
    std::vector<std::string> row;
    row.reserve(cells.size());
    for (double c : cells)
        row.push_back(formatDouble(c, precision));
    addRow(std::move(row));
}

void
Table::print(std::ostream& out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        out << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << " " << row[c];
            for (std::size_t p = row[c].size(); p < widths[c]; ++p)
                out << ' ';
            out << " |";
        }
        out << "\n";
    };

    print_row(headers_);
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        for (std::size_t p = 0; p < widths[c] + 2; ++p)
            out << '-';
        out << "|";
    }
    out << "\n";
    for (const auto& row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream& out) const
{
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << row[c];
        }
        out << "\n";
    };
    print_row(headers_);
    for (const auto& row : rows_)
        print_row(row);
}

} // namespace util
} // namespace ccube
