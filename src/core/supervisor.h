#ifndef CCUBE_CORE_SUPERVISOR_H_
#define CCUBE_CORE_SUPERVISOR_H_

/**
 * @file
 * Self-healing resilience supervisor.
 *
 * PR 5's recovery ladder (core::recoverSchedule) answers "what schedule
 * still works after THIS failure" — a one-shot re-plan. Real training
 * runs face *churn*: links flap, a retry hits a second fault, a
 * restored link must not be trusted immediately. The supervisor is the
 * long-lived state machine that owns a Communicator + schedule across
 * many collectives under ongoing faults:
 *
 *   - retry with exponential backoff and deterministic jitter on
 *     CollectiveError, within a bounded retry budget;
 *   - transient-vs-persistent fault distinction: an abort with no
 *     pending channel events (a stall or delay) retries the SAME
 *     topology; an abort with un-replanned fail events descends the
 *     recovery ladder (kCCube → kDoubleTree → kRing) before retrying;
 *   - chunk-granularity resume: a ccl::ChunkCheckpoint commits every
 *     chunk that became final at all ranks, so a same-geometry retry
 *     skips finished chunks (ccl::SkipMask) instead of redoing the
 *     whole message — after restoring partially-summed slices from the
 *     input snapshot;
 *   - re-admission: a topo::ChannelHealthTracker scores every channel;
 *     a restored link sits out a probation window (doubled for
 *     flapping links), and once it is readmittable the supervisor
 *     re-plans and climbs the ladder back toward the C-Cube embedding.
 *
 * Observability: every attempt emits a `supervisor.rung` trace instant
 * (args: rung, attempt), and every recovery that needed at least one
 * retry or re-plan reports (MTTR, retries) to obs::Monitor as
 * `recovery.mttr_ms` / `recovery.retries` under the --slo-mttr-ms
 * budget.
 *
 * Threading: the supervisor itself is single-threaded (one training
 * loop drives it); the collectives it launches are internally
 * concurrent. Channel events may be fed between allReduce() calls or
 * from another thread *while* one runs — feeds are mutex-guarded.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ccl/checkpoint.h"
#include "ccl/communicator.h"
#include "ccl/mailbox.h"
#include "core/recovery.h"
#include "topo/graph.h"
#include "topo/health.h"
#include "util/rng.h"

namespace ccube {
namespace core {

/** Knobs for ResilienceSupervisor. */
struct SupervisorOptions {
    /** Retry budget per allReduce() call (attempts = retries + 1). */
    int max_retries = 4;

    /** Backoff before retry r (1-based): min(base·factor^(r−1), max)
     *  plus a deterministic jitter in [0, base). */
    double backoff_base_s = 0.002;
    double backoff_factor = 2.0;
    double backoff_max_s = 0.05;

    /** Seed of the jitter stream (deterministic per supervisor). */
    std::uint64_t jitter_seed = 0xC0FFEEull;

    /** Health scoring / probation knobs. */
    topo::HealthOptions health;

    /** Re-plan budget (embedding search + ring fallback). */
    RecoveryOptions recovery;

    /** Chunking of the supervised double-tree AllReduce. */
    int chunks_per_tree = 8;

    /** Wire protocol of every supervised collective. */
    ccl::Protocol proto = ccl::Protocol::kSimple;
};

/** Outcome of one supervised allReduce() call. */
struct SupervisorReport {
    /** Whether the collective completed (possibly after retries). */
    bool completed = false;

    /** Attempts launched (1 = clean first try). */
    int attempts = 0;

    /** Re-plans performed during this call. */
    int replans = 0;

    /** Ladder rung the final attempt ran on. */
    RecoveryKind rung = RecoveryKind::kNone;

    /** Wall seconds from the first failure of this call to completion
     *  (0 when the first attempt succeeded; detect + backoff +
     *  re-plan + rerun — the MTTR the monitor records). */
    double mttr_s = 0.0;

    /** Chunks the successful attempt skipped via checkpoint resume. */
    int chunks_resumed = 0;

    /** what() of the last CollectiveError when !completed (or when
     *  retries were needed); empty on a clean run. */
    std::string error;
};

/** Lifetime counters across all allReduce() calls. */
struct SupervisorStats {
    std::uint64_t collectives = 0;   ///< allReduce() calls
    std::uint64_t completions = 0;   ///< calls that completed
    std::uint64_t failures = 0;      ///< calls that exhausted budget
    std::uint64_t retries = 0;       ///< retried attempts
    std::uint64_t replans = 0;       ///< recoverSchedule invocations
    std::uint64_t demotions = 0;     ///< re-plans that moved DOWN-ladder
    std::uint64_t promotions = 0;    ///< re-plans that moved UP-ladder
    std::uint64_t chunks_resumed = 0;///< chunks skipped via checkpoint
};

/**
 * Long-lived fault-churn supervisor for one communicator + topology.
 */
class ResilienceSupervisor
{
  public:
    /**
     * Binds @p comm (must have numRanks() == @p graph.nodeCount()) to
     * @p graph and plans the initial schedule — the C-Cube embedding
     * when the healthy graph admits one. @p graph is copied.
     */
    ResilienceSupervisor(ccl::Communicator& comm,
                         const topo::Graph& graph,
                         SupervisorOptions options = {});

    // ---- fault event feed (fabric-manager side) ----
    // Channel ids are ORIGINAL graph ids; feed both directed ids of a
    // bidirectional link. Events are queued and consumed at the next
    // allReduce() (or replanNow()).

    /** Channel went down: marks the topology dirty (next abort is
     *  classified persistent; next run re-plans first). */
    void noteChannelFail(int channel_id);

    /** Channel came back: starts its probation window. */
    void noteChannelRestore(int channel_id);

    /** Channel degraded to @p factor of nominal bandwidth. Scoring
     *  only — degraded-but-alive links stay in the schedule. */
    void noteChannelDegrade(int channel_id, double factor);

    /**
     * Runs one supervised AllReduce over @p buffers (summed in place).
     * Never throws on collective failure — the report carries the
     * structured outcome; throws only on programmer error (size
     * mismatch). On completed=false the buffers are restored to their
     * ORIGINAL input values (no partial sums leak out).
     */
    SupervisorReport allReduce(ccl::RankBuffers& buffers);

    /**
     * Consumes pending channel events and re-plans immediately
     * (normally lazy at the next allReduce()). Returns true when the
     * plan changed rung.
     */
    bool replanNow();

    /** Current ladder rung. */
    RecoveryKind rung() const { return plan_.kind; }

    /** Current schedule (graph, embeddings). */
    const RecoveryResult& plan() const { return plan_; }

    /** Health scores (original-graph channel ids). */
    const topo::ChannelHealthTracker& health() const { return health_; }

    /** Lifetime counters. */
    const SupervisorStats& stats() const { return stats_; }

  private:
    /** Re-plans from the tracker's current excluded set; updates
     *  plan_/rung bookkeeping. Returns true on a rung change. */
    bool replanLocked();

    /** Runs one attempt of the planned schedule (throws
     *  ccl::CollectiveError on abort). */
    void runPlanned(ccl::RankBuffers& buffers, const ccl::SkipMask& resume,
                    ccl::AllReduceTrace::Observer observer);

    /** Checkpoint layout of the current rung over @p total elements. */
    ccl::ChunkLayout layoutFor(std::size_t total) const;

    /** Emits the `supervisor.rung` trace instant. */
    void traceRung(int attempt) const;

    /** Backoff delay before retry @p retry (1-based). */
    double backoffDelay(int retry);

    ccl::Communicator& comm_;
    const topo::Graph graph_; ///< original healthy topology
    SupervisorOptions options_;

    topo::ChannelHealthTracker health_;
    util::Rng jitter_;

    RecoveryResult plan_;
    std::vector<int> plan_excluded_; ///< excluded set plan_ was built on

    // Event feed state (guarded; everything else is caller-serialized).
    mutable std::mutex events_mutex_;
    bool topology_dirty_ = false;   ///< un-replanned fail events pending
    bool restore_pending_ = false;  ///< restore events since last plan

    ccl::ChunkCheckpoint checkpoint_;
    SupervisorStats stats_;
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_SUPERVISOR_H_
