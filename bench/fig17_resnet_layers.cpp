/**
 * @file
 * Reproduces Fig. 17: per-layer parameter size vs compute time for
 * ResNet-50 (batch 64).
 *
 * Paper shape: as the layer index increases, compute time decreases
 * (smaller feature maps) while parameter size increases (more
 * filters) — the Case-1 pattern C-Cube exploits.
 */

#include <iostream>
#include <vector>

#include "dnn/catalog.h"
#include "dnn/compute_model.h"
#include "obs/session.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    using namespace ccube;

    std::cout << "=== Fig. 17: ResNet-50 per-layer parameters vs "
                 "compute time (batch 64) ===\n\n";

    const dnn::NetworkModel net = dnn::buildResnet50();
    const dnn::ComputeModel compute;

    util::Table table(
        {"idx", "layer", "params_KB", "fwd_compute_ms"});
    // Per-layer rows are independent: fill slots through the sweep
    // pool and print them in layer order afterwards.
    std::vector<std::vector<std::string>> rows(net.layers().size());
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), rows.size(),
        [&](std::size_t i) {
            const dnn::Layer& layer = net.layers()[i];
            if (layer.param_count == 0)
                return; // pools carry no gradients
            rows[i] = {
                std::to_string(i + 1), layer.name,
                util::formatDouble(layer.paramBytes() / 1024.0, 1),
                util::formatDouble(compute.forwardTime(layer, 64) * 1e3,
                                   3)};
        });
    for (std::vector<std::string>& row : rows) {
        if (!row.empty())
            table.addRow(std::move(row));
    }
    table.print(std::cout);

    // Quantify the trend: average over first vs last quarter.
    const auto layers = net.layers();
    double early_p = 0, late_p = 0, early_t = 0, late_t = 0;
    int early_n = 0, late_n = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i].param_count == 0)
            continue;
        if (i < layers.size() / 4) {
            early_p += layers[i].paramBytes();
            early_t += compute.forwardTime(layers[i], 64);
            ++early_n;
        } else if (i >= 3 * layers.size() / 4) {
            late_p += layers[i].paramBytes();
            late_t += compute.forwardTime(layers[i], 64);
            ++late_n;
        }
    }
    std::cout << "\nFirst-quarter layers: avg "
              << util::formatDouble(early_p / early_n / 1024, 1)
              << " KB params, "
              << util::formatDouble(early_t / early_n * 1e3, 3)
              << " ms compute\n";
    std::cout << "Last-quarter layers : avg "
              << util::formatDouble(late_p / late_n / 1024, 1)
              << " KB params, "
              << util::formatDouble(late_t / late_n * 1e3, 3)
              << " ms compute\n";
    std::cout << "\nParameters per layer grow ~40x with depth while "
                 "per-layer compute stays flat or falls (ResNet "
                 "balances FLOPs per block; the early stem/stage "
                 "layers are the slowest) — communication load "
                 "concentrates in late layers while compute "
                 "concentrates early: the Case-1 pattern "
                 "forward-chaining exploits.\n";
    return 0;
}
