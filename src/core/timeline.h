#ifndef CCUBE_CORE_TIMELINE_H_
#define CCUBE_CORE_TIMELINE_H_

/**
 * @file
 * Iteration timeline reconstruction — the data behind Fig. 2/8-style
 * diagrams: when backward ran, when each collective chunk became
 * available, and when each chained forward layer executed.
 *
 * Exports CSV (for plotting) and a scaled ASCII Gantt view.
 */

#include <iosfwd>
#include <string>
#include <vector>

#include "core/iteration_scheduler.h"

namespace ccube {
namespace core {

/** One bar on the timeline. */
struct TimelineEvent {
    std::string track; ///< "backward" | "allreduce" | "forward"
    std::string label; ///< e.g. "chunk 12", "layer conv3_2"
    double start = 0.0;
    double end = 0.0;
};

/**
 * Builds the steady-state iteration timeline for one mode.
 */
class TimelineBuilder
{
  public:
    /**
     * Reconstructs the timeline: backward [0, bwd]; one allreduce
     * event per chunk (start = previous chunk's availability, end =
     * this chunk's); one forward event per layer (chained modes gate
     * each layer on its gradients).
     */
    static std::vector<TimelineEvent>
    build(const IterationScheduler& scheduler, Mode mode,
          const IterationConfig& config);

    /** Writes "track,label,start,end" rows. */
    static void writeCsv(std::ostream& out,
                         const std::vector<TimelineEvent>& events);

    /**
     * Renders an ASCII Gantt chart: one row per track, @p width
     * character columns across the iteration.
     */
    static void printAscii(std::ostream& out,
                           const std::vector<TimelineEvent>& events,
                           int width = 72);
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_TIMELINE_H_
