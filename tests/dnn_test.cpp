/**
 * @file
 * Workload-substrate tests: shape arithmetic, catalog parameter
 * totals against published counts, and the compute-model properties
 * behind Fig. 16/17 (compute time falls with depth while parameter
 * size rises for CNNs).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "dnn/catalog.h"
#include "dnn/compute_model.h"
#include "dnn/layer.h"
#include "dnn/network.h"
#include "dnn/shapes.h"

namespace ccube {
namespace dnn {
namespace {

TEST(ConvShape, OutSizeAndParams)
{
    // ResNet-50 stem: 7x7/2 pad 3 on 224 → 112.
    const ConvShape stem{3, 64, 7, 2, 3, 224};
    EXPECT_EQ(stem.outSize(), 112);
    EXPECT_EQ(stem.params(), 7LL * 7 * 3 * 64 + 64);
    EXPECT_EQ(stem.flopsPerSample(),
              2LL * 112 * 112 * 7 * 7 * 3 * 64);
    EXPECT_EQ(stem.outputElemsPerSample(), 112LL * 112 * 64);
}

TEST(ConvShape, StrideOnePreservesSize)
{
    const ConvShape conv{64, 64, 3, 1, 1, 56};
    EXPECT_EQ(conv.outSize(), 56);
}

TEST(FcShape, ParamsAndFlops)
{
    const FcShape fc{2048, 1000};
    EXPECT_EQ(fc.params(), 2048LL * 1000 + 1000);
    EXPECT_EQ(fc.flopsPerSample(), 2LL * 2048 * 1000);
}

TEST(PoolShape, NoParams)
{
    const PoolShape pool{64, 3, 2, 112};
    EXPECT_EQ(pool.outSize(), 55);
    const Layer layer = Layer::pool("p", pool);
    EXPECT_EQ(layer.param_count, 0);
    EXPECT_DOUBLE_EQ(layer.paramBytes(), 0.0);
}

TEST(EmbeddingShape, MemoryBoundProfile)
{
    const EmbeddingShape emb{1000000, 64, 4};
    EXPECT_EQ(emb.params(), 64000000);
    // Few FLOPs relative to parameters: memory-bound by construction.
    EXPECT_LT(emb.flopsPerSample(), emb.params() / 100);
}

TEST(Catalog, ParameterTotalsMatchPublishedCounts)
{
    // Shape-derived totals must land near the published numbers.
    const std::int64_t resnet = buildResnet50().totalParams();
    EXPECT_GT(resnet, 25000000);
    EXPECT_LT(resnet, 26500000);

    const std::int64_t vgg = buildVgg16().totalParams();
    EXPECT_GT(vgg, 132000000);
    EXPECT_LT(vgg, 144000000);

    const std::int64_t zf = buildZfNet().totalParams();
    EXPECT_GT(zf, 40000000);
    EXPECT_LT(zf, 80000000);
}

TEST(Catalog, Vgg16FcLayersDominateParameters)
{
    const NetworkModel vgg = buildVgg16();
    std::int64_t fc_params = 0;
    for (const Layer& layer : vgg.layers())
        if (layer.kind == LayerKind::kFc)
            fc_params += layer.param_count;
    EXPECT_GT(fc_params, vgg.totalParams() / 2);
}

TEST(Catalog, Resnet50Fig17Trend)
{
    // Fig. 17: as layer index increases, parameter size increases
    // while per-layer compute decreases. Compare the first and last
    // thirds of the parameterized layers.
    const NetworkModel net = buildResnet50();
    const ComputeModel compute;
    std::vector<const Layer*> convs;
    for (const Layer& layer : net.layers())
        if (layer.kind == LayerKind::kConv)
            convs.push_back(&layer);
    const std::size_t third = convs.size() / 3;

    double early_params = 0.0, late_params = 0.0;
    double early_time = 0.0, late_time = 0.0;
    for (std::size_t i = 0; i < third; ++i) {
        early_params += static_cast<double>(convs[i]->param_count);
        early_time += compute.forwardTime(*convs[i], 64);
        const std::size_t j = convs.size() - 1 - i;
        late_params += static_cast<double>(convs[j]->param_count);
        late_time += compute.forwardTime(*convs[j], 64);
    }
    EXPECT_GT(late_params, early_params * 4);
    EXPECT_LT(late_time, early_time);
}

TEST(Catalog, AllModelsBuildAndAreConsistent)
{
    for (const NetworkModel& net :
         {buildZfNet(), buildVgg16(), buildResnet50(), buildSsdVgg16(),
          buildMaskRcnnR50(), buildNcf(), buildGnmt(),
          buildTransformer()}) {
        EXPECT_GT(net.numLayers(), 3) << net.name();
        EXPECT_GT(net.totalParams(), 0) << net.name();
        EXPECT_GT(net.totalForwardFlopsPerSample(), 0) << net.name();
        double sum = 0.0;
        for (double b : net.layerParamBytes())
            sum += b;
        EXPECT_DOUBLE_EQ(sum, net.totalParamBytes()) << net.name();
    }
}

TEST(Catalog, MlperfSuiteOverridesNcfCommBytes)
{
    const auto suite = mlperfSuite();
    ASSERT_GE(suite.size(), 5u);
    bool found_ncf = false;
    for (const Workload& w : suite) {
        EXPECT_GT(w.allreduce_bytes, 0.0) << w.label;
        if (w.label == "NCF") {
            found_ncf = true;
            // The embedding tables are excluded from AllReduce.
            EXPECT_LT(w.allreduce_bytes,
                      w.model.totalParamBytes() / 10);
        }
    }
    EXPECT_TRUE(found_ncf);
}

TEST(ComputeModel, ForwardScalesWithBatch)
{
    const ComputeModel compute;
    const NetworkModel net = buildResnet50();
    const double t16 = compute.forwardTime(net, 16);
    const double t64 = compute.forwardTime(net, 64);
    EXPECT_GT(t64, t16 * 2.5);
    EXPECT_LT(t64, t16 * 4.5);
}

TEST(ComputeModel, BackwardCostsMoreThanForward)
{
    const ComputeModel compute;
    const NetworkModel net = buildResnet50();
    EXPECT_GT(compute.backwardTime(net, 32),
              compute.forwardTime(net, 32));
}

TEST(ComputeModel, MemoryBoundLayerUsesMemoryTerm)
{
    GpuComputeParams params;
    params.kernel_overhead = 0.0;
    const ComputeModel compute(params);
    Layer emb = Layer::embedding(
        "e", EmbeddingShape{10000000, 64, 8});
    const double t = compute.forwardTime(emb, 256);
    // The memory term (≥ activation bytes / bandwidth) dominates the
    // negligible FLOPs.
    const double flop_term =
        static_cast<double>(emb.forward_flops_per_sample) * 256 /
        (params.peak_flops * params.efficiency);
    EXPECT_GT(t, flop_term * 10);
}

TEST(ComputeModel, LayerTimesSumToNetworkTime)
{
    const ComputeModel compute;
    const NetworkModel net = buildZfNet();
    const auto times = compute.layerForwardTimes(net, 32);
    double sum = 0.0;
    for (double t : times)
        sum += t;
    EXPECT_NEAR(sum, compute.forwardTime(net, 32), 1e-12);
}

TEST(NetworkModel, LayerAccessorBounds)
{
    const NetworkModel net = buildZfNet();
    EXPECT_NO_THROW(net.layer(0));
    EXPECT_NO_THROW(net.layer(net.numLayers() - 1));
    EXPECT_DEATH(net.layer(net.numLayers()), "bad layer");
}

} // namespace
} // namespace dnn
} // namespace ccube
