/**
 * @file
 * Randomized stress test of the slab-pool event queue against a
 * reference model (a plain std::priority_queue with the documented
 * (when, priority, seq) ordering). Both sides execute the same
 * scripted workload — including events that schedule more events from
 * inside their callbacks, duplicate timestamps, priority ties, resets,
 * and runUntil windows — and must agree on the exact execution order,
 * firing times, and final clock. This pins down the orderings the
 * collective schedules rely on while exercising slot reuse and pool
 * reallocation under reentrancy.
 */

#include <cstdint>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.h"
#include "util/rng.h"

namespace ccube {
namespace {

/** Execution log entry: which scripted event fired and when. */
struct Firing {
    int id;
    sim::Time when;
    std::uint64_t order;

    bool
    operator==(const Firing& other) const
    {
        return id == other.id && when == other.when &&
               order == other.order;
    }
};

/**
 * Reference queue: the documented semantics with none of the slab,
 * inline-callback, or 4-ary-heap machinery. Events carry only the
 * scripted id; the driver interprets it.
 */
class ModelQueue
{
  public:
    void
    schedule(sim::Time when, int id, int priority)
    {
        heap_.push(Entry{when, priority, next_seq_++, id});
    }

    bool
    step(int& id)
    {
        if (heap_.empty())
            return false;
        const Entry entry = heap_.top();
        heap_.pop();
        now_ = entry.when;
        id = entry.id;
        return true;
    }

    bool
    peekWithin(sim::Time deadline) const
    {
        return !heap_.empty() && heap_.top().when <= deadline;
    }

    sim::Time now() const { return now_; }
    void setNow(sim::Time now) { now_ = now; }
    bool empty() const { return heap_.empty(); }

    void
    reset()
    {
        heap_ = {};
        now_ = 0.0;
        next_seq_ = 0;
    }

  private:
    struct Entry {
        sim::Time when;
        int priority;
        std::uint64_t seq;
        int id;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    sim::Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

/**
 * A scripted event: fires, and may schedule a batch of children at
 * deterministic offsets. Child parameters are derived from the parent
 * id with a per-run RNG stream, so the real queue and the model see
 * exactly the same workload without sharing state.
 */
struct ScriptedEvent {
    sim::Time delay;      ///< offset from the scheduling event
    int priority;
    int children;         ///< events scheduled from inside the callback
};

/** Deterministic event parameters for scripted event @p id. */
ScriptedEvent
scriptedEvent(std::uint64_t seed, int id)
{
    util::Rng rng(seed ^
                  (0x9E3779B97F4A7C15ull * static_cast<unsigned>(id + 1)));
    ScriptedEvent event;
    // Coarse grid on purpose: collisions in `when` are the interesting
    // case (they exercise the priority and seq tie-breakers).
    event.delay = static_cast<double>(rng.uniformInt(0, 8)) * 0.25;
    event.priority = static_cast<int>(rng.uniformInt(-2, 2));
    // Geometric-ish fan-out, bounded so a run always terminates.
    const std::int64_t roll = rng.uniformInt(0, 9);
    event.children = roll < 6 ? 0 : static_cast<int>(roll - 6);
    return event;
}

/** Drives the real queue through one scripted run. */
std::vector<Firing>
runReal(sim::EventQueue& queue, std::uint64_t seed, int roots,
        int max_events)
{
    std::vector<Firing> log;
    int next_id = 0;
    std::uint64_t order = 0;

    // Recursive scheduling helper: event `id` fires, logs itself, and
    // schedules its children with ids handed out in firing order.
    struct Driver {
        sim::EventQueue& queue;
        std::uint64_t seed;
        std::vector<Firing>& log;
        int& next_id;
        std::uint64_t& order;
        int max_events;

        void
        schedule(int id)
        {
            const ScriptedEvent event = scriptedEvent(seed, id);
            queue.schedule(queue.now() + event.delay, [this, id]() {
                fire(id);
            }, event.priority);
        }

        void
        fire(int id)
        {
            log.push_back(Firing{id, queue.now(), order++});
            const ScriptedEvent event = scriptedEvent(seed, id);
            for (int c = 0; c < event.children; ++c) {
                if (next_id >= max_events)
                    return;
                schedule(next_id++);
            }
        }
    } driver{queue, seed, log, next_id, order, max_events};

    for (int r = 0; r < roots; ++r)
        driver.schedule(next_id++);
    queue.run();
    return log;
}

/** Drives the reference model through the same scripted run. */
std::vector<Firing>
runModel(std::uint64_t seed, int roots, int max_events)
{
    ModelQueue queue;
    std::vector<Firing> log;
    int next_id = 0;
    std::uint64_t order = 0;

    auto schedule = [&](int id) {
        const ScriptedEvent event = scriptedEvent(seed, id);
        queue.schedule(queue.now() + event.delay, id, event.priority);
    };

    for (int r = 0; r < roots; ++r)
        schedule(next_id++);
    int id = -1;
    while (queue.step(id)) {
        log.push_back(Firing{id, queue.now(), order++});
        const ScriptedEvent event = scriptedEvent(seed, id);
        for (int c = 0; c < event.children && next_id < max_events;
             ++c)
            schedule(next_id++);
    }
    return log;
}

TEST(EventQueueStress, MatchesReferenceModelAcrossSeeds)
{
    for (std::uint64_t seed :
         {1ull, 2ull, 3ull, 17ull, 42ull, 99ull, 12345ull, 777777ull}) {
        sim::EventQueue queue;
        const std::vector<Firing> real =
            runReal(queue, seed, /*roots=*/16, /*max_events=*/2000);
        const std::vector<Firing> model =
            runModel(seed, /*roots=*/16, /*max_events=*/2000);
        ASSERT_EQ(real.size(), model.size()) << "seed " << seed;
        for (std::size_t i = 0; i < real.size(); ++i)
            ASSERT_TRUE(real[i] == model[i])
                << "seed " << seed << " firing " << i << ": real (id "
                << real[i].id << ", t " << real[i].when
                << ") vs model (id " << model[i].id << ", t "
                << model[i].when << ")";
        EXPECT_TRUE(queue.empty()) << "seed " << seed;
        EXPECT_EQ(queue.executedCount(), real.size());
    }
}

TEST(EventQueueStress, ReusedQueueStaysConsistent)
{
    // One queue, many runs: slot recycling and pool growth from a
    // previous run must not leak into the next one's ordering.
    sim::EventQueue queue;
    for (std::uint64_t seed : {5ull, 6ull, 7ull, 8ull}) {
        queue.reset();
        EXPECT_DOUBLE_EQ(queue.now(), 0.0);
        const std::vector<Firing> real =
            runReal(queue, seed, /*roots=*/8, /*max_events=*/500);
        const std::vector<Firing> model =
            runModel(seed, /*roots=*/8, /*max_events=*/500);
        ASSERT_EQ(real, model) << "seed " << seed;
    }
}

TEST(EventQueueStress, RunUntilHonorsDeadlineLikeTheModel)
{
    for (std::uint64_t seed : {11ull, 23ull, 31ull}) {
        sim::EventQueue queue;
        std::vector<int> fired;
        util::Rng rng(seed);
        const int events = 400;
        for (int i = 0; i < events; ++i) {
            const double when = rng.uniform(0.0, 10.0);
            const int priority = static_cast<int>(rng.uniformInt(-1, 1));
            queue.schedule(when, [&fired, i]() { fired.push_back(i); },
                           priority);
        }

        ModelQueue model;
        util::Rng model_rng(seed);
        for (int i = 0; i < events; ++i) {
            const double when = model_rng.uniform(0.0, 10.0);
            const int priority =
                static_cast<int>(model_rng.uniformInt(-1, 1));
            model.schedule(when, i, priority);
        }

        // Drain in windows; events at exactly the deadline run.
        for (double deadline : {2.5, 5.0, 5.0, 7.75, 11.0}) {
            fired.clear();
            const double end = queue.runUntil(deadline);
            std::vector<int> expected;
            int id = -1;
            while (model.peekWithin(deadline) && model.step(id))
                expected.push_back(id);
            model.setNow(std::max(model.now(), deadline));
            EXPECT_EQ(fired, expected)
                << "seed " << seed << " deadline " << deadline;
            EXPECT_DOUBLE_EQ(end, model.now())
                << "seed " << seed << " deadline " << deadline;
        }
        EXPECT_TRUE(queue.empty());
    }
}

} // namespace
} // namespace ccube
