file(REMOVE_RECURSE
  "CMakeFiles/ext_dgx2_ccube.dir/ext_dgx2_ccube.cpp.o"
  "CMakeFiles/ext_dgx2_ccube.dir/ext_dgx2_ccube.cpp.o.d"
  "ext_dgx2_ccube"
  "ext_dgx2_ccube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dgx2_ccube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
