#ifndef CCUBE_UTIL_TABLE_H_
#define CCUBE_UTIL_TABLE_H_

/**
 * @file
 * Plain-text table printer used by the benchmark harnesses.
 *
 * Every figure/table reproduction prints its series through this class
 * so that bench output is uniform and machine-parsable (also emits CSV).
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace ccube {
namespace util {

/**
 * Accumulates rows of string cells and renders an aligned table.
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with @p precision digits. */
    void addNumericRow(const std::vector<double>& cells, int precision = 4);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Renders as an aligned, pipe-separated table. */
    void print(std::ostream& out) const;

    /** Renders as CSV (header row first). */
    void printCsv(std::ostream& out) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with fixed precision. */
std::string formatDouble(double v, int precision = 4);

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_TABLE_H_
