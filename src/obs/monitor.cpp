#include "obs/monitor.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/context.h"
#include "util/flags.h"
#include "util/logging.h"

#include <cstdlib>

namespace ccube {
namespace obs {

namespace {

/** Per-thread redirect target installed by ScopedMonitorRedirect. */
thread_local Monitor* t_redirect = nullptr;

double
envMs(const char* name)
{
    const char* value = std::getenv(name);
    if (!value || !*value)
        return 0.0;
    return std::atof(value);
}

void
writeJsonString(std::ostream& out, const std::string& s)
{
    out << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out << '\\';
        out << c;
    }
    out << '"';
}

/** OpenMetrics label values escape backslash, quote, and newline. */
std::string
escapeLabel(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

SloSpec
SloSpec::fromFlags(const util::Flags& flags)
{
    SloSpec spec;
    spec.collective_deadline_s =
        flags.getDouble("slo-collective-ms",
                        envMs("CCUBE_SLO_COLLECTIVE_MS")) *
        1e-3;
    spec.iteration_deadline_s =
        flags.getDouble("slo-iteration-ms",
                        envMs("CCUBE_SLO_ITERATION_MS")) *
        1e-3;
    spec.mttr_budget_s =
        flags.getDouble("slo-mttr-ms", envMs("CCUBE_SLO_MTTR_MS")) *
        1e-3;
    return spec;
}

Monitor&
Monitor::global()
{
    return t_redirect ? *t_redirect : process();
}

Monitor&
Monitor::process()
{
    static Monitor monitor;
    return monitor;
}

ScopedMonitorRedirect::ScopedMonitorRedirect(Monitor* monitor)
{
    if (!monitor)
        return;
    previous_ = t_redirect;
    t_redirect = monitor;
    active_ = true;
}

ScopedMonitorRedirect::~ScopedMonitorRedirect()
{
    if (active_)
        t_redirect = previous_;
}

void
Monitor::setInterval(double seconds)
{
    std::lock_guard<std::mutex> guard(mutex_);
    interval_s_ = seconds;
}

double
Monitor::interval() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return interval_s_;
}

void
Monitor::setSlo(const SloSpec& spec)
{
    std::lock_guard<std::mutex> guard(mutex_);
    slo_ = spec;
}

SloSpec
Monitor::slo() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return slo_;
}

int
Monitor::addSource(SampleFn fn)
{
    std::lock_guard<std::mutex> guard(mutex_);
    const int token = next_token_++;
    sources_.push_back(Source{token, std::move(fn)});
    return token;
}

void
Monitor::removeSource(int token)
{
    std::lock_guard<std::mutex> guard(mutex_);
    sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                  [token](const Source& source) {
                                      return source.token == token;
                                  }),
                   sources_.end());
}

void
Monitor::beginRun()
{
    std::lock_guard<std::mutex> guard(mutex_);
    current_run_ = ++run_counter_;
}

void
Monitor::heartbeat(double t_s)
{
    std::lock_guard<std::mutex> guard(mutex_);
    snapshotLocked("heartbeat", std::string(), t_s,
                   sampleLocked(t_s));
}

void
Monitor::collectiveComplete(const std::string& name, double start_s,
                            double end_s, double bytes, bool completed)
{
    std::lock_guard<std::mutex> guard(mutex_);
    const double latency = end_s - start_s;
    ++collectives_total_;
    collective_latency_s_.add(latency);
    const bool violated =
        !completed || (slo_.collective_deadline_s > 0.0 &&
                       latency > slo_.collective_deadline_s);
    if (violated)
        ++collective_violations_;
    auto values = sampleLocked(end_s);
    values.emplace_back("collective.bytes", bytes);
    values.emplace_back("collective.latency_s", latency);
    values.emplace_back("collective.completed", completed ? 1.0 : 0.0);
    snapshotLocked("collective", name, end_s, std::move(values));
}

void
Monitor::iterationComplete(const std::string& name, double seconds)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++iterations_total_;
    iteration_latency_s_.add(seconds);
    if (slo_.iteration_deadline_s > 0.0 &&
        seconds > slo_.iteration_deadline_s)
        ++iteration_violations_;
    auto values = sampleLocked(seconds);
    values.emplace_back("iteration.latency_s", seconds);
    snapshotLocked("iteration", name, seconds, std::move(values));
}

void
Monitor::noteWatchdogTrip(int rank)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++watchdog_trips_;
    std::vector<std::pair<std::string, double>> values;
    values.emplace_back("watchdog.rank",
                        static_cast<double>(rank));
    values.emplace_back("watchdog.trips",
                        static_cast<double>(watchdog_trips_));
    snapshotLocked("watchdog", "watchdog_trip", 0.0,
                   std::move(values));
}

void
Monitor::noteRecovery(double mttr_s, int retries)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++recoveries_total_;
    recovery_retries_total_ += static_cast<std::uint64_t>(
        retries > 0 ? retries : 0);
    recovery_mttr_s_.add(mttr_s);
    if (slo_.mttr_budget_s > 0.0 && mttr_s > slo_.mttr_budget_s)
        ++recovery_violations_;
    std::vector<std::pair<std::string, double>> values;
    values.emplace_back("recovery.mttr_ms", mttr_s * 1e3);
    values.emplace_back("recovery.retries",
                        static_cast<double>(retries));
    values.emplace_back("recovery.total",
                        static_cast<double>(recoveries_total_));
    values.emplace_back("recovery.violations",
                        static_cast<double>(recovery_violations_));
    snapshotLocked("recovery", "recovery", 0.0, std::move(values));
}

std::size_t
Monitor::snapshotCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return snapshots_.size();
}

std::uint64_t
Monitor::droppedSnapshots() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return dropped_snapshots_;
}

std::vector<MonitorSnapshot>
Monitor::snapshots() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return snapshots_;
}

std::uint64_t
Monitor::collectivesTotal() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return collectives_total_;
}

std::uint64_t
Monitor::collectiveViolations() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return collective_violations_;
}

std::uint64_t
Monitor::iterationViolations() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return iteration_violations_;
}

std::uint64_t
Monitor::watchdogTrips() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return watchdog_trips_;
}

std::uint64_t
Monitor::recoveriesTotal() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return recoveries_total_;
}

std::uint64_t
Monitor::recoveryViolations() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return recovery_violations_;
}

std::uint64_t
Monitor::recoveryRetriesTotal() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return recovery_retries_total_;
}

LogHistogram
Monitor::recoveryMttr() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return recovery_mttr_s_;
}

LogHistogram
Monitor::collectiveLatency() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return collective_latency_s_;
}

LogHistogram
Monitor::iterationLatency() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return iteration_latency_s_;
}

void
Monitor::absorb(const Monitor& other)
{
    if (&other == this)
        return;
    std::scoped_lock guard(mutex_, other.mutex_);
    const int run_base = run_counter_;
    for (const MonitorSnapshot& snapshot : other.snapshots_) {
        if (snapshots_.size() >= kMaxSnapshots) {
            ++dropped_snapshots_;
            continue;
        }
        MonitorSnapshot copy = snapshot;
        if (copy.run > 0)
            copy.run += run_base;
        snapshots_.push_back(std::move(copy));
    }
    run_counter_ += other.run_counter_;
    current_run_ = run_counter_;
    dropped_snapshots_ += other.dropped_snapshots_;
    collectives_total_ += other.collectives_total_;
    collective_violations_ += other.collective_violations_;
    iterations_total_ += other.iterations_total_;
    iteration_violations_ += other.iteration_violations_;
    watchdog_trips_ += other.watchdog_trips_;
    recoveries_total_ += other.recoveries_total_;
    recovery_violations_ += other.recovery_violations_;
    recovery_retries_total_ += other.recovery_retries_total_;
    collective_latency_s_.merge(other.collective_latency_s_);
    iteration_latency_s_.merge(other.iteration_latency_s_);
    recovery_mttr_s_.merge(other.recovery_mttr_s_);
}

void
Monitor::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    snapshots_.clear();
    dropped_snapshots_ = 0;
    run_counter_ = 0;
    current_run_ = 0;
    collectives_total_ = 0;
    collective_violations_ = 0;
    iterations_total_ = 0;
    iteration_violations_ = 0;
    watchdog_trips_ = 0;
    recoveries_total_ = 0;
    recovery_violations_ = 0;
    recovery_retries_total_ = 0;
    collective_latency_s_.clear();
    iteration_latency_s_.clear();
    recovery_mttr_s_.clear();
}

void
Monitor::snapshotLocked(const char* trigger, const std::string& label,
                        double t_s,
                        std::vector<std::pair<std::string, double>>
                            values)
{
    if (snapshots_.size() >= kMaxSnapshots) {
        ++dropped_snapshots_;
        return;
    }
    std::stable_sort(values.begin(), values.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    MonitorSnapshot snapshot;
    snapshot.run = current_run_;
    snapshot.t_s = t_s;
    snapshot.trigger = trigger;
    snapshot.label = label;
    snapshot.values = std::move(values);
    snapshots_.push_back(std::move(snapshot));
}

std::vector<std::pair<std::string, double>>
Monitor::sampleLocked(double t_s)
{
    std::vector<std::pair<std::string, double>> values;
    values.reserve(last_sample_size_ + 8);
    for (Source& source : sources_)
        source.fn(t_s, values);

    // Cumulative SLO state rides on every snapshot so a JSONL row is
    // self-contained (a dashboard can plot violations without joins).
    values.emplace_back("slo.collective.total",
                        static_cast<double>(collectives_total_));
    values.emplace_back("slo.collective.violations",
                        static_cast<double>(collective_violations_));
    if (iterations_total_ > 0) {
        values.emplace_back("slo.iteration.total",
                            static_cast<double>(iterations_total_));
        values.emplace_back(
            "slo.iteration.violations",
            static_cast<double>(iteration_violations_));
    }
    if (!collective_latency_s_.empty()) {
        values.emplace_back("slo.collective.p50_s",
                            collective_latency_s_.quantile(0.50));
        values.emplace_back("slo.collective.p99_s",
                            collective_latency_s_.quantile(0.99));
        values.emplace_back("slo.collective.p999_s",
                            collective_latency_s_.quantile(0.999));
    }

    // Per-rank functional-runtime counters (mailbox stalls, CAS
    // retries). Zero — and therefore absent — in pure-DES runs, which
    // keeps DES snapshot series wall-clock free and deterministic.
    const RankCounters& ranks = RankCounters::global();
    for (int rank = 0; rank < RankCounters::kMaxRanks; ++rank) {
        const std::uint64_t cas = ranks.casRetries(rank);
        const std::uint64_t post_ns = ranks.postStallNs(rank);
        const std::uint64_t wait_ns = ranks.waitStallNs(rank);
        const std::uint64_t slot_full = ranks.slotFullStalls(rank);
        if (cas == 0 && post_ns == 0 && wait_ns == 0 &&
            slot_full == 0)
            continue;
        const std::string prefix =
            "rank." + std::to_string(rank) + '.';
        if (cas)
            values.emplace_back(prefix + "cas_retries",
                                static_cast<double>(cas));
        if (post_ns)
            values.emplace_back(prefix + "post_stall_ns",
                                static_cast<double>(post_ns));
        if (wait_ns)
            values.emplace_back(prefix + "wait_stall_ns",
                                static_cast<double>(wait_ns));
        if (slot_full)
            values.emplace_back(prefix + "slot_full_stalls",
                                static_cast<double>(slot_full));
    }
    last_sample_size_ = values.size();
    return values;
}

void
Monitor::writeJsonl(std::ostream& out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    const auto saved_precision = out.precision(12);
    for (const MonitorSnapshot& snapshot : snapshots_) {
        out << "{\"run\": " << snapshot.run
            << ", \"t_s\": " << snapshot.t_s << ", \"trigger\": ";
        writeJsonString(out, snapshot.trigger);
        if (!snapshot.label.empty()) {
            out << ", \"label\": ";
            writeJsonString(out, snapshot.label);
        }
        out << ", \"values\": {";
        bool first = true;
        for (const auto& [name, value] : snapshot.values) {
            if (!first)
                out << ", ";
            first = false;
            writeJsonString(out, name);
            out << ": " << value;
        }
        out << "}}\n";
    }
    out.precision(saved_precision);
}

void
Monitor::writeOpenMetrics(std::ostream& out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    const auto saved_precision = out.precision(12);
    out << "# TYPE ccube_monitor_snapshots counter\n"
        << "ccube_monitor_snapshots_total " << snapshots_.size()
        << "\n";
    out << "# TYPE ccube_slo_collective counter\n"
        << "ccube_slo_collective_total " << collectives_total_ << "\n";
    out << "# TYPE ccube_slo_collective_violations counter\n"
        << "ccube_slo_collective_violations_total "
        << collective_violations_ << "\n";
    out << "# TYPE ccube_slo_iteration counter\n"
        << "ccube_slo_iteration_total " << iterations_total_ << "\n";
    out << "# TYPE ccube_slo_iteration_violations counter\n"
        << "ccube_slo_iteration_violations_total "
        << iteration_violations_ << "\n";
    out << "# TYPE ccube_watchdog_trips counter\n"
        << "ccube_watchdog_trips_total " << watchdog_trips_ << "\n";
    out << "# TYPE ccube_recoveries counter\n"
        << "ccube_recoveries_total " << recoveries_total_ << "\n";
    out << "# TYPE ccube_recovery_violations counter\n"
        << "ccube_recovery_violations_total " << recovery_violations_
        << "\n";
    out << "# TYPE ccube_recovery_retries counter\n"
        << "ccube_recovery_retries_total " << recovery_retries_total_
        << "\n";
    const auto writeSummary = [&out](const char* name,
                                     const LogHistogram& histogram) {
        out << "# TYPE " << name << " summary\n";
        for (double q : {0.5, 0.99, 0.999}) {
            out << name << "{quantile=\"" << q << "\"} "
                << (histogram.empty() ? 0.0 : histogram.quantile(q))
                << "\n";
        }
        out << name << "_sum " << histogram.sum() << "\n"
            << name << "_count " << histogram.count() << "\n";
    };
    writeSummary("ccube_collective_latency_seconds",
                 collective_latency_s_);
    writeSummary("ccube_iteration_latency_seconds",
                 iteration_latency_s_);
    writeSummary("ccube_recovery_mttr_seconds", recovery_mttr_s_);
    if (!snapshots_.empty()) {
        // Newest snapshot = the "current" value of every gauge.
        const MonitorSnapshot& last = snapshots_.back();
        out << "# TYPE ccube_monitor_gauge gauge\n";
        for (const auto& [name, value] : last.values)
            out << "ccube_monitor_gauge{name=\"" << escapeLabel(name)
                << "\"} " << value << "\n";
    }
    out << "# EOF\n";
    out.precision(saved_precision);
}

} // namespace obs
} // namespace ccube
