file(REMOVE_RECURSE
  "CMakeFiles/abl_detour_vs_pcie.dir/abl_detour_vs_pcie.cpp.o"
  "CMakeFiles/abl_detour_vs_pcie.dir/abl_detour_vs_pcie.cpp.o.d"
  "abl_detour_vs_pcie"
  "abl_detour_vs_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_detour_vs_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
