#include "core/chunk_mapper.h"

#include <algorithm>

#include "util/logging.h"

namespace ccube {
namespace core {

ChunkMapper::ChunkMapper(std::vector<std::pair<double, double>> ranges)
    : ranges_(std::move(ranges))
{
    CCUBE_CHECK(!ranges_.empty(), "mapper needs at least one chunk");
}

ChunkMapper
ChunkMapper::singleTree(double total_bytes, int num_chunks)
{
    CCUBE_CHECK(total_bytes > 0.0, "non-positive buffer");
    CCUBE_CHECK(num_chunks >= 1, "need at least one chunk");
    std::vector<std::pair<double, double>> ranges;
    for (int c = 0; c < num_chunks; ++c) {
        ranges.emplace_back(total_bytes * c / num_chunks,
                            total_bytes * (c + 1) / num_chunks);
    }
    return ChunkMapper(std::move(ranges));
}

ChunkMapper
ChunkMapper::doubleTree(double total_bytes, int chunks_per_tree)
{
    CCUBE_CHECK(total_bytes > 0.0, "non-positive buffer");
    CCUBE_CHECK(chunks_per_tree >= 1, "need at least one chunk");
    const double half = total_bytes / 2.0;
    std::vector<std::pair<double, double>> ranges;
    for (int c = 0; c < chunks_per_tree; ++c) {
        ranges.emplace_back(half * c / chunks_per_tree,
                            half * (c + 1) / chunks_per_tree);
    }
    for (int c = 0; c < chunks_per_tree; ++c) {
        ranges.emplace_back(half + half * c / chunks_per_tree,
                            half + half * (c + 1) / chunks_per_tree);
    }
    return ChunkMapper(std::move(ranges));
}

ChunkMapper
ChunkMapper::ring(double total_bytes, int num_ranks)
{
    return singleTree(total_bytes, num_ranks);
}

std::pair<double, double>
ChunkMapper::chunkByteRange(int chunk) const
{
    CCUBE_CHECK(chunk >= 0 && chunk < numChunks(),
                "bad chunk " << chunk);
    return ranges_[static_cast<std::size_t>(chunk)];
}

std::vector<int>
ChunkMapper::chunksOfRange(double lo, double hi) const
{
    CCUBE_CHECK(lo <= hi, "inverted byte range");
    std::vector<int> chunks;
    if (lo == hi)
        return chunks;
    for (int c = 0; c < numChunks(); ++c) {
        const auto& [clo, chi] = ranges_[static_cast<std::size_t>(c)];
        if (clo < hi && lo < chi)
            chunks.push_back(c);
    }
    return chunks;
}

std::vector<int>
ChunkMapper::chunksOfLayer(const std::vector<double>& layer_bytes,
                           int layer) const
{
    CCUBE_CHECK(layer >= 0 &&
                    layer < static_cast<int>(layer_bytes.size()),
                "bad layer index " << layer);
    double lo = 0.0;
    for (int l = 0; l < layer; ++l)
        lo += layer_bytes[static_cast<std::size_t>(l)];
    const double hi = lo + layer_bytes[static_cast<std::size_t>(layer)];
    return chunksOfRange(lo, hi);
}

double
ChunkMapper::layerReadyTime(const std::vector<double>& layer_bytes,
                            int layer,
                            const std::vector<double>& chunk_ready) const
{
    CCUBE_CHECK(static_cast<int>(chunk_ready.size()) == numChunks(),
                "chunk time vector arity mismatch");
    double ready = 0.0;
    for (int c : chunksOfLayer(layer_bytes, layer))
        ready = std::max(ready, chunk_ready[static_cast<std::size_t>(c)]);
    return ready;
}

std::vector<std::int64_t>
ChunkMapper::layerChunkTable(const std::vector<double>& layer_bytes) const
{
    std::vector<std::int64_t> table;
    table.reserve(layer_bytes.size());
    std::int64_t bound = 0;
    for (int l = 0; l < static_cast<int>(layer_bytes.size()); ++l) {
        const std::vector<int> chunks = chunksOfLayer(layer_bytes, l);
        if (!chunks.empty())
            bound = std::max<std::int64_t>(bound, chunks.back() + 1);
        table.push_back(bound);
    }
    return table;
}

std::pair<std::vector<std::int64_t>, std::vector<std::int64_t>>
perTreeLayerChunkTables(double total_bytes, int chunks_per_tree,
                        const std::vector<double>& layer_bytes)
{
    const ChunkMapper mapper =
        ChunkMapper::doubleTree(total_bytes, chunks_per_tree);
    std::vector<std::int64_t> table0;
    std::vector<std::int64_t> table1;
    std::int64_t bound0 = 0;
    std::int64_t bound1 = 0;
    for (int l = 0; l < static_cast<int>(layer_bytes.size()); ++l) {
        for (int c : mapper.chunksOfLayer(layer_bytes, l)) {
            if (c < chunks_per_tree) {
                bound0 = std::max<std::int64_t>(bound0, c + 1);
            } else {
                bound1 = std::max<std::int64_t>(bound1,
                                                c - chunks_per_tree + 1);
            }
        }
        table0.push_back(bound0);
        table1.push_back(bound1);
    }
    return {std::move(table0), std::move(table1)};
}

} // namespace core
} // namespace ccube
