/**
 * @file
 * DES-core throughput microbenchmark (google-benchmark): events/sec
 * of the slab-pool event queue (sim::EventQueue, inline callbacks,
 * 4-ary heap) against the previous implementation — a
 * std::priority_queue of std::function entries that copied each entry
 * out of top() before pop — replicated here verbatim as
 * LegacyEventQueue so one run yields before/after numbers.
 *
 * Two event mixes:
 *  - schedule_run: raw schedule/pop churn with small captures;
 *  - fig07_mix: the Fig. 7 workload shape — a 4-rank double-binary-
 *    tree reduce+broadcast over FIFO channels (α = 4.6 µs, 25 GB/s)
 *    pipelining 6 chunks, i.e. chained completion callbacks through
 *    contended resources. Each era uses its era's closure shapes
 *    (the legacy queue carries the done-callback inside the release
 *    closure exactly as the old FifoResource did).
 *
 * Results land in BENCH_sim.json (schema bench_ccl/v1); set
 * CCUBE_BENCH_OUT to override the path. A "des_speedup" record with
 * the new/legacy events-per-second ratio is appended for the perf
 * gate.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "util/bench_json.h"

namespace {

using namespace ccube;

// ---------------------------------------------------------------------------
// The previous event queue, kept byte-for-byte in behaviour: a binary
// std::priority_queue of entries holding std::function callbacks,
// with the copy-on-pop in step() (top() returns const&, so the entry
// was copied — std::function copy included — before pop()).
// ---------------------------------------------------------------------------

class LegacyEventQueue
{
  public:
    using Fn = std::function<void()>;

    void
    schedule(sim::Time when, Fn fn, int priority = 0)
    {
        heap_.push(Entry{when, priority, next_seq_++, std::move(fn)});
    }

    bool empty() const { return heap_.empty(); }
    sim::Time now() const { return now_; }

    void
    reset()
    {
        heap_ = {};
        now_ = 0.0;
        next_seq_ = 0;
        executed_ = 0;
    }

    bool
    step()
    {
        if (heap_.empty())
            return false;
        Entry entry = heap_.top(); // the historical copy-on-pop
        heap_.pop();
        now_ = entry.when;
        ++executed_;
        entry.fn();
        return true;
    }

    sim::Time
    run()
    {
        while (step()) {
        }
        return now_;
    }

    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry {
        sim::Time when;
        int priority;
        std::uint64_t seq;
        Fn fn;
    };

    struct Later {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    sim::Time now_ = 0.0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

struct NewTraits {
    using Queue = sim::EventQueue;
    using Fn = sim::EventFn;
    /** New FifoResource shape: done stashed in the resource, release
     *  closure captures only `this` (stays inline). */
    static constexpr bool kStashDone = true;
    /** New runStage shape: the final single-channel stage hands done
     *  to the channel directly, no continuation wrapper. */
    static constexpr bool kDirectFinalStage = true;
    /** New Network::transfer shape: cached lane table + plain
     *  counters — no per-transfer allocation or string hashing. */
    static constexpr bool kStringNetStats = false;
    static constexpr const char* kName = "event_pool";
};

struct LegacyTraits {
    using Queue = LegacyEventQueue;
    using Fn = std::function<void()>;
    /** Old FifoResource shape: done rides inside the release closure. */
    static constexpr bool kStashDone = false;
    /** Old runStage shape: every stage, final or not, wraps done in a
     *  route continuation. */
    static constexpr bool kDirectFinalStage = false;
    /** Old Network::transfer shape: channelIds() built a lane vector
     *  on the heap and stats were string-keyed map updates, both once
     *  per transfer. */
    static constexpr bool kStringNetStats = true;
    static constexpr const char* kName = "std_function_heap";
};

// ---------------------------------------------------------------------------
// Fig. 7 event mix: FIFO channels with α + bytes/BW service, chained
// completion callbacks, 6 chunks pipelining through a 4-rank double
// binary tree (reduce to the root, broadcast back).
// ---------------------------------------------------------------------------

constexpr double kAlpha = 4.6e-6;       // per-transfer latency
constexpr double kBandwidth = 25e9;     // bytes/second
constexpr int kChunks = 16;
constexpr double kChunkBytes = 16.0 * 1024 * 1024 / 2.0 / kChunks;

template <typename Traits>
class MiniChannel
{
  public:
    using Fn = typename Traits::Fn;

    explicit MiniChannel(typename Traits::Queue& queue)
        : queue_(queue)
    {
    }

    void
    send(double bytes, Fn done)
    {
        waiting_.push_back({bytes, std::move(done)});
        if (!busy_)
            grant();
    }

  private:
    void
    grant()
    {
        busy_ = true;
        auto pending = std::move(waiting_.front());
        waiting_.pop_front();
        const double duration = kAlpha + pending.first / kBandwidth;
        if constexpr (Traits::kStashDone) {
            active_done_ = std::move(pending.second);
            queue_.schedule(queue_.now() + duration, [this]() {
                Fn done = std::move(active_done_);
                release();
                if (done)
                    done();
            });
        } else {
            queue_.schedule(
                queue_.now() + duration,
                [this, done = std::move(pending.second)]() mutable {
                    release();
                    if (done)
                        done();
                });
        }
    }

    void
    release()
    {
        busy_ = false;
        if (!waiting_.empty())
            grant();
    }

    typename Traits::Queue& queue_;
    bool busy_ = false;
    Fn active_done_;
    std::deque<std::pair<double, Fn>> waiting_;
};

/**
 * Reduce+broadcast of kChunks chunks over the tree 0 ← {1, 2},
 * 1 ← {3}, where the 0–2 logical edge rides a two-hop detour through
 * a transit GPU (node 4) — the paper's store-and-forward shape. Every
 * send goes through a runStage-style route continuation that carries
 * the done-callback, exactly as the transfer engine's events do; on
 * the legacy queue those continuations are std::function targets the
 * copy-on-pop deep-copies. Channels and counters are built once and
 * reset between runs so the measurement is the event engine, not
 * harness setup.
 */
template <typename Traits>
class Fig07Harness
{
  public:
    using Fn = typename Traits::Fn;
    /** Up to two hops: {src, [transit,] dst}. */
    using RouteHops = std::array<std::int8_t, 3>;

    Fig07Harness()
        : at_root_(kChunks, 0)
    {
        for (const auto& [src, dst] :
             {std::pair<int, int>{3, 1}, {1, 0}, {2, 4}, {4, 0},
              {0, 1}, {1, 3}, {0, 4}, {4, 2}}) {
            channels_[static_cast<std::size_t>(src * kNodes + dst)] =
                std::make_unique<MiniChannel<Traits>>(queue_);
        }
    }

    /** One full collective; returns the number of events executed. */
    std::uint64_t
    run()
    {
        queue_.reset();
        std::fill(at_root_.begin(), at_root_.end(), 0);
        done_chunks_ = 0;
        for (int c = 0; c < kChunks; ++c)
            startChunk(c);
        queue_.run();
        return queue_.executedCount();
    }

    int doneChunks() const { return done_chunks_; }

  private:
    static constexpr int kNodes = 5;

    MiniChannel<Traits>&
    channel(int src, int dst)
    {
        return *channels_[static_cast<std::size_t>(src * kNodes +
                                                   dst)];
    }

    /**
     * The Network::transfer front door, in each era's shape: the old
     * one built the lane vector on the heap (Graph::channelIds by
     * value) and bumped two string-keyed sim stats per transfer; the
     * new one probes a cached lane table and bumps plain counters.
     */
    void
    sendOn(int src, int dst, double bytes, Fn done)
    {
        if constexpr (Traits::kStringNetStats) {
            std::vector<int> ids;
            ids.push_back(src * kNodes + dst);
            benchmark::DoNotOptimize(ids.data());
            legacy_stats_["net.bytes"] += bytes;
            legacy_stats_["net.transfers"] += 1.0;
            channel(src, dst).send(bytes, std::move(done));
        } else {
            net_bytes_ += bytes;
            ++net_transfers_;
            channel(src, dst).send(bytes, std::move(done));
        }
    }

    /** The transfer engine's store-and-forward: each stage's
     *  completion carries the remaining route and the final done. */
    void
    runStage(RouteHops hops, int nhops, int index, double bytes,
             Fn done)
    {
        if (Traits::kDirectFinalStage && index + 2 >= nhops) {
            sendOn(hops[static_cast<std::size_t>(index)],
                   hops[static_cast<std::size_t>(index + 1)], bytes,
                   std::move(done));
            return;
        }
        auto continuation = [this, hops, nhops, index, bytes,
                             done = std::move(done)]() mutable {
            if (index + 2 >= nhops) {
                if (done)
                    done();
            } else {
                runStage(hops, nhops, index + 1, bytes,
                         std::move(done));
            }
        };
        sendOn(hops[static_cast<std::size_t>(index)],
               hops[static_cast<std::size_t>(index + 1)], bytes,
               std::move(continuation));
    }

    void
    transfer(RouteHops hops, int nhops, double bytes, Fn done)
    {
        runStage(hops, nhops, 0, bytes, std::move(done));
    }

    void
    startChunk(int c)
    {
        // Leaf 3 reduces into 1, which forwards to the root;
        // leaf 2 reduces into the root via the transit GPU.
        transfer({3, 1}, 2, kChunkBytes, [this, c]() {
            transfer({1, 0}, 2, kChunkBytes,
                     [this, c]() { arriveRoot(c); });
        });
        transfer({2, 4, 0}, 3, kChunkBytes,
                 [this, c]() { arriveRoot(c); });
    }

    void
    arriveRoot(int c)
    {
        if (++at_root_[static_cast<std::size_t>(c)] < 2)
            return;
        // Broadcast back down both subtrees.
        transfer({0, 1}, 2, kChunkBytes, [this]() {
            transfer({1, 3}, 2, kChunkBytes,
                     [this]() { ++done_chunks_; });
        });
        transfer({0, 4, 2}, 3, kChunkBytes,
                 [this]() { ++done_chunks_; });
    }

    typename Traits::Queue queue_;
    std::array<std::unique_ptr<MiniChannel<Traits>>,
               static_cast<std::size_t>(kNodes* kNodes)>
        channels_;
    std::vector<int> at_root_;
    std::unordered_map<std::string, double> legacy_stats_;
    double net_bytes_ = 0.0;
    std::uint64_t net_transfers_ = 0;
    int done_chunks_ = 0;
};

template <typename Traits>
void
BM_Fig07Mix(benchmark::State& state)
{
    Fig07Harness<Traits> harness;
    std::uint64_t events = 0;
    for (auto _ : state)
        events += harness.run();
    if (harness.doneChunks() != 2 * kChunks)
        state.SkipWithError("collective did not complete");
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}

template <typename Traits>
void
BM_ScheduleRun(benchmark::State& state)
{
    const int events = static_cast<int>(state.range(0));
    std::uint64_t total = 0;
    for (auto _ : state) {
        typename Traits::Queue queue;
        std::uint64_t sink = 0;
        for (int i = 0; i < events; ++i) {
            queue.schedule(static_cast<double>(i),
                           [&sink, i]() { sink += i; });
        }
        queue.run();
        benchmark::DoNotOptimize(sink);
        total += queue.executedCount();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kIsRate);
}

/**
 * Schedule/pop churn with the capture size typical of simnet
 * completion callbacks (this + route endpoints + bytes + lane +
 * timestamp ≈ 40 bytes): beyond std::function's small-object buffer,
 * within the 48-byte inline budget of sim::EventFn.
 */
template <typename Traits>
void
BM_ScheduleRunSimnetCapture(benchmark::State& state)
{
    const int events = static_cast<int>(state.range(0));
    struct Payload {
        std::uint64_t* sink;
        double bytes;
        double start;
        int src;
        int dst;
        int lane;
        int hops;
    };
    std::uint64_t total = 0;
    for (auto _ : state) {
        typename Traits::Queue queue;
        std::uint64_t sink = 0;
        for (int i = 0; i < events; ++i) {
            const Payload payload{&sink, 1e6, static_cast<double>(i),
                                  i & 7, (i + 1) & 7, i & 3, 2};
            queue.schedule(static_cast<double>(i), [payload]() {
                *payload.sink +=
                    static_cast<std::uint64_t>(payload.lane);
            });
        }
        queue.run();
        benchmark::DoNotOptimize(sink);
        total += queue.executedCount();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total));
    state.counters["events_per_sec"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kIsRate);
}

BENCHMARK_TEMPLATE(BM_Fig07Mix, NewTraits)->Name("des/fig07_mix/new");
BENCHMARK_TEMPLATE(BM_Fig07Mix, LegacyTraits)
    ->Name("des/fig07_mix/legacy");
BENCHMARK_TEMPLATE(BM_ScheduleRun, NewTraits)
    ->Name("des/schedule_run/new")
    ->Arg(100000);
BENCHMARK_TEMPLATE(BM_ScheduleRun, LegacyTraits)
    ->Name("des/schedule_run/legacy")
    ->Arg(100000);
BENCHMARK_TEMPLATE(BM_ScheduleRunSimnetCapture, NewTraits)
    ->Name("des/schedule_run_simnet_capture/new")
    ->Arg(100000);
BENCHMARK_TEMPLATE(BM_ScheduleRunSimnetCapture, LegacyTraits)
    ->Name("des/schedule_run_simnet_capture/legacy")
    ->Arg(100000);

/** Console output plus a copy of every per-iteration run. */
class CaptureReporter : public benchmark::ConsoleReporter
{
  public:
    std::vector<Run> runs;

    void
    ReportRuns(const std::vector<Run>& report) override
    {
        for (const Run& run : report) {
            if (run.run_type == Run::RT_Iteration &&
                !run.error_occurred)
                runs.push_back(run);
        }
        ConsoleReporter::ReportRuns(report);
    }
};

double
eventsPerSec(const benchmark::BenchmarkReporter::Run& run)
{
    const auto it = run.counters.find("events_per_sec");
    return it != run.counters.end() ? it->second.value : 0.0;
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    std::vector<util::BenchRecord> records;
    double fig07_new = 0.0;
    double fig07_legacy = 0.0;
    for (const auto& run : reporter.runs) {
        const std::string name = run.benchmark_name();
        util::BenchRecord record;
        record.source = "micro_des";
        record.kind = "des_throughput";
        // des/<mix>/<impl>[/<arg>]
        const std::size_t first = name.find('/');
        const std::size_t second = name.find('/', first + 1);
        const std::size_t third = name.find('/', second + 1);
        record.name = name.substr(first + 1, second - first - 1);
        record.mode = name.substr(
            second + 1,
            third == std::string::npos ? std::string::npos
                                       : third - second - 1);
        record.mode = record.mode == "new"
                          ? NewTraits::kName
                          : (record.mode == "legacy"
                                 ? LegacyTraits::kName
                                 : record.mode);
        record.ns_per_op =
            run.iterations > 0
                ? run.real_accumulated_time /
                      static_cast<double>(run.iterations) * 1e9
                : 0.0;
        record.extra["events_per_sec"] = eventsPerSec(run);
        records.push_back(record);
        if (record.name == "fig07_mix") {
            if (record.mode == NewTraits::kName)
                fig07_new = record.extra["events_per_sec"];
            else if (record.mode == LegacyTraits::kName)
                fig07_legacy = record.extra["events_per_sec"];
        }
    }
    if (fig07_new > 0.0 && fig07_legacy > 0.0) {
        util::BenchRecord speedup;
        speedup.source = "micro_des";
        speedup.kind = "des_speedup";
        speedup.name = "fig07_mix";
        speedup.mode = "new_over_legacy";
        speedup.extra["ratio"] = fig07_new / fig07_legacy;
        speedup.extra["new_events_per_sec"] = fig07_new;
        speedup.extra["legacy_events_per_sec"] = fig07_legacy;
        records.push_back(speedup);
        std::printf("\nfig07_mix events/sec: new %.3g, legacy %.3g, "
                    "speedup %.2fx\n",
                    fig07_new, fig07_legacy, fig07_new / fig07_legacy);
    }
    if (!records.empty()) {
        const std::string path =
            util::benchOutputPath("BENCH_sim.json");
        util::writeBenchRecords(path, records, /*append=*/true);
        std::fprintf(stderr, "wrote %zu records to %s\n",
                     records.size(), path.c_str());
    }
    return 0;
}
