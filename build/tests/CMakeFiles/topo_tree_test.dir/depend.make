# Empty dependencies file for topo_tree_test.
# This may be replaced when dependencies are built.
