#include "core/gradient_queue.h"

#include "util/logging.h"

namespace ccube {
namespace core {

GradientQueue::GradientQueue(std::vector<std::int64_t> layer_chunk_table)
    : layer_chunk_table_(std::move(layer_chunk_table))
{
    CCUBE_CHECK(!layer_chunk_table_.empty(),
                "layer-chunk table must not be empty");
    for (std::size_t i = 1; i < layer_chunk_table_.size(); ++i) {
        CCUBE_CHECK(layer_chunk_table_[i] >= layer_chunk_table_[i - 1],
                    "layer-chunk table must be non-decreasing");
    }
}

std::int64_t
GradientQueue::totalChunks() const
{
    return layer_chunk_table_.back();
}

void
GradientQueue::enqueueChunk()
{
    enqueue_semaphore_.post();
    CCUBE_CHECK(enqueue_semaphore_.value() <= totalChunks(),
                "more chunks enqueued than the table expects");
}

void
GradientQueue::dequeueLayer(int layer)
{
    CCUBE_CHECK(layer == layerIndexCounter(),
                "layers must be dequeued in order: asked for "
                    << layer << ", LIC is " << layerIndexCounter());
    // Paper's check(): wait until the enqueue semaphore reaches this
    // layer's last chunk offset from the Layer-Chunk Table.
    enqueue_semaphore_.check(layerChunkBound(layer));
    lic_.store(layer + 1, std::memory_order_release);
}

bool
GradientQueue::tryDequeueLayer(int layer)
{
    CCUBE_CHECK(layer == layerIndexCounter(),
                "layers must be dequeued in order");
    if (!enqueue_semaphore_.checkNow(layerChunkBound(layer)))
        return false;
    lic_.store(layer + 1, std::memory_order_release);
    return true;
}

std::int64_t
GradientQueue::layerChunkBound(int layer) const
{
    CCUBE_CHECK(layer >= 0 && layer < numLayers(),
                "bad layer index " << layer);
    return layer_chunk_table_[static_cast<std::size_t>(layer)];
}

void
GradientQueue::resetIteration()
{
    CCUBE_CHECK(layerIndexCounter() == numLayers() ||
                    layerIndexCounter() == 0,
                "reset mid-iteration");
    enqueue_semaphore_.reset();
    lic_.store(0, std::memory_order_release);
}

} // namespace core
} // namespace ccube
