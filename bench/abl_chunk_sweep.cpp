/**
 * @file
 * Ablation: chunk-count sweep around K_opt (Eq. (4)).
 *
 * The chunk count trades per-step latency overhead (K too large)
 * against pipeline granularity (K too small); Eq. (3) predicts a
 * U-shaped completion time minimized at K_opt = √(log P·βN/α). This
 * harness sweeps K for the overlapped double tree on the DGX-1 at
 * 64 MiB and marks the model's K_opt.
 */

#include <iostream>
#include <vector>

#include "core/ccube_engine.h"
#include "model/tree_model.h"
#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    using namespace ccube;

    std::cout << "=== Ablation: chunk count vs AllReduce time "
                 "(DGX-1, 64 MiB, overlapped double tree) ===\n\n";

    core::CCubeEngine engine(dnn::buildResnet50());
    const double bytes = util::mib(64);
    const model::TreeModel model(engine.scheduler().linkModel());
    const int kopt = model.optimalChunksInt(8, bytes / 2.0);

    util::Table table({"K_per_tree", "completion_ms", "bandwidth_GBps",
                       "note"});
    std::vector<int> chunk_counts;
    for (int k = 1; k <= 1024; k *= 2)
        chunk_counts.push_back(k);

    // One simulation per K through the sweep pool, each filling its
    // own slot; the winner scan and the table stay in K order.
    std::vector<simnet::ScheduleResult> results(chunk_counts.size());
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), chunk_counts.size(),
        [&](std::size_t i) {
            sim::Simulation sim;
            simnet::Network net(sim, engine.graph());
            results[i] = simnet::runDoubleTreeSchedule(
                sim, net, engine.doubleTree(), bytes,
                simnet::PhaseMode::kOverlapped, chunk_counts[i]);
        });

    double best_time = 1e99;
    int best_k = 0;
    for (std::size_t i = 0; i < chunk_counts.size(); ++i) {
        const int k = chunk_counts[i];
        const auto& result = results[i];
        if (result.completion_time < best_time) {
            best_time = result.completion_time;
            best_k = k;
        }
        table.addRow(
            {std::to_string(k),
             util::formatDouble(result.completion_time * 1e3, 3),
             util::formatDouble(result.effectiveBandwidth(bytes) / 1e9,
                                2),
             (k / 2 < kopt && kopt <= k) ? "<- model K_opt here" : ""});
    }
    table.print(std::cout);
    std::cout << "\nModel K_opt = " << kopt
              << " per tree; best measured K = " << best_k
              << ". Completion is U-shaped in K exactly as Eq. (3) "
                 "predicts.\n";
    return 0;
}
