#ifndef CCUBE_CCL_TUNER_H_
#define CCUBE_CCL_TUNER_H_

/**
 * @file
 * Auto-tuner: an NCCL-style selection table over
 * (algorithm × protocol × chunking) per message-size bucket.
 *
 * NCCL resolves "which algorithm/protocol should this collective use"
 * from tuning tables keyed by message size, topology and rank count;
 * this is the mini-CCL analog. The table is computed from the α-β
 * model (model::RingModel / TreeModel / OverlappedTreeModel with
 * model::applyProtocol for the LL/Simple cost shapes) against the
 * slowest NVLink channel of the physical topology, and cached per
 * (topology signature, P). Lookups after the first are a mutex-guarded
 * map find plus a bucket index — cheap enough to sit on the allReduce
 * dispatch path for Protocol::kAuto.
 *
 * Determinism: the model path never reads the wall clock, so tuner
 * tables are identical across runs and across sweep job counts.
 * Optional measurement refinement (CCUBE_TUNER_MEASURE=1) times the
 * candidate protocols on a scratch Communicator and overrides the
 * model's protocol pick; it is suppressed inside sweep tasks
 * (sweep::inSweepTask()) so `--jobs=N` can never perturb outputs.
 */

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ccl/primitives.h"
#include "model/alpha_beta.h"

namespace ccube {

namespace topo {
class Graph;
}

namespace ccl {

/** One selection-table cell: what to run for one size bucket. */
struct TunerChoice {
    AllReduceAlgorithm algorithm = AllReduceAlgorithm::kCCubeDoubleTree;
    Protocol protocol = Protocol::kSimple;
    int num_chunks = 8;        ///< per tree for tree algorithms
    double predicted_us = 0.0; ///< model-predicted completion time
};

/** Short display name: "ring", "tree", "overlapped_tree",
 *  "double_tree", "ccube_double_tree". */
const char* algorithmName(AllReduceAlgorithm algorithm);

/**
 * The process-wide selection-table cache.
 *
 * Thread-safe: every public method takes the internal mutex. Tables
 * are built eagerly on the first query for a (topology, P) pair —
 * 23 size buckets × 5 algorithms × 2 protocols of closed-form model
 * evaluations, microseconds of work.
 */
class Tuner
{
  public:
    /** The process-wide instance. */
    static Tuner& global();

    /**
     * Best (algorithm × protocol × chunking) for an AllReduce of
     * @p elems floats per rank on @p graph with @p p ranks.
     */
    TunerChoice choose(const topo::Graph& graph, int p,
                       std::size_t elems);

    /**
     * Best protocol for a *fixed* algorithm at this size — the hook
     * the allReduce dispatcher uses to resolve Protocol::kAuto while
     * honoring the caller's algorithm pick.
     */
    Protocol chooseProtocol(const topo::Graph& graph, int p,
                            std::size_t elems,
                            AllReduceAlgorithm algorithm);

    /**
     * Human-readable dump of the full selection table for
     * (@p graph, @p p): one row per size bucket with the per-algorithm
     * protocol picks and the overall best cell. CI archives this as
     * tuner_table.txt.
     */
    std::string formatTable(const topo::Graph& graph, int p);

    /** Drops every cached table (tests use this between topologies). */
    void clearCache();

  private:
    /** Per-bucket table entry. */
    struct Cell {
        /** Best protocol per algorithm, indexed by the enum value. */
        std::vector<Protocol> proto_by_alg;
        TunerChoice best;
        bool measured = false; ///< measurement refinement applied
    };
    struct Table {
        model::AlphaBeta link; ///< Simple-protocol channel model
        std::vector<Cell> buckets;
    };

    Table& tableFor(const topo::Graph& graph, int p);

    std::mutex mutex_;
    /** Keyed by (topology signature, P). */
    std::map<std::pair<std::string, int>, Table> cache_;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_TUNER_H_
