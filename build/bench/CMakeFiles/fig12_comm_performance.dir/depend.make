# Empty dependencies file for fig12_comm_performance.
# This may be replaced when dependencies are built.
