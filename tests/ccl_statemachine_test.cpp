/**
 * @file
 * Tests for the async state-machine rank runtime (state_machine.h):
 * byte-identical collective results across all three engine modes,
 * large-P functional runs on a handful of pool threads, concurrent
 * communicators multiplexed onto the shared engine, fault kill/stall
 * mid-park with correct watchdog blame, and the park/resume/steal
 * telemetry surfaced through obs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/executor.h"
#include "ccl/fault.h"
#include "ccl/overlapped_tree_allreduce.h"
#include "ccl/primitives.h"
#include "ccl/ring_allreduce.h"
#include "ccl/state_machine.h"
#include "ccl/tree_allreduce.h"
#include "obs/context.h"
#include "obs/monitor.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "util/rng.h"

namespace ccube {
namespace {

using namespace std::chrono_literals;
using ccl::RankExecutor;

constexpr int kChunks = 4;
constexpr int kSlots = 4;

/** DGX-1 topologies (P=8), as in ccl_executor_test. */
struct Dgx1Topologies {
    topo::Graph graph = topo::makeDgx1();
    topo::RingEmbedding ring = topo::findHamiltonianRing(graph, 8);
    topo::TreeEmbedding tree =
        topo::embedTree(graph, topo::BinaryTree::inorder(8));
    topo::DoubleTreeEmbedding double_tree =
        topo::makeDgx1DoubleTree(graph);
};

/**
 * Purely logical topologies at arbitrary P: every logical edge is a
 * direct route, so the protocol exercises mailboxes and ordering
 * without needing a physical graph of that size.
 */
struct LogicalTopologies {
    explicit LogicalTopologies(int ranks)
        : ring(topo::makeSequentialRing(ranks)),
          tree(topo::directEmbedding(topo::BinaryTree::inorder(ranks))),
          double_tree(
              topo::directEmbedding(topo::BinaryTree::inorder(ranks)),
              topo::directEmbedding(
                  topo::BinaryTree::inorder(ranks).mirrored()))
    {
    }

    topo::RingEmbedding ring;
    topo::TreeEmbedding tree;
    topo::DoubleTreeEmbedding double_tree;
};

ccl::RankBuffers
seededBuffers(int ranks, int elems, std::uint64_t seed)
{
    util::Rng rng(seed);
    ccl::RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (auto& b : buffers) {
        b.resize(static_cast<std::size_t>(elems));
        rng.fill(b, -1.0f, 1.0f);
    }
    return buffers;
}

/**
 * Integer-valued buffers: every element is a small integer, so every
 * partial sum at P ≤ 1024 is exactly representable in float and the
 * reduced result is independent of reduction order, bit for bit.
 */
ccl::RankBuffers
integerBuffers(int ranks, int elems)
{
    ccl::RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) {
        auto& b = buffers[static_cast<std::size_t>(r)];
        b.resize(static_cast<std::size_t>(elems));
        for (int i = 0; i < elems; ++i)
            b[static_cast<std::size_t>(i)] =
                static_cast<float>((r * 7 + i * 13) % 17 - 8);
    }
    return buffers;
}

/** Exact (order-independent) AllReduce expectation for integerBuffers. */
std::vector<float>
integerSums(int ranks, int elems)
{
    std::vector<float> expected(static_cast<std::size_t>(elems));
    for (int i = 0; i < elems; ++i) {
        long sum = 0;
        for (int r = 0; r < ranks; ++r)
            sum += (r * 7 + i * 13) % 17 - 8;
        expected[static_cast<std::size_t>(i)] =
            static_cast<float>(sum);
    }
    return expected;
}

void
expectBytesIdentical(const ccl::RankBuffers& got,
                     const ccl::RankBuffers& want, const char* what)
{
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t r = 0; r < got.size(); ++r) {
        ASSERT_EQ(got[r].size(), want[r].size()) << what;
        if (std::memcmp(got[r].data(), want[r].data(),
                        got[r].size() * sizeof(float)) != 0) {
            for (std::size_t i = 0; i < got[r].size(); ++i)
                ASSERT_EQ(got[r][i], want[r][i])
                    << what << ": rank " << r << " elem " << i
                    << " diverges between engine modes";
        }
    }
}

/** One collective body, run identically under every engine mode. */
struct Scenario {
    const char* name;
    std::function<void(ccl::Communicator&, ccl::RankBuffers&)> run;
};

/**
 * Runs @p scenario once per engine mode on fresh communicators and
 * identical seeded inputs, and requires the resulting buffers of every
 * mode to be byte-identical to the thread-per-rank reference.
 */
void
expectModesAgree(int ranks, int elems, const Scenario& scenario,
                 const std::vector<RankExecutor::Mode>& modes,
                 std::uint64_t seed)
{
    ccl::RankBuffers reference = seededBuffers(ranks, elems, seed);
    {
        ccl::Communicator comm(ranks, kSlots,
                               RankExecutor::Mode::kPersistent);
        scenario.run(comm, reference);
    }
    for (RankExecutor::Mode mode : modes) {
        ccl::RankBuffers buffers = seededBuffers(ranks, elems, seed);
        ccl::Communicator comm(ranks, kSlots, mode);
        ASSERT_EQ(comm.engineMode(), mode);
        scenario.run(comm, buffers);
        expectBytesIdentical(buffers, reference, scenario.name);
    }
}

// --------------------------- cross-engine byte identity (DGX-1, P=8)

std::vector<Scenario>
dgx1Scenarios(const Dgx1Topologies& topo)
{
    return {
        {"ring_allreduce",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::ringAllReduce(c, b, topo.ring);
         }},
        {"tree_allreduce_two_phase",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::treeAllReduce(c, b, topo.tree, kChunks,
                                ccl::TreePhaseMode::kTwoPhase);
         }},
        {"tree_allreduce_overlapped",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::overlappedTreeAllReduce(c, b, topo.tree, kChunks);
         }},
        {"double_tree_overlapped",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::doubleTreeAllReduce(c, b, topo.double_tree, kChunks,
                                      ccl::TreePhaseMode::kOverlapped);
         }},
        {"double_tree_two_phase",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::doubleTreeAllReduce(c, b, topo.double_tree, kChunks,
                                      ccl::TreePhaseMode::kTwoPhase);
         }},
        {"tree_broadcast",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::treeBroadcast(c, b, topo.tree, kChunks);
         }},
        {"tree_reduce",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::treeReduce(c, b, topo.tree, kChunks);
         }},
        {"ring_reduce_scatter",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::ringReduceScatter(c, b, topo.ring);
         }},
        {"ring_all_gather",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::ringAllGather(c, b, topo.ring);
         }},
    };
}

TEST(StateMachineByteIdentity, AllCollectivesAllEnginesOnDgx1)
{
    const Dgx1Topologies topo;
    const std::vector<RankExecutor::Mode> modes = {
        RankExecutor::Mode::kSpawnPerCall,
        RankExecutor::Mode::kStateMachine,
    };
    std::uint64_t seed = 101;
    for (const Scenario& scenario : dgx1Scenarios(topo))
        expectModesAgree(8, 64, scenario, modes, seed++);
}

// ----------------------------- cross-engine byte identity at P = 64

TEST(StateMachineByteIdentity, LogicalTopologiesAtSixtyFourRanks)
{
    constexpr int kRanks = 64;
    const LogicalTopologies topo(kRanks);
    const std::vector<RankExecutor::Mode> modes = {
        RankExecutor::Mode::kStateMachine,
    };
    const std::vector<Scenario> scenarios = {
        {"ring_allreduce_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::ringAllReduce(c, b, topo.ring);
         }},
        {"tree_allreduce_two_phase_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::treeAllReduce(c, b, topo.tree, kChunks,
                                ccl::TreePhaseMode::kTwoPhase);
         }},
        {"tree_allreduce_overlapped_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::overlappedTreeAllReduce(c, b, topo.tree, kChunks);
         }},
        {"double_tree_p64",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::doubleTreeAllReduce(c, b, topo.double_tree, kChunks,
                                      ccl::TreePhaseMode::kOverlapped);
         }},
    };
    std::uint64_t seed = 201;
    for (const Scenario& scenario : scenarios)
        expectModesAgree(kRanks, 128, scenario, modes, seed++);
}

// --------------------------------- large P on a handful of threads

TEST(StateMachineScaling, TwoHundredFiftySixRanksExactSums)
{
    // 256 functional ranks on the shared pool — far more tasks than
    // workers, so the run exercises park/resume heavily. Inputs are
    // integer-valued, making the expected sums exact in float
    // regardless of reduction order (and therefore equal to what any
    // engine mode computes, bit for bit).
    constexpr int kRanks = 256;
    constexpr int kElems = 256;
    const LogicalTopologies topo(kRanks);
    const std::vector<float> expected = integerSums(kRanks, kElems);
    ccl::StateMachineEngine& engine = ccl::StateMachineEngine::shared();
    const std::uint64_t parks_before = engine.parks();
    const std::uint64_t steps_before = engine.stepsExecuted();

    const std::vector<Scenario> scenarios = {
        {"ring_allreduce_p256",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::ringAllReduce(c, b, topo.ring);
         }},
        {"double_tree_p256",
         [&topo](ccl::Communicator& c, ccl::RankBuffers& b) {
             ccl::doubleTreeAllReduce(c, b, topo.double_tree, 2,
                                      ccl::TreePhaseMode::kOverlapped);
         }},
    };
    for (const Scenario& scenario : scenarios) {
        ccl::RankBuffers buffers = integerBuffers(kRanks, kElems);
        ccl::Communicator comm(kRanks, kSlots,
                               RankExecutor::Mode::kStateMachine);
        scenario.run(comm, buffers);
        for (int r = 0; r < kRanks; ++r)
            for (int i = 0; i < kElems; ++i)
                ASSERT_EQ(buffers[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(i)],
                          expected[static_cast<std::size_t>(i)])
                    << scenario.name << ": rank " << r << " elem "
                    << i;
    }

    // With 256+ tasks on a handful of workers, tasks must have parked
    // (blocked ops with a busy pool skip the spin fast path).
    EXPECT_GT(engine.parks(), parks_before);
    EXPECT_GT(engine.stepsExecuted(), steps_before);
    EXPECT_GE(engine.workerCount(), 1);
}

// --------------------- concurrent communicators share one engine

TEST(StateMachineEngineSharing, ConcurrentCommunicatorsOneSharedPool)
{
    constexpr int kRanks = 16;
    constexpr int kElems = 64;
    constexpr int kClients = 4;
    constexpr int kIters = 2;
    const LogicalTopologies topo(kRanks);
    ccl::StateMachineEngine& engine = ccl::StateMachineEngine::shared();
    const int workers_before = engine.workerCount();
    const std::uint64_t steps_before = engine.stepsExecuted();
    const std::vector<float> expected = integerSums(kRanks, kElems);

    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&topo, &expected, &failures]() {
            ccl::Communicator comm(
                kRanks, kSlots, RankExecutor::Mode::kStateMachine);
            for (int iter = 0; iter < kIters; ++iter) {
                ccl::RankBuffers buffers =
                    integerBuffers(kRanks, kElems);
                ccl::overlappedTreeAllReduce(comm, buffers, topo.tree,
                                             kChunks);
                for (int r = 0; r < kRanks; ++r)
                    for (int i = 0; i < kElems; ++i)
                        if (buffers[static_cast<std::size_t>(r)]
                                   [static_cast<std::size_t>(i)] !=
                            expected[static_cast<std::size_t>(i)])
                            failures.fetch_add(1);
            }
        });
    }
    for (std::thread& t : clients)
        t.join();

    EXPECT_EQ(failures.load(), 0);
    // All batches multiplexed onto the same pool: no thread growth.
    EXPECT_EQ(engine.workerCount(), workers_before);
    EXPECT_GT(engine.stepsExecuted(), steps_before);
}

// -------------------------------------- faults in state-machine mode

class StateMachineFault : public ::testing::Test
{
  protected:
    static constexpr int kRanks = 16;
    static constexpr int kElems = 64;
    static constexpr auto kDeadline = 300ms;

    /**
     * Arms @p fault on a state-machine communicator, requires the
     * tree AllReduce to surface a CollectiveError blaming the faulted
     * rank, then verifies clearAbort() makes the communicator (and
     * the shared pool) fully usable again.
     */
    void expectAbortAndRecovery(const ccl::FaultInjector::Fault& fault)
    {
        const LogicalTopologies topo(kRanks);
        ccl::Communicator comm(kRanks, kSlots,
                               RankExecutor::Mode::kStateMachine);
        comm.setDeadline(kDeadline);
        ccl::FaultInjector injector;
        injector.arm(fault);
        comm.setFaultInjector(&injector);

        ccl::RankBuffers buffers = integerBuffers(kRanks, kElems);
        bool caught = false;
        try {
            ccl::treeAllReduce(comm, buffers, topo.tree, kChunks,
                               ccl::TreePhaseMode::kTwoPhase);
        } catch (const ccl::CollectiveError& error) {
            caught = true;
            EXPECT_EQ(error.info().failed_rank, fault.rank);
            EXPECT_EQ(error.info().op, "tree_allreduce");
            EXPECT_GT(error.info().deadline_s, 0.0);
        }
        EXPECT_TRUE(caught) << "collective completed despite fault";

        // Poisoned until cleared; then a clean retry must succeed.
        EXPECT_THROW(ccl::treeAllReduce(comm, buffers, topo.tree,
                                        kChunks,
                                        ccl::TreePhaseMode::kTwoPhase),
                     ccl::CollectiveError);
        comm.clearAbort();
        comm.setFaultInjector(nullptr);
        ccl::RankBuffers retry = integerBuffers(kRanks, kElems);
        ccl::treeAllReduce(comm, retry, topo.tree, kChunks,
                           ccl::TreePhaseMode::kTwoPhase);
        const std::vector<float> expected =
            integerSums(kRanks, kElems);
        for (int r = 0; r < kRanks; ++r)
            for (int i = 0; i < kElems; ++i)
                ASSERT_EQ(retry[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(i)],
                          expected[static_cast<std::size_t>(i)]);
    }
};

TEST_F(StateMachineFault, KilledRankAbortsParkedPeersAndIsBlamed)
{
    ccl::FaultInjector::Fault fault;
    fault.rank = 5;
    fault.action = ccl::FaultInjector::Action::kKill;
    fault.at_op = 2;
    expectAbortAndRecovery(fault);
}

TEST_F(StateMachineFault, StalledRankWedgesAWorkerAndIsBlamed)
{
    // The stall wedges one pool worker inside the injected op until
    // the watchdog trips the abort epoch; the sweep must then wake
    // every parked peer task so the batch unwinds.
    ccl::FaultInjector::Fault fault;
    fault.rank = 9;
    fault.action = ccl::FaultInjector::Action::kStall;
    fault.at_op = 3;
    expectAbortAndRecovery(fault);
}

// ------------------------------------------------------- telemetry

TEST(StateMachineTelemetry, ParkResumeCountersReachObs)
{
    constexpr int kRanks = 64;
    const LogicalTopologies topo(kRanks);
    obs::RankCounters& counters = obs::RankCounters::global();
    counters.reset();
    ccl::StateMachineEngine& engine = ccl::StateMachineEngine::shared();
    const std::uint64_t parks_before = engine.parks();
    const std::uint64_t resumes_before = engine.resumes();

    ccl::Communicator comm(kRanks, kSlots,
                           RankExecutor::Mode::kStateMachine);
    ccl::RankBuffers buffers = integerBuffers(kRanks, 128);
    ccl::ringAllReduce(comm, buffers, topo.ring);

    // 64 ranks on a handful of workers: parks are certain, and every
    // successful park is eventually resumed exactly once.
    EXPECT_GT(engine.parks(), parks_before);
    EXPECT_GT(engine.resumes(), resumes_before);
    EXPECT_EQ(engine.parkedNow(), 0);
    EXPECT_GT(counters.totalSmParks(), 0u);
    EXPECT_GT(counters.totalSmResumes(), 0u);
}

TEST(StateMachineTelemetry, EngineGaugesAppearInMonitorSnapshots)
{
    constexpr int kRanks = 16;
    const LogicalTopologies topo(kRanks);
    // Force the shared engine (and its gauge registration on the
    // global monitor) to exist before enabling snapshots.
    ccl::StateMachineEngine& engine = ccl::StateMachineEngine::shared();
    obs::Monitor& monitor = obs::Monitor::global();
    monitor.clear();
    monitor.enable();

    ccl::Communicator comm(kRanks, kSlots,
                           RankExecutor::Mode::kStateMachine);
    ccl::RankBuffers buffers = integerBuffers(kRanks, 64);
    ccl::ringAllReduce(comm, buffers, topo.ring);
    monitor.disable();

    const auto snapshots = monitor.snapshots();
    ASSERT_FALSE(snapshots.empty());
    bool saw_workers = false;
    bool saw_parks = false;
    for (const auto& [name, value] : snapshots.back().values) {
        if (name == "ccl.sm.workers") {
            saw_workers = true;
            EXPECT_EQ(value,
                      static_cast<double>(engine.workerCount()));
        }
        if (name == "ccl.sm.parks") {
            saw_parks = true;
            EXPECT_GT(value, 0.0);
        }
    }
    EXPECT_TRUE(saw_workers);
    EXPECT_TRUE(saw_parks);
    monitor.clear();
}

} // namespace
} // namespace ccube
