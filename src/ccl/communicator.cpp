#include "ccl/communicator.h"

#include <cstdlib>
#include <exception>
#include <sstream>
#include <string>
#include <thread>

#include "ccl/state_machine.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

Communicator::Communicator(int num_ranks, int mailbox_slots,
                           RankExecutor::Mode exec_mode)
    : num_ranks_(num_ranks),
      mailbox_slots_(mailbox_slots),
      exec_mode_(exec_mode),
      table_(static_cast<std::size_t>(num_ranks) *
             static_cast<std::size_t>(num_ranks) * kMaxFlows),
      fault_(num_ranks)
{
    CCUBE_CHECK(num_ranks >= 1, "need at least one rank");
    CCUBE_CHECK(mailbox_slots >= 1, "need at least one mailbox slot");
    for (auto& entry : table_)
        entry.store(nullptr, std::memory_order_relaxed);
}

Communicator::~Communicator() = default;

std::size_t
Communicator::tableIndex(int src, int dst, FlowId flow) const
{
    return (static_cast<std::size_t>(src) *
                static_cast<std::size_t>(num_ranks_) +
            static_cast<std::size_t>(dst)) *
               kMaxFlows +
           static_cast<std::size_t>(flow);
}

Mailbox&
Communicator::mailbox(int src, int dst, FlowId flow)
{
    CCUBE_CHECK(src >= 0 && src < num_ranks_, "bad src rank " << src);
    CCUBE_CHECK(dst >= 0 && dst < num_ranks_, "bad dst rank " << dst);
    CCUBE_CHECK(src != dst, "no self mailboxes");
    CCUBE_CHECK(flow >= 0 && flow < kMaxFlows,
                "flow id " << flow << " out of range (max "
                           << kMaxFlows - 1 << ")");
    std::atomic<Mailbox*>& entry = table_[tableIndex(src, dst, flow)];
    // Fast path: one acquire load on an already-built channel.
    if (Mailbox* box = entry.load(std::memory_order_acquire))
        return *box;
    std::lock_guard<std::mutex> guard(create_mutex_);
    if (Mailbox* box = entry.load(std::memory_order_acquire))
        return *box;
    owned_.push_back(std::make_unique<Mailbox>(mailbox_slots_));
    Mailbox* box = owned_.back().get();
    box->setTraceLabel("mb " + std::to_string(src) + "->" +
                       std::to_string(dst) + "/f" +
                       std::to_string(flow));
    box->setFlowId(flow);
    box->setEndpoints(src, dst);
    entry.store(box, std::memory_order_release);
    return *box;
}

RankExecutor&
Communicator::executor()
{
    std::call_once(executor_once_, [this]() {
        executor_ =
            std::make_unique<RankExecutor>(num_ranks_, exec_mode_);
    });
    return *executor_;
}

std::chrono::nanoseconds
Communicator::defaultDeadline()
{
    static const std::chrono::nanoseconds deadline = []() {
        const char* env = std::getenv("CCUBE_CCL_DEADLINE_MS");
        if (env == nullptr)
            return std::chrono::nanoseconds{0};
        const long ms = std::strtol(env, nullptr, 10);
        if (ms <= 0)
            return std::chrono::nanoseconds{0};
        return std::chrono::nanoseconds{
            std::chrono::milliseconds{ms}};
    }();
    return deadline;
}

void
Communicator::setDeadline(std::chrono::nanoseconds deadline)
{
    deadline_ = deadline;
}

void
Communicator::setFaultInjector(FaultInjector* injector)
{
    fault_.setInjector(injector);
}

void
Communicator::abort(CollectiveError::Info info)
{
    if (info.op.empty())
        info.op = fault_.currentOp();
    if (!fault_.abortState().trip(std::move(info)))
        return; // already aborted this generation
    const CollectiveError::Info& stored = fault_.abortState().info();
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        // Carry the wait-for chain verdict on the abort instant so
        // post-mortem analysis (obs::diff) can name the chain
        // terminus, not just the blamed channel endpoint.
        obs::TraceEvent event;
        event.name = "ccl.abort";
        event.cat = "ccl.fault";
        event.phase = 'i';
        event.pid = obs::pids::cclRank(stored.failed_rank);
        event.tid = 0;
        event.ts_us = recorder.wallNowUs();
        if (stored.chain_terminus >= 0) {
            event.args.emplace_back(
                "terminus",
                static_cast<double>(stored.chain_terminus));
            event.args.emplace_back(
                "chain_len", static_cast<double>(stored.chain_len));
        }
        recorder.record(std::move(event));
    }
    if (!stored.stall_chain.empty())
        util::logWarn("ccl", formatStallReport(stored));
    obs::MetricRegistry::global().addCounter("ccl.aborts", 1.0);
    obs::Monitor& monitor = obs::Monitor::global();
    if (monitor.enabled())
        monitor.noteWatchdogTrip(stored.failed_rank);
    std::ostringstream msg;
    msg << "aborting collective: " << CollectiveError(stored).what();
    util::logWarn("ccl", msg.str());
}

void
Communicator::setClearAbortHook(std::function<void()> hook)
{
    clear_abort_hook_ = std::move(hook);
}

void
Communicator::clearAbort()
{
    // By the time an abort surfaces, run() has joined every rank and
    // helper, so the mailboxes are quiescent — but they may still hold
    // chunks the dead collective posted and never consumed. Flush them
    // so the next collective starts from a clean channel state.
    //
    // The flush-then-clear pair is epoch-checked: capture the epoch
    // AND the trip-attempt count, flush, and clear only if that exact
    // generation is still live and untouched. An abort() racing in
    // between (it is callable from any thread) either advances the
    // epoch or — when it loses first-trip-wins on the already-tripped
    // generation — bumps the attempt count; both fail the conditional
    // clear and the loop flushes again. clearAbort() never retires a
    // generation it did not flush for, and never leaves a stale
    // tripped generation behind.
    for (;;) {
        const std::uint64_t observed_attempts =
            fault_.abortState().tripAttempts();
        const std::uint64_t observed = fault_.abortState().epoch();
        {
            std::lock_guard<std::mutex> guard(create_mutex_);
            for (const std::unique_ptr<Mailbox>& box : owned_)
                box->reset();
        }
        if (clear_abort_hook_)
            clear_abort_hook_();
        if (fault_.abortState().clearIfEpoch(observed,
                                             observed_attempts))
            return;
    }
}

namespace {

/** One counter per (protocol) so traces/benchmarks can confirm which
 *  wire protocol a collective actually ran (the tuner's pick under
 *  kAuto is otherwise invisible from outside). */
void
noteProtocol(Protocol proto)
{
    obs::MetricRegistry::global().addCounter(
        std::string("ccl.proto.") + protocolName(proto), 1.0);
}

} // namespace

void
Communicator::run(const std::function<void(int rank)>& body,
                  const char* op, Protocol proto)
{
    noteProtocol(proto);
    runEnvelope(op, [this, &body]() {
        executor().run([this, &body](int rank) {
            // Rank bodies (and, transitively, the helpers they submit)
            // observe this communicator's abort epoch.
            ScopedFaultContext fault_scope(&fault_);
            body(rank);
        });
    });
}

void
Communicator::runTasks(std::vector<std::unique_ptr<RankTask>> tasks,
                       const char* op, Protocol proto)
{
    noteProtocol(proto);
    // The engine installs the fault context itself around every step
    // (tasks migrate across pool workers, so a thread-scoped guard
    // here would cover the wrong threads).
    runEnvelope(op, [this, &tasks]() {
        StateMachineEngine::shared().run(std::move(tasks), &fault_);
    });
}

void
Communicator::runEnvelope(const char* op,
                          const std::function<void()>& launch)
{
    // A tripped epoch poisons the communicator until clearAbort(),
    // mirroring NCCL's post-abort semantics.
    if (fault_.abortState().aborted())
        throw CollectiveError(fault_.abortState().info());

    fault_.beginCollective(op);

    // Live-monitor collective edge: wall-clock latency of the whole
    // collective (all ranks), fed to the SLO engine. Run ordinal 0
    // marks wall-clock (non-deterministic) series entries.
    obs::Monitor& monitor = obs::Monitor::global();
    const bool monitored = monitor.enabled();
    const auto wall_start = std::chrono::steady_clock::now();

    CommWatchdog* watchdog = nullptr;
    const std::chrono::nanoseconds deadline = deadline_;
    if (deadline.count() > 0) {
        std::call_once(watchdog_once_, [this]() {
            watchdog_ = std::make_unique<CommWatchdog>();
        });
        watchdog = watchdog_.get();
        const double deadline_s =
            std::chrono::duration<double>(deadline).count();
        watchdog->arm(deadline, [this, deadline_s]() {
            // Watchdog thread: snapshot progress, blame the slowest
            // (or injector-killed) rank, trip the epoch so every
            // bounded spin unblocks.
            abort(fault_.deadlineInfo(deadline_s));
        });
    }

    std::exception_ptr err;
    try {
        launch();
    } catch (...) {
        err = std::current_exception();
    }

    if (watchdog != nullptr)
        watchdog->disarm(); // blocks out an in-flight expiry callback
    fault_.endCollective();

    if (monitored) {
        const std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - wall_start;
        const bool completed =
            !fault_.abortState().aborted() && err == nullptr;
        monitor.collectiveComplete(op, 0.0, wall.count(), 0.0,
                                   completed);
    }

    // Abort wins over the underlying exception (which is typically the
    // AbortedWait/RankKilled that the abort itself provoked): callers
    // get one structured error with the blame attached.
    if (fault_.abortState().aborted())
        throw CollectiveError(fault_.abortState().info());
    if (err)
        std::rethrow_exception(err);
}

void
Communicator::barrier()
{
    obs::ScopedSpan span("barrier", "ccl.sync",
                         obs::pids::cclRank(obs::threadRank()),
                         obs::threadTrack());
    const int sense = barrier_sense_.load(std::memory_order_acquire);
    if (barrier_count_.fetch_add(1, std::memory_order_acq_rel) ==
        num_ranks_ - 1) {
        barrier_count_.store(0, std::memory_order_relaxed);
        barrier_sense_.store(1 - sense, std::memory_order_release);
    } else {
        while (barrier_sense_.load(std::memory_order_acquire) ==
               sense) {
            abortPoll(); // a dead peer must not wedge the barrier
            std::this_thread::yield();
        }
    }
}

} // namespace ccl
} // namespace ccube
