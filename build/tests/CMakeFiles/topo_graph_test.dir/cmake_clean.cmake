file(REMOVE_RECURSE
  "CMakeFiles/topo_graph_test.dir/topo_graph_test.cpp.o"
  "CMakeFiles/topo_graph_test.dir/topo_graph_test.cpp.o.d"
  "topo_graph_test"
  "topo_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
