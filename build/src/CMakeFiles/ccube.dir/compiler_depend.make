# Empty compiler generated dependencies file for ccube.
# This may be replaced when dependencies are built.
