#ifndef CCUBE_UTIL_SPIN_WAIT_H_
#define CCUBE_UTIL_SPIN_WAIT_H_

/**
 * @file
 * util::SpinWait — the one bounded-spin backoff policy of the runtime.
 *
 * Every blocking loop in ccl:: used to hand-roll the same three-part
 * dance: poll the abort epoch every N iterations, relax the CPU while
 * the wait is young, and yield to the OS scheduler once it is not.
 * Four copies of that loop drifted apart (different poll cadences,
 * different yield points); this header is the single implementation
 * they now share, so the abort-epoch poll cadence lives in exactly one
 * place.
 *
 * The ladder, per blocked iteration:
 *
 *   rounds 1..kRelaxRounds        cpu-relax (PAUSE) in growing bursts
 *   rounds kRelaxRounds+1..∞      std::this_thread::yield()
 *   every kPollInterval rounds    invoke the caller's poll hook
 *                                 (ccl:: passes abortPoll, which
 *                                 throws AbortedWait on a tripped
 *                                 epoch)
 *
 * On a single-hardware-thread machine the relax rungs are skipped
 * entirely: the awaited condition can only change after the OS runs
 * the peer thread, so anything but an immediate yield just delays it.
 *
 * The state-machine runtime adds a fourth rung: after kParkThreshold
 * rounds a resumable task should stop spinning and park on a waiter
 * registration instead (see ccl/state_machine.h). shouldPark() is
 * that cutover test; thread-per-rank callers simply never ask.
 */

#include <cstdint>
#include <thread>

namespace ccube {
namespace util {

/** Architecture CPU-relax hint (PAUSE / YIELD), no-op elsewhere. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    // No hint instruction: fall through (the caller's ladder still
    // yields once the relax rounds are exhausted).
#endif
}

/**
 * One blocked wait's backoff state. Construct fresh per logical wait;
 * call once(poll) every iteration the condition is still false.
 */
class SpinWait
{
  public:
    /** Poll-hook cadence (was SpinLock::kAbortPollInterval). */
    static constexpr std::uint64_t kPollInterval = 64;

    /** Rounds of PAUSE bursts before falling back to yield. */
    static constexpr std::uint64_t kRelaxRounds = 16;

    /** Rounds after which a resumable caller should park instead of
     *  continuing to spin (the small-message fast path stays pure
     *  spin below this). */
    static constexpr std::uint64_t kParkThreshold = 256;

    /**
     * One backoff step: runs @p poll every kPollInterval rounds (the
     * hook may throw — ccl:: passes abortPoll), then relaxes or
     * yields according to the ladder.
     */
    template <typename PollFn>
    void once(PollFn&& poll)
    {
        ++rounds_;
        if (rounds_ % kPollInterval == 0)
            poll();
        if (rounds_ <= kRelaxRounds && multicore()) {
            // Growing PAUSE burst: 1, 2, 4, ... capped at 32 hints.
            const std::uint64_t burst =
                rounds_ < 6 ? (std::uint64_t{1} << rounds_) : 32;
            for (std::uint64_t i = 0; i < burst; ++i)
                cpuRelax();
        } else {
            std::this_thread::yield();
        }
    }

    /** Backoff steps taken so far (feeds CAS-retry telemetry). */
    std::uint64_t rounds() const { return rounds_; }

    /** True once a resumable caller should park rather than spin. */
    bool shouldPark() const { return rounds_ >= kParkThreshold; }

  private:
    /** Whether PAUSE can ever help (a second hardware thread exists). */
    static bool multicore()
    {
        static const bool multi =
            std::thread::hardware_concurrency() > 1;
        return multi;
    }

    std::uint64_t rounds_ = 0;
};

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_SPIN_WAIT_H_
