#ifndef CCUBE_TOPO_DETOUR_ROUTER_H_
#define CCUBE_TOPO_DETOUR_ROUTER_H_

/**
 * @file
 * Static detour forwarding rules (§IV-A).
 *
 * The paper implements detour routes as dedicated CUDA kernels that
 * statically forward data through an intermediate GPU — one kernel per
 * direction. This header extracts those forwarding rules from a tree
 * embedding so that (a) the GPU model can charge the SM tax on transit
 * nodes (Fig. 15) and (b) tests can verify detours never touch the
 * host (DESIGN.md invariant #7).
 */

#include <mutex>
#include <vector>

#include "topo/double_tree.h"
#include "topo/graph.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace topo {

/** Direction of a collective phase along a tree edge. */
enum class PhaseDirection {
    kReduction, ///< child → parent (up the tree)
    kBroadcast, ///< parent → child (down the tree)
};

/**
 * One static forwarding rule: @p transit receives from @p upstream and
 * forwards to @p downstream on behalf of tree @p tree_index during the
 * given phase. Maps 1:1 onto the paper's per-direction forwarding
 * kernels.
 */
struct ForwardingRule {
    NodeId transit = kInvalidNode;
    NodeId upstream = kInvalidNode;
    NodeId downstream = kInvalidNode;
    int tree_index = 0;
    PhaseDirection phase = PhaseDirection::kReduction;

    bool
    operator==(const ForwardingRule& other) const
    {
        return transit == other.transit && upstream == other.upstream &&
               downstream == other.downstream &&
               tree_index == other.tree_index && phase == other.phase;
    }
};

/** Extracts forwarding rules from a single embedded tree. */
std::vector<ForwardingRule>
extractForwardingRules(const TreeEmbedding& embedding, int tree_index);

/**
 * Per-embedding cache of extracted forwarding rules, one entry per
 * supported tree index. Owned (shared) by TreeEmbedding; built at most
 * once per index via cachedForwardingRules() (thread-safe).
 */
struct ForwardingRuleCache {
    static constexpr int kMaxTreeIndex = 2;
    std::once_flag once[kMaxTreeIndex];
    std::vector<ForwardingRule> rules[kMaxTreeIndex];
};

/**
 * The forwarding rules of @p embedding for @p tree_index, computed on
 * first call and cached on the embedding afterwards — collectives call
 * this per invocation (and per rank) without recomputing the route
 * scan. The reference stays valid as long as any copy of the embedding
 * lives.
 */
const std::vector<ForwardingRule>&
cachedForwardingRules(const TreeEmbedding& embedding, int tree_index);

/** Extracts forwarding rules from both trees of a double tree. */
std::vector<ForwardingRule>
extractForwardingRules(const DoubleTreeEmbedding& embedding);

/** Distinct transit nodes appearing in @p rules. */
std::vector<NodeId> transitNodes(const std::vector<ForwardingRule>& rules);

/**
 * True when every route in the embedding uses NVLink channels only
 * (never the host / PCIe), segment by segment.
 */
bool routesAvoidHost(const Graph& graph, const TreeEmbedding& embedding);

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_DETOUR_ROUTER_H_
