#include "ccl/tree_allreduce.h"

#include <string>
#include <thread>
#include <vector>

#include "obs/context.h"
#include "obs/trace.h"
#include "topo/detour_router.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

using topo::NodeId;
using topo::PhaseDirection;
using topo::Route;

/**
 * Forwarding loop of one static detour rule: receive each chunk from
 * upstream and pass it downstream unchanged — the software analog of
 * the paper's per-direction forwarding kernels.
 */
void
forwardLoop(Communicator& comm, const topo::ForwardingRule& rule,
            FlowId flow, int num_chunks)
{
    obs::ScopedSpan span("tree.forward " +
                             std::to_string(rule.upstream) + "->" +
                             std::to_string(rule.downstream),
                         "ccl.allreduce",
                         obs::pids::cclRank(rule.transit),
                         obs::threadTrack());
    Mailbox& in = comm.mailbox(rule.upstream, rule.transit, flow);
    Mailbox& out = comm.mailbox(rule.transit, rule.downstream, flow);
    std::vector<float> payload;
    for (int c = 0; c < num_chunks; ++c) {
        const int tag = in.recv(payload);
        out.send(payload, tag);
    }
}

} // namespace

namespace detail {

void
treeRankBody(Communicator& comm, int rank, std::span<float> buffer,
             const topo::TreeEmbedding& embedding, const ChunkSplit& split,
             TreePhaseMode mode, TreeFlowIds flows, AllReduceTrace& trace,
             int chunk_id_offset)
{
    const topo::BinaryTree& tree = embedding.tree;
    const int num_chunks = split.count();
    const bool is_root = tree.root() == rank;

    // Detour forwarding kernels hosted on this rank, one thread per
    // rule; each handles exactly num_chunks chunks.
    std::vector<std::thread> forwarders;
    for (const topo::ForwardingRule& rule :
         topo::extractForwardingRules(embedding, /*tree_index=*/0)) {
        if (rule.transit != rank)
            continue;
        const FlowId flow = rule.phase == PhaseDirection::kReduction
                                ? flows.reduce
                                : flows.broadcast;
        forwarders.emplace_back(
            [&comm, rule, flow, num_chunks]() {
                obs::setThreadRank(rule.transit);
                obs::labelThread(("rank" +
                                  std::to_string(rule.transit) +
                                  "/forward")
                                     .c_str());
                forwardLoop(comm, rule, flow, num_chunks);
            });
    }

    // Hop adjacent to this rank on the route to/from its parent.
    NodeId parent_hop = topo::kInvalidNode;
    if (!is_root) {
        const Route& route = embedding.routeToChild(rank);
        parent_hop = route.hops[route.hops.size() - 2];
    }
    // Hop adjacent to this rank on the route to each child.
    const std::vector<NodeId>& children = tree.children(rank);
    std::vector<NodeId> child_hops;
    for (NodeId child : children)
        child_hops.push_back(embedding.routeToChild(child).hops[1]);

    auto broadcast_to_children = [&](int chunk) {
        const std::span<const float> data =
            split.slice(std::span<const float>(buffer), chunk);
        for (std::size_t i = 0; i < children.size(); ++i) {
            comm.mailbox(rank, child_hops[i], flows.broadcast)
                .send(data, chunk);
        }
    };

    // Reduction role: accumulate children, pass up (or, at the root,
    // record completion and — when overlapped — start the broadcast).
    auto reduction_role = [&]() {
        obs::ScopedSpan span("tree.reduce", "ccl.allreduce",
                             obs::pids::cclRank(rank),
                             obs::threadTrack());
        for (int c = 0; c < num_chunks; ++c) {
            for (std::size_t i = 0; i < children.size(); ++i) {
                const int tag =
                    comm.mailbox(child_hops[i], rank, flows.reduce)
                        .recvReduce(split.slice(buffer, c));
                CCUBE_CHECK(tag == c, "reduction chunk out of order");
            }
            if (!is_root) {
                comm.mailbox(rank, parent_hop, flows.reduce)
                    .send(split.slice(std::span<const float>(buffer), c),
                          c);
            } else {
                trace.record(rank, chunk_id_offset + c);
                if (mode == TreePhaseMode::kOverlapped)
                    broadcast_to_children(c);
            }
        }
    };

    // Broadcast role of a non-root: receive from the parent, record,
    // and forward down.
    auto broadcast_role = [&]() {
        obs::ScopedSpan span("tree.broadcast", "ccl.allreduce",
                             obs::pids::cclRank(rank),
                             obs::threadTrack());
        for (int c = 0; c < num_chunks; ++c) {
            const int tag =
                comm.mailbox(parent_hop, rank, flows.broadcast)
                    .recvInto(split.slice(buffer, c));
            CCUBE_CHECK(tag == c, "broadcast chunk out of order");
            trace.record(rank, chunk_id_offset + c);
            broadcast_to_children(c);
        }
    };

    if (is_root) {
        reduction_role();
        if (mode == TreePhaseMode::kTwoPhase) {
            for (int c = 0; c < num_chunks; ++c)
                broadcast_to_children(c);
        }
    } else if (mode == TreePhaseMode::kTwoPhase) {
        reduction_role();
        broadcast_role();
    } else {
        // Overlapped: the reduction and broadcast pipelines run as
        // concurrent "persistent kernels" on this rank.
        std::thread reducer([&reduction_role, rank]() {
            obs::setThreadRank(rank);
            obs::labelThread(
                ("rank" + std::to_string(rank) + "/reduce").c_str());
            reduction_role();
        });
        broadcast_role();
        reducer.join();
    }

    for (std::thread& t : forwarders)
        t.join();
}

} // namespace detail

AllReduceTrace
treeAllReduce(Communicator& comm, RankBuffers& buffers,
              const topo::TreeEmbedding& embedding, int num_chunks,
              TreePhaseMode mode, TreeFlowIds flows,
              AllReduceTrace::Observer observer)
{
    const int p = comm.numRanks();
    CCUBE_CHECK(static_cast<int>(buffers.size()) == p,
                "one buffer per rank required");
    CCUBE_CHECK(embedding.tree.numNodes() == p,
                "tree/communicator size mismatch");
    for (const auto& b : buffers) {
        CCUBE_CHECK(b.size() == buffers[0].size(),
                    "all buffers must be equally sized");
    }

    AllReduceTrace trace(p);
    trace.setObserver(std::move(observer));
    const ChunkSplit split(buffers[0].size(), num_chunks);
    comm.run([&](int rank) {
        detail::treeRankBody(
            comm, rank,
            std::span<float>(buffers[static_cast<std::size_t>(rank)]),
            embedding, split, mode, flows, trace, /*chunk_id_offset=*/0);
    });
    return trace;
}

} // namespace ccl
} // namespace ccube
