#include "ccl/double_tree_allreduce.h"

#include <span>
#include <string>

#include "ccl/algorithm_tasks.h"
#include "obs/context.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

AllReduceTrace
doubleTreeAllReduce(Communicator& comm, RankBuffers& buffers,
                    const topo::DoubleTreeEmbedding& embedding,
                    int chunks_per_tree, TreePhaseMode mode,
                    AllReduceTrace::Observer observer, Protocol proto,
                    const SkipMask& resume)
{
    const int p = comm.numRanks();
    CCUBE_CHECK(static_cast<int>(buffers.size()) == p,
                "one buffer per rank required");
    CCUBE_CHECK(embedding.tree0.tree.numNodes() == p &&
                    embedding.tree1.tree.numNodes() == p,
                "tree/communicator size mismatch");
    for (const auto& b : buffers) {
        CCUBE_CHECK(b.size() == buffers[0].size(),
                    "all buffers must be equally sized");
    }

    const std::size_t total = buffers[0].size();
    const std::size_t half = total / 2;
    CCUBE_CHECK(half >= static_cast<std::size_t>(chunks_per_tree) &&
                    total - half >= static_cast<std::size_t>(
                                        chunks_per_tree),
                "buffer too small for the requested chunking");

    AllReduceTrace trace(p);
    trace.setObserver(std::move(observer));

    if (comm.engineMode() == RankExecutor::Mode::kStateMachine) {
        comm.runTasks(buildDoubleTreeTasks(comm, buffers, embedding,
                                           chunks_per_tree, mode,
                                           trace, proto, resume),
                      "double_tree_allreduce", proto);
        return trace;
    }

    const ChunkSplit split0(half, chunks_per_tree);
    const ChunkSplit split1(total - half, chunks_per_tree);
    const TreeFlowIds flows0{kFlowTree0Reduce, kFlowTree0Broadcast};
    const TreeFlowIds flows1{kFlowTree1Reduce, kFlowTree1Broadcast};

    comm.run([&](int rank) {
        std::span<float> buffer(buffers[static_cast<std::size_t>(rank)]);
        std::span<float> lower = buffer.subspan(0, half);
        std::span<float> upper = buffer.subspan(half);
        // Each tree's pipeline runs as its own persistent kernel: the
        // second tree on a pooled helper, the first inline.
        RankExecutor::Group second;
        comm.executor().submit(second, rank, "tree1", [&, rank]() {
            detail::treeRankBody(comm, rank, upper, embedding.tree1,
                                 split1, mode, flows1, trace,
                                 /*chunk_id_offset=*/chunks_per_tree,
                                 proto, resume);
        });
        detail::treeRankBody(comm, rank, lower, embedding.tree0, split0,
                             mode, flows0, trace, /*chunk_id_offset=*/0,
                             proto, resume);
        second.wait();
    }, "double_tree_allreduce", proto);
    return trace;
}

} // namespace ccl
} // namespace ccube
