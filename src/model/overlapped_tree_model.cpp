#include "model/overlapped_tree_model.h"

#include <cmath>

#include "util/logging.h"

namespace ccube {
namespace model {

double
OverlappedTreeModel::allReduceTime(int p, double bytes) const
{
    const double logp = log2Nodes(p);
    return 2.0 * logp * link_.alpha + link_.beta * bytes +
           3.0 * std::sqrt(link_.alpha * link_.beta * bytes * logp);
}

double
OverlappedTreeModel::allReduceTimeChunked(int p, double bytes,
                                          int chunks) const
{
    CCUBE_CHECK(chunks >= 1, "need at least one chunk");
    CCUBE_CHECK(bytes > 0.0, "non-positive message size");
    const double s = link_.time(bytes / static_cast<double>(chunks));
    return (2.0 * log2Nodes(p) + static_cast<double>(chunks)) * s;
}

double
OverlappedTreeModel::turnaroundTime(int p, double bytes, int chunks) const
{
    CCUBE_CHECK(chunks >= 1, "need at least one chunk");
    const double s = link_.time(bytes / static_cast<double>(chunks));
    return (2.0 * log2Nodes(p) + 1.0) * s;
}

double
OverlappedTreeModel::effectiveBandwidth(int p, double bytes) const
{
    return bytes / allReduceTime(p, bytes);
}

} // namespace model
} // namespace ccube
