file(REMOVE_RECURSE
  "CMakeFiles/fig12_comm_performance.dir/fig12_comm_performance.cpp.o"
  "CMakeFiles/fig12_comm_performance.dir/fig12_comm_performance.cpp.o.d"
  "fig12_comm_performance"
  "fig12_comm_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_comm_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
