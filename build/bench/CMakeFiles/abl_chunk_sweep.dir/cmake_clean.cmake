file(REMOVE_RECURSE
  "CMakeFiles/abl_chunk_sweep.dir/abl_chunk_sweep.cpp.o"
  "CMakeFiles/abl_chunk_sweep.dir/abl_chunk_sweep.cpp.o.d"
  "abl_chunk_sweep"
  "abl_chunk_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chunk_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
