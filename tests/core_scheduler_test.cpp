/**
 * @file
 * Engine/iteration-scheduler tests: the paper's headline performance
 * relationships (§V-B) must hold in the simulated system —
 *   C1 faster than B in communication; CC at least as fast as every
 *   other mode end-to-end; chaining never reorders computation
 *   (accuracy neutrality, invariant #9); detour GPUs degrade by only
 *   a few percent (Fig. 15).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/ccube_engine.h"
#include "core/chunk_mapper.h"
#include "util/units.h"

namespace ccube {
namespace core {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest() : engine_(dnn::buildResnet50()) {}
    CCubeEngine engine_;
};

TEST_F(EngineTest, TopologyIsWellFormed)
{
    EXPECT_EQ(engine_.graph().nodeCount(), 8);
    EXPECT_GE(engine_.rings().size(), 3u);
    EXPECT_TRUE(
        topo::isConflictFree(engine_.graph(), engine_.doubleTree()));
}

TEST_F(EngineTest, OverlapSpeedsUpCommunication)
{
    // Fig. 12(a): C1 beats B by ≥ 75% at 64 MB and the gain grows
    // with size.
    const double n64 = util::mib(64);
    const double b64 =
        engine_.commOnly(Mode::kBaseline, n64).completion_time;
    const double c64 =
        engine_.commOnly(Mode::kOverlappedTree, n64).completion_time;
    EXPECT_GT(b64 / c64, 1.70);
    EXPECT_LT(b64 / c64, 2.0);

    const double n256 = util::mib(256);
    const double b256 =
        engine_.commOnly(Mode::kBaseline, n256).completion_time;
    const double c256 =
        engine_.commOnly(Mode::kOverlappedTree, n256).completion_time;
    EXPECT_GE(b256 / c256, b64 / c64 * 0.99);
}

TEST_F(EngineTest, RingBeatsTreesOnSmallSystemLargeMessages)
{
    // §V-B2: on the 8-GPU DGX-1 the multi-ring R is bandwidth-optimal
    // and beats C1 for large payloads.
    const double n = util::mib(64);
    const double r = engine_.commOnly(Mode::kRing, n).completion_time;
    const double c1 =
        engine_.commOnly(Mode::kOverlappedTree, n).completion_time;
    EXPECT_LT(r, c1);
}

TEST_F(EngineTest, TurnaroundGainsExceedCompletionGains)
{
    // The overlapped tree's big win is gradient turnaround (Fig. 7).
    const double n = util::mib(64);
    const auto base = engine_.commOnly(Mode::kBaseline, n);
    const auto over = engine_.commOnly(Mode::kOverlappedTree, n);
    const double completion_gain =
        base.completion_time / over.completion_time;
    const double turnaround_gain =
        base.turnaroundTime() / over.turnaroundTime();
    EXPECT_GT(turnaround_gain, completion_gain);
    EXPECT_GT(turnaround_gain, 3.0);
}

TEST_F(EngineTest, ModeOrderingMatchesPaper)
{
    // Fig. 13 orderings at moderate batch: B slowest; C1 and C2 both
    // improve on B; CC is the best tree-based configuration and beats
    // R by hiding communication.
    IterationConfig config;
    config.batch = 32;
    config.bandwidth_scale = 0.25; // "low" bandwidth stresses comm
    const double b =
        engine_.evaluate(Mode::kBaseline, config).normalized_perf;
    const double c1 =
        engine_.evaluate(Mode::kOverlappedTree, config).normalized_perf;
    const double c2 = engine_.evaluate(Mode::kComputeChaining, config)
                          .normalized_perf;
    const double r =
        engine_.evaluate(Mode::kRing, config).normalized_perf;
    const double cc =
        engine_.evaluate(Mode::kCCube, config).normalized_perf;

    EXPECT_GT(c1, b);
    EXPECT_GE(c2, c1 * 0.98); // C2 comparable to or better than C1
    EXPECT_GT(cc, c1);
    EXPECT_GT(cc, c2);
    EXPECT_GT(cc, r);
    EXPECT_GT(r, b);
}

TEST_F(EngineTest, ChainedIterationNeverExceedsUnchained)
{
    for (double bw : {1.0, 0.25}) {
        for (int batch : {16, 64}) {
            IterationConfig config;
            config.batch = batch;
            config.bandwidth_scale = bw;
            const double unchained =
                engine_.evaluate(Mode::kOverlappedTree, config)
                    .iteration_time;
            const double chained =
                engine_.evaluate(Mode::kCCube, config).iteration_time;
            EXPECT_LE(chained, unchained * (1.0 + 1e-9))
                << "bw=" << bw << " batch=" << batch;
        }
    }
}

TEST_F(EngineTest, EfficiencyRisesWithBatchAndBandwidth)
{
    // §V-B2: larger batch or higher bandwidth → higher efficiency.
    IterationConfig small;
    small.batch = 16;
    small.bandwidth_scale = 0.25;
    IterationConfig big;
    big.batch = 128;
    big.bandwidth_scale = 0.25;
    EXPECT_GT(engine_.evaluate(Mode::kCCube, big).normalized_perf,
              engine_.evaluate(Mode::kCCube, small).normalized_perf);

    IterationConfig high = small;
    high.bandwidth_scale = 1.0;
    EXPECT_GT(engine_.evaluate(Mode::kCCube, high).normalized_perf,
              engine_.evaluate(Mode::kCCube, small).normalized_perf);
}

TEST_F(EngineTest, NormalizedPerfBounded)
{
    for (Mode mode : allModes()) {
        IterationConfig config;
        const auto result = engine_.evaluate(mode, config);
        EXPECT_GT(result.normalized_perf, 0.0) << modeName(mode);
        EXPECT_LE(result.normalized_perf, 1.0) << modeName(mode);
        EXPECT_GE(result.exposed_comm, -1e-9) << modeName(mode);
    }
}

TEST_F(EngineTest, PerGpuDetourPenaltySmall)
{
    // Fig. 15: detour GPUs (0 and 1) lose only ~3-4%, others none.
    IterationConfig config;
    config.batch = 64;
    const auto perf = engine_.perGpuNormalizedPerf(Mode::kCCube, config);
    ASSERT_EQ(perf.size(), 8u);
    for (int g : {0, 1}) {
        EXPECT_LT(perf[static_cast<std::size_t>(g)], 1.0);
        EXPECT_GT(perf[static_cast<std::size_t>(g)], 0.92);
    }
    for (int g = 2; g < 8; ++g)
        EXPECT_NEAR(perf[static_cast<std::size_t>(g)], 1.0, 1e-9);
    // Detour GPUs are strictly slower than non-detour GPUs.
    EXPECT_LT(perf[0], perf[2]);
    EXPECT_LT(perf[1], perf[2]);
}

TEST_F(EngineTest, AccuracyNeutralLayerOrder)
{
    // Invariant #9: chaining changes *when* layers run, never their
    // order — layer ready times are consumed strictly in layer order
    // by construction of the chained recurrence; verify via the
    // mapper table being monotone for the real workload.
    const auto schedule =
        engine_.commOnly(Mode::kCCube, engine_.network()
                                           .totalParamBytes());
    const ChunkMapper mapper = ChunkMapper::doubleTree(
        engine_.network().totalParamBytes(), schedule.num_chunks / 2);
    const auto table =
        mapper.layerChunkTable(engine_.network().layerParamBytes());
    for (std::size_t i = 1; i < table.size(); ++i)
        EXPECT_GE(table[i], table[i - 1]);
}

TEST(EngineWorkloads, ZfNetSmallBatchFavorsRing)
{
    // §V-B2: "except for small batch size for ZFNet, CC exceeds R" —
    // ZFNet's huge gradients + tiny compute at small batch leave CC
    // too little forward time to hide communication.
    CCubeEngine engine(dnn::buildZfNet());
    IterationConfig config;
    config.batch = 16;
    config.bandwidth_scale = 0.25;
    const double r = engine.evaluate(Mode::kRing, config).normalized_perf;
    const double cc =
        engine.evaluate(Mode::kCCube, config).normalized_perf;
    // CC does not dominate R in this corner (ratio near or below 1).
    EXPECT_LT(cc / r, 1.25);
}

TEST(EngineWorkloads, AllCatalogNetworksEvaluate)
{
    for (auto build : {dnn::buildZfNet, dnn::buildVgg16,
                       dnn::buildResnet50}) {
        CCubeEngine engine(build());
        IterationConfig config;
        config.batch = 32;
        for (Mode mode : allModes()) {
            const auto result = engine.evaluate(mode, config);
            EXPECT_GT(result.iteration_time, 0.0)
                << engine.network().name() << " " << modeName(mode);
        }
    }
}

TEST(MachineModelApi, EngineRunsOnDgx2)
{
    // The general-machine constructor: same workload, the NVSwitch
    // platform; all modes evaluate and CC still dominates B.
    CCubeEngine engine(dnn::buildResnet50(), makeDgx2Machine());
    EXPECT_EQ(engine.graph().nodeCount(), 22);
    IterationConfig config;
    config.batch = 32;
    config.bandwidth_scale = 0.25;
    const double b =
        engine.evaluate(Mode::kBaseline, config).normalized_perf;
    const double cc =
        engine.evaluate(Mode::kCCube, config).normalized_perf;
    EXPECT_GT(cc, b);
    // Detour-free machine: no per-GPU forwarding penalty anywhere.
    const auto perf = engine.perGpuNormalizedPerf(Mode::kCCube, config);
    for (double p : perf)
        EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(MachineModelApi, Dgx1PresetMatchesDefaultConstructor)
{
    CCubeEngine via_default(dnn::buildZfNet());
    CCubeEngine via_machine(dnn::buildZfNet(), makeDgx1Machine());
    IterationConfig config;
    config.batch = 32;
    for (Mode mode : allModes()) {
        EXPECT_DOUBLE_EQ(
            via_default.evaluate(mode, config).iteration_time,
            via_machine.evaluate(mode, config).iteration_time)
            << modeName(mode);
    }
}

TEST(ModeNames, AreStable)
{
    EXPECT_STREQ(modeName(Mode::kBaseline), "B");
    EXPECT_STREQ(modeName(Mode::kOverlappedTree), "C1");
    EXPECT_STREQ(modeName(Mode::kComputeChaining), "C2");
    EXPECT_STREQ(modeName(Mode::kRing), "R");
    EXPECT_STREQ(modeName(Mode::kCCube), "CC");
    EXPECT_EQ(allModes().size(), 5u);
}

} // namespace
} // namespace core
} // namespace ccube
