# Empty compiler generated dependencies file for fig16_comm_compute_patterns.
# This may be replaced when dependencies are built.
