/**
 * @file
 * The functional path: runs the threaded mini-NCCL (one thread per
 * "GPU", the paper's Fig. 11 device-side semaphores, detour
 * forwarding threads on GPU0/GPU1) for a real AllReduce over the
 * DGX-1 double tree, chained into per-rank gradient queues that gate
 * a simulated forward pass — C-Cube executing end to end on your CPU.
 */

#include <iostream>
#include <thread>
#include <vector>

#include "ccl/tree_allreduce.h"
#include "core/chunk_mapper.h"
#include "core/gradient_queue.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/rng.h"

int
main()
{
    using namespace ccube;

    constexpr int kRanks = 8;
    constexpr int kChunks = 8;
    constexpr int kLayers = 4;
    constexpr std::size_t kElems = 4096;

    // Gradient buffers: every rank holds different local gradients.
    ccl::RankBuffers gradients(kRanks);
    util::Rng rng(2026);
    for (auto& buf : gradients) {
        buf.resize(kElems);
        rng.fill(buf, -1.0f, 1.0f);
    }

    // Layer layout of the one-shot buffer (bytes per layer) and the
    // Layer-Chunk Table derived from it.
    const std::vector<double> layer_bytes{
        kElems * 0.1 * 4, kElems * 0.2 * 4, kElems * 0.3 * 4,
        kElems * 0.4 * 4};
    const core::ChunkMapper mapper =
        core::ChunkMapper::singleTree(kElems * 4.0, kChunks);
    const auto table = mapper.layerChunkTable(layer_bytes);
    std::cout << "Layer-Chunk Table (cumulative chunk bounds): ";
    for (std::size_t l = 0; l < table.size(); ++l)
        std::cout << table[l] << (l + 1 < table.size() ? ", " : "\n");

    // One gradient queue per rank; forward threads dequeue in order.
    std::vector<std::unique_ptr<core::GradientQueue>> queues;
    for (int r = 0; r < kRanks; ++r)
        queues.push_back(std::make_unique<core::GradientQueue>(table));

    std::vector<std::thread> forward;
    for (int r = 0; r < kRanks; ++r) {
        forward.emplace_back([r, &queues]() {
            for (int l = 0; l < kLayers; ++l) {
                queues[static_cast<std::size_t>(r)]->dequeueLayer(l);
                if (r == 0) {
                    std::cout << "  rank0: layer " << l
                              << " dequeued (enqueued chunks = "
                              << queues[0]->enqueued() << ")\n";
                }
            }
        });
    }

    // The collective: overlapped tree on the C-Cube DGX-1 embedding;
    // the broadcast enqueues each fully reduced chunk as it lands.
    const topo::Graph dgx1 = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(dgx1);
    ccl::Communicator comm(kRanks);
    std::cout << "Running overlapped tree AllReduce on "
              << kRanks << " rank threads...\n";
    const ccl::AllReduceTrace trace = ccl::treeAllReduce(
        comm, gradients, dt.tree0, kChunks,
        ccl::TreePhaseMode::kOverlapped, {},
        [&queues](int rank, int) {
            queues[static_cast<std::size_t>(rank)]->enqueueChunk();
        });

    for (auto& t : forward)
        t.join();

    // Verify: every rank holds the same reduced gradients.
    bool all_equal = true;
    for (int r = 1; r < kRanks; ++r)
        if (gradients[static_cast<std::size_t>(r)] != gradients[0])
            all_equal = false;
    std::cout << "\nAllReduce result identical on all ranks: "
              << (all_equal ? "yes" : "NO") << "\n";
    std::cout << "Chunks delivered in order at every rank: "
              << (trace.inOrder() ? "yes" : "NO")
              << " (the property gradient queuing needs)\n";
    std::cout << "All " << kLayers
              << " layers computed on every rank, gated by the "
                 "gradient queue.\n";
    return 0;
}
