/**
 * @file
 * Reproduces Fig. 5's step-count comparison: conventional tree, ring,
 * and overlapped tree AllReduce on 4 nodes with 4 chunks, both
 * analytically (the paper's step convention) and measured from the
 * discrete-event simulator (data-movement steps).
 *
 * Paper: conventional tree completes in 10 steps, ring in 7, the
 * overlapped tree in 7 — with the overlapped tree additionally giving
 * the earliest first-chunk turnaround.
 */

#include <iostream>

#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/ring_schedule.h"
#include "simnet/tree_schedule.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "util/flags.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);

    std::cout << "=== Fig. 5: AllReduce step counts (P=4, K=4) ===\n\n";

    constexpr int kP = 4;
    constexpr int kChunks = 4;
    constexpr double kBw = 25e9;
    constexpr double kAlpha = 0.0; // pure step counting
    const double bytes = 4e6;
    const double step = (bytes / kChunks) / kBw; // uniform chunk step

    topo::Graph clique("clique");
    for (int n = 0; n < kP; ++n)
        clique.addNode("N" + std::to_string(n));
    for (int a = 0; a < kP; ++a)
        for (int b = a + 1; b < kP; ++b)
            clique.addLink(a, b, kBw, kAlpha);

    const topo::TreeEmbedding tree =
        topo::embedTree(clique, topo::BinaryTree::inorder(kP));

    util::Table table({"algorithm", "paper_steps", "sim_data_steps",
                       "sim_turnaround_steps"});

    {
        sim::Simulation sim;
        simnet::Network net(sim, clique);
        const auto r = simnet::runTreeSchedule(
            sim, net, tree, bytes, simnet::PhaseMode::kTwoPhase,
            kChunks);
        table.addRow({"tree (conventional)", "10",
                      util::formatDouble(r.completion_time / step, 1),
                      util::formatDouble(r.turnaroundTime() / step, 1)});
    }
    {
        sim::Simulation sim;
        simnet::Network net(sim, clique);
        const auto r = simnet::runTreeSchedule(
            sim, net, tree, bytes, simnet::PhaseMode::kOverlapped,
            kChunks);
        table.addRow({"tree (overlapped, C-Cube)", "7",
                      util::formatDouble(r.completion_time / step, 1),
                      util::formatDouble(r.turnaroundTime() / step, 1)});
    }
    {
        sim::Simulation sim;
        simnet::Network net(sim, clique);
        // Ring moves N/P per step; express in the same chunk units.
        const auto r = simnet::runRingSchedule(
            sim, net, topo::makeSequentialRing(kP), bytes);
        table.addRow({"ring", "7",
                      util::formatDouble(r.completion_time / step, 1),
                      util::formatDouble(r.turnaroundTime() / step, 1)});
    }
    table.print(std::cout);
    std::cout
        << "\nThe simulator reproduces the paper's Fig. 5 step counts "
           "exactly for the trees: 10 steps conventional, 7 steps "
           "overlapped. The ring measures 6 = 2(P-1) data-movement "
           "steps (the paper's 7 counts the initial local chunk "
           "placement). The overlapped tree also turns the first "
           "chunk around in 4 steps instead of 7.\n";
    obs_session.finish();
    return 0;
}
