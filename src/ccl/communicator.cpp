#include "ccl/communicator.h"

#include <string>
#include <thread>
#include <vector>

#include "obs/context.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

Communicator::Communicator(int num_ranks, int mailbox_slots)
    : num_ranks_(num_ranks), mailbox_slots_(mailbox_slots)
{
    CCUBE_CHECK(num_ranks >= 1, "need at least one rank");
    CCUBE_CHECK(mailbox_slots >= 1, "need at least one mailbox slot");
}

Mailbox&
Communicator::mailbox(int src, int dst, FlowId flow)
{
    CCUBE_CHECK(src >= 0 && src < num_ranks_, "bad src rank " << src);
    CCUBE_CHECK(dst >= 0 && dst < num_ranks_, "bad dst rank " << dst);
    CCUBE_CHECK(src != dst, "no self mailboxes");
    const Key key{src, dst, flow};
    std::lock_guard<std::mutex> guard(registry_mutex_);
    auto it = mailboxes_.find(key);
    if (it == mailboxes_.end()) {
        it = mailboxes_
                 .emplace(key, std::make_unique<Mailbox>(mailbox_slots_))
                 .first;
        it->second->setTraceLabel(
            "mb " + std::to_string(src) + "->" + std::to_string(dst) +
            "/f" + std::to_string(flow));
    }
    return *it->second;
}

void
Communicator::run(const std::function<void(int rank)>& body)
{
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(num_ranks_));
    for (int r = 0; r < num_ranks_; ++r) {
        threads.emplace_back([&body, r]() {
            // Tag the rank thread so spans and per-rank counters from
            // everything it (and its helpers) runs attribute here.
            obs::setThreadRank(r);
            obs::labelThread(
                ("rank" + std::to_string(r) + "/main").c_str());
            body(r);
        });
    }
    for (auto& t : threads)
        t.join();
}

void
Communicator::barrier()
{
    obs::ScopedSpan span("barrier", "ccl.sync",
                         obs::pids::cclRank(obs::threadRank()),
                         obs::threadTrack());
    const int sense = barrier_sense_.load(std::memory_order_acquire);
    if (barrier_count_.fetch_add(1, std::memory_order_acq_rel) ==
        num_ranks_ - 1) {
        barrier_count_.store(0, std::memory_order_relaxed);
        barrier_sense_.store(1 - sense, std::memory_order_release);
    } else {
        while (barrier_sense_.load(std::memory_order_acquire) == sense)
            std::this_thread::yield();
    }
}

} // namespace ccl
} // namespace ccube
