#include "ccl/primitives.h"

#include <span>
#include <utility>
#include <vector>

#include "ccl/algorithm_tasks.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/ring_allreduce.h"
#include "ccl/tree_allreduce.h"
#include "ccl/tuner.h"
#include "topo/detour_router.h"
#include "topo/embedding_search.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

using topo::NodeId;
using topo::PhaseDirection;
using topo::Route;

void
checkBuffers(const Communicator& comm, const RankBuffers& buffers)
{
    CCUBE_CHECK(static_cast<int>(buffers.size()) == comm.numRanks(),
                "one buffer per rank required");
    for (const auto& b : buffers) {
        CCUBE_CHECK(b.size() == buffers[0].size(),
                    "all buffers must be equally sized");
    }
}

/** Forwarding loop shared by the one-direction tree primitives:
 *  chunks hop from the upstream slot straight into the downstream
 *  mailbox — no staging vector. */
void
forwardChunks(Communicator& comm, NodeId upstream, NodeId transit,
              NodeId downstream, FlowId flow, int num_chunks,
              Protocol proto)
{
    Mailbox& in = comm.mailbox(upstream, transit, flow);
    Mailbox& out = comm.mailbox(transit, downstream, flow);
    const Mailbox::Visitor forward =
        [&out, proto](std::span<const float> data, int tag) {
            out.send(data, tag, proto);
        };
    for (int c = 0; c < num_chunks; ++c)
        in.consume(forward, proto);
}

/** Enqueues the forwarding tasks this rank owes to @p embedding for
 *  the given phase direction onto the persistent helper pool. */
void
submitForwarders(RankExecutor::Group& group, Communicator& comm,
                 const topo::TreeEmbedding& embedding, int rank,
                 PhaseDirection phase, FlowId flow, int num_chunks,
                 Protocol proto)
{
    for (const topo::ForwardingRule& rule :
         topo::cachedForwardingRules(embedding, 0)) {
        if (rule.transit != rank || rule.phase != phase)
            continue;
        comm.executor().submit(
            group, rank, "forward",
            [&comm, rule, flow, num_chunks, proto]() {
                forwardChunks(comm, rule.upstream, rule.transit,
                              rule.downstream, flow, num_chunks,
                              proto);
            });
    }
}

} // namespace

void
treeBroadcast(Communicator& comm, RankBuffers& buffers,
              const topo::TreeEmbedding& embedding, int num_chunks,
              FlowId flow, Protocol proto)
{
    checkBuffers(comm, buffers);
    CCUBE_CHECK(embedding.tree.numNodes() == comm.numRanks(),
                "tree/communicator size mismatch");
    const ChunkSplit split(buffers[0].size(), num_chunks);

    if (comm.engineMode() == RankExecutor::Mode::kStateMachine) {
        std::vector<std::unique_ptr<RankTask>> tasks;
        appendTreeTasks(tasks, comm, buffers, embedding,
                        /*region_offset=*/0, buffers[0].size(), split,
                        TreePhaseMode::kTwoPhase,
                        TreeFlowIds{flow, flow},
                        TreeDirection::kBroadcast, nullptr,
                        /*chunk_id_offset=*/0, "tree", proto);
        comm.runTasks(std::move(tasks), "tree_broadcast", proto);
        return;
    }

    comm.run([&](int rank) {
        std::span<float> buffer(buffers[static_cast<std::size_t>(rank)]);
        RankExecutor::Group forwarders;
        submitForwarders(forwarders, comm, embedding, rank,
                         PhaseDirection::kBroadcast, flow, num_chunks,
                         proto);

        // Resolve the mailbox plan once per rank — the chunk loop then
        // touches no registry and no routes.
        const topo::BinaryTree& tree = embedding.tree;
        const std::vector<NodeId>& children = tree.children(rank);
        std::vector<Mailbox*> down;
        for (NodeId child : children)
            down.push_back(&comm.mailbox(
                rank, embedding.routeToChild(child).hops[1], flow));

        auto send_down = [&](int chunk) {
            const std::span<const float> data =
                split.slice(std::span<const float>(buffer), chunk);
            for (Mailbox* box : down)
                box->send(data, chunk, proto);
        };

        if (tree.root() == rank) {
            for (int c = 0; c < num_chunks; ++c)
                send_down(c);
        } else {
            const Route& route = embedding.routeToChild(rank);
            const NodeId parent_hop = route.hops[route.hops.size() - 2];
            Mailbox& from_parent = comm.mailbox(parent_hop, rank, flow);
            for (int c = 0; c < num_chunks; ++c) {
                const int tag =
                    from_parent.recvInto(split.slice(buffer, c), proto);
                CCUBE_CHECK(tag == c, "broadcast chunk out of order");
                send_down(c);
            }
        }
        forwarders.wait();
    }, "tree_broadcast", proto);
}

void
treeReduce(Communicator& comm, RankBuffers& buffers,
           const topo::TreeEmbedding& embedding, int num_chunks,
           FlowId flow, Protocol proto)
{
    checkBuffers(comm, buffers);
    CCUBE_CHECK(embedding.tree.numNodes() == comm.numRanks(),
                "tree/communicator size mismatch");
    const ChunkSplit split(buffers[0].size(), num_chunks);

    if (comm.engineMode() == RankExecutor::Mode::kStateMachine) {
        std::vector<std::unique_ptr<RankTask>> tasks;
        appendTreeTasks(tasks, comm, buffers, embedding,
                        /*region_offset=*/0, buffers[0].size(), split,
                        TreePhaseMode::kTwoPhase,
                        TreeFlowIds{flow, flow},
                        TreeDirection::kReduce, nullptr,
                        /*chunk_id_offset=*/0, "tree", proto);
        comm.runTasks(std::move(tasks), "tree_reduce", proto);
        return;
    }

    comm.run([&](int rank) {
        std::span<float> buffer(buffers[static_cast<std::size_t>(rank)]);
        RankExecutor::Group forwarders;
        submitForwarders(forwarders, comm, embedding, rank,
                         PhaseDirection::kReduction, flow, num_chunks,
                         proto);

        // Mailbox plan resolved once per rank, outside the chunk loop.
        const topo::BinaryTree& tree = embedding.tree;
        const std::vector<NodeId>& children = tree.children(rank);
        std::vector<Mailbox*> from_children;
        for (NodeId child : children)
            from_children.push_back(&comm.mailbox(
                embedding.routeToChild(child).hops[1], rank, flow));
        Mailbox* to_parent = nullptr;
        if (tree.root() != rank) {
            const Route& route = embedding.routeToChild(rank);
            to_parent = &comm.mailbox(
                rank, route.hops[route.hops.size() - 2], flow);
        }

        for (int c = 0; c < num_chunks; ++c) {
            for (Mailbox* box : from_children) {
                const int tag =
                    box->recvReduce(split.slice(buffer, c), proto);
                CCUBE_CHECK(tag == c, "reduce chunk out of order");
            }
            if (to_parent) {
                to_parent->send(
                    split.slice(std::span<const float>(buffer), c), c,
                    proto);
            }
        }
        forwarders.wait();
    }, "tree_reduce", proto);
}

void
ringReduceScatter(Communicator& comm, RankBuffers& buffers,
                  const topo::RingEmbedding& ring, Protocol proto)
{
    checkBuffers(comm, buffers);
    const int p = comm.numRanks();
    CCUBE_CHECK(ring.size() == p, "ring/communicator size mismatch");
    const ChunkSplit split(buffers[0].size(), p);

    if (comm.engineMode() == RankExecutor::Mode::kStateMachine) {
        comm.runTasks(buildRingTasks(comm, buffers, ring,
                                     RingPhase::kReduceScatter,
                                     nullptr, proto),
                      "ring_reduce_scatter", proto);
        return;
    }

    std::vector<int> position(static_cast<std::size_t>(p), -1);
    for (int pos = 0; pos < p; ++pos)
        position[static_cast<std::size_t>(
            ring.order[static_cast<std::size_t>(pos)])] = pos;

    comm.run([&](int rank) {
        std::span<float> buffer(buffers[static_cast<std::size_t>(rank)]);
        const int pos = position[static_cast<std::size_t>(rank)];
        const int next =
            ring.order[static_cast<std::size_t>((pos + 1) % p)];
        const int prev =
            ring.order[static_cast<std::size_t>((pos + p - 1) % p)];
        Mailbox& to_next = comm.mailbox(rank, next, kFlowRing);
        Mailbox& from_prev = comm.mailbox(prev, rank, kFlowRing);
        for (int s = 0; s < p - 1; ++s) {
            const int send_chunk = (pos - s + p) % p;
            const int recv_chunk = (pos - s - 1 + p) % p;
            to_next.send(split.slice(std::span<const float>(buffer),
                                     send_chunk),
                         send_chunk, proto);
            const int tag = from_prev.recvReduce(
                split.slice(buffer, recv_chunk), proto);
            CCUBE_CHECK(tag == recv_chunk,
                        "reduce-scatter chunk out of sequence");
        }
    }, "ring_reduce_scatter", proto);
}

void
ringAllGather(Communicator& comm, RankBuffers& buffers,
              const topo::RingEmbedding& ring, Protocol proto)
{
    checkBuffers(comm, buffers);
    const int p = comm.numRanks();
    CCUBE_CHECK(ring.size() == p, "ring/communicator size mismatch");
    const ChunkSplit split(buffers[0].size(), p);

    if (comm.engineMode() == RankExecutor::Mode::kStateMachine) {
        comm.runTasks(buildRingTasks(comm, buffers, ring,
                                     RingPhase::kAllGather, nullptr,
                                     proto),
                      "ring_all_gather", proto);
        return;
    }

    std::vector<int> position(static_cast<std::size_t>(p), -1);
    for (int pos = 0; pos < p; ++pos)
        position[static_cast<std::size_t>(
            ring.order[static_cast<std::size_t>(pos)])] = pos;

    comm.run([&](int rank) {
        std::span<float> buffer(buffers[static_cast<std::size_t>(rank)]);
        const int pos = position[static_cast<std::size_t>(rank)];
        const int next =
            ring.order[static_cast<std::size_t>((pos + 1) % p)];
        const int prev =
            ring.order[static_cast<std::size_t>((pos + p - 1) % p)];
        Mailbox& to_next = comm.mailbox(rank, next, kFlowRing);
        Mailbox& from_prev = comm.mailbox(prev, rank, kFlowRing);
        for (int s = 0; s < p - 1; ++s) {
            const int send_chunk = (pos + 1 - s + p) % p;
            const int recv_chunk = (pos - s + p) % p;
            to_next.send(split.slice(std::span<const float>(buffer),
                                     send_chunk),
                         send_chunk, proto);
            const int tag = from_prev.recvInto(
                split.slice(buffer, recv_chunk), proto);
            CCUBE_CHECK(tag == recv_chunk,
                        "allgather chunk out of sequence");
        }
    }, "ring_all_gather", proto);
}

AllReduceTrace
allReduce(Communicator& comm, RankBuffers& buffers,
          const topo::Graph& graph, const AllReduceOptions& options)
{
    const int p = comm.numRanks();
    // kAuto resolves through the tuner's selection table: for the
    // fixed algorithm the caller picked, choose the protocol the α-β
    // model (or a cached measurement) predicts fastest at this size.
    Protocol proto = options.protocol;
    if (proto == Protocol::kAuto)
        proto = Tuner::global().chooseProtocol(
            graph, p, buffers.empty() ? 0 : buffers[0].size(),
            options.algorithm);
    switch (options.algorithm) {
      case AllReduceAlgorithm::kRing: {
        const topo::RingEmbedding ring =
            topo::findHamiltonianRing(graph, p);
        CCUBE_CHECK(ring.size() == p,
                    "no Hamiltonian ring on this topology");
        return ringAllReduce(comm, buffers, ring, options.observer,
                             proto);
      }
      case AllReduceAlgorithm::kTree:
      case AllReduceAlgorithm::kOverlappedTree: {
        const topo::TreeEmbedding embedding =
            topo::embedTree(graph, topo::BinaryTree::inorder(p));
        const TreePhaseMode mode =
            options.algorithm == AllReduceAlgorithm::kTree
                ? TreePhaseMode::kTwoPhase
                : TreePhaseMode::kOverlapped;
        return treeAllReduce(comm, buffers, embedding,
                             options.num_chunks, mode, {},
                             options.observer, proto);
      }
      case AllReduceAlgorithm::kDoubleTree:
      case AllReduceAlgorithm::kCCubeDoubleTree: {
        topo::EmbeddingSearchOptions search;
        search.num_ranks = p;
        auto found = topo::findConflictFreeDoubleTree(graph, search);
        CCUBE_CHECK(found.has_value(),
                    "no conflict-free double tree on this topology");
        const TreePhaseMode mode =
            options.algorithm == AllReduceAlgorithm::kDoubleTree
                ? TreePhaseMode::kTwoPhase
                : TreePhaseMode::kOverlapped;
        return doubleTreeAllReduce(comm, buffers, *found,
                                   options.num_chunks, mode,
                                   options.observer, proto);
      }
    }
    util::panic("unknown AllReduce algorithm");
}

} // namespace ccl
} // namespace ccube
