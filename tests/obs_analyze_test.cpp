/**
 * @file
 * Tests for the obs::analyze trace-analysis engine: flight-recorder
 * and capacity semantics, channel timelines and idle detection on
 * golden traces, α-β fitting, critical-path extraction, and the
 * end-to-end reproduction of the paper's idle-down-channel
 * observation on a simulated DGX-1 tree AllReduce.
 */

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/alpha_beta.h"
#include "obs/analyze.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "simnet/channel.h"
#include "simnet/tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"

namespace ccube {
namespace {

obs::TraceEvent
makeEvent(std::string name, std::string cat, int pid, int tid,
          double ts_us, double dur_us,
          std::vector<std::pair<std::string, double>> args = {})
{
    obs::TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = 'X';
    event.pid = pid;
    event.tid = tid;
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.args = std::move(args);
    return event;
}

obs::TraceEvent
channelSpan(int channel, double ts_us, double dur_us, double bytes,
            double queue_wait_us = 0.0)
{
    return makeEvent("ch" + std::to_string(channel), "simnet.channel",
                     100, channel, ts_us, dur_us,
                     {{"queue_wait_us", queue_wait_us},
                      {"bytes", bytes}});
}

// --- FlightRecorder --------------------------------------------------

TEST(FlightRecorder, KeepsNewestDropsOldest)
{
    obs::FlightRecorder ring(3);
    EXPECT_EQ(ring.capacity(), 3u);
    for (int i = 0; i < 5; ++i)
        ring.record(makeEvent("e" + std::to_string(i), "t", 1, 1,
                              static_cast<double>(i), 1.0));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.recorded(), 5u);
    EXPECT_EQ(ring.dropped(), 2u);
    const auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 3u);
    // Oldest-first snapshot of the newest three.
    EXPECT_EQ(events[0].name, "e2");
    EXPECT_EQ(events[1].name, "e3");
    EXPECT_EQ(events[2].name, "e4");
    ring.clear();
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
}

// --- TraceRecorder retention -----------------------------------------

TEST(TraceRecorderRetention, CapacityDropsNewestAndCounts)
{
    obs::TraceRecorder recorder;
    recorder.setCapacity(4);
    recorder.enable();
    for (int i = 0; i < 7; ++i)
        recorder.record(makeEvent("e" + std::to_string(i), "t", 1, 1,
                                  static_cast<double>(i), 1.0));
    recorder.disable();
    EXPECT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.droppedEvents(), 3u);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().name, "e0"); // drop-newest keeps the head
    EXPECT_EQ(events.back().name, "e3");

    obs::MetricRegistry registry;
    recorder.exportTo(registry);
    EXPECT_DOUBLE_EQ(registry.counter("trace.events"), 4.0);
    EXPECT_DOUBLE_EQ(registry.counter("trace.dropped_events"), 3.0);
}

TEST(TraceRecorderRetention, FlightModeKeepsNewest)
{
    obs::TraceRecorder recorder;
    recorder.setFlightCapacity(4);
    EXPECT_TRUE(recorder.flightMode());
    recorder.enable();
    for (int i = 0; i < 7; ++i)
        recorder.record(makeEvent("e" + std::to_string(i), "t", 1, 1,
                                  static_cast<double>(i), 1.0));
    recorder.disable();
    EXPECT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.droppedEvents(), 3u);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().name, "e3"); // drop-oldest keeps the tail
    EXPECT_EQ(events.back().name, "e6");

    // Flight-mode capture must survive writeJson (ring, not vector).
    std::ostringstream json;
    recorder.writeJson(json);
    EXPECT_NE(json.str().find("e6"), std::string::npos);

    // Leaving flight mode migrates events and preserves accounting.
    recorder.setCapacity(8);
    EXPECT_FALSE(recorder.flightMode());
    EXPECT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.droppedEvents(), 3u);
}

// --- Channel timelines / idle detection ------------------------------

TEST(ChannelTimeline, IdleIntervalsAndUtilization)
{
    std::vector<obs::TraceEvent> events;
    events.push_back(channelSpan(0, 10.0, 10.0, 100.0));
    events.push_back(channelSpan(0, 30.0, 10.0, 100.0));
    events.push_back(channelSpan(2, 0.0, 5.0, 50.0));
    const obs::TraceAnalyzer analyzer(std::move(events));

    ASSERT_EQ(analyzer.channels().size(), 2u);
    const obs::ChannelTimeline* ch0 = analyzer.channelById(0);
    ASSERT_NE(ch0, nullptr);
    EXPECT_EQ(ch0->transfers, 2);
    EXPECT_DOUBLE_EQ(ch0->busy_us, 20.0);
    EXPECT_DOUBLE_EQ(ch0->bytes, 200.0);
    EXPECT_EQ(analyzer.channelById(1), nullptr);

    const obs::TimeInterval window{0.0, 50.0};
    EXPECT_DOUBLE_EQ(ch0->utilization(window), 0.4);
    EXPECT_DOUBLE_EQ(ch0->idleFraction(window), 0.6);
    const auto gaps = ch0->idleIntervals(window);
    ASSERT_EQ(gaps.size(), 3u); // lead-in, mid, tail
    EXPECT_DOUBLE_EQ(gaps[0].start_us, 0.0);
    EXPECT_DOUBLE_EQ(gaps[0].end_us, 10.0);
    EXPECT_DOUBLE_EQ(gaps[1].start_us, 20.0);
    EXPECT_DOUBLE_EQ(gaps[1].end_us, 30.0);
    EXPECT_DOUBLE_EQ(gaps[2].start_us, 40.0);
    EXPECT_DOUBLE_EQ(gaps[2].end_us, 50.0);
    // min_gap filtering drops all three 10 us gaps.
    EXPECT_TRUE(ch0->idleIntervals(window, 10.5).empty());

    // Aggregate: ch2 busy 5/50, ch0 busy 20/50; absent id 7 skipped.
    EXPECT_NEAR(analyzer.idleFraction({0, 2, 7}, window),
                1.0 - 25.0 / 100.0, 1e-12);
    // channelWindow = [earliest request, latest completion].
    EXPECT_DOUBLE_EQ(analyzer.channelWindow().start_us, 0.0);
    EXPECT_DOUBLE_EQ(analyzer.channelWindow().end_us, 40.0);
}

// --- α-β fit ---------------------------------------------------------

TEST(AlphaBetaFit, RecoversExactLinearModel)
{
    const double alpha_s = 5e-6;
    const double beta_s = 1e-11;
    std::vector<obs::TraceEvent> events;
    for (double bytes : {1e6, 2e6, 4e6, 8e6}) {
        const double dur_us = (alpha_s + beta_s * bytes) * 1e6;
        events.push_back(channelSpan(0, 0.0, dur_us, bytes));
    }
    const obs::TraceAnalyzer analyzer(std::move(events));
    const obs::AlphaBetaFit fit = analyzer.fitAlphaBeta();
    ASSERT_TRUE(fit.valid);
    EXPECT_EQ(fit.samples, 4);
    EXPECT_NEAR(fit.alpha_s, alpha_s, 1e-9);
    EXPECT_NEAR(fit.beta_s_per_byte, beta_s, 1e-15);
    EXPECT_GT(fit.r2, 0.9999);
    EXPECT_NEAR(fit.bandwidth(), 1.0 / beta_s, 1.0);

    const model::AlphaBeta reference{alpha_s, beta_s};
    EXPECT_LT(fit.alphaRelError(reference), 1e-3);
    EXPECT_LT(fit.betaRelError(reference), 1e-3);
}

TEST(AlphaBetaFit, InvalidWithoutDistinctSizes)
{
    std::vector<obs::TraceEvent> events;
    events.push_back(channelSpan(0, 0.0, 10.0, 1e6));
    events.push_back(channelSpan(0, 20.0, 10.0, 1e6));
    const obs::TraceAnalyzer analyzer(std::move(events));
    EXPECT_FALSE(analyzer.fitAlphaBeta().valid);
    EXPECT_FALSE(obs::TraceAnalyzer({}).fitAlphaBeta().valid);
}

// --- Critical path ---------------------------------------------------

TEST(CriticalPath, FollowsHandoffChain)
{
    // A[0,10) on ch0 hands off to B (requested at 10, granted at 12
    // after a 2 us queue wait) which hands off to C. A parallel
    // distractor D never joins the chain.
    std::vector<obs::TraceEvent> events;
    events.push_back(channelSpan(0, 0.0, 10.0, 1000.0));
    events.push_back(channelSpan(1, 12.0, 10.0, 1000.0, 2.0));
    events.push_back(channelSpan(2, 22.0, 5.0, 1000.0));
    events.push_back(channelSpan(3, 0.0, 3.0, 1000.0));
    const obs::TraceAnalyzer analyzer(std::move(events));

    const obs::CriticalPath path = analyzer.criticalPath(0.0);
    ASSERT_EQ(path.steps.size(), 3u);
    EXPECT_EQ(path.steps[0].span.tid, 0);
    EXPECT_EQ(path.steps[1].span.tid, 1);
    EXPECT_EQ(path.steps[2].span.tid, 2);
    EXPECT_DOUBLE_EQ(path.busy_us, 25.0);
    EXPECT_DOUBLE_EQ(path.end_us, 27.0);
    EXPECT_DOUBLE_EQ(path.steps[1].stall_before_us, 2.0);
    EXPECT_DOUBLE_EQ(path.steps[2].stall_before_us, 0.0);
    EXPECT_DOUBLE_EQ(path.breakdown.sync_stall_us, 2.0);
    EXPECT_DOUBLE_EQ(path.breakdown.serialization_us, 25.0);
    EXPECT_DOUBLE_EQ(path.breakdown.startup_us, 0.0);
    // With an explicit 1 us α, each channel span cedes 1 us to startup.
    const obs::CriticalPath with_alpha = analyzer.criticalPath(1.0);
    EXPECT_DOUBLE_EQ(with_alpha.breakdown.startup_us, 3.0);
    EXPECT_DOUBLE_EQ(with_alpha.breakdown.serialization_us, 22.0);
}

TEST(CriticalPath, MailboxPostWaitEdge)
{
    std::vector<obs::TraceEvent> events;
    events.push_back(makeEvent("post mb a", "ccl.mailbox", 1000, 7,
                               0.0, 2.0, {{"seq", 0.0}}));
    events.push_back(makeEvent("wait mb a", "ccl.mailbox", 1001, 7,
                               5.0, 4.0, {{"seq", 0.0}}));
    // Same label, different seq: must NOT pair with the wait above.
    events.push_back(makeEvent("post mb a", "ccl.mailbox", 1000, 7,
                               2.5, 0.5, {{"seq", 1.0}}));
    const obs::TraceAnalyzer analyzer(std::move(events));

    const obs::CriticalPath path = analyzer.criticalPath(0.0);
    ASSERT_EQ(path.steps.size(), 2u);
    EXPECT_EQ(path.steps[0].span.name, "post mb a");
    EXPECT_DOUBLE_EQ(path.steps[0].span.dur_us, 2.0);
    EXPECT_EQ(path.steps[1].span.name, "wait mb a");
    EXPECT_DOUBLE_EQ(path.steps[1].stall_before_us, 3.0);
    EXPECT_EQ(path.steps[0].kind, obs::CostKind::kSyncStall);
    EXPECT_DOUBLE_EQ(path.breakdown.sync_stall_us, 9.0);
}

TEST(CriticalPath, ContainerSpansAreExcluded)
{
    std::vector<obs::TraceEvent> events;
    // Container strictly encloses a child on its own track; it must
    // not contribute its (large) duration to the path.
    events.push_back(makeEvent("phase", "ccl.role", 1000, 1, 0.0, 30.0));
    events.push_back(makeEvent("leaf", "ccl.role", 1000, 1, 2.0, 3.0));
    events.push_back(makeEvent("work", "ccl.role", 1001, 1, 0.0, 20.0));
    const obs::TraceAnalyzer analyzer(std::move(events));

    const obs::CriticalPath path = analyzer.criticalPath(0.0);
    for (const obs::PathStep& step : path.steps)
        EXPECT_NE(step.span.name, "phase");
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.steps.back().span.name, "work");
    EXPECT_DOUBLE_EQ(path.busy_us, 20.0);
}

TEST(CostKinds, ClassificationAndNames)
{
    EXPECT_EQ(obs::classifySpan(channelSpan(0, 0, 1, 1)),
              obs::CostKind::kSerialization);
    EXPECT_EQ(obs::classifySpan(
                  makeEvent("wait mb", "ccl.mailbox", 1, 1, 0, 1)),
              obs::CostKind::kSyncStall);
    EXPECT_EQ(obs::classifySpan(
                  makeEvent("tree.reduce", "ccl.role", 1, 1, 0, 1)),
              obs::CostKind::kReduction);
    EXPECT_EQ(obs::classifySpan(
                  makeEvent("forward", "core.phase", 1, 1, 0, 1)),
              obs::CostKind::kOther);
    EXPECT_STREQ(obs::costKindName(obs::CostKind::kStartup), "startup");
    EXPECT_STREQ(obs::costKindName(obs::CostKind::kSyncStall),
                 "sync_stall");
}

// --- Report writer ---------------------------------------------------

TEST(Report, WritesAllSections)
{
    std::vector<obs::TraceEvent> events;
    for (double bytes : {1e6, 2e6, 4e6}) {
        const double dur_us = (4.6e-6 + 4e-11 * bytes) * 1e6;
        events.push_back(channelSpan(0, bytes / 1e5, dur_us, bytes));
    }
    const obs::TraceAnalyzer analyzer(std::move(events));
    obs::MetricRegistry registry;
    registry.addCounter("trace.events", 3.0);

    const model::AlphaBeta reference;
    obs::ReportOptions options;
    options.reference = &reference;
    std::ostringstream out;
    obs::writeAnalysisReport(out, analyzer, &registry, options);
    const std::string report = out.str();
    EXPECT_NE(report.find("channel utilization"), std::string::npos);
    EXPECT_NE(report.find("alpha-beta fit"), std::string::npos);
    EXPECT_NE(report.find("critical path"), std::string::npos);
    EXPECT_NE(report.find("rel err"), std::string::npos);
    EXPECT_NE(report.find("trace.events"), std::string::npos);
}

// --- DGX-1 integration -----------------------------------------------

class Dgx1Analysis : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::TraceRecorder::global().clear();
        obs::TraceRecorder::global().enable();
    }

    void TearDown() override
    {
        obs::TraceRecorder::global().disable();
        obs::TraceRecorder::global().clear();
    }

    /** Down-direction channels that carry no reduction traffic. */
    static std::vector<int>
    downOnlyChannels(const topo::Graph& graph,
                     const topo::TreeEmbedding& embedding)
    {
        const auto down =
            simnet::treeChannelIds(graph, embedding, 0, true);
        const auto up =
            simnet::treeChannelIds(graph, embedding, 0, false);
        std::vector<int> out;
        std::set_difference(down.begin(), down.end(), up.begin(),
                            up.end(), std::back_inserter(out));
        return out;
    }
};

TEST_F(Dgx1Analysis, TwoPhaseLeavesDownChannelsIdleOverlappedDoesNot)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt =
        topo::makeDgx1DoubleTree(graph);
    const double bytes = 64.0 * (1 << 20);
    const std::vector<int> down = downOnlyChannels(graph, dt.tree0);
    ASSERT_FALSE(down.empty());

    obs::TraceRecorder& recorder = obs::TraceRecorder::global();

    // Two-phase baseline: the broadcast starts only after the full
    // reduction — down channels sit idle for roughly half the run
    // (the paper's Observation #2).
    {
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        simnet::runTreeSchedule(sim, net, dt.tree0, bytes,
                                simnet::PhaseMode::kTwoPhase, 32);
    }
    const obs::TraceAnalyzer two_phase(recorder.snapshot());
    const double idle_two_phase = two_phase.idleFraction(down);
    EXPECT_GT(idle_two_phase, 0.3);

    // Overlapped (C-Cube): chunks chain straight into the broadcast;
    // down channels stream for all but the pipeline ramp.
    recorder.clear();
    {
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        simnet::runTreeSchedule(sim, net, dt.tree0, bytes,
                                simnet::PhaseMode::kOverlapped, 192);
    }
    const obs::TraceAnalyzer overlapped(recorder.snapshot());
    const double idle_overlapped = overlapped.idleFraction(down);
    EXPECT_LT(idle_overlapped, 0.05);
    EXPECT_LT(idle_overlapped, idle_two_phase);
}

TEST_F(Dgx1Analysis, FitMatchesConfiguredModelWithinTenPercent)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt =
        topo::makeDgx1DoubleTree(graph);
    const double bytes = 32.0 * (1 << 20);

    // Two runs with different chunk counts give the fit two distinct
    // transfer sizes (one size per run would leave it degenerate).
    for (int chunks : {64, 32}) {
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        const auto result = simnet::runTreeSchedule(
            sim, net, dt.tree0, bytes,
            simnet::PhaseMode::kOverlapped, chunks);
        net.closeTraceEpoch(result.completion_time);
    }
    const obs::TraceAnalyzer analyzer(
        obs::TraceRecorder::global().snapshot());
    const obs::AlphaBetaFit fit = analyzer.fitAlphaBeta();
    ASSERT_TRUE(fit.valid);

    // model::AlphaBeta defaults mirror the DGX-1 NVLink parameters.
    const model::AlphaBeta reference;
    EXPECT_LT(fit.alphaRelError(reference), 0.10);
    EXPECT_LT(fit.betaRelError(reference), 0.10);

    // The critical path must account for (at least) its whole span.
    const obs::CriticalPath path =
        analyzer.criticalPath(fit.alpha_s * 1e6);
    ASSERT_FALSE(path.empty());
    EXPECT_GT(path.breakdown.startup_us, 0.0);
    EXPECT_GT(path.breakdown.serialization_us, 0.0);
    EXPECT_GE(path.breakdown.totalUs(), path.spanUs() - 1e-6);
}

TEST_F(Dgx1Analysis, TimelinesMatchDesBusyIntervals)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt =
        topo::makeDgx1DoubleTree(graph);

    sim::Simulation sim;
    simnet::Network net(sim, graph);
    simnet::runTreeSchedule(sim, net, dt.tree0, 8.0 * (1 << 20),
                            simnet::PhaseMode::kOverlapped, 16);

    const obs::TraceAnalyzer analyzer(
        obs::TraceRecorder::global().snapshot());
    ASSERT_FALSE(analyzer.channels().empty());
    for (const obs::ChannelTimeline& timeline : analyzer.channels()) {
        // Trace-derived busy time equals the DES-side ground truth.
        const auto& intervals =
            net.channelBusyIntervals(timeline.channel);
        ASSERT_FALSE(intervals.empty());
        double des_busy_us = 0.0;
        for (const auto& [start, end] : intervals)
            des_busy_us += (end - start) * 1e6;
        EXPECT_NEAR(timeline.busy_us, des_busy_us,
                    1e-9 * des_busy_us + 1e-9);
        EXPECT_EQ(static_cast<std::uint64_t>(timeline.transfers),
                  net.channelGrants(timeline.channel));
        EXPECT_NEAR(timeline.bytes,
                    net.channelBytes(timeline.channel), 1e-6);
    }
}

} // namespace
} // namespace ccube
