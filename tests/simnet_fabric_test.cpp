/**
 * @file
 * Fabric-specific timed-network tests: cut-through switch stages,
 * lane policies, and endpoint-port contention — the modeling behind
 * the Fig. 14 scale-out runs.
 */

#include <gtest/gtest.h>

#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/transfer_engine.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/switch_fabric.h"

namespace ccube {
namespace simnet {
namespace {

constexpr double kBw = 25e9;
constexpr double kAlpha = 1e-6;

TEST(SwitchMarking, FabricMarksSwitchesOnly)
{
    topo::SwitchFabricParams params;
    params.num_nodes = 16;
    const topo::Graph g = topo::makeSwitchFabric(params);
    for (topo::NodeId n = 0; n < 16; ++n)
        EXPECT_FALSE(g.isSwitch(n));
    for (topo::NodeId n = 16; n < g.nodeCount(); ++n)
        EXPECT_TRUE(g.isSwitch(n));
}

TEST(CutThrough, SwitchRouteChargesOnlyEndpointPorts)
{
    // node0 → leaf → spine → leaf' → node1: four hops; cut-through
    // charges the two endpoint channels and adds the two middle
    // latencies as pure delay:
    //   t = (α+x) + α_mid1 + α_mid2 + (α+x)
    topo::SwitchFabricParams params;
    params.num_nodes = 16;
    params.leaf_radix = 8;
    params.links_per_node = 1;
    params.link_latency = kAlpha;
    params.switch_latency = 0.0;
    params.link_bandwidth = kBw;
    const topo::Graph g = topo::makeSwitchFabric(params);

    sim::Simulation sim;
    Network net(sim, g);
    TransferEngine engine(net);
    double done_at = -1.0;
    const double bytes = 1e6;
    engine.send(0, 15, bytes, [&]() { done_at = sim.now(); });
    sim.run();
    const double x = bytes / kBw;
    // Spine uplinks are widened (radix × bw): the exit channel into
    // node 15 is a plain endpoint link.
    const double expected =
        (kAlpha + x) + 2 * kAlpha + (kAlpha + x);
    EXPECT_NEAR(done_at, expected, expected * 1e-9);
}

TEST(CutThrough, GpuDetourStillStoresAndForwards)
{
    // A GPU transit (unmarked node) must cost two full occupancies.
    topo::Graph g("gpus");
    g.addNode("a");
    g.addNode("b");
    g.addNode("c");
    g.addLink(0, 1, kBw, kAlpha);
    g.addLink(1, 2, kBw, kAlpha);
    sim::Simulation sim;
    Network net(sim, g);
    TransferEngine engine(net);
    double done_at = -1.0;
    engine.sendAlongRoute(topo::Route{{0, 1, 2}}, 1e6,
                          [&]() { done_at = sim.now(); });
    sim.run();
    EXPECT_NEAR(done_at, 2 * (kAlpha + 1e6 / kBw), 1e-12);
}

TEST(CutThrough, EndpointPortStillContends)
{
    // Two transfers leaving the same endpoint must serialize on its
    // port even when the rest of the route cuts through.
    topo::SwitchFabricParams params;
    params.num_nodes = 16;
    params.links_per_node = 1;
    params.link_latency = kAlpha;
    params.switch_latency = 0.0;
    const topo::Graph g = topo::makeSwitchFabric(params);
    sim::Simulation sim;
    Network net(sim, g);
    TransferEngine engine(net);
    std::vector<double> done;
    engine.send(0, 15, 1e6, [&]() { done.push_back(sim.now()); });
    engine.send(0, 14, 1e6, [&]() { done.push_back(sim.now()); });
    sim.run();
    ASSERT_EQ(done.size(), 2u);
    const double x = 1e6 / kBw;
    // The second transfer's entry hold starts after the first's.
    EXPECT_GT(done[1], done[0] - 1e-12);
    EXPECT_NEAR(done[1] - done[0], kAlpha + x, (kAlpha + x) * 0.5);
}

TEST(LanePolicy, PerTreeLanesBeatPerRoleLanesOnTurnaround)
{
    // With two endpoint links, assigning each *tree* a private lane
    // (kPointToPoint) gives the first chunk an uncontended ascent —
    // the other tree's reduction traffic rides the other lane. The
    // per-role split (kSharedPort) makes both trees' reductions share
    // one lane, halving the ascent rate and delaying turnaround.
    topo::SwitchFabricParams params;
    params.num_nodes = 16;
    params.links_per_node = 2;
    params.link_latency = kAlpha;
    const topo::Graph g = topo::makeSwitchFabric(params);
    const auto dt = topo::makeMirroredDoubleTree(g, 16);
    const double bytes = 64e6;

    sim::Simulation sim_a;
    Network net_a(sim_a, g);
    const auto p2p = runDoubleTreeSchedule(
        sim_a, net_a, dt, bytes, PhaseMode::kOverlapped, 64,
        LanePolicy::kPointToPoint);

    sim::Simulation sim_b;
    Network net_b(sim_b, g);
    const auto shared = runDoubleTreeSchedule(
        sim_b, net_b, dt, bytes, PhaseMode::kOverlapped, 64,
        LanePolicy::kSharedPort);

    EXPECT_LT(p2p.turnaroundTime(), shared.turnaroundTime());
    // Completion is within ~2x either way — the policies trade
    // contention between phases, not total bandwidth.
    EXPECT_LT(p2p.completion_time, shared.completion_time * 2.0);
    EXPECT_LT(shared.completion_time, p2p.completion_time * 2.0);
}

TEST(LanePolicy, PointToPointRightForDgx1)
{
    // On the DGX-1, the point-to-point policy keeps each tree on its
    // own channel of the double links; overlap must beat two-phase.
    const topo::Graph dgx1 = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(dgx1);
    const double bytes = 64e6;

    sim::Simulation sim_a;
    Network net_a(sim_a, dgx1);
    const double base = runDoubleTreeSchedule(
                            sim_a, net_a, dt, bytes,
                            PhaseMode::kTwoPhase, 32,
                            LanePolicy::kPointToPoint)
                            .completion_time;
    sim::Simulation sim_b;
    Network net_b(sim_b, dgx1);
    const double over = runDoubleTreeSchedule(
                            sim_b, net_b, dt, bytes,
                            PhaseMode::kOverlapped, 32,
                            LanePolicy::kPointToPoint)
                            .completion_time;
    EXPECT_GT(base / over, 1.6);
}

TEST(FabricScaling, TreeCompletionGrowsLogarithmically)
{
    // Doubling the node count must add roughly one pipeline level,
    // not double the time (the tree's O(log P) scalability).
    const double bytes = 8e6;
    double prev = 0.0;
    for (int p : {16, 32, 64, 128}) {
        topo::SwitchFabricParams params;
        params.num_nodes = p;
        params.link_latency = kAlpha;
        const topo::Graph g = topo::makeSwitchFabric(params);
        const auto dt = topo::makeMirroredDoubleTree(g, p);
        sim::Simulation sim;
        Network net(sim, g);
        const double t = runDoubleTreeSchedule(
                             sim, net, dt, bytes,
                             PhaseMode::kOverlapped, 16,
                             LanePolicy::kSharedPort)
                             .completion_time;
        if (prev > 0.0) {
            EXPECT_LT(t, prev * 1.5) << "p=" << p;
        }
        prev = t;
    }
}

} // namespace
} // namespace simnet
} // namespace ccube
