#ifndef CCUBE_TOPO_HEALTH_H_
#define CCUBE_TOPO_HEALTH_H_

/**
 * @file
 * Per-channel health scoring for fault churn.
 *
 * A single failure is easy: remove the channel, re-plan. Real fabrics
 * *flap* — a marginal NVLink fails, restores, and fails again — and a
 * planner that eagerly re-admits every restored link thrashes between
 * embeddings. This tracker keeps an EWMA health score per channel fed
 * by fail/restore/degrade events plus a probation window on restore,
 * so the resilience supervisor can (a) exclude flapping links from
 * re-embedding even while they are nominally up, and (b) climb the
 * recovery ladder back to the C-Cube embedding only once a restored
 * link has stayed healthy through a configurable number of successful
 * collectives.
 *
 * Channel ids are the ids of the ORIGINAL graph the tracker was sized
 * for. topo::withoutChannels re-densifies ids on the survivor graph,
 * so callers must score/exclude in original-id space and only then
 * translate into a failed-channel list for recoverSchedule.
 */

#include <cstdint>
#include <vector>

namespace ccube {
namespace topo {

/** Knobs for ChannelHealthTracker. */
struct HealthOptions {
    /** EWMA step: score ← score + alpha·(target − score). */
    double ewma_alpha = 0.35;

    /** Score below which an up channel is still quarantined. */
    double quarantine_threshold = 0.5;

    /** Successful collectives a restored channel must sit out before
     *  it becomes eligible for re-admission. */
    int probation_runs = 3;

    /** Fail events at or above this count mark the channel flapping
     *  (its probation is doubled on every subsequent restore). */
    int flap_limit = 3;
};

/**
 * EWMA health score + probation state for every channel of a graph.
 * Not thread-safe; the supervisor serializes event feeds and runs.
 */
class ChannelHealthTracker
{
  public:
    explicit ChannelHealthTracker(int num_channels,
                                  HealthOptions options = {});

    int numChannels() const
    {
        return static_cast<int>(channels_.size());
    }

    const HealthOptions& options() const { return options_; }

    // ---- event feed (fabric side) ----

    /** Channel went down. Score decays toward 0. */
    void noteFail(int channel);

    /** Channel came back. Starts the probation window (doubled for a
     *  flapping channel); the score is NOT restored — only successful
     *  runs rebuild it. */
    void noteRestore(int channel);

    /** Channel degraded to @p factor of nominal bandwidth (< 1). The
     *  score decays half a step — degraded-but-alive is suspicious,
     *  not fatal. */
    void noteDegrade(int channel, double factor);

    /** One collective completed successfully. Advances probation and
     *  rebuilds the score of every channel that is up. */
    void noteRunSuccess();

    // ---- queries (planner side) ----

    /** EWMA health in [0, 1]; 1 = never faulted. */
    double score(int channel) const;

    /** Whether the channel is currently down. */
    bool failed(int channel) const;

    /** Up, but still serving its post-restore probation window. */
    bool onProbation(int channel) const;

    /** Up and past probation, but score below the quarantine
     *  threshold: a flapping link the planner must keep avoiding. */
    bool quarantined(int channel) const;

    /** Fail events seen for the channel. */
    int failCount(int channel) const;

    /** True once failCount reached HealthOptions::flap_limit. */
    bool flapping(int channel) const;

    /**
     * Channels the planner must avoid: down ∪ on-probation ∪
     * quarantined. This is the failed-channel list handed to
     * core::recoverSchedule (original-graph ids, both directions —
     * callers feed both directed ids of a failed link).
     */
    std::vector<int> excludedChannels() const;

    /** True when a channel left the excluded set since the last call
     *  to excludedChannels() was taken — i.e. a re-plan could climb
     *  the ladder. Purely a convenience for the supervisor. */
    bool anyReadmittable(const std::vector<int>& previous_excluded)
        const;

  private:
    struct Channel {
        bool up = true;
        double score = 1.0;
        int probation_left = 0;
        int fail_count = 0;
    };

    bool excludedLocked(const Channel& channel) const;

    HealthOptions options_;
    std::vector<Channel> channels_;
};

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_HEALTH_H_
