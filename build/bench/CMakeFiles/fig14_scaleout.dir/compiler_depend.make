# Empty compiler generated dependencies file for fig14_scaleout.
# This may be replaced when dependencies are built.
