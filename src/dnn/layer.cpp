#include "dnn/layer.h"

namespace ccube {
namespace dnn {

Layer
Layer::conv(std::string name, const ConvShape& shape)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kConv;
    layer.param_count = shape.params();
    layer.forward_flops_per_sample = shape.flopsPerSample();
    layer.output_elems_per_sample = shape.outputElemsPerSample();
    layer.input_elems_per_sample =
        static_cast<std::int64_t>(shape.in_size) * shape.in_size *
        shape.in_channels;
    return layer;
}

Layer
Layer::fc(std::string name, const FcShape& shape)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kFc;
    layer.param_count = shape.params();
    layer.forward_flops_per_sample = shape.flopsPerSample();
    layer.output_elems_per_sample = shape.outputElemsPerSample();
    layer.input_elems_per_sample = shape.in_features;
    return layer;
}

Layer
Layer::pool(std::string name, const PoolShape& shape)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kPool;
    layer.param_count = 0;
    layer.forward_flops_per_sample = shape.flopsPerSample();
    layer.output_elems_per_sample = shape.outputElemsPerSample();
    layer.input_elems_per_sample =
        static_cast<std::int64_t>(shape.in_size) * shape.in_size *
        shape.channels;
    return layer;
}

Layer
Layer::embedding(std::string name, const EmbeddingShape& shape)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kEmbedding;
    layer.param_count = shape.params();
    layer.forward_flops_per_sample = shape.flopsPerSample();
    layer.output_elems_per_sample = shape.outputElemsPerSample();
    layer.input_elems_per_sample = shape.lookups_per_sample;
    return layer;
}

Layer
Layer::norm(std::string name, int channels, int size)
{
    Layer layer;
    layer.name = std::move(name);
    layer.kind = LayerKind::kNorm;
    layer.param_count = 2 * static_cast<std::int64_t>(channels);
    const std::int64_t elems =
        static_cast<std::int64_t>(size) * size * channels;
    layer.forward_flops_per_sample = 4 * elems;
    layer.output_elems_per_sample = elems;
    layer.input_elems_per_sample = elems;
    return layer;
}

} // namespace dnn
} // namespace ccube
