#include "ccl/tuner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "model/overlapped_tree_model.h"
#include "model/ring_model.h"
#include "model/tree_model.h"
#include "obs/metrics.h"
#include "sweep/sweep.h"
#include "topo/graph.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

/** Size buckets: powers of two from 64 B to 256 MiB. */
constexpr int kMinLog2 = 6;
constexpr int kMaxLog2 = 28;
constexpr int kNumBuckets = kMaxLog2 - kMinLog2 + 1;

constexpr AllReduceAlgorithm kAlgorithms[] = {
    AllReduceAlgorithm::kRing,
    AllReduceAlgorithm::kTree,
    AllReduceAlgorithm::kOverlappedTree,
    AllReduceAlgorithm::kDoubleTree,
    AllReduceAlgorithm::kCCubeDoubleTree,
};
constexpr int kNumAlgorithms =
    static_cast<int>(sizeof(kAlgorithms) / sizeof(kAlgorithms[0]));

constexpr Protocol kProtocols[] = {Protocol::kSimple, Protocol::kLL};

int
bucketFor(double bytes)
{
    if (bytes <= static_cast<double>(1ull << kMinLog2))
        return 0;
    const int b = static_cast<int>(std::floor(std::log2(bytes)));
    return std::clamp(b, kMinLog2, kMaxLog2) - kMinLog2;
}

/** Representative size: the bucket's geometric middle, 1.5·2^b. */
double
bucketBytes(int bucket)
{
    return 1.5 * static_cast<double>(1ull << (kMinLog2 + bucket));
}

std::string
humanBytes(double bytes)
{
    std::ostringstream out;
    if (bytes >= 1024.0 * 1024.0)
        out << bytes / (1024.0 * 1024.0) << "MiB";
    else if (bytes >= 1024.0)
        out << bytes / 1024.0 << "KiB";
    else
        out << bytes << "B";
    return out.str();
}

/**
 * The channel model the table is computed against: the slowest NVLink
 * channel (bottleneck link) of the topology. Purely a function of the
 * graph — no clocks — so tables are deterministic.
 */
model::AlphaBeta
baseLink(const topo::Graph& graph)
{
    double min_bw = 0.0;
    double max_lat = 0.0;
    bool found = false;
    for (const topo::ChannelDesc& channel : graph.channels()) {
        if (channel.kind != topo::LinkKind::kNvlink)
            continue;
        if (!found || channel.bandwidth < min_bw)
            min_bw = channel.bandwidth;
        max_lat = std::max(max_lat, channel.latency);
        found = true;
    }
    if (!found || min_bw <= 0.0)
        return model::AlphaBeta{};
    return model::AlphaBeta::fromBandwidth(max_lat, min_bw);
}

/**
 * Cache key half: a signature of the topology *shape* — name, node
 * and channel counts, and the bottleneck link parameters. Two graphs
 * with the same signature tune identically.
 */
std::string
topologySignature(const topo::Graph& graph)
{
    const model::AlphaBeta link = baseLink(graph);
    std::ostringstream out;
    out << graph.name() << "#n" << graph.nodeCount() << "#c"
        << graph.channelCount() << "#a" << link.alpha << "#b"
        << link.beta;
    return out.str();
}

/** Model-predicted completion (seconds) and the chunk count used. */
double
predictSeconds(AllReduceAlgorithm algorithm, const model::AlphaBeta& link,
               int p, double bytes, int* num_chunks)
{
    const int pm = std::max(p, 2);
    int chunks = 1;
    double t = 0.0;
    switch (algorithm) {
    case AllReduceAlgorithm::kRing: {
        t = model::RingModel(link).allReduceTime(pm, bytes);
        chunks = pm; // the ring's P slices
        break;
    }
    case AllReduceAlgorithm::kTree: {
        model::TreeModel tree(link);
        chunks = tree.optimalChunksInt(pm, bytes);
        t = tree.allReduceTimeChunked(pm, bytes, chunks);
        break;
    }
    case AllReduceAlgorithm::kOverlappedTree: {
        chunks = model::TreeModel(link).optimalChunksInt(pm, bytes);
        t = model::OverlappedTreeModel(link).allReduceTimeChunked(
            pm, bytes, chunks);
        break;
    }
    case AllReduceAlgorithm::kDoubleTree: {
        // Two trees carry half each, concurrently on disjoint lanes.
        model::TreeModel tree(link);
        chunks = tree.optimalChunksInt(pm, bytes / 2.0);
        t = tree.allReduceTimeChunked(pm, bytes / 2.0, chunks);
        break;
    }
    case AllReduceAlgorithm::kCCubeDoubleTree: {
        chunks = model::TreeModel(link).optimalChunksInt(pm,
                                                         bytes / 2.0);
        t = model::OverlappedTreeModel(link).allReduceTimeChunked(
            pm, bytes / 2.0, chunks);
        break;
    }
    }
    if (num_chunks != nullptr)
        *num_chunks = std::clamp(chunks, 1, 64);
    return t;
}

bool
measureEnabled()
{
    const char* env = std::getenv("CCUBE_TUNER_MEASURE");
    return env != nullptr && std::strcmp(env, "1") == 0 &&
           !sweep::inSweepTask();
}

/**
 * Wall-clock nanoseconds of one functional AllReduce (after one
 * warmup) at the given cell — the measurement refinement. Returns
 * infinity when the algorithm cannot run on this topology.
 */
double
measureNs(const topo::Graph& graph, int p, std::size_t elems,
          AllReduceAlgorithm algorithm, int num_chunks, Protocol proto)
{
    try {
        Communicator comm(p);
        RankBuffers buffers(
            static_cast<std::size_t>(p),
            std::vector<float>(std::max<std::size_t>(elems, 1), 1.0f));
        AllReduceOptions options;
        options.algorithm = algorithm;
        options.num_chunks = num_chunks;
        options.protocol = proto;
        allReduce(comm, buffers, graph, options); // warmup
        const auto start = std::chrono::steady_clock::now();
        allReduce(comm, buffers, graph, options);
        const auto end = std::chrono::steady_clock::now();
        return static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count());
    } catch (...) {
        return std::numeric_limits<double>::infinity();
    }
}

} // namespace

const char*
algorithmName(AllReduceAlgorithm algorithm)
{
    switch (algorithm) {
    case AllReduceAlgorithm::kRing:
        return "ring";
    case AllReduceAlgorithm::kTree:
        return "tree";
    case AllReduceAlgorithm::kOverlappedTree:
        return "overlapped_tree";
    case AllReduceAlgorithm::kDoubleTree:
        return "double_tree";
    case AllReduceAlgorithm::kCCubeDoubleTree:
        return "ccube_double_tree";
    }
    return "?";
}

Tuner&
Tuner::global()
{
    static Tuner instance;
    return instance;
}

Tuner::Table&
Tuner::tableFor(const topo::Graph& graph, int p)
{
    // Caller holds mutex_.
    const std::pair<std::string, int> key{topologySignature(graph), p};
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    Table table;
    table.link = baseLink(graph);
    table.buckets.resize(static_cast<std::size_t>(kNumBuckets));
    for (int b = 0; b < kNumBuckets; ++b) {
        Cell& cell = table.buckets[static_cast<std::size_t>(b)];
        cell.proto_by_alg.assign(static_cast<std::size_t>(kNumAlgorithms),
                                 Protocol::kSimple);
        const double bytes = bucketBytes(b);
        double best_time = std::numeric_limits<double>::infinity();
        for (int a = 0; a < kNumAlgorithms; ++a) {
            const AllReduceAlgorithm algorithm =
                kAlgorithms[static_cast<std::size_t>(a)];
            double alg_best = std::numeric_limits<double>::infinity();
            for (Protocol proto : kProtocols) {
                const ProtocolCosts costs = protocolCosts(proto);
                const model::AlphaBeta link = model::applyProtocol(
                    table.link, costs.payload_factor,
                    costs.alpha_factor);
                int chunks = 1;
                const double t = predictSeconds(algorithm, link, p,
                                                bytes, &chunks);
                if (t < alg_best) {
                    alg_best = t;
                    cell.proto_by_alg[static_cast<std::size_t>(a)] =
                        proto;
                }
                if (t < best_time) {
                    best_time = t;
                    cell.best.algorithm = algorithm;
                    cell.best.protocol = proto;
                    cell.best.num_chunks = chunks;
                    cell.best.predicted_us = t * 1e6;
                }
            }
        }
    }
    return cache_.emplace(key, std::move(table)).first->second;
}

TunerChoice
Tuner::choose(const topo::Graph& graph, int p, std::size_t elems)
{
    const double bytes =
        static_cast<double>(elems) * sizeof(float);
    TunerChoice choice;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Table& table = tableFor(graph, p);
        Cell& cell = table.buckets[static_cast<std::size_t>(
            bucketFor(bytes))];
        choice = cell.best;
    }
    // Measurement refinement (opt-in, never inside a sweep task):
    // time the two protocols for the model's algorithm pick and keep
    // the faster — overriding the model where reality disagrees.
    if (measureEnabled() && elems > 0) {
        const double simple_ns =
            measureNs(graph, p, elems, choice.algorithm,
                      choice.num_chunks, Protocol::kSimple);
        const double ll_ns =
            measureNs(graph, p, elems, choice.algorithm,
                      choice.num_chunks, Protocol::kLL);
        if (std::isfinite(simple_ns) || std::isfinite(ll_ns)) {
            const Protocol measured = ll_ns < simple_ns
                                          ? Protocol::kLL
                                          : Protocol::kSimple;
            std::lock_guard<std::mutex> lock(mutex_);
            Table& table = tableFor(graph, p);
            Cell& cell = table.buckets[static_cast<std::size_t>(
                bucketFor(bytes))];
            cell.best.protocol = measured;
            cell.measured = true;
            choice = cell.best;
        }
    }
    // Never split finer than the buffer has elements.
    if (elems > 0)
        choice.num_chunks = std::min(
            choice.num_chunks,
            static_cast<int>(std::min<std::size_t>(elems, 64)));
    return choice;
}

Protocol
Tuner::chooseProtocol(const topo::Graph& graph, int p, std::size_t elems,
                      AllReduceAlgorithm algorithm)
{
    const double bytes =
        static_cast<double>(elems) * sizeof(float);
    std::lock_guard<std::mutex> lock(mutex_);
    Table& table = tableFor(graph, p);
    const Cell& cell =
        table.buckets[static_cast<std::size_t>(bucketFor(bytes))];
    const int a = static_cast<int>(algorithm);
    if (a < 0 || a >= kNumAlgorithms)
        return Protocol::kSimple;
    return cell.proto_by_alg[static_cast<std::size_t>(a)];
}

std::string
Tuner::formatTable(const topo::Graph& graph, int p)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Table& table = tableFor(graph, p);
    std::ostringstream out;
    out << "# tuner table topo=" << graph.name() << " p=" << p
        << " alpha=" << table.link.alpha << "s beta=" << table.link.beta
        << "s/B\n";
    out << "# columns: per-algorithm protocol pick, then the best "
           "(algorithm x protocol x chunks) cell\n";
    out << "bucket";
    for (int a = 0; a < kNumAlgorithms; ++a)
        out << "\t"
            << algorithmName(kAlgorithms[static_cast<std::size_t>(a)]);
    out << "\tbest\tproto\tchunks\tpred_us\n";
    for (int b = 0; b < kNumBuckets; ++b) {
        const Cell& cell = table.buckets[static_cast<std::size_t>(b)];
        out << humanBytes(static_cast<double>(1ull << (kMinLog2 + b)));
        for (int a = 0; a < kNumAlgorithms; ++a)
            out << "\t"
                << protocolName(
                       cell.proto_by_alg[static_cast<std::size_t>(a)]);
        out << "\t" << algorithmName(cell.best.algorithm) << "\t"
            << protocolName(cell.best.protocol) << "\t"
            << cell.best.num_chunks << "\t" << cell.best.predicted_us
            << (cell.measured ? "\t(measured)" : "") << "\n";
    }
    return out.str();
}

void
Tuner::clearCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
}

AllReduceTrace
Communicator::runAuto(RankBuffers& buffers, const topo::Graph& graph)
{
    const std::size_t elems = buffers.empty() ? 0 : buffers[0].size();
    TunerChoice cell = Tuner::global().choose(graph, numRanks(), elems);
    // CCUBE_CCL_PROTO=ll|simple overrides the tuner's protocol (auto,
    // the default for runAuto, keeps the table's pick).
    const char* env = std::getenv("CCUBE_CCL_PROTO");
    if (env != nullptr && std::strcmp(env, "auto") != 0)
        cell.protocol = protocolFromEnv();
    obs::MetricRegistry& metrics = obs::MetricRegistry::global();
    metrics.addCounter(std::string("ccl.tuner.alg.") +
                           algorithmName(cell.algorithm),
                       1.0);
    metrics.addCounter(std::string("ccl.tuner.proto.") +
                           protocolName(cell.protocol),
                       1.0);
    AllReduceOptions options;
    options.algorithm = cell.algorithm;
    options.num_chunks = cell.num_chunks;
    options.protocol = cell.protocol;
    return allReduce(*this, buffers, graph, options);
}

} // namespace ccl
} // namespace ccube
