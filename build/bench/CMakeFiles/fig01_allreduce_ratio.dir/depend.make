# Empty dependencies file for fig01_allreduce_ratio.
# This may be replaced when dependencies are built.
