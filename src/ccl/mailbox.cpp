#include "ccl/mailbox.h"

#include <utility>

#include "ccl/fault.h"
#include "ccl/reduce_kernels.h"
#include "obs/context.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

/** Span pid/tid for the calling thread (rank-attributed). */
int
spanPid()
{
    return obs::pids::cclRank(obs::threadRank());
}

} // namespace

Mailbox::Mailbox(int slots)
    : ring_(static_cast<std::size_t>(slots)),
      full_(slots, 0),
      empty_(slots, slots)
{
    CCUBE_CHECK(slots >= 1, "mailbox needs at least one slot");
}

void
Mailbox::reserve(std::size_t elems)
{
    for (Slot& slot : ring_) {
        if (slot.data.size() < elems)
            slot.data.resize(elems);
    }
}

void
Mailbox::setTraceLabel(std::string label)
{
    trace_label_ = std::move(label);
}

void
Mailbox::reset()
{
    for (Slot& slot : ring_) {
        slot.size = 0;
        slot.tag = 0;
    }
    full_.reset(0);
    empty_.reset(slots());
    head_ = 0;
    tail_ = 0;
    front_claimed_ = false;
    post_seq_ = 0;
    wait_seq_ = 0;
    delivered_.reset();
}

void
Mailbox::setFlowId(int flow)
{
    flow_ = flow;
}

void
Mailbox::setEndpoints(int src, int dst)
{
    src_ = src;
    dst_ = dst;
}

void
Mailbox::send(std::span<const float> data, int tag)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxPost);
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)

    obs::RankCounters& counters = obs::RankCounters::global();
    counters.addMailboxSend();
    // Flow control (paper Fig. 11): all receive buffers occupied means
    // the producer stalls until the consumer frees one. The snapshot
    // is racy but only feeds telemetry, never the protocol.
    const bool stalled = empty_.value() == 0;
    if (stalled)
        counters.addSlotFullStall();

    const std::int64_t seq = post_seq_++;
    // A producer stalled on a full ring is waiting for the consumer
    // (dst_) to free a slot — that is its wait-for edge.
    if (fault != nullptr)
        fault->noteWaitBegin(trace_label_.c_str(), flow_, dst_);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "post " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("bytes", static_cast<double>(data.size() *
                                              sizeof(float)));
        span.arg("stalled", stalled ? 1.0 : 0.0);
        span.arg("seq", static_cast<double>(seq));
        empty_.wait(); // block while all receive buffers are occupied
    } else {
        empty_.wait();
    }
    if (fault != nullptr) {
        fault->noteWaitEnd();
        fault->notePosted(seq);
    }
    Slot& slot = ring_[head_];
    // Fixed-capacity fast path: the slot buffer grows at most once per
    // high-water chunk size and is then reused verbatim.
    if (slot.data.size() < data.size())
        slot.data.resize(data.size());
    kernels::copyInto(slot.data.data(), data.data(), data.size());
    slot.size = data.size();
    slot.tag = tag;
    head_ = (head_ + 1) % ring_.size();
    full_.post(); // signal arrival (paper: post on chunk arrival)
}

template <typename Fn>
int
Mailbox::consumeSlot(Fn&& consume)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)

    obs::RankCounters::global().addMailboxRecv();
    const std::int64_t seq = wait_seq_++;
    // A consumer blocked on an empty ring is waiting for the
    // producer (src_) to post a chunk.
    if (fault != nullptr)
        fault->noteWaitBegin(trace_label_.c_str(), flow_, src_);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "wait " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("seq", static_cast<double>(seq));
        full_.wait();
    } else {
        full_.wait();
    }
    if (fault != nullptr)
        fault->noteWaitEnd();
    Slot& slot = ring_[tail_];
    const int tag = slot.tag;
    consume(slot);
    finishConsume();
    return tag;
}

void
Mailbox::noteOpBegin(OpKind kind)
{
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->onMailboxOp(trace_label_, flow_); // may throw (injector)
    obs::RankCounters& counters = obs::RankCounters::global();
    if (kind == OpKind::kSend)
        counters.addMailboxSend();
    else
        counters.addMailboxRecv();
}

bool
Mailbox::trySend(std::span<const float> data, int tag)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxPost);
    if (!empty_.tryWait())
        return false;
    // A slot is claimed — from here this is the tail of send():
    // stamp the post sequence, trace the post span (zero wait time on
    // this path, but the seq arg keeps post/wait edge pairing alive in
    // the analyzer), copy, publish.
    const std::int64_t seq = post_seq_++;
    CommFaultContext* fault = CommFaultContext::current();
    if (fault != nullptr)
        fault->notePosted(seq);
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (recorder.enabled()) {
        obs::ScopedSpan span(recorder, "post " + trace_label_,
                             "ccl.mailbox", spanPid(),
                             obs::threadTrack());
        span.arg("bytes", static_cast<double>(data.size() *
                                              sizeof(float)));
        span.arg("stalled", 0.0);
        span.arg("seq", static_cast<double>(seq));
    }
    Slot& slot = ring_[head_];
    if (slot.data.size() < data.size())
        slot.data.resize(data.size());
    kernels::copyInto(slot.data.data(), data.data(), data.size());
    slot.size = data.size();
    slot.tag = tag;
    head_ = (head_ + 1) % ring_.size();
    full_.post();
    return true;
}

void
Mailbox::finishConsume()
{
    tail_ = (tail_ + 1) % ring_.size();
    empty_.post();
    delivered_.post();
}

namespace {

/** Emits the consumer-side "wait" span for a non-blocking receive. */
void
traceTryWaitSpan(const std::string& label, std::int64_t seq)
{
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (!recorder.enabled())
        return;
    obs::ScopedSpan span(recorder, "wait " + label, "ccl.mailbox",
                         spanPid(), obs::threadTrack());
    span.arg("seq", static_cast<double>(seq));
}

} // namespace

bool
Mailbox::tryRecvInto(std::span<float> out, int* tag)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    if (!full_.tryWait())
        return false;
    traceTryWaitSpan(trace_label_, wait_seq_++);
    Slot& slot = ring_[tail_];
    CCUBE_CHECK(slot.size == out.size(),
                "chunk size mismatch: " << slot.size << " vs "
                                        << out.size());
    kernels::copyInto(out.data(), slot.data.data(), slot.size);
    if (tag != nullptr)
        *tag = slot.tag;
    finishConsume();
    return true;
}

bool
Mailbox::tryRecvReduce(std::span<float> out, int* tag)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    if (!full_.tryWait())
        return false;
    traceTryWaitSpan(trace_label_, wait_seq_++);
    Slot& slot = ring_[tail_];
    CCUBE_CHECK(slot.size == out.size(),
                "chunk size mismatch: " << slot.size << " vs "
                                        << out.size());
    kernels::reduceAdd(out.data(), slot.data.data(), slot.size);
    if (tag != nullptr)
        *tag = slot.tag;
    finishConsume();
    return true;
}

bool
Mailbox::tryPeek(std::span<const float>* data, int* tag)
{
    obs::ScopedProfPhase prof(obs::ProfPhase::kMailboxWait);
    // Idempotent while the front is claimed: a forwarder that parked
    // on downstream capacity re-peeks the same chunk on resume.
    if (!front_claimed_) {
        if (!full_.tryWait())
            return false;
        traceTryWaitSpan(trace_label_, wait_seq_++);
        front_claimed_ = true;
    }
    Slot& slot = ring_[tail_];
    if (data != nullptr)
        *data = std::span<const float>(slot.data.data(), slot.size);
    if (tag != nullptr)
        *tag = slot.tag;
    return true;
}

void
Mailbox::releaseFront()
{
    CCUBE_CHECK(front_claimed_, "releaseFront without tryPeek");
    front_claimed_ = false;
    finishConsume();
}

int
Mailbox::recv(std::vector<float>& out)
{
    return consumeSlot([&](Slot& slot) {
        // Copy out, keep the slot buffer (its capacity is the whole
        // point of the preallocated ring).
        out.resize(slot.size);
        kernels::copyInto(out.data(), slot.data.data(), slot.size);
    });
}

int
Mailbox::recvInto(std::span<float> out)
{
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.size == out.size(),
                    "chunk size mismatch: " << slot.size << " vs "
                                            << out.size());
        kernels::copyInto(out.data(), slot.data.data(), slot.size);
    });
}

int
Mailbox::recvReduce(std::span<float> out)
{
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.size == out.size(),
                    "chunk size mismatch: " << slot.size << " vs "
                                            << out.size());
        kernels::reduceAdd(out.data(), slot.data.data(), slot.size);
    });
}

int
Mailbox::consume(const Visitor& visit)
{
    return consumeSlot([&](Slot& slot) {
        visit(std::span<const float>(slot.data.data(), slot.size),
              slot.tag);
    });
}

} // namespace ccl
} // namespace ccube
