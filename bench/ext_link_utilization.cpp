/**
 * @file
 * Extension: per-channel utilization of the DGX-1 during AllReduce —
 * making Observation #2 visible. During the baseline's reduction
 * phase the tree's "downlinks" sit idle (and vice versa during
 * broadcast), so no channel can exceed ~50% utilization; the
 * overlapped algorithm drives both directions at once.
 *
 * This harness always enables the global trace recorder and runs the
 * obs::TraceAnalyzer over each schedule's spans, printing the
 * per-direction channel-class idle fractions and the critical-path
 * cost breakdown next to the raw DES utilization counters.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "obs/analyze.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

struct Utilization {
    double completion = 0.0;
    util::RunningStats used_channels; ///< utilization of busy channels
    double max_utilization = 0.0;
    std::vector<obs::TraceEvent> events; ///< this run's spans only
};

Utilization
measure(simnet::PhaseMode mode, const std::string& metric_prefix)
{
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    const std::size_t events_before = recorder.eventCount();

    const topo::Graph graph = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(graph);
    sim::Simulation sim;
    simnet::Network net(sim, graph);
    const auto result = simnet::runDoubleTreeSchedule(
        sim, net, dt, util::mib(64), mode, 32);

    Utilization u;
    u.completion = result.completion_time;
    for (int id = 0; id < graph.channelCount(); ++id) {
        const double busy = net.channelBusyTime(id);
        if (busy <= 0.0)
            continue; // channel unused by the embedding
        const double utilization = busy / result.completion_time;
        u.used_channels.add(utilization);
        u.max_utilization = std::max(u.max_utilization, utilization);
    }
    net.closeTraceEpoch(result.completion_time);
    obs::MetricRegistry& registry = obs::MetricRegistry::global();
    if (registry.enabled())
        net.exportMetrics(registry, result.completion_time,
                          metric_prefix);

    std::vector<obs::TraceEvent> all = recorder.snapshot();
    u.events.assign(
        all.begin() + static_cast<std::ptrdiff_t>(events_before),
        all.end());
    return u;
}

/** One channel-class row per (tree, direction) of the double tree. */
void
addTreeClassRows(util::Table& table, const std::string& schedule,
                 const obs::TraceAnalyzer& analyzer)
{
    const topo::Graph graph = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(graph);
    // kPointToPoint lane policy: tree i keeps lane i both ways.
    core::addChannelClassRow(
        table, schedule, "tree0 up", analyzer,
        simnet::treeChannelIds(graph, dt.tree0, 0, false));
    core::addChannelClassRow(
        table, schedule, "tree0 down", analyzer,
        simnet::treeChannelIds(graph, dt.tree0, 0, true));
    core::addChannelClassRow(
        table, schedule, "tree1 up", analyzer,
        simnet::treeChannelIds(graph, dt.tree1, 1, false));
    core::addChannelClassRow(
        table, schedule, "tree1 down", analyzer,
        simnet::treeChannelIds(graph, dt.tree1, 1, true));
}

} // namespace

int
main(int argc, char** argv)
{
    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);
    // The analysis below always needs spans, with or without
    // --trace-out / --report-out.
    obs::TraceRecorder::global().enable();

    std::cout << "=== Extension: NVLink channel utilization, "
                 "baseline vs overlapped double tree "
                 "(DGX-1, 64 MiB) ===\n\n";

    const Utilization base =
        measure(simnet::PhaseMode::kTwoPhase, "simnet.B");
    const Utilization over =
        measure(simnet::PhaseMode::kOverlapped, "simnet.C1");

    util::Table table({"algorithm", "completion_ms", "busy_channels",
                       "mean_utilization", "max_utilization"});
    table.addRow(
        {"B (two-phase)", util::formatDouble(base.completion * 1e3, 3),
         std::to_string(base.used_channels.count()),
         util::formatDouble(base.used_channels.mean(), 3),
         util::formatDouble(base.max_utilization, 3)});
    table.addRow(
        {"C1 (overlapped)",
         util::formatDouble(over.completion * 1e3, 3),
         std::to_string(over.used_channels.count()),
         util::formatDouble(over.used_channels.mean(), 3),
         util::formatDouble(over.max_utilization, 3)});
    table.print(std::cout);

    const obs::TraceAnalyzer base_analysis(base.events);
    const obs::TraceAnalyzer over_analysis(over.events);

    std::cout << "\nPer-direction channel classes "
                 "(trace-derived):\n";
    util::Table classes = core::makeChannelClassTable();
    addTreeClassRows(classes, "B", base_analysis);
    addTreeClassRows(classes, "C1", over_analysis);
    classes.print(std::cout);

    std::cout << "\nCritical-path attribution:\n";
    util::Table costs = core::makeCostBreakdownTable();
    core::addCostBreakdownRow(costs, "B (two-phase)",
                              base_analysis.criticalPath());
    core::addCostBreakdownRow(costs, "C1 (overlapped)",
                              over_analysis.criticalPath());
    costs.print(std::cout);

    std::cout
        << "\nObservation #2 made visible: in the two-phase baseline "
           "a channel works in only one of the two phases, capping "
           "its utilization near 50%; the overlapped algorithm's "
           "bottleneck channels approach full utilization — the same "
           "channels finish the same bytes almost twice as fast.\n";
    obs_session.finish();
    return 0;
}
