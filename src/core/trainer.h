#ifndef CCUBE_CORE_TRAINER_H_
#define CCUBE_CORE_TRAINER_H_

/**
 * @file
 * Multi-iteration training-run simulation.
 *
 * Composes steady-state iteration timelines into a full training run:
 * the first iteration has no gradients to chain against (cold start),
 * subsequent iterations pipeline backward → AllReduce → chained
 * forward exactly as Fig. 2(c). Reports per-run throughput and
 * scaling efficiency against the single-GPU baseline — the metric
 * Fig. 13 normalizes by.
 */

#include <vector>

#include "core/iteration_scheduler.h"

namespace ccube {
namespace core {

/** Summary of a simulated training run. */
struct TrainingRunResult {
    int iterations = 0;
    double total_time = 0.0;            ///< wall-clock of the run
    double cold_start_time = 0.0;       ///< first iteration (unchained)
    double steady_iteration_time = 0.0; ///< per-iteration period after
    double samples_per_second = 0.0;    ///< global throughput
    /** Throughput relative to num_gpus × single-GPU (Fig. 13's
     *  normalization). */
    double scaling_efficiency = 0.0;
};

/**
 * Simulates an @p iterations-long training run of one workload.
 */
class Trainer
{
  public:
    /** Trace track (tid) the per-iteration spans record under —
     *  distinct from TimelineBuilder's phase tracks. */
    static constexpr int kTrainerTrack = 3;

    Trainer(const IterationScheduler& scheduler, int num_gpus)
        : scheduler_(scheduler), num_gpus_(num_gpus)
    {
    }

    /** Runs @p iterations iterations in @p mode. */
    TrainingRunResult run(Mode mode, const IterationConfig& config,
                          int iterations) const;

  private:
    const IterationScheduler& scheduler_;
    int num_gpus_;
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_TRAINER_H_
