file(REMOVE_RECURSE
  "CMakeFiles/abl_embedding_search.dir/abl_embedding_search.cpp.o"
  "CMakeFiles/abl_embedding_search.dir/abl_embedding_search.cpp.o.d"
  "abl_embedding_search"
  "abl_embedding_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_embedding_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
