file(REMOVE_RECURSE
  "CMakeFiles/topo_tree_test.dir/topo_tree_test.cpp.o"
  "CMakeFiles/topo_tree_test.dir/topo_tree_test.cpp.o.d"
  "topo_tree_test"
  "topo_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
