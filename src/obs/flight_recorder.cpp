#include "obs/flight_recorder.h"

#include <utility>

#include "util/logging.h"

namespace ccube {
namespace obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity)
{
    CCUBE_CHECK(capacity >= 1, "flight recorder needs capacity >= 1");
    ring_.reserve(capacity < 4096 ? capacity : 4096);
}

void
FlightRecorder::record(TraceEvent event)
{
    std::lock_guard<std::mutex> guard(mutex_);
    ++recorded_;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
        return;
    }
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
}

std::size_t
FlightRecorder::size() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return ring_.size();
}

std::uint64_t
FlightRecorder::recorded() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return recorded_;
}

std::uint64_t
FlightRecorder::dropped() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return recorded_ - ring_.size();
}

std::vector<TraceEvent>
FlightRecorder::snapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    // Oldest first: once wrapped, next_ points at the oldest entry.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % ring_.size()]);
    return out;
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    ring_.clear();
    next_ = 0;
    recorded_ = 0;
}

} // namespace obs
} // namespace ccube
