#ifndef CCUBE_SIMNET_TRANSFER_ENGINE_H_
#define CCUBE_SIMNET_TRANSFER_ENGINE_H_

/**
 * @file
 * Multi-hop transfers: store-and-forward along a route.
 *
 * Detour routes (§IV-A) and switch-fabric paths move a chunk through
 * intermediate nodes; each segment is a full channel occupancy, which
 * is exactly how the paper's forwarding kernels behave (the chunk is
 * received into the transit GPU's memory, then re-sent).
 */

#include <map>
#include <utility>

#include "ccl/protocol.h"
#include "simnet/channel.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace simnet {

/**
 * Issues chunk transfers along physical routes.
 */
class TransferEngine
{
  public:
    explicit TransferEngine(Network& network) : net_(network) {}

    /**
     * Selects the wire protocol every subsequent send models
     * (ccl::protocolCosts): LL inflates the payload by its
     * payload_factor once per send — one inline flag word per data
     * word — and scales every fixed latency term (channel α, switch
     * transit latency) by its alpha_factor, because the receiver spins
     * on the flags directly instead of taking the fenced semaphore
     * round-trip. Simple is the identity; the default.
     */
    void setProtocol(ccl::Protocol proto)
    {
        proto_ = proto;
        costs_ = ccl::protocolCosts(proto);
    }

    /** Protocol currently modeled. */
    ccl::Protocol protocol() const { return proto_; }

    /**
     * Sends @p bytes along @p route (node sequence) hop by hop;
     * @p done fires when the final hop completes. @p lane selects
     * among parallel channels on every segment. With tracing enabled
     * each send also emits one end-to-end flow span (src pid, flow
     * track) covering queueing and every hop.
     */
    void sendAlongRoute(const topo::Route& route, double bytes,
                        DoneFn done, int lane = 0);

    /** Multi-hop sends issued (store-and-forward or cut-through). */
    std::uint64_t sendsIssued() const { return sends_issued_; }

    /** Hop-count samples, one per send. */
    const util::RunningStats& hopStats() const { return hop_stats_; }

    /**
     * Sends @p bytes from @p src to @p dst along the shortest NVLink
     * path (computed on demand and cached).
     */
    void send(topo::NodeId src, topo::NodeId dst, double bytes,
              DoneFn done, int lane = 0);

  private:
    /**
     * Runs the stage starting at hop @p index. A stage spans
     * consecutive switch hops (cut-through: only the entry and exit
     * channels are occupied; intermediate switch channels contribute
     * latency only). A non-switch transit (a GPU detour) ends a stage
     * — it stores and forwards.
     */
    void runStage(const topo::Route& route, std::size_t index,
                  double bytes, DoneFn done, int lane);

    Network& net_;
    ccl::Protocol proto_ = ccl::Protocol::kSimple;
    ccl::ProtocolCosts costs_;
    std::map<std::pair<topo::NodeId, topo::NodeId>, topo::Route>
        route_cache_;
    std::uint64_t sends_issued_ = 0;
    util::RunningStats hop_stats_;
};

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_TRANSFER_ENGINE_H_
