#include "topo/health.h"

#include <algorithm>

#include "util/logging.h"

namespace ccube {
namespace topo {

ChannelHealthTracker::ChannelHealthTracker(int num_channels,
                                           HealthOptions options)
    : options_(options),
      channels_(static_cast<std::size_t>(num_channels))
{
    CCUBE_CHECK(num_channels >= 0, "negative channel count");
    CCUBE_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
                "ewma_alpha must be in (0, 1]");
}

void
ChannelHealthTracker::noteFail(int channel)
{
    if (channel < 0 || channel >= numChannels())
        return;
    Channel& c = channels_[static_cast<std::size_t>(channel)];
    c.up = false;
    c.probation_left = 0;
    ++c.fail_count;
    c.score += options_.ewma_alpha * (0.0 - c.score);
}

void
ChannelHealthTracker::noteRestore(int channel)
{
    if (channel < 0 || channel >= numChannels())
        return;
    Channel& c = channels_[static_cast<std::size_t>(channel)];
    if (c.up)
        return; // spurious restore
    c.up = true;
    // A flapping link earns a longer sit-out: probation doubles once
    // the fail count crosses the flap limit.
    const bool flap = c.fail_count >= options_.flap_limit;
    c.probation_left =
        options_.probation_runs * (flap ? 2 : 1);
}

void
ChannelHealthTracker::noteDegrade(int channel, double factor)
{
    if (channel < 0 || channel >= numChannels())
        return;
    if (factor >= 1.0)
        return; // speed-up / restore-to-nominal is not suspicious
    Channel& c = channels_[static_cast<std::size_t>(channel)];
    c.score += 0.5 * options_.ewma_alpha * (factor - c.score);
    if (c.score < 0.0)
        c.score = 0.0;
}

void
ChannelHealthTracker::noteRunSuccess()
{
    for (Channel& c : channels_) {
        if (!c.up)
            continue;
        if (c.probation_left > 0)
            --c.probation_left;
        c.score += options_.ewma_alpha * (1.0 - c.score);
    }
}

double
ChannelHealthTracker::score(int channel) const
{
    if (channel < 0 || channel >= numChannels())
        return 1.0;
    return channels_[static_cast<std::size_t>(channel)].score;
}

bool
ChannelHealthTracker::failed(int channel) const
{
    if (channel < 0 || channel >= numChannels())
        return false;
    return !channels_[static_cast<std::size_t>(channel)].up;
}

bool
ChannelHealthTracker::onProbation(int channel) const
{
    if (channel < 0 || channel >= numChannels())
        return false;
    const Channel& c = channels_[static_cast<std::size_t>(channel)];
    return c.up && c.probation_left > 0;
}

bool
ChannelHealthTracker::quarantined(int channel) const
{
    if (channel < 0 || channel >= numChannels())
        return false;
    const Channel& c = channels_[static_cast<std::size_t>(channel)];
    return c.up && c.probation_left == 0 &&
           c.score < options_.quarantine_threshold;
}

int
ChannelHealthTracker::failCount(int channel) const
{
    if (channel < 0 || channel >= numChannels())
        return 0;
    return channels_[static_cast<std::size_t>(channel)].fail_count;
}

bool
ChannelHealthTracker::flapping(int channel) const
{
    return failCount(channel) >= options_.flap_limit;
}

bool
ChannelHealthTracker::excludedLocked(const Channel& channel) const
{
    return !channel.up || channel.probation_left > 0 ||
           channel.score < options_.quarantine_threshold;
}

std::vector<int>
ChannelHealthTracker::excludedChannels() const
{
    std::vector<int> out;
    for (std::size_t id = 0; id < channels_.size(); ++id) {
        if (excludedLocked(channels_[id]))
            out.push_back(static_cast<int>(id));
    }
    return out;
}

bool
ChannelHealthTracker::anyReadmittable(
    const std::vector<int>& previous_excluded) const
{
    for (int id : previous_excluded) {
        if (id < 0 || id >= numChannels())
            continue;
        if (!excludedLocked(channels_[static_cast<std::size_t>(id)]))
            return true;
    }
    return false;
}

} // namespace topo
} // namespace ccube
