/**
 * @file
 * Reproduces Fig. 14: scale-out simulations on a hierarchical
 * switched topology (the role ASTRA-sim plays in the paper).
 * (a) communication-performance ratio of the overlapped tree (C1)
 *     over the ring (R) as node count grows, for 16 KB / 1 MB / 64 MB;
 * (b) gradient-turnaround speedup of C1 over the baseline tree B.
 *
 * Paper shape: (a) up to ~20x for small messages (latency-bound),
 * shrinking to ~1.35x at 64 MB; tree scales past ring as P grows.
 * (b) no benefit for small chunk counts, up to ~69x (avg ~29x) for
 * large messages with hundreds of chunks.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "model/alpha_beta.h"
#include "model/tree_model.h"
#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/ring_schedule.h"
#include "simnet/tree_schedule.h"
#include "sweep/sweep.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/switch_fabric.h"
#include "util/bench_json.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

struct Fabric {
    topo::Graph graph;
    topo::DoubleTreeEmbedding double_tree;
    topo::RingEmbedding ring;
};

Fabric
makeFabric(int nodes)
{
    topo::SwitchFabricParams params;
    params.num_nodes = nodes;
    params.leaf_radix = 8;
    // Device-side persistent-kernel synchronization: much lower α
    // than host-launched transfers (the paper's chunk counts — 256
    // chunks at 64 MB — imply an α in this range via Eq. (4)).
    params.link_latency = 1.0e-6;
    topo::Graph graph = topo::makeSwitchFabric(params);
    topo::DoubleTreeEmbedding dt =
        topo::makeMirroredDoubleTree(graph, nodes);
    return Fabric{std::move(graph), std::move(dt),
                  topo::makeSequentialRing(nodes)};
}

} // namespace

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    std::cout << "=== Fig. 14: scale-out simulation on a switched "
                 "fabric ===\n\n";

    const std::vector<int> node_counts{8, 16, 32, 64, 128, 256, 512};
    const std::vector<std::pair<const char*, double>> sizes{
        {"16KB", util::kib(16)},
        {"1MB", util::mib(1)},
        {"64MB", util::mib(64)},
        {"256MB", util::mib(256)},
    };
    const model::AlphaBeta link =
        model::AlphaBeta::fromBandwidth(1.0e-6, 25e9);
    const model::TreeModel tree_model(link);

    std::vector<std::string> headers{"size \\ P"};
    for (int p : node_counts)
        headers.push_back(std::to_string(p));

    util::Table ratio_table(headers);
    util::Table turnaround_table(headers);
    util::Table analytic_table(headers);
    util::RunningStats turnaround_stats;
    util::RunningStats analytic_stats;

    // One task per (size, P) grid cell, fanned across the sweep pool;
    // each task fills its own slot, rows are assembled in grid order
    // afterwards, so the output is identical for every --jobs value.
    struct Cell {
        double ratio = 0.0;
        double ta_speedup = 0.0;
        double analytic = 0.0;
    };
    std::vector<Cell> cells(sizes.size() * node_counts.size());
    const sweep::Options pool = sweep::Options::fromFlags(flags);

    const auto sweep_start = std::chrono::steady_clock::now();
    sweep::runIndexed(pool, cells.size(), [&](std::size_t i) {
        const double bytes = sizes[i / node_counts.size()].second;
        const int p = node_counts[i % node_counts.size()];
        Fabric fabric = makeFabric(p);
        // Paper granularity: 64 MB AllReduce ⇒ 256 chunks, i.e.
        // 256 KB chunks; each tree carries half the payload.
        const int chunks = std::max(
            1, static_cast<int>(bytes / 2.0 / (256.0 * 1024.0)));

        sim::Simulation sim_r;
        simnet::Network net_r(sim_r, fabric.graph);
        const auto ring = simnet::runRingSchedule(
            sim_r, net_r, fabric.ring, bytes);

        sim::Simulation sim_c;
        simnet::Network net_c(sim_c, fabric.graph);
        const auto c1 = simnet::runDoubleTreeSchedule(
            sim_c, net_c, fabric.double_tree, bytes,
            simnet::PhaseMode::kOverlapped, chunks,
            simnet::LanePolicy::kPointToPoint);

        sim::Simulation sim_b;
        simnet::Network net_b(sim_b, fabric.graph);
        const auto base = simnet::runDoubleTreeSchedule(
            sim_b, net_b, fabric.double_tree, bytes,
            simnet::PhaseMode::kTwoPhase, chunks,
            simnet::LanePolicy::kPointToPoint);

        // Contention-free per-edge model (the paper's ASTRA-sim
        // abstraction): (2logP + K) / (2logP + 1).
        const double logp = model::log2Nodes(p);
        cells[i] = Cell{
            ring.completion_time / c1.completion_time,
            base.turnaroundTime() / c1.turnaroundTime(),
            (2.0 * logp + chunks) / (2.0 * logp + 1.0)};
    });
    const double sweep_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();

    for (std::size_t s = 0; s < sizes.size(); ++s) {
        std::vector<std::string> ratio_row{sizes[s].first};
        std::vector<std::string> ta_row{sizes[s].first};
        std::vector<std::string> an_row{sizes[s].first};
        for (std::size_t n = 0; n < node_counts.size(); ++n) {
            const Cell& cell = cells[s * node_counts.size() + n];
            ratio_row.push_back(util::formatDouble(cell.ratio, 2));
            turnaround_stats.add(cell.ta_speedup);
            ta_row.push_back(util::formatDouble(cell.ta_speedup, 1));
            analytic_stats.add(cell.analytic);
            an_row.push_back(util::formatDouble(cell.analytic, 1));
        }
        ratio_table.addRow(std::move(ratio_row));
        turnaround_table.addRow(std::move(ta_row));
        analytic_table.addRow(std::move(an_row));
    }

    // Wall-clock record for the perf gate; only when a bench output
    // is requested (wall times are inherently non-deterministic, so
    // the default run stays byte-reproducible).
    if (std::getenv("CCUBE_BENCH_OUT")) {
        util::BenchRecord record;
        record.source = "fig14_scaleout";
        record.kind = "sweep_wall_clock";
        record.name = "size_x_nodes_grid";
        record.mode = "jobs" + std::to_string(
                                   pool.effectiveJobs(cells.size()));
        record.ns_per_op = sweep_seconds * 1e9 /
                           static_cast<double>(cells.size());
        record.extra["jobs"] = pool.effectiveJobs(cells.size());
        record.extra["tasks"] = static_cast<double>(cells.size());
        record.extra["wall_seconds"] = sweep_seconds;
        util::writeBenchRecords(util::benchOutputPath(), {record},
                                /*append=*/true);
    }

    std::cout << "(a) C1 communication speedup over ring "
                 "(T_ring / T_C1):\n";
    ratio_table.print(std::cout);
    std::cout << "\n(b) gradient-turnaround speedup of C1 over B, "
                 "measured on the contended fabric:\n";
    turnaround_table.print(std::cout);
    std::cout << "\n(b') contention-free per-edge model "
                 "((2logP+K)/(2logP+1), the paper's ASTRA-sim "
                 "abstraction):\n";
    analytic_table.print(std::cout);
    std::cout << "\nTurnaround speedup, contention-free model: avg "
              << util::formatDouble(analytic_stats.mean(), 1)
              << "x, max "
              << util::formatDouble(analytic_stats.max(), 1)
              << "x (paper: avg ~29x, max ~69x; 1x for small data "
                 "with one chunk — both reproduced).\nMeasured with "
                 "endpoint-port contention: avg "
              << util::formatDouble(turnaround_stats.mean(), 1)
              << "x, max "
              << util::formatDouble(turnaround_stats.max(), 1)
              << "x — endpoint-port contention compresses the gap; "
                 "the trend over message size is identical. Each "
                 "tree rides a private endpoint lane "
                 "(LanePolicy::kPointToPoint), which measures better "
                 "than splitting lanes by phase role.\n";
    return 0;
}
