#ifndef CCUBE_UTIL_FLAGS_H_
#define CCUBE_UTIL_FLAGS_H_

/**
 * @file
 * Minimal command-line flag parser for the examples and harnesses.
 *
 * Supports `--name=value`, `--name value`, bare `--name` booleans,
 * and positional arguments. Unknown flags are kept (callers may
 * validate); values are typed on access with defaults.
 */

#include <string>
#include <vector>

namespace ccube {
namespace util {

/**
 * Parsed command line.
 */
class Flags
{
  public:
    /** Parses argv (argv[0] is skipped). */
    Flags(int argc, const char* const* argv);

    /** True when --name appeared (with or without a value). */
    bool has(const std::string& name) const;

    /** String value of --name, or @p fallback. */
    std::string get(const std::string& name,
                    const std::string& fallback = "") const;

    /** Integer value of --name, or @p fallback; dies on garbage. */
    int getInt(const std::string& name, int fallback) const;

    /** Double value of --name, or @p fallback; dies on garbage. */
    double getDouble(const std::string& name, double fallback) const;

    /** Positional (non-flag) arguments in order. */
    const std::vector<std::string>& positional() const
    {
        return positional_;
    }

    /** All flag names seen (for validation / usage messages). */
    std::vector<std::string> names() const;

  private:
    struct Entry {
        std::string name;
        std::string value;
        bool has_value = false;
    };

    const Entry* find(const std::string& name) const;

    std::vector<Entry> entries_;
    std::vector<std::string> positional_;
};

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_FLAGS_H_
