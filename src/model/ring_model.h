#ifndef CCUBE_MODEL_RING_MODEL_H_
#define CCUBE_MODEL_RING_MODEL_H_

/**
 * @file
 * Analytical cost of the ring AllReduce (paper Eqs. (1)–(2)).
 */

#include "model/alpha_beta.h"

namespace ccube {
namespace model {

/**
 * Ring AllReduce: Reduce-Scatter followed by AllGather, each P−1
 * steps of N/P-byte chunks.
 */
class RingModel
{
  public:
    explicit RingModel(AlphaBeta link) : link_(link) {}

    /** Eq. (1): (P−1)(α + βN/P). */
    double allGatherTime(int p, double bytes) const;

    /** Identical cost structure to AllGather. */
    double reduceScatterTime(int p, double bytes) const;

    /** Eq. (2): 2(P−1)α + 2((P−1)/P)βN. */
    double allReduceTime(int p, double bytes) const;

    /** Algorithm bandwidth: bytes / allReduceTime. */
    double effectiveBandwidth(int p, double bytes) const;

    /** Link parameters used by this model. */
    const AlphaBeta& link() const { return link_; }

  private:
    AlphaBeta link_;
};

} // namespace model
} // namespace ccube

#endif // CCUBE_MODEL_RING_MODEL_H_
