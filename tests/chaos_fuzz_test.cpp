/**
 * @file
 * Seeded chaos fuzzing for the resilience stack — the liveness/safety
 * gate (`ctest -L chaos`).
 *
 * Two fuzz surfaces, both driven by fixed seeds so every CI run
 * replays byte-identical fault schedules:
 *
 *  - DES: simnet::ChaosPlan generates timed fail/restore/degrade/
 *    slowdown schedules against the simulated fabric; every run must
 *    drain (liveness), completions must have every chunk delivered,
 *    and a non-completion must be attributable to a channel-fail
 *    event (safety: degrades and slowdowns alone never kill a
 *    collective).
 *
 *  - Functional: core::ResilienceSupervisor runs real threaded
 *    collectives under injected rank kills and channel-event churn,
 *    across all three engine modes and both wire protocols. Every
 *    call must return (never hang); a completion must carry the
 *    exact float sums; a non-completion must surface a structured
 *    CollectiveError message and restore the caller's original
 *    inputs bit-for-bit — never a silent wrong answer.
 *
 * Total seeded runs: 80 DES + 132 functional = 212.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/fault.h"
#include "ccl/protocol.h"
#include "core/supervisor.h"
#include "sim/simulation.h"
#include "simnet/chaos.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/fault_plan.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/graph.h"
#include "util/rng.h"
#include "util/units.h"

namespace ccube {
namespace {

using namespace std::chrono_literals;

constexpr int kRanks = 8;
constexpr std::size_t kElems = 48;

/**
 * DGX-1 NVLink fabric plus a PCIe peer ring 0-1-...-7-0 (the same
 * testbed as supervisor_test): tree embeddings route NVLink-only, so
 * NVLink-isolating one node forces the ladder past both tree rungs
 * while the PCIe ring keeps the kRing rung routable. On the stock
 * NVLink-only graph that fail set would bottom out at kNone instead,
 * and churn scenarios could never exercise the fallback ring.
 */
topo::Graph
makeTestbed()
{
    topo::Graph graph = topo::makeDgx1();
    const topo::Dgx1Params params;
    for (int g = 0; g < kRanks; ++g)
        graph.addLink(g, (g + 1) % kRanks, params.pcie_bandwidth,
                      params.pcie_latency, topo::LinkKind::kPcie);
    return graph;
}

// ------------------------------------------------------- DES surface

TEST(ChaosPlanDeterminism, SameSeedSameSchedule)
{
    const topo::Graph graph = topo::makeDgx1();
    simnet::ChaosOptions options;
    options.max_faults = 4;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const simnet::ChaosPlan a(graph, seed, options);
        const simnet::ChaosPlan b(graph, seed, options);
        ASSERT_EQ(a.eventCount(), b.eventCount()) << "seed " << seed;
        ASSERT_EQ(a.summary(), b.summary()) << "seed " << seed;
        const auto& ea = a.plan().events();
        const auto& eb = b.plan().events();
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].kind, eb[i].kind);
            EXPECT_DOUBLE_EQ(ea[i].at, eb[i].at);
            EXPECT_EQ(ea[i].channel_id, eb[i].channel_id);
            EXPECT_EQ(ea[i].node, eb[i].node);
            EXPECT_DOUBLE_EQ(ea[i].factor, eb[i].factor);
        }
        EXPECT_EQ(a.deadAtHorizon(), b.deadAtHorizon());
    }
}

TEST(ChaosFuzzDes, EightyChaosPlansNeverHangOrLieAboutCompletion)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(graph);
    const double bytes = util::mib(1);

    // Healthy completion time calibrates the chaos horizon so events
    // land mid-collective, not after the run has drained.
    sim::Simulation sim_ref;
    simnet::Network net_ref(sim_ref, graph);
    const double healthy_time =
        simnet::runDoubleTreeSchedule(sim_ref, net_ref, dt, bytes,
                                      simnet::PhaseMode::kOverlapped, 8)
            .completion_time;
    ASSERT_GT(healthy_time, 0.0);

    int completions = 0;
    int casualties = 0;
    for (std::uint64_t seed = 1; seed <= 80; ++seed) {
        SCOPED_TRACE("chaos seed " + std::to_string(seed));
        simnet::ChaosOptions options;
        options.horizon_s = healthy_time;
        options.max_faults = 3;
        const simnet::ChaosPlan chaos(graph, seed, options);

        sim::Simulation sim;
        simnet::Network net(sim, graph);
        // Liveness: the DES always drains — a hang here trips the
        // ctest timeout, which is the failure mode this guards.
        const simnet::FaultedRunResult run =
            simnet::runDoubleTreeWithFaults(
                sim, net, dt, bytes, simnet::PhaseMode::kOverlapped, 8,
                chaos.plan());

        if (run.completed) {
            ++completions;
            // Safety: "completed" means every chunk really arrived
            // everywhere — no -1.0 sentinel survives.
            for (double ready : run.result.chunk_ready)
                EXPECT_GE(ready, 0.0) << chaos.summary();
        } else {
            ++casualties;
            // A non-completion must be attributable: only channel
            // fails kill traffic (degrades/slowdowns just slow it),
            // and the network must have dropped something.
            bool had_fail = false;
            for (const simnet::FaultEvent& event :
                 chaos.plan().events())
                had_fail = had_fail ||
                           event.kind ==
                               simnet::FaultEvent::Kind::kChannelFail;
            EXPECT_TRUE(had_fail) << chaos.summary();
            EXPECT_GT(run.dropped_transfers, 0u) << chaos.summary();
        }
    }
    // The seeded mix must exercise both outcomes, or the fuzz is
    // vacuous.
    EXPECT_GT(completions, 0);
    EXPECT_GT(casualties, 0);
}

// ------------------------------------------------ functional surface

struct FuzzConfig {
    ccl::RankExecutor::Mode mode;
    ccl::Protocol proto;
    const char* name;
};

class ChaosFuzzFunctional : public ::testing::TestWithParam<FuzzConfig>
{
};

TEST_P(ChaosFuzzFunctional, SupervisedCollectivesNeverLieOrHang)
{
    const topo::Graph graph = makeTestbed();

    // Computed once: the channel set that forces the ring rung — the
    // whole NVLink fabric. (Partial kills re-plan to a PCIe-routed
    // double tree and stay on kCCube; only a fabric-wide outage drops
    // past both tree rungs onto the PCIe peer ring.)
    std::vector<int> ring_set;
    for (int id = 0; id < graph.channelCount(); ++id)
        if (graph.channel(id).kind == topo::LinkKind::kNvlink)
            ring_set.push_back(id);
    {
        core::RecoveryOptions probe;
        probe.search.num_ranks = graph.nodeCount();
        probe.search.max_attempts = 500;
        probe.search.seed = 7;
        ASSERT_EQ(core::recoverSchedule(graph, ring_set, probe).kind,
                  core::RecoveryKind::kRing);
    }
    ASSERT_FALSE(ring_set.empty());

    const FuzzConfig config = GetParam();
    int completions = 0;
    int failures = 0;
    for (std::uint64_t seed = 0; seed < 22; ++seed) {
        SCOPED_TRACE(std::string(config.name) + " seed " +
                     std::to_string(seed));
        util::Rng rng(0x9E3779B97F4A7C15ull ^ (seed * 2654435761ull));

        ccl::Communicator comm(kRanks, 4, config.mode);
        comm.setDeadline(250ms);
        ccl::FaultInjector injector;
        comm.setFaultInjector(&injector);

        core::SupervisorOptions options;
        options.proto = config.proto;
        options.recovery.search.num_ranks = graph.nodeCount();
        options.recovery.search.max_attempts = 300;
        options.recovery.search.seed = 7;
        options.backoff_base_s = 0.001;
        options.backoff_max_s = 0.005;
        options.max_retries = 3;
        options.health.probation_runs = 1;
        core::ResilienceSupervisor supervisor(comm, graph, options);

        // Scenario draw: 0-2 rank kills, sometimes ladder churn.
        const int kills = static_cast<int>(rng.uniformInt(0, 5)) - 3;
        for (int k = 0; k < kills; ++k) {
            ccl::FaultInjector::Fault fault;
            fault.rank = static_cast<int>(
                rng.uniformInt(0, kRanks - 1));
            fault.action = ccl::FaultInjector::Action::kKill;
            fault.at_op = static_cast<std::int64_t>(
                rng.uniformInt(0, 16));
            injector.arm(fault);
        }
        const bool churn = rng.uniform() < 0.3;
        if (churn)
            for (int id : ring_set)
                supervisor.noteChannelFail(id);

        // Per-rank integer constants: the reduced value is exact in
        // float, so "right answer" is bit-equality, not tolerance.
        ccl::RankBuffers buffers(kRanks);
        float expected = 0.0f;
        for (std::size_t r = 0; r < buffers.size(); ++r) {
            const float v = static_cast<float>(
                rng.uniformInt(1, 9));
            buffers[r].assign(kElems, v);
            expected += v;
        }
        const ccl::RankBuffers original = buffers;

        const core::SupervisorReport report =
            supervisor.allReduce(buffers);

        if (report.completed) {
            ++completions;
            // Safety: exact sums — a silent wrong answer fails here.
            for (std::size_t r = 0; r < buffers.size(); ++r)
                for (float v : buffers[r])
                    ASSERT_EQ(v, expected)
                        << "rank " << r << ": wrong sum";
        } else {
            ++failures;
            // Structured failure: a reason string from the
            // CollectiveError, and untouched original inputs.
            EXPECT_FALSE(report.error.empty());
            for (std::size_t r = 0; r < buffers.size(); ++r)
                ASSERT_EQ(buffers[r], original[r])
                    << "rank " << r << ": partial sums leaked";
        }

        // Churn seeds restore their links afterwards and must climb
        // back to C-Cube — re-admission under fuzz.
        if (churn && report.completed) {
            for (int id : ring_set)
                supervisor.noteChannelRestore(id);
            comm.setFaultInjector(nullptr);
            for (int run = 0; run < 2; ++run) {
                ccl::RankBuffers again = original;
                const core::SupervisorReport climb =
                    supervisor.allReduce(again);
                ASSERT_TRUE(climb.completed);
                for (std::size_t r = 0; r < again.size(); ++r)
                    for (float v : again[r])
                        ASSERT_EQ(v, expected);
            }
            EXPECT_EQ(supervisor.rung(),
                      core::RecoveryKind::kCCube);
        }
    }
    // 22 seeded runs per (mode, protocol): every one returned, and
    // the mix exercised real completions.
    EXPECT_GT(completions, 0);
    EXPECT_EQ(completions + failures, 22);
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndProtocols, ChaosFuzzFunctional,
    ::testing::Values(
        FuzzConfig{ccl::RankExecutor::Mode::kPersistent,
                   ccl::Protocol::kSimple, "persistent_simple"},
        FuzzConfig{ccl::RankExecutor::Mode::kPersistent,
                   ccl::Protocol::kLL, "persistent_ll"},
        FuzzConfig{ccl::RankExecutor::Mode::kSpawnPerCall,
                   ccl::Protocol::kSimple, "spawn_simple"},
        FuzzConfig{ccl::RankExecutor::Mode::kSpawnPerCall,
                   ccl::Protocol::kLL, "spawn_ll"},
        FuzzConfig{ccl::RankExecutor::Mode::kStateMachine,
                   ccl::Protocol::kSimple, "statemachine_simple"},
        FuzzConfig{ccl::RankExecutor::Mode::kStateMachine,
                   ccl::Protocol::kLL, "statemachine_ll"}),
    [](const ::testing::TestParamInfo<FuzzConfig>& info) {
        return info.param.name;
    });

} // namespace
} // namespace ccube
