/**
 * @file
 * Unit tests for the discrete-event simulation core: event ordering,
 * determinism, and FIFO resource serialization (DESIGN.md invariant
 * #6).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace ccube {
namespace sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(3.0, [&]() { order.push_back(3); });
    queue.schedule(1.0, [&]() { order.push_back(1); });
    queue.schedule(2.0, [&]() { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        queue.schedule(1.0, [&order, i]() { order.push_back(i); });
    queue.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(1.0, [&]() { order.push_back(2); }, /*priority=*/2);
    queue.schedule(1.0, [&]() { order.push_back(1); }, /*priority=*/1);
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1.0, [&]() {
        queue.schedule(2.0, [&]() { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(queue.now(), 2.0);
    EXPECT_EQ(queue.executedCount(), 2u);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1.0, [&]() { ++fired; });
    queue.schedule(5.0, [&]() { ++fired; });
    queue.runUntil(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(queue.now(), 2.0);
    queue.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue queue;
    queue.schedule(1.0, []() {});
    queue.run();
    queue.reset();
    EXPECT_TRUE(queue.empty());
    EXPECT_DOUBLE_EQ(queue.now(), 0.0);
    EXPECT_EQ(queue.executedCount(), 0u);
}

TEST(EventQueue, SchedulingInThePastDies)
{
    EventQueue queue;
    queue.schedule(5.0, []() {});
    queue.run();
    EXPECT_DEATH(queue.schedule(1.0, []() {}), "past");
}

TEST(Simulation, AfterIsRelative)
{
    Simulation sim;
    double fired_at = -1.0;
    sim.at(2.0, [&]() {
        sim.after(3.0, [&]() { fired_at = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, StatsAccumulate)
{
    Simulation sim;
    sim.addStat("bytes", 10.0);
    sim.addStat("bytes", 5.0);
    EXPECT_DOUBLE_EQ(sim.stat("bytes"), 15.0);
    EXPECT_DOUBLE_EQ(sim.stat("missing"), 0.0);
}

TEST(FifoResource, SerializesRequests)
{
    Simulation sim;
    FifoResource res(sim, "ch");
    std::vector<double> done_times;
    for (int i = 0; i < 3; ++i) {
        res.request([]() { return 2.0; },
                    [&]() { done_times.push_back(sim.now()); });
    }
    sim.run();
    ASSERT_EQ(done_times.size(), 3u);
    EXPECT_DOUBLE_EQ(done_times[0], 2.0);
    EXPECT_DOUBLE_EQ(done_times[1], 4.0);
    EXPECT_DOUBLE_EQ(done_times[2], 6.0);
    EXPECT_DOUBLE_EQ(res.busyTime(), 6.0);
    EXPECT_EQ(res.grants(), 3u);
}

TEST(FifoResource, OccupancyIntervalsNeverOverlap)
{
    Simulation sim;
    FifoResource res(sim, "ch");
    std::vector<std::pair<double, double>> intervals;
    for (int i = 0; i < 5; ++i) {
        const double hold = 0.5 + 0.25 * i;
        res.request(
            [&, hold]() {
                intervals.emplace_back(sim.now(), sim.now() + hold);
                return hold;
            },
            nullptr);
    }
    sim.run();
    ASSERT_EQ(intervals.size(), 5u);
    for (std::size_t i = 1; i < intervals.size(); ++i)
        EXPECT_GE(intervals[i].first, intervals[i - 1].second);
}

TEST(FifoResource, ZeroHoldIsImmediate)
{
    Simulation sim;
    FifoResource res(sim, "ch");
    bool done = false;
    res.request([]() { return 0.0; }, [&]() { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(FifoResource, InterleavesWithEvents)
{
    Simulation sim;
    FifoResource res(sim, "ch");
    std::vector<int> order;
    res.request([]() { return 3.0; }, [&]() { order.push_back(1); });
    sim.at(1.0, [&]() { order.push_back(0); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

} // namespace
} // namespace sim
} // namespace ccube
