/**
 * @file
 * Abort-path tests for the fault-tolerant collective runtime: a rank
 * killed or wedged by the FaultInjector must never hang the suite —
 * every scenario has to surface a CollectiveError naming that rank
 * within the watchdog deadline, on both executor modes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "ccl/double_tree_allreduce.h"
#include "ccl/executor.h"
#include "ccl/fault.h"
#include "ccl/sync_primitives.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"

namespace ccube {
namespace ccl {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------- timed primitives

TEST(TimedWait, WaitForTimesOutOnEmptySemaphore)
{
    BoundedSemaphore sem(2, 0);
    EXPECT_FALSE(sem.waitFor(5ms));
    sem.post();
    EXPECT_TRUE(sem.waitFor(5ms));
}

TEST(TimedWait, PostForTimesOutAtCapacity)
{
    BoundedSemaphore sem(1, 1);
    EXPECT_FALSE(sem.postFor(5ms));
    sem.wait();
    EXPECT_TRUE(sem.postFor(5ms));
}

TEST(TimedWait, LockForTimesOutOnHeldLock)
{
    SpinLock lock;
    lock.lock();
    EXPECT_FALSE(lock.lockFor(5ms));
    lock.unlock();
    EXPECT_TRUE(lock.lockFor(5ms));
    lock.unlock();
}

TEST(TimedWait, CheckForTimesOutBelowTarget)
{
    CheckableCounter counter;
    counter.post();
    EXPECT_FALSE(counter.checkFor(2, 5ms));
    counter.post();
    EXPECT_TRUE(counter.checkFor(2, 5ms));
}

// ------------------------------------------------------ abort epoch

TEST(AbortState, EpochParityAndFirstTripWins)
{
    AbortState state;
    EXPECT_FALSE(state.aborted());
    EXPECT_EQ(state.epoch() % 2, 0u);

    CollectiveError::Info first;
    first.failed_rank = 3;
    EXPECT_TRUE(state.trip(first));
    EXPECT_TRUE(state.aborted());
    EXPECT_EQ(state.epoch() % 2, 1u);

    CollectiveError::Info second;
    second.failed_rank = 5;
    EXPECT_FALSE(state.trip(second)); // first trip wins
    EXPECT_EQ(state.info().failed_rank, 3);

    state.clear();
    EXPECT_FALSE(state.aborted());
    EXPECT_EQ(state.epoch() % 2, 0u); // next generation, re-armed
    EXPECT_TRUE(state.trip(second));
    EXPECT_EQ(state.info().failed_rank, 5);
}

TEST(AbortState, AbortUnblocksASpinningWaiter)
{
    CommFaultContext context(2);
    BoundedSemaphore sem(1, 0);
    std::atomic<bool> threw{false};

    std::thread waiter([&]() {
        ScopedFaultContext scope(&context);
        try {
            sem.wait(); // would spin forever without the abort
        } catch (const AbortedWait&) {
            threw.store(true);
        }
    });
    std::this_thread::sleep_for(20ms);
    CollectiveError::Info info;
    info.failed_rank = 1;
    context.abortState().trip(info);
    waiter.join();
    EXPECT_TRUE(threw.load());
}

TEST(FaultInjector, FiresOnceAtTheArmedOperation)
{
    FaultInjector injector;
    FaultInjector::Fault armed;
    armed.rank = 2;
    armed.action = FaultInjector::Action::kKill;
    armed.at_op = 1;
    injector.arm(armed);

    FaultInjector::Fault fired;
    EXPECT_FALSE(injector.onOp(2, &fired)); // op 0: not yet
    EXPECT_TRUE(injector.onOp(2, &fired));  // op 1: fires
    EXPECT_EQ(fired.rank, 2);
    EXPECT_FALSE(injector.onOp(2, &fired)); // fires at most once
    EXPECT_EQ(injector.opsSeen(2), 3);
    EXPECT_EQ(injector.opsSeen(5), 0);
}

TEST(CommWatchdog, FiresAfterDeadlineAndDisarmBlocksCallback)
{
    CommWatchdog watchdog;
    std::atomic<int> fired{0};
    watchdog.arm(10ms, [&]() { fired.fetch_add(1); });
    std::this_thread::sleep_for(50ms);
    watchdog.disarm();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_TRUE(watchdog.fired());

    // A disarm before the deadline suppresses the callback.
    watchdog.arm(10s, [&]() { fired.fetch_add(1); });
    watchdog.disarm();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_FALSE(watchdog.fired());
}

// ------------------------------------------- collective abort paths

class FaultedCollective
    : public ::testing::TestWithParam<RankExecutor::Mode>
{
  protected:
    static constexpr int kRanks = 8;
    static constexpr auto kDeadline = 300ms;

    RankBuffers makeBuffers(std::size_t elems) const
    {
        RankBuffers buffers(kRanks);
        for (std::size_t r = 0; r < buffers.size(); ++r)
            buffers[r].assign(elems, static_cast<float>(r + 1));
        return buffers;
    }

    /**
     * Runs a double-tree AllReduce with @p fault armed and requires
     * the structured error to blame the faulted rank within (a
     * generous multiple of) the deadline instead of hanging.
     */
    void expectAbort(const FaultInjector::Fault& fault)
    {
        const topo::Graph graph = topo::makeDgx1();
        const topo::DoubleTreeEmbedding dt =
            topo::makeDgx1DoubleTree(graph);
        Communicator comm(kRanks, 4, GetParam());
        comm.setDeadline(kDeadline);
        FaultInjector injector;
        injector.arm(fault);
        comm.setFaultInjector(&injector);

        RankBuffers buffers = makeBuffers(32);
        bool caught = false;
        try {
            doubleTreeAllReduce(comm, buffers, dt, 2,
                                TreePhaseMode::kOverlapped);
        } catch (const CollectiveError& error) {
            caught = true;
            EXPECT_EQ(error.info().failed_rank, fault.rank);
            EXPECT_EQ(error.info().op, "double_tree_allreduce");
            EXPECT_GT(error.info().deadline_s, 0.0);
        }
        EXPECT_TRUE(caught) << "collective completed despite fault";

        // The abort poisons the communicator until cleared ...
        EXPECT_THROW(comm.run([](int) {}, "noop"), CollectiveError);
        // ... and clearAbort() re-arms it for the next collective.
        comm.clearAbort();
        comm.setFaultInjector(nullptr);
        // The retry only needs the watchdog as a hang backstop; the
        // tight deadline above would trip spuriously when the whole
        // suite time-shares a loaded CPU.
        comm.setDeadline(10s);
        RankBuffers retry = makeBuffers(32);
        doubleTreeAllReduce(comm, retry, dt, 2,
                            TreePhaseMode::kOverlapped);
        for (std::size_t r = 0; r < retry.size(); ++r)
            EXPECT_FLOAT_EQ(retry[r][0], 36.0f); // 1+2+...+8
    }
};

TEST_P(FaultedCollective, RankKilledBeforeFirstPost)
{
    FaultInjector::Fault fault;
    fault.rank = 3;
    fault.action = FaultInjector::Action::kKill;
    fault.at_op = 0;
    expectAbort(fault);
}

TEST_P(FaultedCollective, RankKilledMidChunk)
{
    FaultInjector::Fault fault;
    fault.rank = 3;
    fault.action = FaultInjector::Action::kKill;
    fault.at_op = 3;
    expectAbort(fault);
}

TEST_P(FaultedCollective, RankStalledDuringDoubleTreeReduce)
{
    FaultInjector::Fault fault;
    fault.rank = 5;
    fault.action = FaultInjector::Action::kStall;
    fault.at_op = 2;
    expectAbort(fault);
}

TEST_P(FaultedCollective, DelayedRankStillCompletes)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt =
        topo::makeDgx1DoubleTree(graph);
    Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(kDeadline);
    FaultInjector injector;
    FaultInjector::Fault fault;
    fault.rank = 2;
    fault.action = FaultInjector::Action::kDelay;
    fault.at_op = 1;
    fault.delay_s = 0.01; // well inside the deadline
    injector.arm(fault);
    comm.setFaultInjector(&injector);

    RankBuffers buffers = makeBuffers(32);
    doubleTreeAllReduce(comm, buffers, dt, 2,
                        TreePhaseMode::kOverlapped);
    for (std::size_t r = 0; r < buffers.size(); ++r)
        EXPECT_FLOAT_EQ(buffers[r][0], 36.0f);
}

TEST_P(FaultedCollective, ManualAbortSurfacesStructuredError)
{
    Communicator comm(kRanks, 4, GetParam());
    CollectiveError::Info info;
    info.failed_rank = 6;
    info.reason = "operator-initiated abort";
    comm.abort(info);
    bool caught = false;
    try {
        comm.run([](int) {}, "tree_broadcast");
    } catch (const CollectiveError& error) {
        caught = true;
        EXPECT_EQ(error.info().failed_rank, 6);
    }
    EXPECT_TRUE(caught);
    comm.clearAbort();
    comm.run([](int) {}, "tree_broadcast"); // usable again
}

TEST_P(FaultedCollective, AbortRacingClearNeverLeaksStaleGeneration)
{
    // Regression: clearAbort() flushes the mailboxes and then retires
    // the tripped generation. An abort() racing in between (watchdog
    // threads run concurrently) used to be able to land after the
    // flush but before the clear — the clear would retire a generation
    // whose mailboxes were never flushed, and the next collective
    // consumed a stale chunk. The epoch-checked flush loop must
    // re-flush for the new generation instead.
    Communicator comm(kRanks, 4, GetParam());

    CollectiveError::Info info;
    info.failed_rank = 1;
    info.reason = "first fault";
    comm.abort(info);

    // A chunk the dead collective posted and never consumed.
    const std::vector<float> stale(8, -1.0f);
    Mailbox& box = comm.mailbox(0, 1, 0);
    box.send(stale);

    // Simulate the race deterministically: between the flush and the
    // conditional clear, a second fault trips the next generation and
    // posts another stale chunk. Fire-once, or clearAbort() would
    // rightly loop forever on an abort storm.
    std::atomic<int> raced{0};
    comm.setClearAbortHook([&]() {
        if (raced.fetch_add(1) != 0)
            return;
        CollectiveError::Info second;
        second.failed_rank = 2;
        second.reason = "abort racing clearAbort";
        comm.abort(second);
        box.send(stale);
    });

    comm.clearAbort();
    comm.setClearAbortHook({});

    // The racing generation was flushed (no stale chunk pending) and
    // retired (the communicator is re-armed, not poisoned).
    EXPECT_GE(raced.load(), 2); // first clear failed, loop re-flushed
    EXPECT_EQ(box.arrivalSemaphore().value(), 0);
    comm.run([](int) {}, "noop");

    // And a real collective sees clean channels: exact sums, no stale
    // -1 chunk surfacing anywhere.
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt =
        topo::makeDgx1DoubleTree(graph);
    comm.setDeadline(10s);
    RankBuffers buffers = makeBuffers(32);
    doubleTreeAllReduce(comm, buffers, dt, 2,
                        TreePhaseMode::kOverlapped);
    for (std::size_t r = 0; r < buffers.size(); ++r)
        for (float v : buffers[r])
            EXPECT_FLOAT_EQ(v, 36.0f);
}

TEST_P(FaultedCollective, ClearAbortIsIdempotent)
{
    Communicator comm(kRanks, 4, GetParam());

    // Clearing an un-tripped communicator is a no-op...
    comm.clearAbort();
    comm.run([](int) {}, "noop");

    // ...and clearing twice after one abort leaves it re-armed, not
    // wedged or double-retired.
    CollectiveError::Info info;
    info.failed_rank = 4;
    comm.abort(info);
    comm.clearAbort();
    comm.clearAbort();
    comm.run([](int) {}, "noop");

    // The next trip still registers on the fresh generation.
    comm.abort(info);
    EXPECT_THROW(comm.run([](int) {}, "noop"), CollectiveError);
    comm.clearAbort();
    comm.run([](int) {}, "noop");
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FaultedCollective,
    ::testing::Values(RankExecutor::Mode::kPersistent,
                      RankExecutor::Mode::kSpawnPerCall,
                      RankExecutor::Mode::kStateMachine),
    [](const ::testing::TestParamInfo<RankExecutor::Mode>& info) {
        switch (info.param) {
          case RankExecutor::Mode::kPersistent:
            return "persistent";
          case RankExecutor::Mode::kSpawnPerCall:
            return "spawn";
          case RankExecutor::Mode::kStateMachine:
            return "statemachine";
        }
        return "unknown";
    });

} // namespace
} // namespace ccl
} // namespace ccube
