#ifndef CCUBE_CORE_REPORT_H_
#define CCUBE_CORE_REPORT_H_

/**
 * @file
 * Report helpers shared by the benchmark harnesses: uniform table
 * rows for iteration results and communication schedules.
 */

#include <string>

#include "core/iteration_scheduler.h"
#include "util/table.h"

namespace ccube {
namespace core {

/** Column headers for iteration-result tables. */
util::Table makeIterationTable();

/** Appends one iteration result as a row. */
void addIterationRow(util::Table& table, const std::string& workload,
                     const std::string& bandwidth, int batch, Mode mode,
                     const IterationResult& result);

/** Column headers for communication-schedule tables. */
util::Table makeCommTable();

/** Appends one communication result as a row. */
void addCommRow(util::Table& table, const std::string& algorithm,
                double bytes, const simnet::ScheduleResult& schedule);

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_REPORT_H_
