#ifndef CCUBE_SIMNET_COLLECTIVE_SCHEDULE_H_
#define CCUBE_SIMNET_COLLECTIVE_SCHEDULE_H_

/**
 * @file
 * Common types for timed collective schedules.
 *
 * A schedule drives chunk transfers over a Network and records, per
 * rank and per chunk, when the fully reduced chunk became available —
 * the raw material for both the communication-performance figures
 * (Fig. 12/14) and the gradient-queue feed of the C-Cube iteration
 * scheduler (Fig. 13).
 */

#include <limits>
#include <vector>

namespace ccube {
namespace simnet {

/** Phase organisation of a timed tree schedule. */
enum class PhaseMode {
    kTwoPhase,   ///< baseline: broadcast after the full reduction
    kOverlapped, ///< C1: per-chunk reduction→broadcast chaining
};

/** Outcome of one timed collective run. */
struct ScheduleResult {
    /** Number of global chunks. */
    int num_chunks = 0;

    /** Time the whole collective finished (all chunks, all ranks). */
    double completion_time = 0.0;

    /**
     * chunk_at_rank[r][k]: time chunk k became available at rank r
     * (fully reduced value).
     */
    std::vector<std::vector<double>> chunk_at_rank;

    /** chunk_ready[k]: time chunk k was available at *every* rank. */
    std::vector<double> chunk_ready;

    /**
     * Gradient turnaround time (paper §III-C): when the first chunk
     * finished the collective — the earliest entry of chunk_ready.
     */
    double turnaroundTime() const;

    /** Effective algorithm bandwidth for a payload of @p bytes. */
    double effectiveBandwidth(double bytes) const;

    /** Merges another result (disjoint chunk id spaces) into this. */
    void merge(const ScheduleResult& other);
};

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_COLLECTIVE_SCHEDULE_H_
