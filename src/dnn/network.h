#ifndef CCUBE_DNN_NETWORK_H_
#define CCUBE_DNN_NETWORK_H_

/**
 * @file
 * A workload model: an ordered list of layers.
 *
 * Layer order is *forward* order; the one-shot AllReduce buffer is
 * laid out in the same order so that the first chunks to complete the
 * tree collective belong to the first layers the next forward pass
 * needs (paper Fig. 8).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.h"

namespace ccube {
namespace dnn {

/**
 * Immutable layer-graph model of one neural network.
 */
class NetworkModel
{
  public:
    NetworkModel(std::string name, std::vector<Layer> layers);

    const std::string& name() const { return name_; }
    int numLayers() const { return static_cast<int>(layers_.size()); }
    const Layer& layer(int index) const;
    const std::vector<Layer>& layers() const { return layers_; }

    /** Total trainable parameters. */
    std::int64_t totalParams() const;

    /** Total gradient bytes all-reduced per iteration (fp32). */
    double totalParamBytes() const;

    /** Per-layer gradient bytes in forward (buffer) order; layers
     *  with no parameters contribute 0 and never gate dequeue. */
    std::vector<double> layerParamBytes() const;

    /** Total forward FLOPs for one sample. */
    std::int64_t totalForwardFlopsPerSample() const;

  private:
    std::string name_;
    std::vector<Layer> layers_;
};

} // namespace dnn
} // namespace ccube

#endif // CCUBE_DNN_NETWORK_H_
