# Empty dependencies file for ccl_mailbox_test.
# This may be replaced when dependencies are built.
