/**
 * @file
 * Reproduces Fig. 1: AllReduce as a fraction of total execution time
 * for MLPerf-like workloads on an 8-GPU DGX-1 with NCCL-style
 * (multi-ring) AllReduce.
 *
 * The paper measured this with PyTorch + NCCL and a profiler. Under
 * PyTorch DDP, AllReduce is bucketed and overlapped with backward;
 * NCCL ring kernels *spin* while waiting for each bucket's gradients
 * and for peers, so the profiled AllReduce time is the kernel
 * residency window — roughly from the first bucket launch until the
 * last bucket's transfer drains — not the pure transfer time. We
 * model that explicitly: with B buckets finishing uniformly through
 * backward, residency ≈ bwd·(B−1)/B plus the exposed tail transfer.
 *
 * Paper shape: Single Stage Detector highest (~60%), NCF lowest
 * (~10%), others in between.
 */

#include <cmath>
#include <iostream>

#include "core/ccube_engine.h"
#include "dnn/catalog.h"
#include "dnn/compute_model.h"
#include "obs/session.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);

    std::cout << "=== Fig. 1: AllReduce ratio of execution time "
                 "(8-GPU DGX-1, NCCL-style ring) ===\n\n";

    util::Table table({"workload", "batch/GPU", "allreduce_bytes",
                       "compute_ms", "pure_comm_ms",
                       "profiled_allreduce_ms", "ratio_%"});

    // PyTorch DDP default bucket size.
    const double kBucketBytes = 25e6;

    for (const dnn::Workload& workload : dnn::mlperfSuite()) {
        core::CCubeEngine engine(workload.model);
        const dnn::ComputeModel compute;
        const double fwd =
            compute.forwardTime(workload.model, workload.batch_per_gpu);
        const double bwd = compute.backwardTime(workload.model,
                                                workload.batch_per_gpu);
        const double pure =
            engine.commOnly(core::Mode::kRing, workload.allreduce_bytes)
                .completion_time;
        const double buckets =
            std::max(1.0, std::ceil(workload.allreduce_bytes /
                                    kBucketBytes));
        // Kernel residency: first bucket launches ~bwd/B into
        // backward; the stream stays resident (transfer + spin)
        // until the last bucket drains after backward ends. Only the
        // dense (all-reduced) fraction of backward feeds buckets.
        const double dense_fraction =
            workload.allreduce_bytes /
            workload.model.totalParamBytes();
        const double tail = pure / buckets;
        const double residency =
            bwd * dense_fraction * (buckets - 1.0) / buckets + tail;
        const double profiled = std::max(pure, residency);
        const double total = fwd + bwd + tail;
        table.addRow({workload.label,
                      std::to_string(workload.batch_per_gpu),
                      util::formatBytes(workload.allreduce_bytes),
                      util::formatDouble((fwd + bwd) * 1e3, 2),
                      util::formatDouble(pure * 1e3, 2),
                      util::formatDouble(profiled * 1e3, 2),
                      util::formatDouble(100.0 * profiled / total, 1)});
    }
    table.print(std::cout);
    std::cout << "\nPaper reference: SSD ≈ 60% (highest), NCF ≈ 10% "
                 "(lowest); AllReduce is a significant fraction for "
                 "every workload.\n";
    obs_session.finish();
    return 0;
}
