#include "simnet/fault_plan.h"

#include "obs/monitor.h"
#include "util/logging.h"

namespace ccube {
namespace simnet {

FaultPlan&
FaultPlan::failChannel(double at, int channel_id)
{
    FaultEvent event;
    event.at = at;
    event.kind = FaultEvent::Kind::kChannelFail;
    event.channel_id = channel_id;
    events_.push_back(event);
    return *this;
}

FaultPlan&
FaultPlan::restoreChannel(double at, int channel_id)
{
    FaultEvent event;
    event.at = at;
    event.kind = FaultEvent::Kind::kChannelRestore;
    event.channel_id = channel_id;
    events_.push_back(event);
    return *this;
}

FaultPlan&
FaultPlan::degradeChannel(double at, int channel_id, double factor)
{
    FaultEvent event;
    event.at = at;
    event.kind = FaultEvent::Kind::kChannelDegrade;
    event.channel_id = channel_id;
    event.factor = factor;
    events_.push_back(event);
    return *this;
}

FaultPlan&
FaultPlan::slowNode(double at, topo::NodeId node, double factor)
{
    FaultEvent event;
    event.at = at;
    event.kind = FaultEvent::Kind::kNodeSlowdown;
    event.node = node;
    event.factor = factor;
    events_.push_back(event);
    return *this;
}

void
applyFaultPlan(Network& network, const FaultPlan& plan)
{
    sim::Simulation& simulation = network.simulation();
    for (const FaultEvent& event : plan.events()) {
        CCUBE_CHECK(event.at >= simulation.now(),
                    "fault event in the past: t=" << event.at);
        // High priority so a fault scheduled at time t applies before
        // any transfer requested at the same instant.
        simulation.at(
            event.at,
            [&network, event]() {
                switch (event.kind) {
                case FaultEvent::Kind::kChannelFail:
                    network.failChannel(event.channel_id);
                    break;
                case FaultEvent::Kind::kChannelRestore:
                    network.restoreChannel(event.channel_id);
                    break;
                case FaultEvent::Kind::kChannelDegrade:
                    network.setChannelBandwidthFactor(event.channel_id,
                                                      event.factor);
                    break;
                case FaultEvent::Kind::kNodeSlowdown:
                    network.slowNode(event.node, event.factor);
                    break;
                }
            },
            /*priority=*/-1);
    }
}

FaultedRunResult
runDoubleTreeWithFaults(sim::Simulation& simulation, Network& network,
                        const topo::DoubleTreeEmbedding& embedding,
                        double total_bytes, PhaseMode mode,
                        int chunks_per_tree, const FaultPlan& plan,
                        LanePolicy lanes)
{
    CCUBE_CHECK(total_bytes > 0.0, "non-positive payload");
    CCUBE_CHECK(chunks_per_tree >= 1,
                "need at least one chunk per tree");

    const bool p2p = lanes == LanePolicy::kPointToPoint;
    const int t0_up = 0;
    const int t0_down = p2p ? 0 : 1;
    const int t1_up = p2p ? 1 : 0;
    const int t1_down = 1;
    TreeSchedule first(network, embedding.tree0, total_bytes / 2.0,
                       mode, chunks_per_tree, t0_up, t0_down);
    TreeSchedule second(network, embedding.tree1, total_bytes / 2.0,
                        mode, chunks_per_tree, t1_up, t1_down);
    const std::uint64_t dropped_before = network.droppedTransfers();
    const double at = simulation.now();
    first.start(at);
    second.start(at);
    applyFaultPlan(network, plan);
    // With a lethal plan the event queue simply drains (dropped
    // transfers never complete, so no further events are scheduled)
    // and run() returns with arrivals still pending — the DES analog
    // of the hang the ccl watchdog exists to catch.
    const double end = simulation.run();

    FaultedRunResult out;
    out.completed = first.finished() && second.finished();
    out.end_time = end;
    out.dropped_transfers =
        network.droppedTransfers() - dropped_before;
    out.result = first.partialResult(end);
    out.result.merge(second.partialResult(end));

    obs::Monitor& monitor = obs::Monitor::global();
    if (monitor.enabled())
        monitor.collectiveComplete("allreduce.double_tree_faulted",
                                   at, end, total_bytes,
                                   out.completed);
    return out;
}

} // namespace simnet
} // namespace ccube
