#ifndef CCUBE_OBS_MONITOR_H_
#define CCUBE_OBS_MONITOR_H_

/**
 * @file
 * obs::Monitor — live telemetry and SLO tracking.
 *
 * The recorder/registry pair is strictly post-mortem: nothing is
 * observable until a run finishes and exports. The Monitor closes that
 * gap with a periodic snapshot engine driven from two edges:
 *
 *   - DES heartbeats: sim::Simulation::run() chops the event loop
 *     into --monitor-interval slices (sim::EventQueue::runUntil) and
 *     snapshots registered gauge sources at each tick — per-channel
 *     busy fraction, per-rank mailbox stall time, CAS retries;
 *   - collective-completion edges: every simnet schedule runner and
 *     the functional ccl::Communicator report (name, start, end,
 *     bytes), feeding latency histograms and the SLO engine.
 *
 * Snapshots are appended to a bounded in-memory series and serialized
 * as JSONL plus an OpenMetrics-style text endpoint file by
 * ObsSession::finish(). Latencies go into LogHistogram (p50/p99/p999
 * with deterministic merge), and the whole monitor follows the same
 * per-task capture + absorb-in-task-order protocol as the trace
 * recorder and metric registry, so a sweep's monitor series is
 * byte-identical for --jobs=1 and --jobs=8.
 *
 * Timestamps are simulated seconds within a run plus a run ordinal
 * (every Simulation::run() under an enabled monitor opens a new run):
 * no wall-clock values enter the series from DES paths, which is what
 * licenses the byte-identity contract. Wall-clock collective edges
 * from the functional runtime carry run ordinal 0.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace ccube {

namespace util {
class Flags;
}

namespace obs {

/**
 * Deadline budgets for the SLO engine. A zero deadline disables that
 * budget. Resolved from flags (--slo-collective-ms,
 * --slo-iteration-ms, --slo-mttr-ms) with environment fallbacks
 * ($CCUBE_SLO_COLLECTIVE_MS, $CCUBE_SLO_ITERATION_MS,
 * $CCUBE_SLO_MTTR_MS).
 */
struct SloSpec {
    double collective_deadline_s = 0.0;
    double iteration_deadline_s = 0.0;
    /** Mean-time-to-recover budget: a supervised recovery whose MTTR
     *  exceeds this counts as an SLO violation. */
    double mttr_budget_s = 0.0;

    static SloSpec fromFlags(const util::Flags& flags);

    bool any() const
    {
        return collective_deadline_s > 0.0 ||
               iteration_deadline_s > 0.0 || mttr_budget_s > 0.0;
    }
};

/** One row of the monitor time-series. */
struct MonitorSnapshot {
    int run = 0;          ///< run ordinal (0 = wall-clock / no run)
    double t_s = 0.0;     ///< simulated seconds within the run
    std::string trigger;  ///< "heartbeat", "collective", "iteration"
    std::string label;    ///< collective / iteration name, if any
    std::vector<std::pair<std::string, double>> values;
};

/**
 * Live telemetry hub. Thread-safe; gated like the registry so an
 * un-monitored run pays one relaxed atomic load per site.
 */
class Monitor
{
  public:
    /// Bound on the retained snapshot series; later snapshots are
    /// counted in droppedSnapshots() instead of stored.
    static constexpr std::size_t kMaxSnapshots = std::size_t{1} << 16;

    using SampleFn = std::function<void(
        double t_s, std::vector<std::pair<std::string, double>>&)>;

    Monitor() = default;
    Monitor(const Monitor&) = delete;
    Monitor& operator=(const Monitor&) = delete;

    /**
     * The monitor instrumentation writes through: the process-wide
     * instance, unless the calling thread has an active
     * ScopedMonitorRedirect (per-task capture in sweep::run()).
     */
    static Monitor& global();

    /** The process-wide instance, ignoring any thread redirect. */
    static Monitor& process();

    /** Opens the gate for instrumentation that writes through here. */
    void enable() { enabled_.store(true, std::memory_order_release); }

    /** Closes the gate (accumulated snapshots are kept). */
    void disable() { enabled_.store(false, std::memory_order_release); }

    /** True when instrumentation should report into this monitor. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Sets the heartbeat interval in simulated seconds (<= 0 turns
     *  heartbeats off; collective edges still snapshot). */
    void setInterval(double seconds);

    /** Heartbeat interval in simulated seconds. */
    double interval() const;

    /** Installs the SLO budgets. */
    void setSlo(const SloSpec& spec);

    /** Current SLO budgets. */
    SloSpec slo() const;

    /**
     * Registers a gauge source sampled at every snapshot; returns a
     * token for removeSource(). Sources must tolerate being sampled
     * from the thread that drives the simulation.
     */
    int addSource(SampleFn fn);

    /** Unregisters a source; unknown tokens are ignored. */
    void removeSource(int token);

    /** Opens a new run ordinal (called by sim::Simulation::run). */
    void beginRun();

    /** Snapshot triggered by the DES heartbeat at sim time @p t_s. */
    void heartbeat(double t_s);

    /**
     * Collective-completion edge: records latency (@p end_s -
     * @p start_s, simulated or wall seconds), applies the collective
     * SLO budget, and snapshots. @p completed false marks a collective
     * that aborted / stalled (watchdog or fault): it counts as an SLO
     * violation regardless of latency.
     */
    void collectiveComplete(const std::string& name, double start_s,
                            double end_s, double bytes,
                            bool completed = true);

    /** Iteration edge: latency + iteration SLO budget + snapshot. */
    void iterationComplete(const std::string& name, double seconds);

    /** Records a watchdog trip attributed to @p rank. */
    void noteWatchdogTrip(int rank);

    /**
     * Records one completed supervised recovery: @p mttr_s wall
     * seconds from fault detection to the collective completing again,
     * after @p retries retried attempts. Snapshots
     * `recovery.mttr_ms` / `recovery.retries` and applies the MTTR
     * SLO budget.
     */
    void noteRecovery(double mttr_s, int retries);

    // ---- accessors (reports, tests) ----

    std::size_t snapshotCount() const;
    std::uint64_t droppedSnapshots() const;
    std::vector<MonitorSnapshot> snapshots() const;
    std::uint64_t collectivesTotal() const;
    std::uint64_t collectiveViolations() const;
    std::uint64_t iterationViolations() const;
    std::uint64_t watchdogTrips() const;
    std::uint64_t recoveriesTotal() const;
    std::uint64_t recoveryViolations() const;
    std::uint64_t recoveryRetriesTotal() const;
    LogHistogram collectiveLatency() const; ///< seconds
    LogHistogram iterationLatency() const;  ///< seconds
    LogHistogram recoveryMttr() const;      ///< seconds

    /**
     * Merges @p other as if its activity had happened here: snapshots
     * append with run ordinals renumbered after this monitor's runs
     * (preserving @p other's internal order), counters add, latency
     * histograms merge. Sources are not transferred. Ignores the
     * enabled() gate. @p other is left unchanged.
     */
    void absorb(const Monitor& other);

    /** Drops snapshots, counters, and histograms (gate, interval,
     *  SLO spec, and sources are left as-is). */
    void clear();

    /** Writes the snapshot series as JSONL, one row per snapshot. */
    void writeJsonl(std::ostream& out) const;

    /**
     * Writes cumulative state (SLO counters, latency summary
     * quantiles, gauges from the newest snapshot) in OpenMetrics-style
     * text exposition format.
     */
    void writeOpenMetrics(std::ostream& out) const;

  private:
    struct Source {
        int token = 0;
        SampleFn fn;
    };

    /** Appends one snapshot; assumes mutex_ held. */
    void snapshotLocked(const char* trigger, const std::string& label,
                        double t_s,
                        std::vector<std::pair<std::string, double>>
                            values);

    /** Samples sources + rank counters; assumes mutex_ held. */
    std::vector<std::pair<std::string, double>>
    sampleLocked(double t_s);

    std::atomic<bool> enabled_{false};
    mutable std::mutex mutex_;
    double interval_s_ = 0.0;
    SloSpec slo_;
    std::vector<Source> sources_;
    /// Capacity hint for the next sample (size of the last one), so
    /// steady-state heartbeats do one vector allocation, not log(n).
    std::size_t last_sample_size_ = 0;
    int next_token_ = 1;
    int run_counter_ = 0;
    int current_run_ = 0;
    std::vector<MonitorSnapshot> snapshots_;
    std::uint64_t dropped_snapshots_ = 0;
    std::uint64_t collectives_total_ = 0;
    std::uint64_t collective_violations_ = 0;
    std::uint64_t iterations_total_ = 0;
    std::uint64_t iteration_violations_ = 0;
    std::uint64_t watchdog_trips_ = 0;
    std::uint64_t recoveries_total_ = 0;
    std::uint64_t recovery_violations_ = 0;
    std::uint64_t recovery_retries_total_ = 0;
    LogHistogram collective_latency_s_;
    LogHistogram iteration_latency_s_;
    LogHistogram recovery_mttr_s_;
};

/**
 * RAII thread-local redirect: while alive, Monitor::global() on this
 * thread returns @p monitor instead of the process instance. Nests; a
 * null monitor is a no-op.
 */
class ScopedMonitorRedirect
{
  public:
    explicit ScopedMonitorRedirect(Monitor* monitor);
    ~ScopedMonitorRedirect();

    ScopedMonitorRedirect(const ScopedMonitorRedirect&) = delete;
    ScopedMonitorRedirect&
    operator=(const ScopedMonitorRedirect&) = delete;

  private:
    Monitor* previous_ = nullptr;
    bool active_ = false;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_MONITOR_H_
