/**
 * @file
 * Tests for the analytical α-β cost models: the paper's Eqs. (1)–(7),
 * K_opt optimality (DESIGN.md invariant #5), and the tree-vs-ring
 * crossover of Fig. 4.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/alpha_beta.h"
#include "model/invocation_model.h"
#include "model/overlapped_tree_model.h"
#include "model/ring_model.h"
#include "model/tree_model.h"
#include "util/units.h"

namespace ccube {
namespace model {
namespace {

const AlphaBeta kLink = AlphaBeta::fromBandwidth(4.6e-6, 25e9);

TEST(AlphaBeta, BasicArithmetic)
{
    EXPECT_DOUBLE_EQ(kLink.alpha, 4.6e-6);
    EXPECT_DOUBLE_EQ(kLink.bandwidth(), 25e9);
    EXPECT_DOUBLE_EQ(kLink.time(25e9), 4.6e-6 + 1.0);
    EXPECT_DOUBLE_EQ(log2Nodes(8), 3.0);
    EXPECT_EQ(treeDepth(8), 3);
    EXPECT_EQ(treeDepth(9), 4);
}

TEST(RingModel, MatchesEquationTwo)
{
    const RingModel ring(kLink);
    const int p = 8;
    const double n = util::mib(64);
    // Eq. (2): 2(P−1)α + 2((P−1)/P)βN.
    const double expected = 2.0 * (p - 1) * kLink.alpha +
                            2.0 * ((p - 1.0) / p) * kLink.beta * n;
    EXPECT_NEAR(ring.allReduceTime(p, n), expected, 1e-12);
    // AllGather is exactly half the AllReduce.
    EXPECT_NEAR(ring.allGatherTime(p, n),
                ring.allReduceTime(p, n) / 2.0, 1e-12);
}

TEST(RingModel, BandwidthApproachesOptimalForLargeN)
{
    const RingModel ring(kLink);
    // For N → ∞ the ring achieves N/T → bw·P/(2(P−1)).
    const double bw = ring.effectiveBandwidth(8, util::gib(8));
    EXPECT_NEAR(bw, 25e9 * 8 / 14.0, 25e9 * 0.01);
}

TEST(TreeModel, PhaseTimeMatchesEquationThree)
{
    const TreeModel tree(kLink);
    const double n = util::mib(16);
    const int k = 32;
    const double expected =
        (log2Nodes(8) + k) * (kLink.alpha + kLink.beta * n / k);
    EXPECT_NEAR(tree.phaseTime(8, n, k), expected, 1e-12);
}

TEST(TreeModel, KoptMatchesEquationFour)
{
    const TreeModel tree(kLink);
    const double n = util::mib(64);
    const double expected =
        std::sqrt(log2Nodes(8) * kLink.beta * n / kLink.alpha);
    EXPECT_NEAR(tree.optimalChunks(8, n), expected, 1e-9);
}

TEST(TreeModel, ClosedFormMatchesEquationSix)
{
    const TreeModel tree(kLink);
    const double n = util::mib(64);
    const double logp = log2Nodes(8);
    const double expected =
        2.0 * logp * kLink.alpha + 2.0 * kLink.beta * n +
        4.0 * std::sqrt(kLink.alpha * kLink.beta * n * logp);
    EXPECT_NEAR(tree.allReduceTime(8, n), expected, 1e-12);
}

TEST(OverlappedTreeModel, ClosedFormMatchesEquationSeven)
{
    const OverlappedTreeModel overlapped(kLink);
    const double n = util::mib(64);
    const double logp = log2Nodes(8);
    const double expected =
        2.0 * logp * kLink.alpha + kLink.beta * n +
        3.0 * std::sqrt(kLink.alpha * kLink.beta * n * logp);
    EXPECT_NEAR(overlapped.allReduceTime(8, n), expected, 1e-12);
}

TEST(OverlappedTreeModel, ChunkedFormAtKoptMatchesClosedForm)
{
    // Substituting K_opt from Eq. (4) into (2log(P)+K)(α+βN/K) must
    // give Eq. (7) — the continuous-K identity behind the paper's
    // derivation.
    const TreeModel tree(kLink);
    const OverlappedTreeModel overlapped(kLink);
    const double n = util::mib(64);
    const double kopt = tree.optimalChunks(8, n);
    const double chunked =
        (2.0 * log2Nodes(8) + kopt) * (kLink.alpha + kLink.beta * n /
                                                         kopt);
    EXPECT_NEAR(chunked, overlapped.allReduceTime(8, n),
                overlapped.allReduceTime(8, n) * 1e-12);
}

TEST(TreeModel, BaselineChunkedAtKoptMatchesClosedForm)
{
    const TreeModel tree(kLink);
    const double n = util::mib(64);
    const double kopt = tree.optimalChunks(8, n);
    const double chunked = 2.0 * (log2Nodes(8) + kopt) *
                           (kLink.alpha + kLink.beta * n / kopt);
    EXPECT_NEAR(chunked, tree.allReduceTime(8, n),
                tree.allReduceTime(8, n) * 1e-12);
}

/**
 * Property sweep: K_opt (rounded) beats its integer neighbours.
 */
class KoptProperty
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(KoptProperty, IntegerNeighboursAreNoBetter)
{
    const auto [p, n] = GetParam();
    const TreeModel tree(kLink);
    const int kopt = tree.optimalChunksInt(p, n);
    const double at_opt = tree.allReduceTimeChunked(p, n, kopt);
    if (kopt > 1) {
        EXPECT_GE(tree.allReduceTimeChunked(p, n, kopt - 1),
                  at_opt * (1.0 - 1e-9));
    }
    EXPECT_GE(tree.allReduceTimeChunked(p, n, kopt + 1),
              at_opt * (1.0 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KoptProperty,
    ::testing::Combine(::testing::Values(4, 8, 64, 256, 1024),
                       ::testing::Values(16.0 * 1024, 1024.0 * 1024,
                                         64.0 * 1024 * 1024)));

TEST(TreeVsRing, LatencyDominatedFavorsTree)
{
    // Fig. 4: small messages / many nodes — tree wins (log P vs P
    // latency terms).
    const RingModel ring(kLink);
    const TreeModel tree(kLink);
    const double n = util::kib(16);
    EXPECT_LT(tree.allReduceTime(1024, n), ring.allReduceTime(1024, n));
}

TEST(TreeVsRing, BandwidthDominatedFavorsRingAtSmallScale)
{
    // Fig. 4: large messages on few nodes — ring is bandwidth-optimal
    // (2(P−1)/P·βN < 2βN).
    const RingModel ring(kLink);
    const TreeModel tree(kLink);
    const double n = util::mib(64);
    EXPECT_LT(ring.allReduceTime(8, n), tree.allReduceTime(8, n));
}

TEST(TreeVsRing, CrossoverExistsAsNodesGrow)
{
    const RingModel ring(kLink);
    const TreeModel tree(kLink);
    const double n = util::mib(1);
    bool tree_wins_somewhere = false;
    bool ring_wins_somewhere = false;
    for (int p = 4; p <= 4096; p *= 2) {
        if (tree.allReduceTime(p, n) < ring.allReduceTime(p, n))
            tree_wins_somewhere = true;
        else
            ring_wins_somewhere = true;
    }
    EXPECT_TRUE(tree_wins_somewhere);
    EXPECT_TRUE(ring_wins_somewhere);
}

TEST(OverlappedModel, AlwaysBeatsBaselineTree)
{
    const TreeModel tree(kLink);
    const OverlappedTreeModel overlapped(kLink);
    for (int p = 4; p <= 1024; p *= 4) {
        for (double n : {16e3, 1e6, 64e6}) {
            EXPECT_LT(overlapped.allReduceTime(p, n),
                      tree.allReduceTime(p, n))
                << "p=" << p << " n=" << n;
        }
    }
}

TEST(OverlappedModel, TurnaroundBeatsBaselineByPipelineDepth)
{
    const TreeModel tree(kLink);
    const OverlappedTreeModel overlapped(kLink);
    const double n = util::mib(64);
    const int k = 256;
    const double ratio = tree.turnaroundTime(8, n, k) /
                         overlapped.turnaroundTime(8, n, k);
    // (2log P + K) / (2log P + 1) = 262/7 ≈ 37×.
    EXPECT_NEAR(ratio, (2.0 * 3 + k) / (2.0 * 3 + 1), 1e-9);
}

TEST(InvocationModel, OneShotBeatsLayerWiseBeatsSlicing)
{
    InvocationParams params;
    params.link = kLink;
    const InvocationModel model(params);
    // ResNet-50-like: ~50 layers of 0.5–8 MB.
    std::vector<double> layers;
    for (int i = 0; i < 50; ++i)
        layers.push_back(0.5e6 + 7.5e6 * i / 49.0);
    const double one_shot = model.effectiveBandwidth(
        8, layers, InvocationStrategy::kOneShot);
    const double layer_wise = model.effectiveBandwidth(
        8, layers, InvocationStrategy::kLayerWise);
    const double slicing = model.effectiveBandwidth(
        8, layers, InvocationStrategy::kSlicing);
    EXPECT_GT(one_shot, layer_wise);
    EXPECT_GT(layer_wise, slicing);
    // Paper Fig. 3: layer-wise loses ~2×, slicing > 4×.
    EXPECT_GT(one_shot / layer_wise, 1.3);
    EXPECT_GT(one_shot / slicing, 2.0);
}

TEST(InvocationModel, SizesPreserveTotalBytes)
{
    InvocationParams params;
    params.link = kLink;
    const InvocationModel model(params);
    const std::vector<double> layers{1e6, 2e6, 3e6};
    for (auto strategy :
         {InvocationStrategy::kOneShot, InvocationStrategy::kLayerWise,
          InvocationStrategy::kSlicing}) {
        const auto sizes = model.invocationSizes(layers, strategy);
        double total = 0.0;
        for (double s : sizes)
            total += s;
        EXPECT_NEAR(total, 6e6, 1e-6);
    }
}

} // namespace
} // namespace model
} // namespace ccube
