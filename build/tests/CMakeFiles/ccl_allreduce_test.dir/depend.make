# Empty dependencies file for ccl_allreduce_test.
# This may be replaced when dependencies are built.
