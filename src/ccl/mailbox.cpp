#include "ccl/mailbox.h"

#include "util/logging.h"

namespace ccube {
namespace ccl {

Mailbox::Mailbox(int slots)
    : ring_(static_cast<std::size_t>(slots)),
      full_(slots, 0),
      empty_(slots, slots)
{
    CCUBE_CHECK(slots >= 1, "mailbox needs at least one slot");
}

void
Mailbox::send(std::span<const float> data, int tag)
{
    empty_.wait(); // block while all receive buffers are occupied
    Slot& slot = ring_[head_];
    slot.data.assign(data.begin(), data.end());
    slot.tag = tag;
    head_ = (head_ + 1) % ring_.size();
    full_.post(); // signal arrival (paper: post on chunk arrival)
}

template <typename Fn>
int
Mailbox::consumeSlot(Fn&& consume)
{
    full_.wait();
    Slot& slot = ring_[tail_];
    const int tag = slot.tag;
    consume(slot);
    tail_ = (tail_ + 1) % ring_.size();
    empty_.post();
    delivered_.post();
    return tag;
}

int
Mailbox::recv(std::vector<float>& out)
{
    return consumeSlot([&](Slot& slot) { out = std::move(slot.data); });
}

int
Mailbox::recvInto(std::span<float> out)
{
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.data.size() == out.size(),
                    "chunk size mismatch: " << slot.data.size() << " vs "
                                            << out.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = slot.data[i];
    });
}

int
Mailbox::recvReduce(std::span<float> out)
{
    return consumeSlot([&](Slot& slot) {
        CCUBE_CHECK(slot.data.size() == out.size(),
                    "chunk size mismatch: " << slot.data.size() << " vs "
                                            << out.size());
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] += slot.data[i];
    });
}

} // namespace ccl
} // namespace ccube
