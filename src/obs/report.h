#ifndef CCUBE_OBS_REPORT_H_
#define CCUBE_OBS_REPORT_H_

/**
 * @file
 * Human-readable analysis report over a trace capture.
 *
 * `writeAnalysisReport` runs the full obs::TraceAnalyzer pipeline —
 * channel utilization, idle intervals, α-β fit, critical path — and
 * renders the result as an aligned text report. It is what
 * `--report-out=FILE` produces at the end of an instrumented run, and
 * what the integration tests assert against.
 */

#include <iosfwd>

#include "model/alpha_beta.h"

namespace ccube {
namespace obs {

class MetricRegistry;
class TraceAnalyzer;

/** Knobs for writeAnalysisReport. */
struct ReportOptions {
    /** When set, the α-β fit section reports relative error against
     *  this configured model (sim-vs-model divergence). */
    const model::AlphaBeta* reference = nullptr;

    int max_channels = 32;       ///< channel-table row cap
    int max_steps = 24;          ///< critical-path rows printed
    double min_idle_gap_us = 0.0; ///< idle gaps below this are noise
};

/**
 * Writes the full analysis report for @p analyzer to @p out. When
 * @p registry is non-null its counters are appended as a final
 * section (trace drop accounting, rank counters, ...).
 */
void writeAnalysisReport(std::ostream& out,
                         const TraceAnalyzer& analyzer,
                         const MetricRegistry* registry = nullptr,
                         const ReportOptions& options = {});

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_REPORT_H_
