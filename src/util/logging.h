#ifndef CCUBE_UTIL_LOGGING_H_
#define CCUBE_UTIL_LOGGING_H_

/**
 * @file
 * Lightweight logging and error-reporting facilities.
 *
 * Follows the gem5 convention of separating fatal (user-visible
 * configuration errors) from panic (internal invariant violations).
 */

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ccube {
namespace util {

/** Severity levels for log messages. */
enum class LogLevel {
    kDebug = 0,
    kInfo = 1,
    kWarn = 2,
    kError = 3,
    kNone = 4,
};

/**
 * Global logging configuration.
 *
 * Minimal by design: a single process-wide level gate plus an optional
 * sink override used by the tests to capture output. Thread-safe: the
 * level/sink are atomics and line emission is serialized, so rank
 * threads may log concurrently with a reconfiguration.
 */
class Logger
{
  public:
    /** Returns the process-wide logger instance. */
    static Logger& instance();

    /** Sets the minimum severity that will be emitted. */
    void setLevel(LogLevel level)
    {
        level_.store(level, std::memory_order_relaxed);
    }

    /** Returns the current minimum severity. */
    LogLevel level() const
    {
        return level_.load(std::memory_order_relaxed);
    }

    /** Redirects output to the given stream (not owned); null restores
     *  std::cerr. */
    void setSink(std::ostream* sink)
    {
        sink_.store(sink, std::memory_order_release);
    }

    /** Emits one formatted log line if @p level passes the gate. */
    void log(LogLevel level, std::string_view tag, std::string_view msg);

  private:
    Logger() = default;

    std::atomic<LogLevel> level_{LogLevel::kWarn};
    std::atomic<std::ostream*> sink_{nullptr};
};

/** Emits a debug-level message under @p tag. */
void logDebug(std::string_view tag, std::string_view msg);

/** Emits an info-level message under @p tag. */
void logInfo(std::string_view tag, std::string_view msg);

/** Emits a warning-level message under @p tag. */
void logWarn(std::string_view tag, std::string_view msg);

/**
 * Reports an unrecoverable user-level error (bad configuration,
 * invalid arguments) and exits with status 1.
 */
[[noreturn]] void fatal(std::string_view msg);

/**
 * Reports an internal invariant violation (a library bug) and aborts.
 */
[[noreturn]] void panic(std::string_view msg);

/**
 * Checks a library invariant; panics with location info when violated.
 *
 * Unlike assert(), stays active in release builds: the collective
 * schedules rely on these checks to detect protocol violations.
 */
#define CCUBE_CHECK(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream oss_;                                        \
            oss_ << __FILE__ << ":" << __LINE__ << ": CHECK failed: "       \
                 << #cond << " — " << msg;                                  \
            ::ccube::util::panic(oss_.str());                               \
        }                                                                   \
    } while (0)

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_LOGGING_H_
