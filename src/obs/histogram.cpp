#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "util/logging.h"

namespace ccube {
namespace obs {

namespace {

// Decade d covers samples in [2^d, 2^(d+1)).
constexpr int kMinDecade = -LogHistogram::kSubUnityDecades;
constexpr int kMaxDecade = LogHistogram::kDecades - 1;

} // namespace

void
LogHistogram::add(double sample)
{
    addCount(sample, 1);
}

void
LogHistogram::addCount(double sample, std::uint64_t count)
{
    if (count == 0)
        return;
    if (!(sample > 0.0))
        sample = 0.0;
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    count_ += count;
    sum_ += sample * static_cast<double>(count);

    const int index = bucketIndex(sample);
    if (index < 0) {
        underflow_ += count;
        return;
    }
    Decade& decade = decadeFor(index / kSubBuckets + kMinDecade);
    decade.counts[index % kSubBuckets] += count;
}

void
LogHistogram::merge(const LogHistogram& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    underflow_ += other.underflow_;
    sum_ += other.sum_;
    for (const Decade& theirs : other.decades_) {
        Decade& ours = decadeFor(theirs.index);
        for (int i = 0; i < kSubBuckets; ++i)
            ours.counts[i] += theirs.counts[i];
    }
}

double
LogHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LogHistogram::quantile(double q) const
{
    CCUBE_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (count_ == 0)
        return 0.0;
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;
    const double target = q * static_cast<double>(count_);
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(target));
    rank = std::max<std::uint64_t>(1, std::min(rank, count_));

    std::uint64_t seen = underflow_;
    if (rank <= seen)
        return min_; // zero / sub-normal samples
    for (const Decade& decade : decades_) {
        for (int i = 0; i < kSubBuckets; ++i) {
            seen += decade.counts[i];
            if (rank <= seen) {
                const int index =
                    (decade.index - kMinDecade) * kSubBuckets + i;
                return std::min(bucketUpperBound(index), max_);
            }
        }
    }
    return max_;
}

void
LogHistogram::clear()
{
    decades_.clear();
    count_ = 0;
    underflow_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

std::string
LogHistogram::fingerprint() const
{
    std::ostringstream out;
    out << "n=" << count_ << ";u=" << underflow_;
    for (const Decade& decade : decades_)
        for (int i = 0; i < kSubBuckets; ++i)
            if (decade.counts[i] != 0)
                out << ';'
                    << (decade.index - kMinDecade) * kSubBuckets + i
                    << ':' << decade.counts[i];
    return out.str();
}

int
LogHistogram::bucketIndex(double sample)
{
    if (!(sample > 0.0))
        return -1; // underflow bucket
    int exponent = 0;
    const double mantissa = std::frexp(sample, &exponent);
    // sample = mantissa * 2^exponent with mantissa in [0.5, 1), so the
    // value sits in decade (exponent - 1) and 2*mantissa - 1 in [0, 1)
    // picks the linear sub-bucket inside it.
    int decade = exponent - 1;
    if (decade < kMinDecade)
        return -1;
    if (decade > kMaxDecade)
        return (kMaxDecade - kMinDecade + 1) * kSubBuckets - 1;
    int sub = static_cast<int>((2.0 * mantissa - 1.0) * kSubBuckets);
    sub = std::min(sub, kSubBuckets - 1);
    return (decade - kMinDecade) * kSubBuckets + sub;
}

double
LogHistogram::bucketUpperBound(int index)
{
    const int decade = index / kSubBuckets + kMinDecade;
    const int sub = index % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                      decade);
}

LogHistogram::Decade&
LogHistogram::decadeFor(int decade_index)
{
    auto it = std::lower_bound(
        decades_.begin(), decades_.end(), decade_index,
        [](const Decade& d, int index) { return d.index < index; });
    if (it != decades_.end() && it->index == decade_index)
        return *it;
    Decade fresh;
    fresh.index = decade_index;
    return *decades_.insert(it, fresh);
}

} // namespace obs
} // namespace ccube
