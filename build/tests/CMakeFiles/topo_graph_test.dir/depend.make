# Empty dependencies file for topo_graph_test.
# This may be replaced when dependencies are built.
