#include "core/supervisor.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "ccl/double_tree_allreduce.h"
#include "ccl/ring_allreduce.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace core {

ResilienceSupervisor::ResilienceSupervisor(ccl::Communicator& comm,
                                           const topo::Graph& graph,
                                           SupervisorOptions options)
    : comm_(comm), graph_(graph), options_(std::move(options)),
      health_(graph_.channelCount(), options_.health),
      jitter_(options_.jitter_seed)
{
    CCUBE_CHECK(comm_.numRanks() == graph_.nodeCount(),
                "communicator/topology size mismatch ("
                    << comm_.numRanks() << " ranks vs "
                    << graph_.nodeCount() << " nodes)");
    CCUBE_CHECK(options_.max_retries >= 0, "negative retry budget");
    CCUBE_CHECK(options_.chunks_per_tree >= 1, "need >= 1 chunk");
    // Initial plan over the healthy graph (kCCube when it embeds);
    // planning is not an observable recovery, so the counters reset.
    replanLocked();
    stats_ = SupervisorStats{};
}

void
ResilienceSupervisor::noteChannelFail(int channel_id)
{
    std::lock_guard<std::mutex> guard(events_mutex_);
    health_.noteFail(channel_id);
    topology_dirty_ = true;
}

void
ResilienceSupervisor::noteChannelRestore(int channel_id)
{
    std::lock_guard<std::mutex> guard(events_mutex_);
    health_.noteRestore(channel_id);
    restore_pending_ = true;
}

void
ResilienceSupervisor::noteChannelDegrade(int channel_id, double factor)
{
    std::lock_guard<std::mutex> guard(events_mutex_);
    // Scoring only: a degraded-but-alive link keeps carrying traffic
    // (dropping it would trade reduced bandwidth for a worse rung).
    health_.noteDegrade(channel_id, factor);
}

bool
ResilienceSupervisor::replanLocked()
{
    {
        std::lock_guard<std::mutex> guard(events_mutex_);
        plan_excluded_ = health_.excludedChannels();
        topology_dirty_ = false;
        restore_pending_ = false;
    }
    const RecoveryKind previous = plan_.kind;
    plan_ = recoverSchedule(graph_, plan_excluded_, options_.recovery);
    ++stats_.replans;
    if (plan_.kind == previous)
        return false;
    // The ladder enum orders best (kCCube = 0) to worst (kNone).
    if (static_cast<int>(plan_.kind) < static_cast<int>(previous))
        ++stats_.promotions;
    else
        ++stats_.demotions;
    util::logInfo("core",
                  std::string("supervisor re-planned: ") +
                      recoveryKindName(previous) + " -> " +
                      recoveryKindName(plan_.kind) + " (excluding " +
                      std::to_string(plan_excluded_.size()) +
                      " channels)");
    return true;
}

bool
ResilienceSupervisor::replanNow()
{
    return replanLocked();
}

ccl::ChunkLayout
ResilienceSupervisor::layoutFor(std::size_t total) const
{
    if (plan_.kind == RecoveryKind::kRing)
        return ccl::ChunkLayout::ring(total, comm_.numRanks());
    return ccl::ChunkLayout::doubleTree(total,
                                        options_.chunks_per_tree);
}

void
ResilienceSupervisor::traceRung(int attempt) const
{
    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    if (!recorder.enabled())
        return;
    obs::TraceEvent event;
    event.name = "supervisor.rung";
    event.cat = "core.supervisor";
    event.phase = 'i';
    event.pid = 0;
    event.tid = 0;
    event.ts_us = recorder.wallNowUs();
    event.args.emplace_back("rung",
                            static_cast<double>(plan_.kind));
    event.args.emplace_back("attempt", static_cast<double>(attempt));
    event.args.emplace_back(
        "excluded", static_cast<double>(plan_excluded_.size()));
    recorder.record(std::move(event));
}

double
ResilienceSupervisor::backoffDelay(int retry)
{
    double delay = options_.backoff_base_s;
    for (int i = 1; i < retry; ++i)
        delay *= options_.backoff_factor;
    delay = std::min(delay, options_.backoff_max_s);
    // Deterministic jitter decorrelates retry storms across
    // supervisors without sacrificing reproducibility.
    return delay + jitter_.uniform(0.0, options_.backoff_base_s);
}

void
ResilienceSupervisor::runPlanned(ccl::RankBuffers& buffers,
                                 const ccl::SkipMask& resume,
                                 ccl::AllReduceTrace::Observer observer)
{
    switch (plan_.kind) {
      case RecoveryKind::kCCube:
        ccl::doubleTreeAllReduce(comm_, buffers, *plan_.double_tree,
                                 options_.chunks_per_tree,
                                 ccl::TreePhaseMode::kOverlapped,
                                 std::move(observer), options_.proto,
                                 resume);
        return;
      case RecoveryKind::kDoubleTree:
        // Contended embedding: run two-phase (the paper's baseline B)
        // so reduction and broadcast never fight over one channel.
        ccl::doubleTreeAllReduce(comm_, buffers, *plan_.double_tree,
                                 options_.chunks_per_tree,
                                 ccl::TreePhaseMode::kTwoPhase,
                                 std::move(observer), options_.proto,
                                 resume);
        return;
      case RecoveryKind::kRing:
        CCUBE_CHECK(!plan_.rings.empty(),
                    "ring rung without a ring embedding");
        ccl::ringAllReduce(comm_, buffers, plan_.rings[0],
                           std::move(observer), options_.proto,
                           resume);
        return;
      case RecoveryKind::kNone:
        CCUBE_CHECK(false, "runPlanned on an unroutable plan");
    }
}

SupervisorReport
ResilienceSupervisor::allReduce(ccl::RankBuffers& buffers)
{
    CCUBE_CHECK(static_cast<int>(buffers.size()) == comm_.numRanks(),
                "one buffer per rank required");
    const std::size_t total = buffers[0].size();

    SupervisorReport report;
    ++stats_.collectives;

    // Consume events fed since the previous call: fail events force a
    // re-plan before launching anything; a past-probation restored
    // link lets the plan climb back up the ladder.
    bool need_replan = false;
    {
        std::lock_guard<std::mutex> guard(events_mutex_);
        need_replan =
            topology_dirty_ || health_.anyReadmittable(plan_excluded_);
    }
    if (need_replan) {
        replanLocked();
        ++report.replans;
    }

    checkpoint_.begin(buffers, layoutFor(total));

    using Clock = std::chrono::steady_clock;
    Clock::time_point first_error{};
    bool failed_once = false;

    for (int attempt = 1; attempt <= options_.max_retries + 1;
         ++attempt) {
        report.attempts = attempt;
        if (plan_.kind == RecoveryKind::kNone) {
            report.error =
                "recovery ladder exhausted: surviving topology cannot "
                "route a collective";
            break;
        }
        traceRung(attempt);
        const ccl::SkipMask resume = checkpoint_.mask();
        const int resumed = resume.doneCount();
        try {
            runPlanned(buffers, resume, checkpoint_.observer());
            report.completed = true;
            report.chunks_resumed = resumed;
            stats_.chunks_resumed +=
                static_cast<std::uint64_t>(resumed);
            break;
        } catch (const ccl::CollectiveError& error) {
            if (!failed_once) {
                failed_once = true;
                first_error = Clock::now();
            }
            report.error = error.what();
            comm_.clearAbort();
            if (attempt > options_.max_retries)
                break; // budget exhausted
            ++stats_.retries;

            // Transient vs persistent: a fail event that arrived since
            // the plan was built means the abort hit a genuinely dead
            // channel — descend the ladder. No pending event means a
            // stall/delay (the stall-chain terminus without a matching
            // fabric event): same topology, backed-off retry.
            bool persistent = false;
            {
                std::lock_guard<std::mutex> guard(events_mutex_);
                persistent = topology_dirty_;
            }
            if (persistent) {
                replanLocked();
                ++report.replans;
                // A rung/embedding change invalidates the chunk
                // geometry: restore ALL original inputs and restart
                // the checkpoint (resuming a different layout would
                // double-count finished chunks).
                checkpoint_.restoreAll(buffers);
                checkpoint_.begin(buffers, layoutFor(total));
            } else {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(
                        backoffDelay(attempt)));
                // Same geometry: void the aborted run's partial
                // records and rewrite partially-summed slices, then
                // retry with the committed chunks masked out.
                checkpoint_.rearm();
                checkpoint_.restoreIncomplete(buffers);
            }
        }
    }

    report.rung = plan_.kind;
    if (report.completed) {
        ++stats_.completions;
        {
            std::lock_guard<std::mutex> guard(events_mutex_);
            health_.noteRunSuccess();
        }
        if (failed_once) {
            report.mttr_s = std::chrono::duration<double>(
                                Clock::now() - first_error)
                                .count();
            obs::Monitor& monitor = obs::Monitor::global();
            if (monitor.enabled())
                monitor.noteRecovery(report.mttr_s,
                                     report.attempts - 1);
        }
    } else {
        ++stats_.failures;
        // Contract: a failed supervised collective never leaks partial
        // sums — callers see their original inputs.
        checkpoint_.restoreAll(buffers);
    }
    checkpoint_.reset();
    return report;
}

} // namespace core
} // namespace ccube
