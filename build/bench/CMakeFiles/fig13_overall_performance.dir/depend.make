# Empty dependencies file for fig13_overall_performance.
# This may be replaced when dependencies are built.
