#include "obs/session.h"

#include <fstream>
#include <utility>

#include "obs/analyze.h"
#include "obs/context.h"
#include "obs/diff.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace obs {

namespace {

bool
endsWithJson(const std::string& path)
{
    static const std::string suffix = ".json";
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Applies --trace-capacity / --trace-mode before capture starts. */
void
applyRetentionFlags(const util::Flags& flags)
{
    const int capacity = flags.getInt("trace-capacity", 0);
    const std::string mode = flags.get("trace-mode");
    if (mode == "flight") {
        TraceRecorder::global().setFlightCapacity(
            capacity > 0 ? static_cast<std::size_t>(capacity)
                         : TraceRecorder::global().capacity());
    } else if (capacity > 0) {
        TraceRecorder::global().setCapacity(
            static_cast<std::size_t>(capacity));
    }
}

} // namespace

ObsSession::ObsSession(const util::Flags& flags)
    : trace_path_(flags.get("trace-out")),
      metrics_path_(flags.get("metrics-out")),
      report_path_(flags.get("report-out")),
      monitor_path_(flags.get("monitor-out")),
      openmetrics_path_(flags.get("monitor-openmetrics")),
      rootcause_path_(flags.get("rootcause-out")),
      profile_path_(flags.get("profile-out")),
      monitor_interval_s_(flags.getDouble("monitor-interval", 0.0)),
      profile_hz_(flags.getDouble("profile-hz", 0.0))
{
    applyRetentionFlags(flags);
    if (monitoring()) {
        if (openmetrics_path_.empty())
            openmetrics_path_ = monitor_path_ + ".om";
        Monitor& monitor = Monitor::global();
        monitor.setInterval(monitor_interval_s_);
        monitor.setSlo(SloSpec::fromFlags(flags));
    }
    start();
}

ObsSession::ObsSession(std::string trace_path, std::string metrics_path,
                       std::string report_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)),
      report_path_(std::move(report_path))
{
    start();
}

ObsSession::~ObsSession()
{
    finish();
}

void
ObsSession::start()
{
    if (tracing() || reporting() || rootCause())
        TraceRecorder::global().enable();
    if (metrics())
        MetricRegistry::global().enable();
    if (monitoring())
        Monitor::global().enable();
    if (profiling())
        Profiler::global().start(profile_hz_);
}

void
ObsSession::finish()
{
    if (finished_)
        return;
    finished_ = true;

    TraceRecorder& recorder = TraceRecorder::global();
    MetricRegistry& registry = MetricRegistry::global();
    Monitor& monitor = Monitor::global();

    if (profiling()) {
        Profiler& profiler = Profiler::global();
        profiler.stop();
        profiler.foldIntoTrace();
        if (metrics())
            profiler.exportTo(registry);
        std::ofstream out(profile_path_);
        if (!out) {
            util::logWarn("obs", "cannot open profile file " +
                                     profile_path_);
        } else {
            profiler.writeCollapsed(out);
            util::logInfo(
                "obs",
                "wrote collapsed-stack profile (" +
                    std::to_string(profiler.ticks()) +
                    " sampler ticks) to " + profile_path_);
        }
    }

    if (metrics()) {
        RankCounters::global().exportTo(registry);
        if (tracing() || reporting() || rootCause())
            recorder.exportTo(registry);
        if (monitoring()) {
            registry.addCounter(
                "monitor.snapshots",
                static_cast<double>(monitor.snapshotCount()));
            registry.addCounter(
                "slo.collective.total",
                static_cast<double>(monitor.collectivesTotal()));
            registry.addCounter(
                "slo.collective.violations",
                static_cast<double>(monitor.collectiveViolations()));
            registry.addCounter(
                "slo.iteration.violations",
                static_cast<double>(monitor.iterationViolations()));
            registry.mergeQuantileHistogram(
                "slo.collective.latency_s",
                monitor.collectiveLatency());
        }
    }

    if (tracing()) {
        std::ofstream out(trace_path_);
        if (!out) {
            util::logWarn("obs", "cannot open trace file " + trace_path_);
        } else {
            recorder.writeJson(out);
            util::logInfo("obs",
                          "wrote " + std::to_string(recorder.eventCount()) +
                              " trace events to " + trace_path_);
        }
    }

    if (reporting()) {
        std::ofstream out(report_path_);
        if (!out) {
            util::logWarn("obs",
                          "cannot open report file " + report_path_);
        } else {
            const TraceAnalyzer analyzer =
                TraceAnalyzer::fromRecorder(recorder);
            writeAnalysisReport(out, analyzer,
                                metrics() ? &registry : nullptr);
            util::logInfo("obs", "wrote analysis report to " +
                                     report_path_);
        }
    }

    if (rootCause()) {
        std::ofstream out(rootcause_path_);
        if (!out) {
            util::logWarn("obs", "cannot open root-cause file " +
                                     rootcause_path_);
        } else {
            const TraceAnalyzer analyzer =
                TraceAnalyzer::fromRecorder(recorder);
            const RootCauseReport report = analyzeRootCause(
                analyzer, metrics() ? &registry : nullptr);
            writeRootCauseReport(out, report);
            util::logInfo("obs", "wrote root-cause report to " +
                                     rootcause_path_);
        }
    }

    if (monitoring()) {
        std::ofstream out(monitor_path_);
        if (!out) {
            util::logWarn("obs", "cannot open monitor file " +
                                     monitor_path_);
        } else {
            monitor.writeJsonl(out);
            util::logInfo(
                "obs",
                "wrote " + std::to_string(monitor.snapshotCount()) +
                    " monitor snapshots to " + monitor_path_);
        }
        std::ofstream om(openmetrics_path_);
        if (!om)
            util::logWarn("obs", "cannot open OpenMetrics file " +
                                     openmetrics_path_);
        else
            monitor.writeOpenMetrics(om);
        monitor.disable();
    }

    if (tracing() || reporting() || rootCause())
        recorder.disable();

    if (metrics()) {
        std::ofstream out(metrics_path_);
        if (!out) {
            util::logWarn("obs",
                          "cannot open metrics file " + metrics_path_);
        } else if (endsWithJson(metrics_path_)) {
            registry.writeJson(out);
        } else {
            registry.writeCsv(out);
        }
        registry.disable();
    }
}

} // namespace obs
} // namespace ccube
