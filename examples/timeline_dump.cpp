/**
 * @file
 * Timeline visualization: renders the steady-state training-iteration
 * timeline (backward → per-chunk AllReduce → chained forward) as an
 * ASCII Gantt chart for each mode, and dumps CSV for external
 * plotting — a Fig. 2(c)/Fig. 8 view of the simulated system.
 *
 * Usage:
 *   timeline_dump [--workload zfnet|vgg16|resnet50|resnet101]
 *                 [--batch N] [--bw SCALE] [--csv]
 */

#include <iostream>

#include "core/ccube_engine.h"
#include "core/timeline.h"
#include "util/flags.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    const bool csv = flags.has("csv");

    dnn::NetworkModel network = dnn::buildResnet50();
    const std::string workload = flags.get("workload", "resnet50");
    if (workload == "zfnet") {
        network = dnn::buildZfNet();
    } else if (workload == "vgg16") {
        network = dnn::buildVgg16();
    } else if (workload == "resnet101") {
        network = dnn::buildResnet101();
    } else if (workload != "resnet50") {
        std::cerr << "unknown --workload " << workload << "\n";
        return 1;
    }

    core::CCubeEngine engine(std::move(network));
    core::IterationConfig config;
    config.batch = flags.getInt("batch", 16);
    // Low bandwidth by default so the communication bar is visible.
    config.bandwidth_scale = flags.getDouble("bw", 0.25);

    for (core::Mode mode :
         {core::Mode::kBaseline, core::Mode::kOverlappedTree,
          core::Mode::kCCube}) {
        const auto events = core::TimelineBuilder::build(
            engine.scheduler(), mode, config);
        if (csv) {
            std::cout << "# mode " << core::modeName(mode) << "\n";
            core::TimelineBuilder::writeCsv(std::cout, events);
            continue;
        }
        std::cout << "\n=== " << core::modeName(mode) << " ("
                  << engine.network().name() << ", batch "
                  << config.batch << ", bandwidth x"
                  << config.bandwidth_scale << ") ===\n";
        core::TimelineBuilder::printAscii(std::cout, events);
    }
    if (!csv) {
        std::cout << "\nIn B, forward starts only after the whole "
                     "AllReduce; in CC the forward bar slides left "
                     "under the AllReduce bar — the chaining the "
                     "paper proposes.\n";
    }
    return 0;
}
