#ifndef CCUBE_OBS_HISTOGRAM_H_
#define CCUBE_OBS_HISTOGRAM_H_

/**
 * @file
 * LogHistogram — a bounded-memory, HDR-style latency histogram.
 *
 * Samples land in log-spaced buckets: the exponent of the value picks
 * a power-of-two decade and kSubBuckets linear sub-buckets refine it,
 * giving a fixed relative error of at most 1/kSubBuckets (~1.6%) per
 * recorded quantile while the whole structure stays a flat array of
 * integer counts. That integer representation is the point: merging
 * two histograms is a commutative, associative element-wise add, so an
 * absorbed sweep capture is byte-identical no matter how tasks were
 * scheduled across workers — the same determinism contract the trace
 * recorder and metric registry already honor (quantiles read from
 * bucket boundaries are exact functions of the counts; only the
 * diagnostic sum() is order-sensitive, and sweep::run() absorbs in
 * task-index order, keeping even that deterministic).
 *
 * Quantiles are reported as the upper bound of the bucket holding the
 * requested rank, so p50/p99/p999 never under-report a deadline miss.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccube {
namespace obs {

/**
 * Log-bucketed histogram of non-negative samples with deterministic
 * merge. Memory is O(number of non-empty decades), bounded by
 * kDecades * kSubBuckets counters regardless of sample count.
 */
class LogHistogram
{
  public:
    /// Linear sub-buckets per power-of-two decade (relative
    /// resolution of recorded quantiles).
    static constexpr int kSubBuckets = 64;
    /// Power-of-two decades covered above 1.0; values larger than
    /// 2^kDecades saturate into the last bucket.
    static constexpr int kDecades = 64;
    /// Decades below 1.0 (down to 2^-32); smaller positive values
    /// collapse into the underflow bucket together with zero.
    static constexpr int kSubUnityDecades = 32;

    /** Records one sample. Negative samples count as zero. */
    void add(double sample);

    /** Records @p count occurrences of @p sample. */
    void addCount(double sample, std::uint64_t count);

    /** Element-wise adds @p other's buckets into this histogram. */
    void merge(const LogHistogram& other);

    /** Total number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Sum of all recorded samples (diagnostic; see file comment). */
    double sum() const { return sum_; }

    /** Smallest recorded sample; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest recorded sample; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Mean of recorded samples; 0 when empty. */
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the bucket
     * containing the sample of rank ceil(q * count). Exact for the
     * extremes (returns min()/max() at q=0 / q=1); 0 when empty.
     */
    double quantile(double q) const;

    /** True when no samples were recorded. */
    bool empty() const { return count_ == 0; }

    /** Drops all samples. */
    void clear();

    /**
     * Byte-stable textual fingerprint of the bucket contents
     * ("index:count,..." plus count/min/max), used by determinism
     * tests and the snapshot serializer.
     */
    std::string fingerprint() const;

  private:
    static int bucketIndex(double sample);
    static double bucketUpperBound(int index);

    // Sparse decade map: decade index -> kSubBuckets counters. Kept
    // sorted by decade so iteration (quantile, fingerprint, merge) is
    // deterministic.
    struct Decade {
        int index = 0;
        std::uint64_t counts[kSubBuckets] = {};
    };

    Decade& decadeFor(int decade_index);

    std::vector<Decade> decades_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0; ///< zero / denormal-small samples
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_HISTOGRAM_H_
