#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace ccube {
namespace util {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    CCUBE_CHECK(lo <= hi, "uniformInt: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::normal()
{
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

void
Rng::fill(std::vector<float>& out, float lo, float hi)
{
    for (auto& v : out)
        v = static_cast<float>(uniform(lo, hi));
}

} // namespace util
} // namespace ccube
