#include "ccl/tree_allreduce.h"

#include <string>
#include <utility>
#include <vector>

#include "ccl/algorithm_tasks.h"
#include "obs/context.h"
#include "obs/trace.h"
#include "topo/detour_router.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

namespace {

using topo::NodeId;
using topo::PhaseDirection;
using topo::Route;

/**
 * Forwarding loop of one static detour rule: each chunk is consumed in
 * place out of the upstream receive buffer and sent downstream with no
 * staging copy — the software analog of the paper's per-direction
 * forwarding kernels.
 */
void
forwardLoop(Communicator& comm, const topo::ForwardingRule& rule,
            FlowId flow, int num_chunks, Protocol proto)
{
    obs::ScopedSpan span("tree.forward " +
                             std::to_string(rule.upstream) + "->" +
                             std::to_string(rule.downstream),
                         "ccl.allreduce",
                         obs::pids::cclRank(rule.transit),
                         obs::threadTrack());
    Mailbox& in = comm.mailbox(rule.upstream, rule.transit, flow);
    Mailbox& out = comm.mailbox(rule.transit, rule.downstream, flow);
    const Mailbox::Visitor forward =
        [&out, proto](std::span<const float> data, int tag) {
            out.send(data, tag, proto);
        };
    for (int c = 0; c < num_chunks; ++c)
        in.consume(forward, proto);
}

} // namespace

namespace detail {

void
treeRankBody(Communicator& comm, int rank, std::span<float> buffer,
             const topo::TreeEmbedding& embedding, const ChunkSplit& split,
             TreePhaseMode mode, TreeFlowIds flows, AllReduceTrace& trace,
             int chunk_id_offset, Protocol proto, const SkipMask& resume)
{
    const topo::BinaryTree& tree = embedding.tree;
    const int num_chunks = split.count();
    const bool is_root = tree.root() == rank;
    RankExecutor& executor = comm.executor();

    // Active chunk list: the local chunk ids this tree still moves.
    // Every rank (and every forwarder) derives the same list from the
    // same global mask, so the pipelines stay in lockstep and chunk
    // tags match hop by hop even when a retry skips finished chunks.
    std::vector<int> active;
    active.reserve(static_cast<std::size_t>(num_chunks));
    for (int c = 0; c < num_chunks; ++c)
        if (!resume.done(chunk_id_offset + c))
            active.push_back(c);
    const int active_count = static_cast<int>(active.size());

    // Detour forwarding kernels hosted on this rank, one persistent
    // helper per rule; each handles exactly the active chunks. The
    // rules come out of the embedding's cache — extracted once per
    // embedding, not per collective per rank.
    RankExecutor::Group helpers;
    for (const topo::ForwardingRule& rule :
         topo::cachedForwardingRules(embedding, /*tree_index=*/0)) {
        if (rule.transit != rank)
            continue;
        const FlowId flow = rule.phase == PhaseDirection::kReduction
                                ? flows.reduce
                                : flows.broadcast;
        executor.submit(helpers, rank, "forward",
                        [&comm, rule, flow, active_count, proto]() {
                            forwardLoop(comm, rule, flow, active_count,
                                        proto);
                        });
    }

    // Per-rank mailbox plan, resolved once before any chunk moves
    // (the analog of the paper compiling its data-movement plan into
    // the persistent kernel): parent/child mailboxes for both
    // directions, so the chunk loops do no registry lookups at all.
    Mailbox* up_parent = nullptr;   ///< reduction: this rank → parent
    Mailbox* down_parent = nullptr; ///< broadcast: parent → this rank
    if (!is_root) {
        const Route& route = embedding.routeToChild(rank);
        const NodeId parent_hop = route.hops[route.hops.size() - 2];
        up_parent = &comm.mailbox(rank, parent_hop, flows.reduce);
        down_parent = &comm.mailbox(parent_hop, rank, flows.broadcast);
    }
    const std::vector<NodeId>& children = tree.children(rank);
    std::vector<Mailbox*> up_children;   ///< reduction: child → here
    std::vector<Mailbox*> down_children; ///< broadcast: here → child
    for (NodeId child : children) {
        const NodeId hop = embedding.routeToChild(child).hops[1];
        up_children.push_back(&comm.mailbox(hop, rank, flows.reduce));
        down_children.push_back(
            &comm.mailbox(rank, hop, flows.broadcast));
    }

    auto broadcast_to_children = [&](int chunk) {
        const std::span<const float> data =
            split.slice(std::span<const float>(buffer), chunk);
        for (Mailbox* box : down_children)
            box->send(data, chunk, proto);
    };

    // Reduction role: accumulate children, pass up (or, at the root,
    // record completion and — when overlapped — start the broadcast).
    auto reduction_role = [&]() {
        obs::ScopedSpan span("tree.reduce", "ccl.allreduce",
                             obs::pids::cclRank(rank),
                             obs::threadTrack());
        for (int c : active) {
            for (Mailbox* box : up_children) {
                const int tag =
                    box->recvReduce(split.slice(buffer, c), proto);
                CCUBE_CHECK(tag == c, "reduction chunk out of order");
            }
            if (!is_root) {
                up_parent->send(
                    split.slice(std::span<const float>(buffer), c), c,
                    proto);
            } else {
                trace.record(rank, chunk_id_offset + c);
                if (mode == TreePhaseMode::kOverlapped)
                    broadcast_to_children(c);
            }
        }
    };

    // Broadcast role of a non-root: receive from the parent, record,
    // and forward down.
    auto broadcast_role = [&]() {
        obs::ScopedSpan span("tree.broadcast", "ccl.allreduce",
                             obs::pids::cclRank(rank),
                             obs::threadTrack());
        for (int c : active) {
            const int tag =
                down_parent->recvInto(split.slice(buffer, c), proto);
            CCUBE_CHECK(tag == c, "broadcast chunk out of order");
            trace.record(rank, chunk_id_offset + c);
            broadcast_to_children(c);
        }
    };

    if (is_root) {
        reduction_role();
        if (mode == TreePhaseMode::kTwoPhase) {
            for (int c : active)
                broadcast_to_children(c);
        }
    } else if (mode == TreePhaseMode::kTwoPhase) {
        reduction_role();
        broadcast_role();
    } else {
        // Overlapped: the reduction and broadcast pipelines run as
        // concurrent "persistent kernels" on this rank — the reducer
        // on a pooled helper, the broadcaster inline. The reducer
        // references this frame's locals, so it gets its own group
        // declared *after* them: if broadcast_role throws (abort), the
        // group's destructor joins the reducer before the unwind can
        // free anything it still touches.
        RankExecutor::Group reducer;
        executor.submit(reducer, rank, "reduce",
                        [&reduction_role]() { reduction_role(); });
        broadcast_role();
        reducer.wait();
    }

    helpers.wait();
}

} // namespace detail

AllReduceTrace
treeAllReduce(Communicator& comm, RankBuffers& buffers,
              const topo::TreeEmbedding& embedding, int num_chunks,
              TreePhaseMode mode, TreeFlowIds flows,
              AllReduceTrace::Observer observer, Protocol proto,
              const SkipMask& resume)
{
    const int p = comm.numRanks();
    CCUBE_CHECK(static_cast<int>(buffers.size()) == p,
                "one buffer per rank required");
    CCUBE_CHECK(embedding.tree.numNodes() == p,
                "tree/communicator size mismatch");
    for (const auto& b : buffers) {
        CCUBE_CHECK(b.size() == buffers[0].size(),
                    "all buffers must be equally sized");
    }

    AllReduceTrace trace(p);
    trace.setObserver(std::move(observer));
    const ChunkSplit split(buffers[0].size(), num_chunks);

    if (comm.engineMode() == RankExecutor::Mode::kStateMachine) {
        std::vector<std::unique_ptr<RankTask>> tasks;
        appendTreeTasks(tasks, comm, buffers, embedding,
                        /*region_offset=*/0, buffers[0].size(), split,
                        mode, flows, TreeDirection::kAllReduce, &trace,
                        /*chunk_id_offset=*/0, "tree", proto, resume);
        comm.runTasks(std::move(tasks), "tree_allreduce", proto);
        return trace;
    }

    comm.run([&](int rank) {
        detail::treeRankBody(
            comm, rank,
            std::span<float>(buffers[static_cast<std::size_t>(rank)]),
            embedding, split, mode, flows, trace, /*chunk_id_offset=*/0,
            proto, resume);
    }, "tree_allreduce", proto);
    return trace;
}

} // namespace ccl
} // namespace ccube
