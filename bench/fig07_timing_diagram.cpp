/**
 * @file
 * Reproduces Fig. 7: the per-chunk timing of the baseline vs
 * overlapped tree algorithm (6 chunks), showing when each chunk is
 * fully reduced at the root and when it finishes broadcasting — and
 * the resulting gradient turnaround gap.
 */

#include <iostream>

#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/tree_schedule.h"
#include "topo/tree_embedding.h"
#include "util/flags.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);

    std::cout << "=== Fig. 7: baseline vs overlapped tree timing "
                 "(P=4, 6 chunks) ===\n\n";

    constexpr int kP = 4;
    constexpr int kChunks = 6;
    constexpr double kBw = 25e9;
    constexpr double kAlpha = 4.6e-6;
    const double bytes = 6e6;

    topo::Graph clique("clique");
    for (int n = 0; n < kP; ++n)
        clique.addNode("N" + std::to_string(n));
    for (int a = 0; a < kP; ++a)
        for (int b = a + 1; b < kP; ++b)
            clique.addLink(a, b, kBw, kAlpha);
    const topo::TreeEmbedding tree =
        topo::embedTree(clique, topo::BinaryTree::inorder(kP));

    auto run = [&](simnet::PhaseMode mode) {
        sim::Simulation sim;
        simnet::Network net(sim, clique);
        return simnet::runTreeSchedule(sim, net, tree, bytes, mode,
                                       kChunks);
    };
    const auto base = run(simnet::PhaseMode::kTwoPhase);
    const auto over = run(simnet::PhaseMode::kOverlapped);

    const int root = tree.tree.root();
    util::Table table({"chunk", "B_root_us", "B_all_ranks_us",
                       "C1_root_us", "C1_all_ranks_us"});
    for (int c = 0; c < kChunks; ++c) {
        table.addRow(
            {std::to_string(c + 1),
             util::formatDouble(
                 base.chunk_at_rank[static_cast<std::size_t>(root)]
                                   [static_cast<std::size_t>(c)] *
                     1e6,
                 1),
             util::formatDouble(
                 base.chunk_ready[static_cast<std::size_t>(c)] * 1e6,
                 1),
             util::formatDouble(
                 over.chunk_at_rank[static_cast<std::size_t>(root)]
                                   [static_cast<std::size_t>(c)] *
                     1e6,
                 1),
             util::formatDouble(
                 over.chunk_ready[static_cast<std::size_t>(c)] * 1e6,
                 1)});
    }
    table.print(std::cout);

    std::cout << "\ncompletion:  B = "
              << util::formatDouble(base.completion_time * 1e6, 1)
              << " us,  C1 = "
              << util::formatDouble(over.completion_time * 1e6, 1)
              << " us\n";
    std::cout << "turnaround:  B = "
              << util::formatDouble(base.turnaroundTime() * 1e6, 1)
              << " us,  C1 = "
              << util::formatDouble(over.turnaroundTime() * 1e6, 1)
              << " us  (speedup "
              << util::formatDouble(
                     base.turnaroundTime() / over.turnaroundTime(), 2)
              << "x)\n";
    std::cout << "\nIn the baseline every chunk's broadcast waits for "
                 "the full reduction; overlapped chunks turn around "
                 "as soon as they reach the root (Observation #1).\n";
    obs_session.finish();
    return 0;
}
