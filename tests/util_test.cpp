/**
 * @file
 * Unit tests for util: stats, table, rng, units.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/units.h"

namespace ccube {
namespace util {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MeanMinMax)
{
    RunningStats stats;
    for (double v : {3.0, 1.0, 2.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 3u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 3.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 6.0);
}

TEST(RunningStats, VarianceMatchesTwoPass)
{
    Rng rng(7);
    std::vector<double> samples;
    RunningStats stats;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-5.0, 5.0);
        samples.push_back(v);
        stats.add(v);
    }
    double mean = 0.0;
    for (double v : samples)
        mean += v;
    mean /= static_cast<double>(samples.size());
    double var = 0.0;
    for (double v : samples)
        var += (v - mean) * (v - mean);
    var /= static_cast<double>(samples.size() - 1);
    EXPECT_NEAR(stats.mean(), mean, 1e-12);
    EXPECT_NEAR(stats.variance(), var, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential)
{
    Rng rng(11);
    RunningStats all, a, b;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.normal();
        all.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Quantile, MedianAndExtremes)
{
    std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, Interpolates)
{
    std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Geomean, KnownValue)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(3);
    bool seen[5] = {};
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = rng.uniformInt(0, 4);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 4);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.normal());
    EXPECT_NEAR(stats.mean(), 0.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(kib(1), 1024.0);
    EXPECT_DOUBLE_EQ(mib(64), 64.0 * 1024 * 1024);
    EXPECT_DOUBLE_EQ(gbps(25), 25e9);
    EXPECT_DOUBLE_EQ(usec(4.6), 4.6e-6);
}

TEST(Units, Formatting)
{
    EXPECT_EQ(formatBytes(mib(64)), "64.0 MiB");
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatSeconds(1.5e-3), "1.5 ms");
    EXPECT_EQ(formatSeconds(2.5e-6), "2.5 us");
    EXPECT_EQ(formatBandwidth(25e9), "25.00 GB/s");
}

TEST(Table, AlignsAndCounts)
{
    Table table({"a", "long_header"});
    table.addRow({"1", "2"});
    table.addNumericRow({3.14159, 2.71828}, 2);
    EXPECT_EQ(table.rowCount(), 2u);
    std::ostringstream oss;
    table.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table table({"x", "y"});
    table.addRow({"1", "2"});
    std::ostringstream oss;
    table.printCsv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(Logging, LevelGate)
{
    std::ostringstream sink;
    Logger::instance().setSink(&sink);
    Logger::instance().setLevel(LogLevel::kWarn);
    logDebug("test", "should not appear");
    logWarn("test", "should appear");
    Logger::instance().setSink(nullptr);
    EXPECT_EQ(sink.str().find("should not appear"), std::string::npos);
    EXPECT_NE(sink.str().find("should appear"), std::string::npos);
}

} // namespace
} // namespace util
} // namespace ccube
