/**
 * @file
 * Abort-path tests for the fault-tolerant collective runtime: a rank
 * killed or wedged by the FaultInjector must never hang the suite —
 * every scenario has to surface a CollectiveError naming that rank
 * within the watchdog deadline, on both executor modes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "ccl/double_tree_allreduce.h"
#include "ccl/executor.h"
#include "ccl/fault.h"
#include "ccl/sync_primitives.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"

namespace ccube {
namespace ccl {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------- timed primitives

TEST(TimedWait, WaitForTimesOutOnEmptySemaphore)
{
    BoundedSemaphore sem(2, 0);
    EXPECT_FALSE(sem.waitFor(5ms));
    sem.post();
    EXPECT_TRUE(sem.waitFor(5ms));
}

TEST(TimedWait, PostForTimesOutAtCapacity)
{
    BoundedSemaphore sem(1, 1);
    EXPECT_FALSE(sem.postFor(5ms));
    sem.wait();
    EXPECT_TRUE(sem.postFor(5ms));
}

TEST(TimedWait, LockForTimesOutOnHeldLock)
{
    SpinLock lock;
    lock.lock();
    EXPECT_FALSE(lock.lockFor(5ms));
    lock.unlock();
    EXPECT_TRUE(lock.lockFor(5ms));
    lock.unlock();
}

TEST(TimedWait, CheckForTimesOutBelowTarget)
{
    CheckableCounter counter;
    counter.post();
    EXPECT_FALSE(counter.checkFor(2, 5ms));
    counter.post();
    EXPECT_TRUE(counter.checkFor(2, 5ms));
}

// ------------------------------------------------------ abort epoch

TEST(AbortState, EpochParityAndFirstTripWins)
{
    AbortState state;
    EXPECT_FALSE(state.aborted());
    EXPECT_EQ(state.epoch() % 2, 0u);

    CollectiveError::Info first;
    first.failed_rank = 3;
    EXPECT_TRUE(state.trip(first));
    EXPECT_TRUE(state.aborted());
    EXPECT_EQ(state.epoch() % 2, 1u);

    CollectiveError::Info second;
    second.failed_rank = 5;
    EXPECT_FALSE(state.trip(second)); // first trip wins
    EXPECT_EQ(state.info().failed_rank, 3);

    state.clear();
    EXPECT_FALSE(state.aborted());
    EXPECT_EQ(state.epoch() % 2, 0u); // next generation, re-armed
    EXPECT_TRUE(state.trip(second));
    EXPECT_EQ(state.info().failed_rank, 5);
}

TEST(AbortState, AbortUnblocksASpinningWaiter)
{
    CommFaultContext context(2);
    BoundedSemaphore sem(1, 0);
    std::atomic<bool> threw{false};

    std::thread waiter([&]() {
        ScopedFaultContext scope(&context);
        try {
            sem.wait(); // would spin forever without the abort
        } catch (const AbortedWait&) {
            threw.store(true);
        }
    });
    std::this_thread::sleep_for(20ms);
    CollectiveError::Info info;
    info.failed_rank = 1;
    context.abortState().trip(info);
    waiter.join();
    EXPECT_TRUE(threw.load());
}

TEST(FaultInjector, FiresOnceAtTheArmedOperation)
{
    FaultInjector injector;
    FaultInjector::Fault armed;
    armed.rank = 2;
    armed.action = FaultInjector::Action::kKill;
    armed.at_op = 1;
    injector.arm(armed);

    FaultInjector::Fault fired;
    EXPECT_FALSE(injector.onOp(2, &fired)); // op 0: not yet
    EXPECT_TRUE(injector.onOp(2, &fired));  // op 1: fires
    EXPECT_EQ(fired.rank, 2);
    EXPECT_FALSE(injector.onOp(2, &fired)); // fires at most once
    EXPECT_EQ(injector.opsSeen(2), 3);
    EXPECT_EQ(injector.opsSeen(5), 0);
}

TEST(CommWatchdog, FiresAfterDeadlineAndDisarmBlocksCallback)
{
    CommWatchdog watchdog;
    std::atomic<int> fired{0};
    watchdog.arm(10ms, [&]() { fired.fetch_add(1); });
    std::this_thread::sleep_for(50ms);
    watchdog.disarm();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_TRUE(watchdog.fired());

    // A disarm before the deadline suppresses the callback.
    watchdog.arm(10s, [&]() { fired.fetch_add(1); });
    watchdog.disarm();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_FALSE(watchdog.fired());
}

// ------------------------------------------- collective abort paths

class FaultedCollective
    : public ::testing::TestWithParam<RankExecutor::Mode>
{
  protected:
    static constexpr int kRanks = 8;
    static constexpr auto kDeadline = 300ms;

    RankBuffers makeBuffers(std::size_t elems) const
    {
        RankBuffers buffers(kRanks);
        for (std::size_t r = 0; r < buffers.size(); ++r)
            buffers[r].assign(elems, static_cast<float>(r + 1));
        return buffers;
    }

    /**
     * Runs a double-tree AllReduce with @p fault armed and requires
     * the structured error to blame the faulted rank within (a
     * generous multiple of) the deadline instead of hanging.
     */
    void expectAbort(const FaultInjector::Fault& fault)
    {
        const topo::Graph graph = topo::makeDgx1();
        const topo::DoubleTreeEmbedding dt =
            topo::makeDgx1DoubleTree(graph);
        Communicator comm(kRanks, 4, GetParam());
        comm.setDeadline(kDeadline);
        FaultInjector injector;
        injector.arm(fault);
        comm.setFaultInjector(&injector);

        RankBuffers buffers = makeBuffers(32);
        bool caught = false;
        try {
            doubleTreeAllReduce(comm, buffers, dt, 2,
                                TreePhaseMode::kOverlapped);
        } catch (const CollectiveError& error) {
            caught = true;
            EXPECT_EQ(error.info().failed_rank, fault.rank);
            EXPECT_EQ(error.info().op, "double_tree_allreduce");
            EXPECT_GT(error.info().deadline_s, 0.0);
        }
        EXPECT_TRUE(caught) << "collective completed despite fault";

        // The abort poisons the communicator until cleared ...
        EXPECT_THROW(comm.run([](int) {}, "noop"), CollectiveError);
        // ... and clearAbort() re-arms it for the next collective.
        comm.clearAbort();
        comm.setFaultInjector(nullptr);
        RankBuffers retry = makeBuffers(32);
        doubleTreeAllReduce(comm, retry, dt, 2,
                            TreePhaseMode::kOverlapped);
        for (std::size_t r = 0; r < retry.size(); ++r)
            EXPECT_FLOAT_EQ(retry[r][0], 36.0f); // 1+2+...+8
    }
};

TEST_P(FaultedCollective, RankKilledBeforeFirstPost)
{
    FaultInjector::Fault fault;
    fault.rank = 3;
    fault.action = FaultInjector::Action::kKill;
    fault.at_op = 0;
    expectAbort(fault);
}

TEST_P(FaultedCollective, RankKilledMidChunk)
{
    FaultInjector::Fault fault;
    fault.rank = 3;
    fault.action = FaultInjector::Action::kKill;
    fault.at_op = 3;
    expectAbort(fault);
}

TEST_P(FaultedCollective, RankStalledDuringDoubleTreeReduce)
{
    FaultInjector::Fault fault;
    fault.rank = 5;
    fault.action = FaultInjector::Action::kStall;
    fault.at_op = 2;
    expectAbort(fault);
}

TEST_P(FaultedCollective, DelayedRankStillCompletes)
{
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding dt =
        topo::makeDgx1DoubleTree(graph);
    Communicator comm(kRanks, 4, GetParam());
    comm.setDeadline(kDeadline);
    FaultInjector injector;
    FaultInjector::Fault fault;
    fault.rank = 2;
    fault.action = FaultInjector::Action::kDelay;
    fault.at_op = 1;
    fault.delay_s = 0.01; // well inside the deadline
    injector.arm(fault);
    comm.setFaultInjector(&injector);

    RankBuffers buffers = makeBuffers(32);
    doubleTreeAllReduce(comm, buffers, dt, 2,
                        TreePhaseMode::kOverlapped);
    for (std::size_t r = 0; r < buffers.size(); ++r)
        EXPECT_FLOAT_EQ(buffers[r][0], 36.0f);
}

TEST_P(FaultedCollective, ManualAbortSurfacesStructuredError)
{
    Communicator comm(kRanks, 4, GetParam());
    CollectiveError::Info info;
    info.failed_rank = 6;
    info.reason = "operator-initiated abort";
    comm.abort(info);
    bool caught = false;
    try {
        comm.run([](int) {}, "tree_broadcast");
    } catch (const CollectiveError& error) {
        caught = true;
        EXPECT_EQ(error.info().failed_rank, 6);
    }
    EXPECT_TRUE(caught);
    comm.clearAbort();
    comm.run([](int) {}, "tree_broadcast"); // usable again
}

INSTANTIATE_TEST_SUITE_P(
    Modes, FaultedCollective,
    ::testing::Values(RankExecutor::Mode::kPersistent,
                      RankExecutor::Mode::kSpawnPerCall,
                      RankExecutor::Mode::kStateMachine),
    [](const ::testing::TestParamInfo<RankExecutor::Mode>& info) {
        switch (info.param) {
          case RankExecutor::Mode::kPersistent:
            return "persistent";
          case RankExecutor::Mode::kSpawnPerCall:
            return "spawn";
          case RankExecutor::Mode::kStateMachine:
            return "statemachine";
        }
        return "unknown";
    });

} // namespace
} // namespace ccl
} // namespace ccube
