#include "simnet/tree_schedule.h"

#include <algorithm>

#include "obs/monitor.h"
#include "util/logging.h"

namespace ccube {
namespace simnet {

using topo::NodeId;

TreeSchedule::TreeSchedule(Network& network,
                           const topo::TreeEmbedding& embedding,
                           double total_bytes, PhaseMode mode,
                           int num_chunks, int up_lane, int down_lane)
    : net_(network),
      engine_(network),
      embedding_(embedding),
      mode_(mode),
      num_chunks_(num_chunks),
      up_lane_(up_lane),
      down_lane_(down_lane < 0 ? up_lane : down_lane),
      chunk_bytes_(total_bytes / num_chunks)
{
    CCUBE_CHECK(num_chunks >= 1, "need at least one chunk");
    CCUBE_CHECK(total_bytes > 0.0, "non-positive payload");
    CCUBE_CHECK(embedding_.tree.valid(), "invalid tree");

    const int p = embedding_.tree.numNodes();
    up_routes_.resize(static_cast<std::size_t>(p));
    down_routes_.resize(static_cast<std::size_t>(p));
    for (NodeId n = 0; n < p; ++n) {
        if (n != embedding_.tree.root()) {
            const topo::Route& down = embedding_.routeToChild(n);
            down_routes_[static_cast<std::size_t>(n)] = down;
            up_routes_[static_cast<std::size_t>(n)] = down.reversed();
        }
    }
    reduce_arrivals_.assign(static_cast<std::size_t>(p),
                            std::vector<int>(
                                static_cast<std::size_t>(num_chunks), 0));
    available_at_.assign(static_cast<std::size_t>(p),
                         std::vector<double>(
                             static_cast<std::size_t>(num_chunks), -1.0));
    // Every (rank, chunk) pair must become available exactly once.
    pending_arrivals_ = p * num_chunks;
}

void
TreeSchedule::start(double at)
{
    net_.simulation().at(at, [this]() {
        for (NodeId leaf : embedding_.tree.leaves()) {
            for (int c = 0; c < num_chunks_; ++c)
                sendUp(leaf, c);
        }
        // Degenerate star roots (all nodes leaves) cannot occur in a
        // valid binary tree with P ≥ 2, but a 1-chunk, 2-node tree is
        // legal: the root's reduction completes purely on arrivals.
    });
}

void
TreeSchedule::sendUp(NodeId node, int chunk)
{
    const topo::Route& route = up_routes_[static_cast<std::size_t>(node)];
    CCUBE_CHECK(route.hops.size() >= 2, "sendUp from the root");
    const NodeId parent = route.hops.back();
    engine_.sendAlongRoute(route, chunk_bytes_,
                           [this, parent, chunk]() {
                               onReduceArrival(parent, chunk);
                           },
                           up_lane_);
}

void
TreeSchedule::onReduceArrival(NodeId node, int chunk)
{
    int& count =
        reduce_arrivals_[static_cast<std::size_t>(node)]
                        [static_cast<std::size_t>(chunk)];
    ++count;
    const int need = static_cast<int>(
        embedding_.tree.children(node).size());
    CCUBE_CHECK(count <= need, "too many reduce arrivals");
    if (count == need)
        chunkReduced(node, chunk);
}

void
TreeSchedule::chunkReduced(NodeId node, int chunk)
{
    if (node != embedding_.tree.root()) {
        sendUp(node, chunk);
        return;
    }
    // Fully reduced at the root: available here now.
    recordAvailable(node, chunk);
    if (mode_ == PhaseMode::kOverlapped) {
        // Chain straight into the broadcast (Observation #1: no
        // waiting for the rest of the reduction).
        sendDown(node, chunk);
    } else {
        ++root_chunks_done_;
        if (root_chunks_done_ == num_chunks_) {
            // Baseline: broadcast begins only now, chunks in order.
            for (int c = 0; c < num_chunks_; ++c)
                sendDown(node, c);
        }
    }
}

void
TreeSchedule::sendDown(NodeId node, int chunk)
{
    for (NodeId child : embedding_.tree.children(node)) {
        const topo::Route& route =
            down_routes_[static_cast<std::size_t>(child)];
        engine_.sendAlongRoute(route, chunk_bytes_,
                               [this, child, chunk]() {
                                   onBroadcastArrival(child, chunk);
                               },
                               down_lane_);
    }
}

void
TreeSchedule::onBroadcastArrival(NodeId node, int chunk)
{
    recordAvailable(node, chunk);
    sendDown(node, chunk); // no-op at leaves
}

void
TreeSchedule::recordAvailable(NodeId node, int chunk)
{
    double& slot = available_at_[static_cast<std::size_t>(node)]
                                [static_cast<std::size_t>(chunk)];
    CCUBE_CHECK(slot < 0.0, "chunk " << chunk << " delivered twice to "
                                     << node);
    slot = net_.simulation().now();
    --pending_arrivals_;
    if (pending_arrivals_ == 0)
        completion_time_ = net_.simulation().now();
}

ScheduleResult
TreeSchedule::result() const
{
    CCUBE_CHECK(finished(), "schedule has not completed");
    ScheduleResult out;
    out.num_chunks = num_chunks_;
    out.completion_time = completion_time_;
    out.chunk_at_rank = available_at_;
    out.chunk_ready.assign(static_cast<std::size_t>(num_chunks_), 0.0);
    for (int c = 0; c < num_chunks_; ++c) {
        double latest = 0.0;
        for (const auto& per_rank : available_at_)
            latest = std::max(latest,
                              per_rank[static_cast<std::size_t>(c)]);
        out.chunk_ready[static_cast<std::size_t>(c)] = latest;
    }
    return out;
}

ScheduleResult
TreeSchedule::partialResult(double stalled_at) const
{
    ScheduleResult out;
    out.num_chunks = num_chunks_;
    out.completion_time = finished() ? completion_time_ : stalled_at;
    out.chunk_at_rank = available_at_;
    out.chunk_ready.assign(static_cast<std::size_t>(num_chunks_), -1.0);
    for (int c = 0; c < num_chunks_; ++c) {
        double latest = 0.0;
        bool complete = true;
        for (const auto& per_rank : available_at_) {
            const double at = per_rank[static_cast<std::size_t>(c)];
            if (at < 0.0) {
                complete = false;
                break;
            }
            latest = std::max(latest, at);
        }
        if (complete)
            out.chunk_ready[static_cast<std::size_t>(c)] = latest;
    }
    return out;
}

std::vector<int>
treeChannelIds(const topo::Graph& graph,
               const topo::TreeEmbedding& embedding, int lane,
               bool down)
{
    std::vector<int> out;
    const int p = embedding.tree.numNodes();
    for (NodeId n = 0; n < p; ++n) {
        if (n == embedding.tree.root())
            continue;
        topo::Route route = embedding.routeToChild(n);
        if (!down)
            route = route.reversed();
        for (std::size_t h = 0; h + 1 < route.hops.size(); ++h) {
            const std::vector<int> ids =
                graph.channelIds(route.hops[h], route.hops[h + 1]);
            CCUBE_CHECK(!ids.empty(), "broken route in embedding");
            const int pick = std::clamp(
                lane, 0, static_cast<int>(ids.size()) - 1);
            out.push_back(ids[static_cast<std::size_t>(pick)]);
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

ScheduleResult
runTreeSchedule(sim::Simulation& simulation, Network& network,
                const topo::TreeEmbedding& embedding, double total_bytes,
                PhaseMode mode, int num_chunks, int up_lane,
                int down_lane, ccl::Protocol proto)
{
    TreeSchedule schedule(network, embedding, total_bytes, mode,
                          num_chunks, up_lane, down_lane);
    schedule.setProtocol(proto);
    const double at = simulation.now();
    schedule.start(at);
    simulation.run();
    ScheduleResult result = schedule.result();
    obs::Monitor& monitor = obs::Monitor::global();
    if (monitor.enabled())
        monitor.collectiveComplete(
            mode == PhaseMode::kOverlapped ? "allreduce.tree_overlapped"
                                           : "allreduce.tree",
            at, result.completion_time, total_bytes);
    return result;
}

} // namespace simnet
} // namespace ccube
