/**
 * @file
 * Reproduces Fig. 4: analytical performance ratio of the tree vs ring
 * AllReduce, (1/T_tree)/(1/T_ring) = T_ring/T_tree, as a function of
 * node count and message size.
 *
 * Paper shape: ratio > 1 (tree wins) for small messages and large
 * node counts; ring wins by up to ~14% for large messages on few
 * nodes; tree scales better as P grows.
 */

#include <iostream>
#include <vector>

#include "model/ring_model.h"
#include "model/tree_model.h"
#include "obs/session.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);

    std::cout << "=== Fig. 4: T_ring / T_tree model ratio (>1 means "
                 "tree faster) ===\n\n";

    const model::AlphaBeta link =
        model::AlphaBeta::fromBandwidth(4.6e-6, 25e9);
    const model::RingModel ring(link);
    const model::TreeModel tree(link);

    const std::vector<int> nodes{8, 16, 32, 64, 128, 256, 512, 1024};
    const std::vector<std::pair<const char*, double>> sizes{
        {"16KB", util::kib(16)}, {"256KB", util::kib(256)},
        {"1MB", util::mib(1)},   {"16MB", util::mib(16)},
        {"64MB", util::mib(64)},
    };

    std::vector<std::string> headers{"size \\ P"};
    for (int p : nodes)
        headers.push_back(std::to_string(p));
    util::Table table(headers);

    double worst_ring_win = 1.0;
    for (const auto& [label, bytes] : sizes) {
        std::vector<std::string> row{label};
        for (int p : nodes) {
            const double ratio = ring.allReduceTime(p, bytes) /
                                 tree.allReduceTime(p, bytes);
            worst_ring_win = std::min(worst_ring_win, ratio);
            row.push_back(util::formatDouble(ratio, 3));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nAsymptotic ring advantage for N → inf at P=8: "
              << util::formatDouble(
                     (2.0 / (2.0 * 7.0 / 8.0) - 1.0) * 100, 1)
              << "% — the paper's ~14% bound; at finite N the tree's "
                 "sqrt(alpha*beta*N*logP) pipeline-fill term widens "
                 "the gap for our alpha.\n";
    std::cout << "Largest ring advantage anywhere in the grid: "
              << util::formatDouble((1.0 / worst_ring_win - 1.0) * 100,
                                    1)
              << "% (paper: up to ~14% for large messages on few "
                 "nodes).\n";
    std::cout << "Tree wins everywhere messages are small or node "
                 "counts are large — the scalability argument for the "
                 "tree algorithm.\n";
    obs_session.finish();
    return 0;
}
