#ifndef CCUBE_OBS_ANALYZE_H_
#define CCUBE_OBS_ANALYZE_H_

/**
 * @file
 * Post-hoc trace analysis: turns the raw spans of a TraceRecorder (or
 * FlightRecorder) capture into the observations the paper's argument
 * rests on.
 *
 *  - **Channel timelines / idle detection.** Every `simnet.channel`
 *    occupancy span feeds a per-channel busy timeline; the analyzer
 *    merges intervals and reports utilization and idle gaps over any
 *    window. Aggregating over the down-direction channels of a tree
 *    embedding reproduces Observation #2 mechanically: the baseline
 *    two-phase schedule leaves them idle for the whole reduction
 *    phase, the overlapped (C-Cube) schedule keeps them streaming.
 *
 *  - **Critical-path extraction.** Spans form a dependency DAG:
 *    FIFO order on each (pid, tid) track, DES hand-offs (a transfer
 *    whose request time coincides with another transfer's completion),
 *    and mailbox `post` → `wait` edges matched by label + sequence
 *    number. The longest busy chain through that DAG is the critical
 *    path; its spans are attributed to startup (α), serialization
 *    (βN), synchronization stalls (queue waits, mailbox waits), and
 *    reduction work.
 *
 *  - **α-β fitting.** A least-squares line through the observed
 *    (bytes, occupancy) transfer samples recovers the effective α and
 *    β of the fabric, which callers cross-check against the configured
 *    `model::AlphaBeta` to quantify sim-vs-model divergence.
 *
 * All timestamps are microseconds in the trace time base (simulated or
 * wall-clock — the analyzer is agnostic; mixing domains in one capture
 * is the caller's responsibility). Durations reported by the fit are
 * converted to seconds to match model::AlphaBeta.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "model/alpha_beta.h"
#include "obs/trace.h"

namespace ccube {
namespace obs {

/** Half-open-ish time interval [start_us, end_us], microseconds. */
struct TimeInterval {
    double start_us = 0.0;
    double end_us = 0.0;

    double durationUs() const { return end_us - start_us; }
};

/**
 * Busy timeline of one channel, rebuilt from its occupancy spans.
 */
struct ChannelTimeline {
    int channel = -1;  ///< channel id (the span tid)
    int pid = -1;      ///< owning sim-node pid
    std::string name;  ///< resource name from the span
    std::vector<TimeInterval> busy; ///< merged, time-sorted
    double busy_us = 0.0;           ///< total busy time
    double bytes = 0.0;             ///< total payload carried
    int transfers = 0;              ///< occupancy spans seen

    /** First busy instant (0 when never busy). */
    double firstBusyUs() const;

    /** Last busy instant (0 when never busy). */
    double lastBusyUs() const;

    /** Busy time that falls inside @p window. */
    double busyWithinUs(const TimeInterval& window) const;

    /** Fraction of @p window this channel was busy. */
    double utilization(const TimeInterval& window) const;

    /** Fraction of @p window this channel sat idle. */
    double idleFraction(const TimeInterval& window) const;

    /**
     * Idle intervals inside @p window longer than @p min_gap_us,
     * including the lead-in before the first transfer and the tail
     * after the last one.
     */
    std::vector<TimeInterval> idleIntervals(const TimeInterval& window,
                                            double min_gap_us
                                            = 0.0) const;
};

/** One observed point-to-point transfer (channel occupancy). */
struct TransferSample {
    int channel = -1;
    double ts_us = 0.0;         ///< grant (occupancy start)
    double dur_us = 0.0;        ///< occupancy = α + βN
    double bytes = 0.0;
    double queue_wait_us = 0.0; ///< time between request and grant
};

/**
 * Least-squares fit of occupancy = α + β·bytes over the observed
 * transfers.
 */
struct AlphaBetaFit {
    bool valid = false; ///< needs ≥ 2 distinct transfer sizes
    double alpha_s = 0.0;
    double beta_s_per_byte = 0.0;
    int samples = 0;
    double r2 = 0.0; ///< coefficient of determination

    /** Bandwidth implied by the fitted β (bytes/second). */
    double bandwidth() const
    {
        return beta_s_per_byte > 0.0 ? 1.0 / beta_s_per_byte : 0.0;
    }

    /** As a model parameter set. */
    model::AlphaBeta asModel() const
    {
        return model::AlphaBeta{alpha_s, beta_s_per_byte};
    }

    /** |fit α − reference α| / reference α. */
    double alphaRelError(const model::AlphaBeta& reference) const;

    /** |fit β − reference β| / reference β. */
    double betaRelError(const model::AlphaBeta& reference) const;
};

/** Where a critical-path span's time went. */
enum class CostKind {
    kStartup,       ///< per-transfer α
    kSerialization, ///< βN wire time
    kSyncStall,     ///< queue waits, mailbox/semaphore waits
    kReduction,     ///< reduce compute spans
    kOther,
};

/** Attribution of end-to-end time across cost kinds (microseconds). */
struct CostBreakdown {
    double startup_us = 0.0;
    double serialization_us = 0.0;
    double sync_stall_us = 0.0;
    double reduction_us = 0.0;
    double other_us = 0.0;

    double totalUs() const
    {
        return startup_us + serialization_us + sync_stall_us +
               reduction_us + other_us;
    }
};

/** One span on the critical path plus its dominant attribution. */
struct PathStep {
    TraceEvent span;
    CostKind kind = CostKind::kOther;
    double stall_before_us = 0.0; ///< wait between predecessor and span
};

/** The extracted critical path. */
struct CriticalPath {
    std::vector<PathStep> steps; ///< time-ordered
    CostBreakdown breakdown;
    double start_us = 0.0; ///< first step's (request) time
    double end_us = 0.0;   ///< last step's completion
    double busy_us = 0.0;  ///< sum of step durations

    bool empty() const { return steps.empty(); }
    double spanUs() const { return end_us - start_us; }
};

/**
 * The analysis engine. Construction indexes the events; queries are
 * cheap afterwards. The event vector is typically
 * `TraceRecorder::global().snapshot()` or `FlightRecorder::snapshot()`.
 */
class TraceAnalyzer
{
  public:
    explicit TraceAnalyzer(std::vector<TraceEvent> events);

    /** Convenience: analyzes @p recorder's current snapshot. */
    static TraceAnalyzer fromRecorder(const TraceRecorder& recorder);

    /** The events under analysis. */
    const std::vector<TraceEvent>& events() const { return events_; }

    // --- Channel occupancy ------------------------------------------

    /** Timelines of every channel that carried traffic, by id. */
    const std::vector<ChannelTimeline>& channels() const
    {
        return channels_;
    }

    /** Timeline of channel @p id; null when it carried no traffic. */
    const ChannelTimeline* channelById(int channel) const;

    /** [earliest request, latest completion] over all channel spans
     *  (zero interval when the trace has none). The default idle /
     *  utilization window. */
    TimeInterval channelWindow() const { return channel_window_; }

    /**
     * Aggregate idle fraction of @p channel_ids over @p window:
     * 1 − Σbusy / (n·window). Channels absent from the trace (no
     * traffic at all) are skipped; returns 0 when none of the ids
     * carried traffic.
     */
    double idleFraction(const std::vector<int>& channel_ids,
                        const TimeInterval& window) const;

    /** Same, over channelWindow(). */
    double idleFraction(const std::vector<int>& channel_ids) const;

    // --- Transfers and the α-β fit ----------------------------------

    /** Every observed channel occupancy, in trace order. */
    const std::vector<TransferSample>& transfers() const
    {
        return transfers_;
    }

    /** Least-squares α-β fit over transfers(). */
    AlphaBetaFit fitAlphaBeta() const;

    // --- Critical path ----------------------------------------------

    /**
     * Extracts the longest busy chain through the span dependency DAG
     * and attributes it. @p alpha_us is the per-transfer startup used
     * to split channel occupancies into α + βN; pass a negative value
     * to use the fitted α (or 0 when the fit is invalid).
     */
    CriticalPath criticalPath(double alpha_us = -1.0) const;

  private:
    std::vector<TraceEvent> events_;
    std::vector<ChannelTimeline> channels_; ///< sorted by channel id
    std::vector<TransferSample> transfers_;
    TimeInterval channel_window_{};
};

/** Cost-kind classification of one span (analysis + report share it). */
CostKind classifySpan(const TraceEvent& event);

/** Human-readable cost-kind name. */
const char* costKindName(CostKind kind);

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_ANALYZE_H_
