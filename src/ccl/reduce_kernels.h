#ifndef CCUBE_CCL_REDUCE_KERNELS_H_
#define CCUBE_CCL_REDUCE_KERNELS_H_

/**
 * @file
 * Elementwise kernels of the mailbox fast path.
 *
 * The paper's persistent kernels reduce incoming chunks directly out
 * of the P2P receive buffers; the host-side analog is a single
 * vectorizable loop over the mailbox slot. These kernels are the only
 * place the runtime touches payload floats, so the accumulate loop is
 * written once: restrict-qualified pointers plus a vectorization
 * pragma, with a 4-way unrolled tail-free main loop that GCC/Clang
 * turn into packed adds at -O2.
 */

#include <cstddef>
#include <cstring>

#if defined(__clang__)
#define CCUBE_PRAGMA_SIMD                                                   \
    _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define CCUBE_PRAGMA_SIMD _Pragma("GCC ivdep")
#else
#define CCUBE_PRAGMA_SIMD
#endif

namespace ccube {
namespace ccl {
namespace kernels {

/** dst[i] += src[i] for i in [0, n). Buffers must not alias. */
inline void
reduceAdd(float* __restrict dst, const float* __restrict src,
          std::size_t n)
{
    std::size_t i = 0;
    const std::size_t n4 = n & ~static_cast<std::size_t>(3);
    CCUBE_PRAGMA_SIMD
    for (; i < n4; i += 4) {
        dst[i + 0] += src[i + 0];
        dst[i + 1] += src[i + 1];
        dst[i + 2] += src[i + 2];
        dst[i + 3] += src[i + 3];
    }
    for (; i < n; ++i)
        dst[i] += src[i];
}

/** dst[i] = src[i] for i in [0, n). Buffers must not alias. */
inline void
copyInto(float* __restrict dst, const float* __restrict src,
         std::size_t n)
{
    if (n > 0)
        std::memcpy(dst, src, n * sizeof(float));
}

} // namespace kernels
} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_REDUCE_KERNELS_H_
