# Empty dependencies file for fig03_invocation_granularity.
# This may be replaced when dependencies are built.
