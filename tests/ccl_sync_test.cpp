/**
 * @file
 * Tests for the device-side-style synchronization primitives of
 * Fig. 11: spin lock, bounded semaphore (post/wait), checkable
 * counter (check) — including multi-threaded stress.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace ccl {
namespace {

TEST(SpinLock, MutualExclusionUnderContention)
{
    SpinLock lock;
    int counter = 0;
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&]() {
            for (int i = 0; i < kIters; ++i) {
                SpinLockGuard guard(lock);
                ++counter;
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SpinLock, TryLock)
{
    SpinLock lock;
    EXPECT_TRUE(lock.tryLock());
    EXPECT_FALSE(lock.tryLock());
    lock.unlock();
    EXPECT_TRUE(lock.tryLock());
    lock.unlock();
}

TEST(BoundedSemaphore, PostThenWait)
{
    BoundedSemaphore sem(4);
    sem.post();
    sem.post();
    EXPECT_EQ(sem.value(), 2);
    sem.wait();
    EXPECT_EQ(sem.value(), 1);
}

TEST(BoundedSemaphore, WaitBlocksUntilPost)
{
    BoundedSemaphore sem(1);
    std::thread poster([&]() { sem.post(); });
    sem.wait(); // must complete once the poster runs
    poster.join();
    EXPECT_EQ(sem.value(), 0);
}

TEST(BoundedSemaphore, PostBlocksAtCapacity)
{
    BoundedSemaphore sem(1, /*initial=*/1);
    std::atomic<bool> posted{false};
    std::thread poster([&]() {
        sem.post(); // blocks: already at capacity
        posted.store(true);
    });
    // Give the poster a chance to block, then drain one slot.
    while (sem.value() != 1)
        std::this_thread::yield();
    EXPECT_FALSE(posted.load());
    sem.wait();
    poster.join();
    EXPECT_TRUE(posted.load());
    EXPECT_EQ(sem.value(), 1);
}

TEST(BoundedSemaphore, ProducerConsumerConservation)
{
    BoundedSemaphore sem(3);
    constexpr int kItems = 5000;
    std::thread producer([&]() {
        for (int i = 0; i < kItems; ++i)
            sem.post();
    });
    std::thread consumer([&]() {
        for (int i = 0; i < kItems; ++i)
            sem.wait();
    });
    producer.join();
    consumer.join();
    EXPECT_EQ(sem.value(), 0);
}

TEST(CheckableCounter, PostAndCheckNow)
{
    CheckableCounter counter;
    EXPECT_TRUE(counter.checkNow(0));
    EXPECT_FALSE(counter.checkNow(1));
    counter.post();
    EXPECT_TRUE(counter.checkNow(1));
    EXPECT_EQ(counter.value(), 1);
}

TEST(CheckableCounter, CheckDoesNotConsume)
{
    // The paper's check() "just checks" — unlike wait() it never
    // updates the count, so repeated checks all pass.
    CheckableCounter counter;
    counter.post();
    counter.post();
    counter.check(2);
    counter.check(2);
    counter.check(1);
    EXPECT_EQ(counter.value(), 2);
}

TEST(CheckableCounter, CheckBlocksUntilValueReached)
{
    CheckableCounter counter;
    std::atomic<bool> released{false};
    std::thread checker([&]() {
        counter.check(3);
        released.store(true);
    });
    counter.post();
    counter.post();
    EXPECT_FALSE(released.load());
    counter.post();
    checker.join();
    EXPECT_TRUE(released.load());
}

TEST(CheckableCounter, Reset)
{
    CheckableCounter counter;
    counter.post();
    counter.reset();
    EXPECT_EQ(counter.value(), 0);
    EXPECT_FALSE(counter.checkNow(1));
}

TEST(CheckableCounter, ManyPostersConsistentTotal)
{
    CheckableCounter counter;
    constexpr int kThreads = 4;
    constexpr int kPosts = 2500;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&]() {
            for (int i = 0; i < kPosts; ++i)
                counter.post();
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(counter.value(), kThreads * kPosts);
}

} // namespace
} // namespace ccl
} // namespace ccube
