/**
 * @file
 * Quickstart: evaluate all five configurations of the paper (B, C1,
 * C2, R, CC) for ResNet-50 on a simulated DGX-1, plus a raw
 * communication comparison at 64 MiB.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/ccube_engine.h"
#include "core/report.h"
#include "util/units.h"

int
main()
{
    using namespace ccube;

    // One engine = one machine (8-GPU DGX-1) + one workload.
    core::CCubeEngine engine(dnn::buildResnet50());

    std::cout << "Workload: " << engine.network().name() << " ("
              << engine.network().totalParams() << " parameters, "
              << util::formatBytes(engine.network().totalParamBytes())
              << " of gradients per iteration)\n\n";

    // --- Raw AllReduce comparison at 64 MiB --------------------------
    std::cout << "AllReduce of 64 MiB on the DGX-1:\n";
    util::Table comm = core::makeCommTable();
    const double bytes = util::mib(64);
    core::addCommRow(comm, "B  (two-phase double tree)", bytes,
                     engine.commOnly(core::Mode::kBaseline, bytes));
    core::addCommRow(comm, "C1 (overlapped double tree)", bytes,
                     engine.commOnly(core::Mode::kOverlappedTree, bytes));
    core::addCommRow(comm, "R  (ring)", bytes,
                     engine.commOnly(core::Mode::kRing, bytes));
    comm.print(std::cout);

    // --- Full training-iteration comparison --------------------------
    std::cout << "\nTraining iteration (batch 64, high bandwidth):\n";
    util::Table table = core::makeIterationTable();
    core::IterationConfig config;
    config.batch = 64;
    for (core::Mode mode : core::allModes()) {
        core::addIterationRow(table, engine.network().name(), "high",
                              config.batch, mode,
                              engine.evaluate(mode, config));
    }
    table.print(std::cout);

    std::cout << "\nC-Cube chains AllReduce with the next iteration's "
                 "forward pass;\nnorm_perf = 1.0 would be the "
                 "communication-free ideal.\n";
    return 0;
}
