#include "sweep/sweep.h"

#include <atomic>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/logging.h"

namespace ccube {
namespace sweep {

namespace {

thread_local bool t_in_sweep_task = false;

/** RAII flag flip: workerLoop may run on the caller's own thread
 *  (jobs == 1), so the previous value must be restored. */
struct SweepTaskScope {
    bool previous = t_in_sweep_task;
    SweepTaskScope() { t_in_sweep_task = true; }
    ~SweepTaskScope() { t_in_sweep_task = previous; }
};

int
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/** Everything one worker needs; shared by all workers of one run(). */
struct PoolState {
    explicit PoolState(std::vector<Task>& all_tasks)
        : tasks(all_tasks)
    {
    }

    std::vector<Task>& tasks;
    std::atomic<std::size_t> next{0};
    bool capture_trace = false;
    bool capture_metrics = false;
    bool capture_monitor = false;
    std::size_t trace_capacity = 0;
    bool trace_flight = false;
    double monitor_interval = 0.0;
    obs::SloSpec monitor_slo;
    /** Per-task captures, filled by workers, merged by the caller. */
    std::vector<std::unique_ptr<obs::TraceRecorder>> recorders;
    std::vector<std::unique_ptr<obs::MetricRegistry>> registries;
    std::vector<std::unique_ptr<obs::Monitor>> monitors;
    /** First (by task index) exception thrown by a task. */
    std::vector<std::exception_ptr> errors;
};

void
workerLoop(PoolState& state)
{
    const std::size_t count = state.tasks.size();
    for (;;) {
        const std::size_t index =
            state.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= count)
            return;

        std::unique_ptr<obs::TraceRecorder> recorder;
        std::unique_ptr<obs::MetricRegistry> registry;
        if (state.capture_trace) {
            recorder = std::make_unique<obs::TraceRecorder>();
            if (state.trace_flight)
                recorder->setFlightCapacity(state.trace_capacity);
            else
                recorder->setCapacity(state.trace_capacity);
            recorder->enable();
        }
        if (state.capture_metrics) {
            registry = std::make_unique<obs::MetricRegistry>();
            registry->enable();
        }
        std::unique_ptr<obs::Monitor> monitor;
        if (state.capture_monitor) {
            monitor = std::make_unique<obs::Monitor>();
            monitor->setInterval(state.monitor_interval);
            monitor->setSlo(state.monitor_slo);
            monitor->enable();
        }
        {
            SweepTaskScope task_scope;
            obs::ScopedTraceRedirect trace_redirect(recorder.get());
            obs::ScopedMetricsRedirect metrics_redirect(registry.get());
            obs::ScopedMonitorRedirect monitor_redirect(monitor.get());
            try {
                state.tasks[index]();
            } catch (...) {
                state.errors[index] = std::current_exception();
            }
        }
        if (recorder) {
            recorder->disable();
            state.recorders[index] = std::move(recorder);
        }
        if (registry) {
            registry->disable();
            state.registries[index] = std::move(registry);
        }
        if (monitor) {
            monitor->disable();
            state.monitors[index] = std::move(monitor);
        }
    }
}

} // namespace

Options
Options::fromFlags(const util::Flags& flags)
{
    Options options;
    options.jobs = flags.getInt("jobs", 0);
    return options;
}

int
Options::effectiveJobs(std::size_t task_count) const
{
    int count = jobs > 0 ? jobs : hardwareJobs();
    if (task_count > 0 &&
        static_cast<std::size_t>(count) > task_count)
        count = static_cast<int>(task_count);
    return count < 1 ? 1 : count;
}

void
run(const Options& options, std::vector<Task> tasks)
{
    if (tasks.empty())
        return;

    // The parent capture targets: whatever global() resolves to on the
    // calling thread, so nested sweeps compose (a task running its own
    // sweep merges grandchild captures into its private recorder).
    obs::TraceRecorder& parent_recorder = obs::TraceRecorder::global();
    obs::MetricRegistry& parent_registry = obs::MetricRegistry::global();
    obs::Monitor& parent_monitor = obs::Monitor::global();

    PoolState state(tasks);
    state.capture_trace =
        options.capture_obs && parent_recorder.enabled();
    state.capture_metrics =
        options.capture_obs && parent_registry.enabled();
    state.capture_monitor =
        options.capture_obs && parent_monitor.enabled();
    if (state.capture_trace) {
        state.trace_capacity = parent_recorder.capacity();
        state.trace_flight = parent_recorder.flightMode();
    }
    if (state.capture_monitor) {
        state.monitor_interval = parent_monitor.interval();
        state.monitor_slo = parent_monitor.slo();
    }
    state.recorders.resize(tasks.size());
    state.registries.resize(tasks.size());
    state.monitors.resize(tasks.size());
    state.errors.resize(tasks.size());

    const int jobs = options.effectiveJobs(tasks.size());
    if (jobs <= 1) {
        workerLoop(state);
    } else {
        std::vector<std::thread> workers;
        workers.reserve(static_cast<std::size_t>(jobs));
        for (int w = 0; w < jobs; ++w)
            workers.emplace_back([&state]() { workerLoop(state); });
        for (std::thread& worker : workers)
            worker.join();
    }

    // Deterministic merge: task-index order regardless of completion
    // order, so the combined trace/metrics are independent of jobs.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (state.recorders[i])
            parent_recorder.absorb(*state.recorders[i]);
        if (state.registries[i])
            parent_registry.absorb(*state.registries[i]);
        if (state.monitors[i])
            parent_monitor.absorb(*state.monitors[i]);
    }

    for (const std::exception_ptr& error : state.errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

bool
inSweepTask()
{
    return t_in_sweep_task;
}

void
runIndexed(const Options& options, std::size_t count,
           const std::function<void(std::size_t)>& task)
{
    std::vector<Task> tasks;
    tasks.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        tasks.push_back([&task, i]() { task(i); });
    run(options, std::move(tasks));
}

} // namespace sweep
} // namespace ccube
