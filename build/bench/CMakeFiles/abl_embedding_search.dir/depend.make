# Empty dependencies file for abl_embedding_search.
# This may be replaced when dependencies are built.
