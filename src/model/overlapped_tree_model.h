#ifndef CCUBE_MODEL_OVERLAPPED_TREE_MODEL_H_
#define CCUBE_MODEL_OVERLAPPED_TREE_MODEL_H_

/**
 * @file
 * Analytical cost of the overlapped tree AllReduce — the paper's C1
 * algorithm (Eq. (7)): reduction and broadcast chained so the total
 * pipeline is 2log(P)+K steps instead of 2(log(P)+K).
 */

#include "model/alpha_beta.h"

namespace ccube {
namespace model {

/**
 * Overlapped (reduction-broadcast chained) tree AllReduce model.
 */
class OverlappedTreeModel
{
  public:
    explicit OverlappedTreeModel(AlphaBeta link) : link_(link) {}

    /**
     * Eq. (7) closed form at the baseline's K_opt:
     * 2log(P)α + βN + 3√(αβN·log(P)).
     */
    double allReduceTime(int p, double bytes) const;

    /** Chunked form: (2log(P)+K)(α + βN/K). */
    double allReduceTimeChunked(int p, double bytes, int chunks) const;

    /**
     * Gradient turnaround: the first chunk completes after climbing
     * and descending the tree once: (2log(P)+1)(α + βN/K).
     */
    double turnaroundTime(int p, double bytes, int chunks) const;

    /** Algorithm bandwidth at K_opt: bytes / allReduceTime. */
    double effectiveBandwidth(int p, double bytes) const;

    /** Link parameters used by this model. */
    const AlphaBeta& link() const { return link_; }

  private:
    AlphaBeta link_;
};

} // namespace model
} // namespace ccube

#endif // CCUBE_MODEL_OVERLAPPED_TREE_MODEL_H_
