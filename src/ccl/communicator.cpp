#include "ccl/communicator.h"

#include <string>
#include <thread>

#include "obs/context.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

Communicator::Communicator(int num_ranks, int mailbox_slots,
                           RankExecutor::Mode exec_mode)
    : num_ranks_(num_ranks),
      mailbox_slots_(mailbox_slots),
      exec_mode_(exec_mode),
      table_(static_cast<std::size_t>(num_ranks) *
             static_cast<std::size_t>(num_ranks) * kMaxFlows)
{
    CCUBE_CHECK(num_ranks >= 1, "need at least one rank");
    CCUBE_CHECK(mailbox_slots >= 1, "need at least one mailbox slot");
    for (auto& entry : table_)
        entry.store(nullptr, std::memory_order_relaxed);
}

Communicator::~Communicator() = default;

std::size_t
Communicator::tableIndex(int src, int dst, FlowId flow) const
{
    return (static_cast<std::size_t>(src) *
                static_cast<std::size_t>(num_ranks_) +
            static_cast<std::size_t>(dst)) *
               kMaxFlows +
           static_cast<std::size_t>(flow);
}

Mailbox&
Communicator::mailbox(int src, int dst, FlowId flow)
{
    CCUBE_CHECK(src >= 0 && src < num_ranks_, "bad src rank " << src);
    CCUBE_CHECK(dst >= 0 && dst < num_ranks_, "bad dst rank " << dst);
    CCUBE_CHECK(src != dst, "no self mailboxes");
    CCUBE_CHECK(flow >= 0 && flow < kMaxFlows,
                "flow id " << flow << " out of range (max "
                           << kMaxFlows - 1 << ")");
    std::atomic<Mailbox*>& entry = table_[tableIndex(src, dst, flow)];
    // Fast path: one acquire load on an already-built channel.
    if (Mailbox* box = entry.load(std::memory_order_acquire))
        return *box;
    std::lock_guard<std::mutex> guard(create_mutex_);
    if (Mailbox* box = entry.load(std::memory_order_acquire))
        return *box;
    owned_.push_back(std::make_unique<Mailbox>(mailbox_slots_));
    Mailbox* box = owned_.back().get();
    box->setTraceLabel("mb " + std::to_string(src) + "->" +
                       std::to_string(dst) + "/f" +
                       std::to_string(flow));
    entry.store(box, std::memory_order_release);
    return *box;
}

RankExecutor&
Communicator::executor()
{
    std::call_once(executor_once_, [this]() {
        executor_ =
            std::make_unique<RankExecutor>(num_ranks_, exec_mode_);
    });
    return *executor_;
}

void
Communicator::run(const std::function<void(int rank)>& body)
{
    executor().run(body);
}

void
Communicator::barrier()
{
    obs::ScopedSpan span("barrier", "ccl.sync",
                         obs::pids::cclRank(obs::threadRank()),
                         obs::threadTrack());
    const int sense = barrier_sense_.load(std::memory_order_acquire);
    if (barrier_count_.fetch_add(1, std::memory_order_acq_rel) ==
        num_ranks_ - 1) {
        barrier_count_.store(0, std::memory_order_relaxed);
        barrier_sense_.store(1 - sense, std::memory_order_release);
    } else {
        while (barrier_sense_.load(std::memory_order_acquire) == sense)
            std::this_thread::yield();
    }
}

} // namespace ccl
} // namespace ccube
