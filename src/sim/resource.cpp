#include "sim/resource.h"

#include <utility>

#include "util/logging.h"

namespace ccube {
namespace sim {

FifoResource::FifoResource(Simulation& simulation, std::string name)
    : sim_(simulation), name_(std::move(name))
{
}

void
FifoResource::request(HoldFn hold, DoneFn done)
{
    Pending pending{std::move(hold), std::move(done)};
    if (busy_) {
        waiting_.push_back(std::move(pending));
        return;
    }
    grant(std::move(pending));
}

void
FifoResource::grant(Pending pending)
{
    CCUBE_CHECK(!busy_, "grant while busy on " << name_);
    busy_ = true;
    ++grants_;
    const Time duration = pending.hold();
    CCUBE_CHECK(duration >= 0.0, "negative hold on " << name_);
    busy_time_ += duration;
    DoneFn done = std::move(pending.done);
    sim_.after(duration, [this, done = std::move(done)]() {
        release();
        if (done)
            done();
    });
}

void
FifoResource::release()
{
    CCUBE_CHECK(busy_, "release while idle on " << name_);
    busy_ = false;
    if (!waiting_.empty()) {
        Pending next = std::move(waiting_.front());
        waiting_.pop_front();
        grant(std::move(next));
    }
}

} // namespace sim
} // namespace ccube
