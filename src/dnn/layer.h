#ifndef CCUBE_DNN_LAYER_H_
#define CCUBE_DNN_LAYER_H_

/**
 * @file
 * Layer descriptor: the unit of gradient queuing.
 *
 * A layer is whatever produces one gradient bucket; its parameter
 * bytes determine its chunk footprint in the one-shot AllReduce
 * buffer, and its FLOPs determine the forward/backward compute times
 * C-Cube chains against.
 */

#include <cstdint>
#include <string>

#include "dnn/shapes.h"

namespace ccube {
namespace dnn {

/** Broad layer category (affects the roofline memory estimate). */
enum class LayerKind {
    kConv,
    kFc,
    kPool,
    kNorm,
    kEmbedding,
    kElementwise,
    kAttention,
};

/**
 * One layer of a workload model.
 */
struct Layer {
    std::string name;
    LayerKind kind = LayerKind::kConv;
    std::int64_t param_count = 0;
    std::int64_t forward_flops_per_sample = 0;
    std::int64_t output_elems_per_sample = 0;
    std::int64_t input_elems_per_sample = 0;

    /** Gradient bytes this layer contributes to AllReduce (fp32). */
    double paramBytes() const { return 4.0 * param_count; }

    /** Factory helpers from shapes. */
    static Layer conv(std::string name, const ConvShape& shape);
    static Layer fc(std::string name, const FcShape& shape);
    static Layer pool(std::string name, const PoolShape& shape);
    static Layer embedding(std::string name, const EmbeddingShape& shape);

    /** Batch-norm over @p channels × @p size² activations. */
    static Layer norm(std::string name, int channels, int size);
};

} // namespace dnn
} // namespace ccube

#endif // CCUBE_DNN_LAYER_H_
