#ifndef CCUBE_CCL_CHECKPOINT_H_
#define CCUBE_CCL_CHECKPOINT_H_

/**
 * @file
 * Chunk-granularity checkpointing for retried collectives.
 *
 * When a collective aborts (watchdog, dead rank) and the supervisor
 * retries it, redoing the whole message wastes the chunks that already
 * finished. The invariant that makes partial resume sound: a rank
 * records a chunk into the AllReduceTrace only when its buffer slice
 * holds the final reduced value, and no algorithm writes a slice after
 * recording it. So a chunk recorded by EVERY rank is globally final —
 * the retry can skip it on all ranks via ccl::SkipMask.
 *
 * Chunks NOT fully recorded may hold partial sums (recvReduce
 * accumulates in place), so the checkpoint snapshots the original
 * inputs at begin() and restoreIncomplete() rewrites every unfinished
 * slice before a retry. The done bitmap lives outside the communicator
 * and therefore survives clearAbort().
 *
 * Geometry caveat: a resume mask is only valid when the retry runs the
 * SAME algorithm with the SAME chunk layout. On a recovery-ladder rung
 * change the supervisor must restoreAll() and begin() a fresh
 * checkpoint — re-running an allreduce over already-final chunks would
 * multiply them by P.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ccl/allreduce.h"

namespace ccube {
namespace ccl {

/**
 * Element layout of the global chunk-id space of one collective —
 * which [begin, end) slice of every rank's buffer each global chunk
 * covers. Mirrors the splits the algorithms build internally.
 */
class ChunkLayout
{
  public:
    struct Range {
        std::size_t begin = 0;
        std::size_t end = 0;
    };

    /** Ring AllReduce over @p total elements on @p num_ranks ranks:
     *  chunk ids 0..P-1 from ChunkSplit(total, P). */
    static ChunkLayout ring(std::size_t total, int num_ranks);

    /** Single-tree AllReduce: chunk ids 0..num_chunks-1 from
     *  ChunkSplit(total, num_chunks). */
    static ChunkLayout tree(std::size_t total, int num_chunks);

    /** Double-tree AllReduce: tree 0 covers [0, total/2) with ids
     *  [0, chunks_per_tree), tree 1 the rest with ids
     *  [chunks_per_tree, 2·chunks_per_tree). */
    static ChunkLayout doubleTree(std::size_t total,
                                  int chunks_per_tree);

    int numChunks() const
    {
        return static_cast<int>(ranges_.size());
    }

    const Range& range(int chunk) const
    {
        return ranges_[static_cast<std::size_t>(chunk)];
    }

  private:
    std::vector<Range> ranges_;
};

/**
 * Per-chunk completion bitmap + input snapshot of one supervised
 * collective across retries. Thread-safe on the record path (the
 * observer is invoked concurrently from every rank); begin/restore/
 * rearm are caller-serialized between runs.
 */
class ChunkCheckpoint
{
  public:
    ChunkCheckpoint() = default;
    ChunkCheckpoint(const ChunkCheckpoint&) = delete;
    ChunkCheckpoint& operator=(const ChunkCheckpoint&) = delete;

    /** Arms the checkpoint for one collective over @p buffers with
     *  chunk geometry @p layout: snapshots the inputs and zeroes the
     *  bitmap. Any previous state is discarded. */
    void begin(const RankBuffers& buffers, ChunkLayout layout);

    /** Whether begin() armed the checkpoint. */
    bool active() const { return num_ranks_ > 0; }

    int numChunks() const { return layout_.numChunks(); }

    /**
     * Observer to install on the collective (chains to @p downstream
     * when set): counts per-chunk completions and commits a chunk once
     * every rank recorded it. Safe to install across retries; a
     * skipped (already-done) chunk is simply never re-recorded.
     */
    AllReduceTrace::Observer
    observer(AllReduceTrace::Observer downstream = {});

    /** Whether chunk @p chunk is committed (final at every rank). */
    bool done(int chunk) const;

    /** Committed chunks so far. */
    int doneCount() const;

    /** True once every chunk is committed. */
    bool complete() const;

    /** The skip mask a retry of the SAME geometry passes back into the
     *  algorithm entry points. */
    SkipMask mask() const;

    /**
     * Rewrites every UNFINISHED chunk's slice of every rank from the
     * input snapshot — mandatory before a same-geometry retry, since
     * an aborted run leaves partial sums in unfinished slices.
     */
    void restoreIncomplete(RankBuffers& buffers) const;

    /** Rewrites every rank's whole buffer from the snapshot (used
     *  before a geometry/rung change, which invalidates the bitmap). */
    void restoreAll(RankBuffers& buffers) const;

    /**
     * Re-arms per-chunk completion counters for a same-geometry retry:
     * counters of unfinished chunks reset to zero (their partial
     * records from the aborted run are void once restoreIncomplete()
     * rewrote the data); committed chunks stay committed.
     */
    void rearm();

    /** Drops all state (inactive until the next begin()). */
    void reset();

  private:
    int num_ranks_ = 0;
    ChunkLayout layout_;
    RankBuffers snapshot_;
    /** Per-chunk count of ranks that recorded it this run. */
    std::unique_ptr<std::atomic<int>[]> counts_;
    /** Per-chunk committed flag (sticky across retries). */
    std::unique_ptr<std::atomic<std::uint8_t>[]> done_;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_CHECKPOINT_H_
