file(REMOVE_RECURSE
  "CMakeFiles/fig05_step_counts.dir/fig05_step_counts.cpp.o"
  "CMakeFiles/fig05_step_counts.dir/fig05_step_counts.cpp.o.d"
  "fig05_step_counts"
  "fig05_step_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_step_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
