#include "gpu/stream.h"

#include <utility>

#include "util/logging.h"

namespace ccube {
namespace gpu {

Stream::Stream(sim::Simulation& simulation, std::string name)
    : resource_(simulation, std::move(name))
{
}

void
Stream::launch(double duration, sim::EventFn done)
{
    CCUBE_CHECK(duration >= 0.0, "negative kernel duration");
    resource_.request([duration]() { return duration; },
                      std::move(done));
}

} // namespace gpu
} // namespace ccube
