#include "simnet/overlapped_tree_schedule.h"

namespace ccube {
namespace simnet {

ScheduleResult
runOverlappedTreeSchedule(sim::Simulation& simulation, Network& network,
                          const topo::TreeEmbedding& embedding,
                          double total_bytes, int num_chunks, int lane,
                          ccl::Protocol proto)
{
    return runTreeSchedule(simulation, network, embedding, total_bytes,
                           PhaseMode::kOverlapped, num_chunks, lane, -1,
                           proto);
}

} // namespace simnet
} // namespace ccube
