#include "model/alpha_beta.h"

#include <cmath>

#include "util/logging.h"

namespace ccube {
namespace model {

double
log2Nodes(int p)
{
    CCUBE_CHECK(p >= 2, "need at least two nodes, got " << p);
    return std::log2(static_cast<double>(p));
}

int
treeDepth(int p)
{
    return static_cast<int>(std::ceil(log2Nodes(p)));
}

} // namespace model
} // namespace ccube
