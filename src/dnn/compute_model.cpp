#include "dnn/compute_model.h"

#include <algorithm>

#include "util/logging.h"

namespace ccube {
namespace dnn {

double
ComputeModel::kernelTime(double flops, double bytes) const
{
    const double compute =
        flops / (params_.peak_flops * params_.efficiency);
    const double memory = bytes / params_.memory_bandwidth;
    return std::max(compute, memory) + params_.kernel_overhead;
}

double
ComputeModel::forwardTime(const Layer& layer, int batch) const
{
    CCUBE_CHECK(batch >= 1, "batch must be positive");
    const double b = static_cast<double>(batch);
    const double flops =
        static_cast<double>(layer.forward_flops_per_sample) * b;
    const double bytes =
        4.0 * b *
            static_cast<double>(layer.input_elems_per_sample +
                                layer.output_elems_per_sample) +
        layer.paramBytes();
    return kernelTime(flops, bytes);
}

double
ComputeModel::backwardTime(const Layer& layer, int batch) const
{
    const double b = static_cast<double>(batch);
    const double flops =
        static_cast<double>(layer.forward_flops_per_sample) * b *
        params_.backward_flop_ratio;
    // Backward touches activations and gradients of both sides plus
    // parameter gradients.
    const double bytes =
        8.0 * b *
            static_cast<double>(layer.input_elems_per_sample +
                                layer.output_elems_per_sample) +
        2.0 * layer.paramBytes();
    return kernelTime(flops, bytes);
}

double
ComputeModel::forwardTime(const NetworkModel& network, int batch) const
{
    double total = 0.0;
    for (const Layer& layer : network.layers())
        total += forwardTime(layer, batch);
    return total;
}

double
ComputeModel::backwardTime(const NetworkModel& network, int batch) const
{
    double total = 0.0;
    for (const Layer& layer : network.layers())
        total += backwardTime(layer, batch);
    return total;
}

std::vector<double>
ComputeModel::layerForwardTimes(const NetworkModel& network,
                                int batch) const
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(network.numLayers()));
    for (const Layer& layer : network.layers())
        times.push_back(forwardTime(layer, batch));
    return times;
}

std::vector<double>
ComputeModel::layerBackwardTimes(const NetworkModel& network,
                                 int batch) const
{
    std::vector<double> times;
    times.reserve(static_cast<std::size_t>(network.numLayers()));
    for (const Layer& layer : network.layers())
        times.push_back(backwardTime(layer, batch));
    return times;
}

} // namespace dnn
} // namespace ccube
