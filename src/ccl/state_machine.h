#ifndef CCUBE_CCL_STATE_MACHINE_H_
#define CCUBE_CCL_STATE_MACHINE_H_

/**
 * @file
 * Async state-machine rank runtime: resumable per-rank collectives on
 * a small worker pool.
 *
 * Thread-per-rank caps the functional runtime at a few dozen ranks —
 * every rank (plus every forwarder and overlapped reducer) needs a
 * dedicated OS thread that mostly blocks in the Fig. 11 spin protocol.
 * Real stacks don't do that: NCCL multiplexes many channels' progress
 * onto a handful of proxy threads, and Motr-style request handlers
 * (the FOM pattern) run as non-blocking state machines that *park* on
 * a condition and are resumed by the post. This header is that third
 * engine mode: each rank's collective body becomes a RankTask whose
 * step() advances until a mailbox would block, then parks on the
 * mailbox's semaphore via the SemaphoreWaiter registration in
 * sync_primitives.h. A post() pops the waiter and reschedules the
 * task onto the pool — so P=512–1024 functional ranks run on two
 * workers instead of a thousand threads.
 *
 * Park/wake protocol (exactly-once resume, no lost wakeups):
 *
 *   1. step() fails a try* mailbox op and calls StepContext::parkOn.
 *      The task's park_state goes kRunning → kParking and the task
 *      registers on the semaphore under the semaphore's own SpinLock,
 *      *rechecking the condition* there (a concurrent post between the
 *      failed try and the registration is observed; the task retries
 *      instead of parking).
 *   2. The worker, seeing kParked returned from step(), publishes the
 *      park with a CAS kParking → kParked and moves to other work.
 *   3. A poster pops the waiter node (list removal under the semaphore
 *      lock = exclusive wake ownership) and exchanges park_state to
 *      kWoken: if it observed kParked the poster enqueues the task; if
 *      it observed kParking the worker's CAS in (2) fails and the
 *      worker requeues the task itself. Either way exactly one side
 *      schedules the resume.
 *   4. The abort sweep (run() notices a tripped epoch) claims still-
 *      parked tasks through BoundedSemaphore::cancelPark — the same
 *      removal-is-ownership rule — and wakes them so their next step's
 *      abortPoll() throws AbortedWait and the batch unwinds. PR 5
 *      fault semantics carry over: the fault context travels with the
 *      batch (installed around every step), deadline/abort checks run
 *      at every park and resume point, and a parked task keeps its
 *      wait-site label published so the watchdog blames the right
 *      rank.
 *
 * Work stealing: each worker owns a deque; enqueues go to the task's
 * home worker (rank-affine), idle workers steal from the back of
 * other queues. Steals, parks, and resumes land in obs::RankCounters
 * and the engine exports live ccl.sm.* gauges to obs::Monitor.
 *
 * Along with executor.cpp, this is a translation unit in src/ccl/
 * allowed to construct std::thread (the pool workers).
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace ccl {

class CommFaultContext;
class Mailbox;
class RankTask;
class StepContext;

/** What one step() invocation accomplished. */
enum class StepStatus {
    kDone,     ///< the task finished its whole protocol
    kContinue, ///< progress made; reschedule (fairness boundary)
    kParked,   ///< registered on a semaphore; resume on post
};

/**
 * The worker pool driving RankTask state machines. One engine is
 * shared per process (shared()) so N concurrent communicators
 * multiplex onto the same handful of threads; tests may build private
 * engines with explicit worker counts.
 */
class StateMachineEngine
{
  public:
    /** Pool with @p num_workers threads (min 1). */
    explicit StateMachineEngine(int num_workers);

    /** Joins the pool (all run() calls must have returned). */
    ~StateMachineEngine();

    StateMachineEngine(const StateMachineEngine&) = delete;
    StateMachineEngine& operator=(const StateMachineEngine&) = delete;

    /**
     * Process-wide engine, created on first use with
     * defaultWorkerCount() workers and never destroyed (it may be
     * referenced from static-destruction contexts).
     */
    static StateMachineEngine& shared();

    /**
     * Worker-count default: $CCUBE_CCL_SM_WORKERS when set (min 1),
     * else max(2, 2 × hardware_concurrency) — the "handful of
     * threads" the P=512 acceptance bound is measured against.
     */
    static int defaultWorkerCount();

    /**
     * Runs @p tasks to completion and returns. Thread-safe: multiple
     * run() batches (from different communicators) interleave on the
     * same pool. @p fault, when non-null, is installed around every
     * step of every task in this batch (ScopedFaultContext), and a
     * tripped abort epoch wakes the batch's parked tasks so the run
     * unwinds instead of hanging. Rethrows the first exception any
     * task threw — after every task of the batch has finished or
     * aborted, mirroring RankExecutor::run.
     */
    void run(std::vector<std::unique_ptr<RankTask>> tasks,
             CommFaultContext* fault);

    // ---- telemetry ----

    int workerCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /** step() invocations executed. */
    std::uint64_t stepsExecuted() const
    {
        return steps_.load(std::memory_order_relaxed);
    }

    /** Successful parks / resumes / steals across the pool. */
    std::uint64_t parks() const
    {
        return parks_.load(std::memory_order_relaxed);
    }
    std::uint64_t resumes() const
    {
        return resumes_.load(std::memory_order_relaxed);
    }
    std::uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** Tasks currently parked on a semaphore. */
    int parkedNow() const
    {
        return parked_now_.load(std::memory_order_relaxed);
    }

    /** Tasks currently enqueued and runnable. */
    int runnableNow() const
    {
        return static_cast<int>(
            pending_.load(std::memory_order_relaxed));
    }

  private:
    friend class RankTask;
    friend class StepContext;

    struct Batch;

    /** One worker's run queue (owner pops front, thieves pop back). */
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<RankTask*> tasks;
    };

    void enqueue(RankTask& task);

    /** Exactly-once resume of a parked/parking task (see protocol). */
    void wake(RankTask& task);

    /** Wakes every still-parked task of @p batch after an abort. */
    void sweepAborted(Batch& batch);

    void workerLoop(int index);
    RankTask* tryPop(int index, bool* stolen);
    void runTask(RankTask& task, int worker, bool stolen);
    void finishTask(RankTask& task, std::exception_ptr error);

    std::vector<WorkerQueue> queues_;
    std::vector<std::thread> workers_;

    std::mutex idle_mutex_;
    std::condition_variable idle_cv_;
    std::atomic<std::size_t> pending_{0}; ///< increments under idle_mutex_
    bool stop_ = false;                   ///< guarded by idle_mutex_

    std::atomic<std::uint64_t> steps_{0};
    std::atomic<std::uint64_t> parks_{0};
    std::atomic<std::uint64_t> resumes_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<int> parked_now_{0};

    int monitor_token_ = -1;
};

/**
 * A resumable per-rank protocol body — the FOM. Subclasses hold the
 * rank's entire mailbox plan and an explicit state/cursor set, and
 * advance it in step(): attempt non-blocking mailbox ops, return
 * kContinue at natural fairness boundaries (chunk completed), return
 * what StepContext::parkOn* gives back when an op would block, and
 * kDone when the protocol is finished. step() runs with the batch's
 * fault context installed and the task's rank set as the thread rank,
 * so mailbox telemetry, fault injection, and watchdog blame all
 * attribute exactly as in thread-per-rank mode.
 */
class RankTask : public SemaphoreWaiter
{
  public:
    RankTask(int rank, const char* role) : rank_(rank), role_(role) {}

    /** Advances the protocol; see class comment. */
    virtual StepStatus step(StepContext& ctx) = 0;

    int rank() const { return rank_; }

    /** Role label ("rank", "tree1", "forward", ...). */
    const char* role() const { return role_; }

  private:
    friend class StateMachineEngine;
    friend class StepContext;

    /** Park lifecycle (see the header protocol walkthrough). */
    enum : int { kRunning = 0, kParking = 1, kParked = 2, kWoken = 3 };

    /** SemaphoreWaiter: a poster popped our registration. */
    void semaphoreReady() final;

    const int rank_;
    const char* role_;
    std::atomic<int> park_state_{kRunning};
    BoundedSemaphore* parked_sem_ = nullptr; ///< for the abort sweep
    bool resuming_ = false; ///< next execution is a park resume
    // Steady-clock stamp of the last park, so the resume path can
    // attribute the parked interval to the rank in obs::Profiler.
    // Plain field: the park/wake handoff (queue + state CAS) orders
    // the write before any other worker reads it.
    std::uint64_t park_begin_ns_ = 0;
    int home_worker_ = 0;
    StateMachineEngine* engine_ = nullptr;
    StateMachineEngine::Batch* batch_ = nullptr;
};

/**
 * Per-step services handed to RankTask::step by the executing worker.
 */
class StepContext
{
  public:
    /**
     * Parks the task until @p box has an arrived chunk. Call after a
     * failed tryRecv variant or tryPeek and return the result from
     * step() immediately: kParked when the task actually parked,
     * kContinue when the chunk raced in (retry the op on the next
     * step).
     */
    StepStatus parkOnArrival(Mailbox& box);

    /** Parks until @p box has a free receive buffer (failed trySend). */
    StepStatus parkOnFreeSlot(Mailbox& box);

    /**
     * General form: parks on @p sem, publishing @p label / @p flow as
     * the task's blocked wait site for watchdog blame and @p peer as
     * the rank expected to post the semaphore (the wait-for graph
     * edge; -1 = unknown). Spins a bounded util::SpinWait ladder
     * first while the pool is otherwise idle — the small-message fast
     * path — then registers.
     */
    StepStatus parkOn(BoundedSemaphore& sem, const char* label,
                      int flow, int peer = -1);

  private:
    friend class StateMachineEngine;

    StepContext(StateMachineEngine& engine, RankTask& task)
        : engine_(engine), task_(task)
    {
    }

    StateMachineEngine& engine_;
    RankTask& task_;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_STATE_MACHINE_H_
