#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace ccube {
namespace sim {

namespace {

constexpr std::size_t kArity = 4;

} // namespace

void
EventQueue::schedule(Time when, EventFn fn, int priority)
{
    CCUBE_CHECK(when >= now_, "cannot schedule event in the past: "
                                  << when << " < " << now_);
    CCUBE_CHECK(fn, "null event callback");
    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(std::move(fn));
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
        pool_[slot] = std::move(fn);
    }
    heap_.push_back(Node{when, priority, slot, next_seq_++});
    siftUp(heap_.size() - 1);
}

void
EventQueue::siftUp(std::size_t index)
{
    Node node = heap_[index];
    while (index > 0) {
        const std::size_t parent = (index - 1) / kArity;
        if (!earlier(node, heap_[parent]))
            break;
        heap_[index] = heap_[parent];
        index = parent;
    }
    heap_[index] = node;
}

void
EventQueue::siftDown(std::size_t index)
{
    const std::size_t count = heap_.size();
    Node node = heap_[index];
    while (true) {
        const std::size_t first_child = index * kArity + 1;
        if (first_child >= count)
            break;
        const std::size_t last_child =
            std::min(first_child + kArity, count);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < last_child; ++c) {
            if (earlier(heap_[c], heap_[best]))
                best = c;
        }
        if (!earlier(heap_[best], node))
            break;
        heap_[index] = heap_[best];
        index = best;
    }
    heap_[index] = node;
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    const Node top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    now_ = top.when;
    ++executed_;
    // Move the callback out of its slot and recycle the slot *before*
    // invoking: the callback may schedule new events reentrantly.
    EventFn fn = std::move(pool_[top.slot]);
    free_slots_.push_back(top.slot);
    fn();
    return true;
}

Time
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Time
EventQueue::runUntil(Time deadline)
{
    while (!heap_.empty() && heap_.front().when <= deadline)
        step();
    now_ = std::max(now_, deadline);
    return now_;
}

void
EventQueue::reset()
{
    heap_.clear();
    pool_.clear();
    free_slots_.clear();
    now_ = 0.0;
    next_seq_ = 0;
    executed_ = 0;
}

} // namespace sim
} // namespace ccube
