file(REMOVE_RECURSE
  "CMakeFiles/fig01_allreduce_ratio.dir/fig01_allreduce_ratio.cpp.o"
  "CMakeFiles/fig01_allreduce_ratio.dir/fig01_allreduce_ratio.cpp.o.d"
  "fig01_allreduce_ratio"
  "fig01_allreduce_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_allreduce_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
