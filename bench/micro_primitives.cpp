/**
 * @file
 * Micro-benchmarks (google-benchmark) for the building blocks whose
 * cost the paper's design leans on: the device-side-style sync
 * primitives (Fig. 11), the mailbox path, the event queue, the
 * gradient queue's enqueue/dequeue — and the full functional AllReduce
 * per algorithm × message size, run against both execution engines
 * (persistent rank executor vs legacy spawn-per-collective) so one run
 * yields before/after numbers.
 *
 * AllReduce results are exported to BENCH_ccl.json (schema
 * bench_ccl/v1, see util/bench_json.h); set CCUBE_BENCH_OUT to
 * override the path.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/mailbox.h"
#include "ccl/overlapped_tree_allreduce.h"
#include "ccl/primitives.h"
#include "ccl/ring_allreduce.h"
#include "ccl/sync_primitives.h"
#include "ccl/tree_allreduce.h"
#include "core/gradient_queue.h"
#include "sim/event_queue.h"
#include "sim/resource.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "util/bench_json.h"

namespace {

using namespace ccube;

void
BM_SpinLockUncontended(benchmark::State& state)
{
    ccl::SpinLock lock;
    for (auto _ : state) {
        lock.lock();
        lock.unlock();
    }
}
BENCHMARK(BM_SpinLockUncontended);

void
BM_SemaphorePostWait(benchmark::State& state)
{
    ccl::BoundedSemaphore sem(1024);
    for (auto _ : state) {
        sem.post();
        sem.wait();
    }
}
BENCHMARK(BM_SemaphorePostWait);

void
BM_CheckableCounterPostCheck(benchmark::State& state)
{
    ccl::CheckableCounter counter;
    std::int64_t target = 0;
    for (auto _ : state) {
        counter.post();
        counter.check(++target);
    }
}
BENCHMARK(BM_CheckableCounterPostCheck);

void
BM_MailboxSendRecv(benchmark::State& state)
{
    ccl::Mailbox box(8);
    const std::vector<float> chunk(
        static_cast<std::size_t>(state.range(0)), 1.0f);
    std::vector<float> out;
    for (auto _ : state) {
        box.send(chunk, 0);
        box.recv(out);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_MailboxSendRecv)->Arg(256)->Arg(4096)->Arg(65536);

void
BM_MailboxRecvReduce(benchmark::State& state)
{
    ccl::Mailbox box(8);
    const std::vector<float> chunk(
        static_cast<std::size_t>(state.range(0)), 1.0f);
    std::vector<float> acc(chunk.size(), 0.0f);
    for (auto _ : state) {
        box.send(chunk, 0);
        box.recvReduce(acc);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        state.range(0) * static_cast<std::int64_t>(sizeof(float)));
}
BENCHMARK(BM_MailboxRecvReduce)->Arg(4096)->Arg(65536);

void
BM_EventQueueScheduleRun(benchmark::State& state)
{
    const int events = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue queue;
        for (int i = 0; i < events; ++i)
            queue.schedule(static_cast<double>(i), []() {});
        queue.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_FifoResourcePipeline(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Simulation sim;
        sim::FifoResource res(sim, "ch");
        for (int i = 0; i < 1000; ++i)
            res.request([]() { return 1.0; }, nullptr);
        sim.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_FifoResourcePipeline);

void
BM_GradientQueueIteration(benchmark::State& state)
{
    const int layers = static_cast<int>(state.range(0));
    std::vector<std::int64_t> table;
    for (int l = 1; l <= layers; ++l)
        table.push_back(4 * l);
    for (auto _ : state) {
        core::GradientQueue queue(table);
        for (int l = 0; l < layers; ++l) {
            for (int c = 0; c < 4; ++c)
                queue.enqueueChunk();
            queue.dequeueLayer(l);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * layers);
}
BENCHMARK(BM_GradientQueueIteration)->Arg(16)->Arg(128);

// ---------------------------------------------------------------------------
// Functional AllReduce latency: algorithm × message size × execution engine.
//
// The "persistent" mode runs on the parked RankExecutor threads; the
// "spawn" mode re-creates every rank/forwarder thread per collective,
// which is the pre-executor behaviour. Comparing the two is the
// paper's Fig. 3 argument (invocation granularity) applied to this
// host runtime. Buffers are zero-filled so repeated iterations keep
// summing zeros instead of overflowing.
// ---------------------------------------------------------------------------

enum class Alg { kRing, kTree, kOverlappedTree, kDoubleTree };

/** Topologies + one communicator per executor mode, built once. */
struct AllReduceFixture {
    topo::Graph dgx1 = topo::makeDgx1();
    topo::RingEmbedding ring = topo::findHamiltonianRing(dgx1, 8);
    topo::TreeEmbedding tree =
        topo::embedTree(dgx1, topo::BinaryTree::inorder(8));
    topo::DoubleTreeEmbedding double_tree = topo::makeDgx1DoubleTree(dgx1);
    ccl::Communicator persistent{8, 4,
                                 ccl::RankExecutor::Mode::kPersistent};
    ccl::Communicator spawn{8, 4,
                            ccl::RankExecutor::Mode::kSpawnPerCall};
};

AllReduceFixture&
fixture()
{
    static AllReduceFixture f;
    return f;
}

constexpr int kAllReduceChunks = 4;

void
runAllReduce(benchmark::State& state, Alg alg,
             ccl::RankExecutor::Mode mode)
{
    AllReduceFixture& f = fixture();
    ccl::Communicator& comm =
        mode == ccl::RankExecutor::Mode::kPersistent ? f.persistent
                                                     : f.spawn;
    const auto elems = static_cast<std::size_t>(state.range(0));
    ccl::RankBuffers buffers(8, std::vector<float>(elems, 0.0f));
    for (auto _ : state) {
        switch (alg) {
        case Alg::kRing:
            ccl::ringAllReduce(comm, buffers, f.ring);
            break;
        case Alg::kTree:
            ccl::treeAllReduce(comm, buffers, f.tree, kAllReduceChunks,
                               ccl::TreePhaseMode::kTwoPhase);
            break;
        case Alg::kOverlappedTree:
            ccl::overlappedTreeAllReduce(comm, buffers, f.tree,
                                         kAllReduceChunks);
            break;
        case Alg::kDoubleTree:
            ccl::doubleTreeAllReduce(comm, buffers, f.double_tree,
                                     kAllReduceChunks,
                                     ccl::TreePhaseMode::kOverlapped);
            break;
        }
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0) *
        static_cast<std::int64_t>(sizeof(float)));
}

void
registerAllReduceBenchmarks()
{
    struct AlgEntry {
        const char* name;
        Alg alg;
    };
    struct ModeEntry {
        const char* name;
        ccl::RankExecutor::Mode mode;
    };
    static constexpr AlgEntry kAlgs[] = {
        {"ring", Alg::kRing},
        {"tree", Alg::kTree},
        {"overlapped_tree", Alg::kOverlappedTree},
        {"double_tree", Alg::kDoubleTree},
    };
    static constexpr ModeEntry kModes[] = {
        {"persistent", ccl::RankExecutor::Mode::kPersistent},
        {"spawn", ccl::RankExecutor::Mode::kSpawnPerCall},
    };
    for (const AlgEntry& alg : kAlgs) {
        for (const ModeEntry& mode : kModes) {
            const std::string name = std::string("allreduce_latency/") +
                                     alg.name + "/" + mode.name;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [alg, mode](benchmark::State& state) {
                    runAllReduce(state, alg.alg, mode.mode);
                })
                ->Arg(256)   // 1 KiB
                ->Arg(4096)  // 16 KiB
                ->Arg(16384) // 64 KiB
                ->Unit(benchmark::kMicrosecond)
                ->UseRealTime();
        }
    }
}

/** Console output plus a copy of every per-iteration run. */
class CaptureReporter : public benchmark::ConsoleReporter {
public:
    std::vector<Run> runs;

    void
    ReportRuns(const std::vector<Run>& report) override
    {
        for (const Run& run : report) {
            if (run.run_type == Run::RT_Iteration &&
                !run.error_occurred)
                runs.push_back(run);
        }
        ConsoleReporter::ReportRuns(report);
    }
};

std::vector<std::string>
splitName(const std::string& name)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t slash = name.find('/', start);
        if (slash == std::string::npos) {
            parts.push_back(name.substr(start));
            return parts;
        }
        parts.push_back(name.substr(start, slash - start));
        start = slash + 1;
    }
}

util::BenchRecord
toRecord(const benchmark::BenchmarkReporter::Run& run)
{
    util::BenchRecord record;
    record.source = "micro_primitives";
    record.ns_per_op =
        run.iterations > 0
            ? run.real_accumulated_time /
                  static_cast<double>(run.iterations) * 1e9
            : 0.0;
    const std::vector<std::string> parts =
        splitName(run.benchmark_name());
    // allreduce_latency/<alg>/<mode>/<elems>[/real_time]
    if (parts.size() >= 4 && parts[0] == "allreduce_latency") {
        record.kind = parts[0];
        record.name = parts[1];
        record.mode = parts[2];
        record.bytes = std::strtoll(parts[3].c_str(), nullptr, 10) *
                       static_cast<std::int64_t>(sizeof(float));
    } else {
        record.kind = "micro";
        record.name = run.benchmark_name();
        if (parts.size() >= 2) {
            char* end = nullptr;
            const double arg =
                std::strtod(parts.back().c_str(), &end);
            if (end && *end == '\0')
                record.extra["arg"] = arg;
        }
    }
    return record;
}

} // namespace

int
main(int argc, char** argv)
{
    registerAllReduceBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    std::vector<ccube::util::BenchRecord> records;
    records.reserve(reporter.runs.size());
    for (const auto& run : reporter.runs)
        records.push_back(toRecord(run));
    if (!records.empty()) {
        const std::string path = ccube::util::benchOutputPath();
        ccube::util::writeBenchRecords(path, records, /*append=*/true);
        std::fprintf(stderr, "wrote %zu records to %s\n",
                     records.size(), path.c_str());
    }
    return 0;
}
