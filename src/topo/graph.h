#ifndef CCUBE_TOPO_GRAPH_H_
#define CCUBE_TOPO_GRAPH_H_

/**
 * @file
 * Physical topology graph: nodes and unidirectional channels.
 *
 * Following §II/§IV of the paper, a bidirectional link consists of two
 * unidirectional channels — the distinction matters because the
 * overlapped tree algorithm uses the idle downlink during reduction
 * (Observation #2). Pairs of nodes may be connected by multiple links
 * (e.g., GPU2–GPU3 on the DGX-1 has two NVLinks), which the double-tree
 * C-Cube embedding exploits (Observation #4).
 */

#include <string>
#include <vector>

namespace ccube {
namespace topo {

/** Index of a node within a Graph. */
using NodeId = int;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = -1;

/** Physical medium of a channel. */
enum class LinkKind {
    kNvlink, ///< GPU-side interconnect (fast, point-to-point)
    kPcie,   ///< host-routed fallback (slow, shared)
};

/** One unidirectional channel. */
struct ChannelDesc {
    int id = -1;                  ///< dense channel index
    NodeId src = kInvalidNode;    ///< sending endpoint
    NodeId dst = kInvalidNode;    ///< receiving endpoint
    double bandwidth = 0.0;       ///< bytes / second
    double latency = 0.0;         ///< per-transfer latency (α), seconds
    LinkKind kind = LinkKind::kNvlink;
};

/**
 * A directed multigraph describing physical connectivity.
 */
class Graph
{
  public:
    /** Creates an empty graph with a debug name. */
    explicit Graph(std::string name);

    /** Adds a node and returns its id. */
    NodeId addNode(std::string label);

    /**
     * Adds one unidirectional channel and returns its id.
     */
    int addChannel(NodeId src, NodeId dst, double bandwidth, double latency,
                   LinkKind kind = LinkKind::kNvlink);

    /**
     * Adds a bidirectional link: two unidirectional channels, one in
     * each direction, with identical parameters.
     */
    void addLink(NodeId a, NodeId b, double bandwidth, double latency,
                 LinkKind kind = LinkKind::kNvlink);

    /** Number of nodes. */
    int nodeCount() const { return static_cast<int>(labels_.size()); }

    /** Number of unidirectional channels. */
    int channelCount() const { return static_cast<int>(channels_.size()); }

    /** Channel descriptor by id. */
    const ChannelDesc& channel(int id) const;

    /** All channels. */
    const std::vector<ChannelDesc>& channels() const { return channels_; }

    /** Node label by id. */
    const std::string& nodeLabel(NodeId node) const;

    /**
     * Marks @p node as a switch. Switches cut through at the network
     * level (they are not chunk-granularity store-and-forward hops
     * the way GPU detour transits are); the transfer engine collapses
     * consecutive switch hops into one pipelined stage.
     */
    void markSwitch(NodeId node);

    /** True when @p node was marked as a switch. */
    bool isSwitch(NodeId node) const;

    /**
     * Scales channel @p id's bandwidth by @p factor — models degraded
     * links / stragglers for sensitivity studies.
     */
    void scaleChannelBandwidth(int id, double factor);

    /** Graph debug name. */
    const std::string& name() const { return name_; }

    /** Ids of channels leaving @p node. */
    const std::vector<int>& outChannels(NodeId node) const;

    /** Ids of channels going @p src → @p dst (may be several). */
    std::vector<int> channelIds(NodeId src, NodeId dst) const;

    /** True when at least one channel goes @p src → @p dst. */
    bool hasChannel(NodeId src, NodeId dst) const;

    /**
     * Number of physical links between the unordered pair {a, b}
     * (counting each bidirectional link once). Returns 0 when not
     * adjacent.
     */
    int linkCount(NodeId a, NodeId b) const;

    /** Distinct neighbors reachable by one outgoing channel. */
    std::vector<NodeId> neighbors(NodeId node) const;

    /**
     * Shortest path (fewest hops, BFS) from @p src to @p dst using only
     * channels of kind @p kind. Returns the node sequence including
     * both endpoints, or an empty vector when unreachable.
     */
    std::vector<NodeId> shortestPath(NodeId src, NodeId dst,
                                     LinkKind kind = LinkKind::kNvlink) const;

  private:
    void checkNode(NodeId node) const;

    std::string name_;
    std::vector<std::string> labels_;
    std::vector<bool> is_switch_;
    std::vector<ChannelDesc> channels_;
    std::vector<std::vector<int>> out_; ///< per-node outgoing channel ids
};

/**
 * The surviving topology after removing @p channel_ids: a copy of
 * @p graph with the same nodes, labels, and switch marks whose
 * remaining channels are re-added in original order (channel ids are
 * re-densified, so they do NOT correspond to @p graph's ids). A
 * bidirectional link failure is expressed by listing both directed
 * channel ids. Ids not present in @p graph are ignored.
 */
Graph withoutChannels(const Graph& graph,
                      const std::vector<int>& channel_ids);

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_GRAPH_H_
