#ifndef CCUBE_UTIL_INLINE_FUNCTION_H_
#define CCUBE_UTIL_INLINE_FUNCTION_H_

/**
 * @file
 * Small-buffer type-erased callable — the allocation-free std::function
 * replacement used on the discrete-event hot path.
 *
 * A `InlineFunction<R(Args...), Capacity>` stores the callable in-place
 * when it fits `Capacity` bytes and is nothrow-move-constructible;
 * larger (or potentially-throwing) callables fall back to a single heap
 * allocation. Unlike std::function it is move-only, so captured state
 * is never copied: scheduling an event, relocating it inside the event
 * pool, and invoking it are all moves.
 *
 * The per-object overhead is one operations-table pointer (invoke /
 * relocate / destroy); an empty function has a null table, making
 * `bool(fn)` and destruction branch-cheap. Relocation is noexcept by
 * construction, which is what lets the event pool keep callables in a
 * plain std::vector slab.
 */

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ccube {
namespace util {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction; // undefined; only the R(Args...) partial below

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    /** Bytes of in-place storage; larger callables heap-allocate. */
    static constexpr std::size_t kCapacity = Capacity;

    InlineFunction() noexcept = default;
    InlineFunction(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  !std::is_same_v<D, std::nullptr_t> &&
                  std::is_invocable_r_v<R, D&, Args...>>>
    InlineFunction(F&& fn)
    {
        if constexpr (kFitsInline<D>) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
            ops_ = &kInlineOps<D>;
        } else {
            ::new (static_cast<void*>(storage_))
                D*(new D(std::forward<F>(fn)));
            ops_ = &kHeapOps<D>;
        }
    }

    InlineFunction(InlineFunction&& other) noexcept
    {
        moveFrom(other);
    }

    InlineFunction&
    operator=(InlineFunction&& other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    /** Rebinds to a new callable (used by call sites that wrap an
     *  existing callback, e.g. the multi-hop flow-span decorator). */
    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  !std::is_same_v<D, std::nullptr_t> &&
                  std::is_invocable_r_v<R, D&, Args...>>>
    InlineFunction&
    operator=(F&& fn)
    {
        InlineFunction tmp(std::forward<F>(fn));
        destroy();
        moveFrom(tmp);
        return *this;
    }

    InlineFunction&
    operator=(std::nullptr_t) noexcept
    {
        destroy();
        ops_ = nullptr;
        return *this;
    }

    InlineFunction(const InlineFunction&) = delete;
    InlineFunction& operator=(const InlineFunction&) = delete;

    ~InlineFunction() { destroy(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    R
    operator()(Args... args)
    {
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

    /** True when the held callable lives in the inline buffer (empty
     *  functions count as inline); exposed for tests and benchmarks. */
    bool
    isInline() const noexcept
    {
        return ops_ == nullptr || !ops_->heap;
    }

  private:
    struct Ops {
        R (*invoke)(void* storage, Args&&... args);
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void* storage) noexcept;
        bool heap;
    };

    template <typename D>
    static constexpr bool kFitsInline =
        sizeof(D) <= Capacity &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D>
    static D*
    inlinePtr(void* storage) noexcept
    {
        return std::launder(reinterpret_cast<D*>(storage));
    }

    template <typename D>
    static D*&
    heapPtr(void* storage) noexcept
    {
        return *std::launder(reinterpret_cast<D**>(storage));
    }

    template <typename D>
    static constexpr Ops kInlineOps = {
        /*invoke=*/
        [](void* storage, Args&&... args) -> R {
            return (*inlinePtr<D>(storage))(
                std::forward<Args>(args)...);
        },
        /*relocate=*/
        [](void* dst, void* src) noexcept {
            D* from = inlinePtr<D>(src);
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        /*destroy=*/
        [](void* storage) noexcept { inlinePtr<D>(storage)->~D(); },
        /*heap=*/false,
    };

    template <typename D>
    static constexpr Ops kHeapOps = {
        /*invoke=*/
        [](void* storage, Args&&... args) -> R {
            return (*heapPtr<D>(storage))(std::forward<Args>(args)...);
        },
        /*relocate=*/
        [](void* dst, void* src) noexcept {
            ::new (dst) D*(heapPtr<D>(src));
        },
        /*destroy=*/
        [](void* storage) noexcept { delete heapPtr<D>(storage); },
        /*heap=*/true,
    };

    void
    destroy() noexcept
    {
        if (ops_)
            ops_->destroy(storage_);
    }

    /** Leaves @p other empty; assumes *this holds no callable. */
    void
    moveFrom(InlineFunction& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[Capacity];
    const Ops* ops_ = nullptr;
};

} // namespace util
} // namespace ccube

#endif // CCUBE_UTIL_INLINE_FUNCTION_H_
