#ifndef CCUBE_GPU_STREAM_H_
#define CCUBE_GPU_STREAM_H_

/**
 * @file
 * Simulated GPU stream: in-order kernel execution on one device.
 *
 * The paper runs communication and computation as separate streams on
 * the same GPU, synchronized by device-side semaphores; in the timed
 * simulation a stream is a FIFO resource whose occupancy is the
 * kernel duration.
 */

#include <string>

#include "sim/resource.h"

namespace ccube {
namespace gpu {

/**
 * In-order kernel queue bound to a simulation.
 */
class Stream
{
  public:
    Stream(sim::Simulation& simulation, std::string name);

    /**
     * Enqueues a kernel of @p duration seconds; @p done fires at
     * completion. Kernels on one stream execute back to back.
     */
    void launch(double duration, sim::EventFn done = nullptr);

    /** Cumulative busy time. */
    double busyTime() const { return resource_.busyTime(); }

    /** Kernels executed or in flight. */
    std::uint64_t launches() const { return resource_.grants(); }

  private:
    sim::FifoResource resource_;
};

} // namespace gpu
} // namespace ccube

#endif // CCUBE_GPU_STREAM_H_
