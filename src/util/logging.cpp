#include "util/logging.h"

#include <mutex>

namespace ccube {
namespace util {

namespace {

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kNone: return "NONE";
    }
    return "?";
}

std::mutex& logMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

Logger&
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, std::string_view tag, std::string_view msg)
{
    if (level < level_.load(std::memory_order_relaxed))
        return;
    // Read the sink once, then emit under the mutex: a concurrent
    // setSink() cannot tear the pointer or interleave half-written
    // lines.
    std::lock_guard<std::mutex> guard(logMutex());
    std::ostream* sink = sink_.load(std::memory_order_acquire);
    std::ostream& out = sink ? *sink : std::cerr;
    out << "[" << levelName(level) << "] " << tag << ": " << msg << "\n";
}

void
logDebug(std::string_view tag, std::string_view msg)
{
    Logger::instance().log(LogLevel::kDebug, tag, msg);
}

void
logInfo(std::string_view tag, std::string_view msg)
{
    Logger::instance().log(LogLevel::kInfo, tag, msg);
}

void
logWarn(std::string_view tag, std::string_view msg)
{
    Logger::instance().log(LogLevel::kWarn, tag, msg);
}

void
fatal(std::string_view msg)
{
    {
        std::lock_guard<std::mutex> guard(logMutex());
        std::cerr << "[FATAL] " << msg << std::endl;
    }
    std::exit(1);
}

void
panic(std::string_view msg)
{
    {
        std::lock_guard<std::mutex> guard(logMutex());
        std::cerr << "[PANIC] " << msg << std::endl;
    }
    std::abort();
}

} // namespace util
} // namespace ccube
