/**
 * @file
 * Reproduces Fig. 16: how the communication/computation pattern
 * across layers determines C-Cube's chaining efficiency.
 *
 *   Case 1 — compute shrinks and communication grows with depth
 *            (the common CNN pattern): chaining hides almost all
 *            communication.
 *   Case 2 — compute grows with depth: "bubbles" appear because the
 *            next layer's gradients are not ready when the previous
 *            forward finishes.
 *   Case 3 — communication shrinks with depth (big early layers):
 *            the gradient turnaround is pushed back.
 */

#include <iostream>
#include <vector>

#include "core/ccube_engine.h"
#include "obs/session.h"
#include "sweep/sweep.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

using namespace ccube;

/** Builds a synthetic 5-layer model from (params, flops) profiles. */
dnn::NetworkModel
makeCase(const std::string& name,
         const std::vector<std::pair<double, double>>& layers)
{
    std::vector<dnn::Layer> result;
    int index = 0;
    for (const auto& [mparams, gflops] : layers) {
        dnn::Layer layer;
        layer.name = "L" + std::to_string(++index);
        layer.kind = dnn::LayerKind::kConv;
        layer.param_count =
            static_cast<std::int64_t>(mparams * 1e6);
        layer.forward_flops_per_sample =
            static_cast<std::int64_t>(gflops * 1e9);
        layer.output_elems_per_sample = 1;
        layer.input_elems_per_sample = 1;
        result.push_back(std::move(layer));
    }
    return dnn::NetworkModel(name, std::move(result));
}

} // namespace

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    std::cout << "=== Fig. 16: communication/computation patterns and "
                 "chaining efficiency ===\n\n";

    // (million params, GFLOPs/sample) per layer, L1..L5. Totals are
    // identical across cases; only the distribution differs.
    const std::vector<
        std::pair<std::string, std::vector<std::pair<double, double>>>>
        cases{
            {"Case1: comm up, compute down (CNN-like)",
             {{1, 2.0}, {2, 1.0}, {4, 0.5}, {8, 0.3}, {15, 0.2}}},
            {"Case2: compute up with depth",
             {{1, 0.2}, {2, 0.3}, {4, 0.5}, {8, 1.0}, {15, 2.0}}},
            {"Case3: comm down with depth",
             {{15, 2.0}, {8, 1.0}, {4, 0.5}, {2, 0.3}, {1, 0.2}}},
        };

    util::Table table({"pattern", "comm_ms", "iter_CC_ms",
                       "iter_unchained_ms", "exposed_comm_ms",
                       "chain_efficiency"});
    // One task per case, each building its own engine and writing a
    // pre-assigned row slot; rows print in case order regardless of
    // the --jobs value.
    std::vector<std::vector<std::string>> rows(cases.size());
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), cases.size(),
        [&](std::size_t i) {
            const auto& [label, profile] = cases[i];
            core::CCubeEngine engine(makeCase(label, profile));
            core::IterationConfig config;
            config.batch = 32;
            config.bandwidth_scale = 0.25;
            const auto cc = engine.evaluate(core::Mode::kCCube, config);
            const auto c1 =
                engine.evaluate(core::Mode::kOverlappedTree, config);
            rows[i] = {label, util::formatDouble(cc.comm_time * 1e3, 2),
                       util::formatDouble(cc.iteration_time * 1e3, 2),
                       util::formatDouble(c1.iteration_time * 1e3, 2),
                       util::formatDouble(cc.exposed_comm * 1e3, 2),
                       util::formatDouble(cc.chain_efficiency, 3)};
        });
    for (std::vector<std::string>& row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);
    std::cout << "\nCase 1 hides the most communication (highest "
                 "chain efficiency); Case 2 stalls on late-layer "
                 "gradients (bubbles); Case 3 delays the first "
                 "dequeue. Most CNNs follow Case 1 (see Fig. 17).\n";
    return 0;
}
