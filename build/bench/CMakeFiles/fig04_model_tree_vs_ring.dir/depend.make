# Empty dependencies file for fig04_model_tree_vs_ring.
# This may be replaced when dependencies are built.
