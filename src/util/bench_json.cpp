#include "util/bench_json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace ccube {
namespace util {

namespace {

const char kPrefix[] = "{\"schema\":\"bench_ccl/v1\",\"records\":[";
const char kSuffix[] = "\n]}\n";

std::string
escapeJson(const std::string& in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

std::string
formatRecord(const BenchRecord& record)
{
    std::ostringstream out;
    out << "\n{\"source\":\"" << escapeJson(record.source)
        << "\",\"kind\":\"" << escapeJson(record.kind)
        << "\",\"name\":\"" << escapeJson(record.name)
        << "\",\"mode\":\"" << escapeJson(record.mode)
        << "\",\"bytes\":" << record.bytes
        << ",\"ns_per_op\":" << record.ns_per_op;
    if (!record.extra.empty()) {
        out << ",\"extra\":{";
        bool first = true;
        for (const auto& [key, value] : record.extra) {
            if (!first)
                out << ",";
            first = false;
            out << "\"" << escapeJson(key) << "\":" << value;
        }
        out << "}";
    }
    out << "}";
    return out.str();
}

/** Existing record-array body (between prefix and suffix), or empty. */
std::string
existingBody(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string content = buffer.str();
    const std::string prefix(kPrefix);
    const std::string suffix(kSuffix);
    if (content.size() < prefix.size() + suffix.size() ||
        content.compare(0, prefix.size(), prefix) != 0 ||
        content.compare(content.size() - suffix.size(), suffix.size(),
                        suffix) != 0) {
        logWarn("bench",
                "existing " + path +
                    " is not bench_ccl/v1 — replacing it");
        return {};
    }
    return content.substr(prefix.size(), content.size() -
                                             prefix.size() -
                                             suffix.size());
}

} // namespace

void
writeBenchRecords(const std::string& path,
                  const std::vector<BenchRecord>& records, bool append)
{
    std::string body = append ? existingBody(path) : std::string();
    for (const BenchRecord& record : records) {
        if (!body.empty())
            body += ",";
        body += formatRecord(record);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        logWarn("bench", "cannot write " + path);
        return;
    }
    out << kPrefix << body << kSuffix;
}

std::string
benchOutputPath()
{
    const char* env = std::getenv("CCUBE_BENCH_OUT");
    return env && *env ? std::string(env)
                       : std::string("BENCH_ccl.json");
}

} // namespace util
} // namespace ccube
