#ifndef CCUBE_OBS_SESSION_H_
#define CCUBE_OBS_SESSION_H_

/**
 * @file
 * Command-line wiring for the observability layer.
 *
 * Any bench or example constructs an ObsSession from its parsed flags;
 * `--trace-out=FILE` enables the global TraceRecorder and writes a
 * Chrome/Perfetto trace at the end of the run, `--metrics-out=FILE`
 * enables the global MetricRegistry and writes CSV (or JSON when the
 * path ends in `.json`), and `--report-out=FILE` enables the recorder
 * and writes the obs::TraceAnalyzer text report (channel utilization,
 * idle gaps, α-β fit, critical path). Two auxiliary flags shape
 * retention: `--trace-capacity=N` caps retained events and
 * `--trace-mode=flight` switches to the drop-oldest FlightRecorder
 * ring.
 *
 * Live monitoring: `--monitor-out=FILE` enables the global
 * obs::Monitor and writes its JSONL snapshot series plus an
 * OpenMetrics-style text endpoint (`FILE.om`, overridable with
 * `--monitor-openmetrics=FILE`); `--monitor-interval=SECONDS` sets the
 * DES heartbeat period (simulated seconds; 0 = collective edges only);
 * `--slo-collective-ms` / `--slo-iteration-ms` arm the SLO budgets
 * (env fallbacks $CCUBE_SLO_COLLECTIVE_MS / $CCUBE_SLO_ITERATION_MS).
 * `--rootcause-out=FILE` enables the recorder and writes the ranked
 * obs::diff root-cause report at the end of the run.
 *
 * Profiling: `--profile-out=FILE` runs the obs::Profiler sampler for
 * the whole session and writes collapsed-stack flamegraph text
 * (flamegraph.pl-compatible) on finish; `--profile-hz=N` sets the
 * sampling rate (default Profiler::kDefaultHz). The capture summary
 * also folds into the metrics registry (profiler.* counters) and the
 * Chrome trace when those sinks are enabled.
 *
 * With no flag present the session is inert and the instrumented code
 * paths stay on their disabled fast path.
 */

#include <string>

#include "util/flags.h"

namespace ccube {
namespace obs {

/**
 * RAII capture session: enables the global recorder/registry on
 * construction, flushes them to the requested files on finish() or
 * destruction.
 */
class ObsSession
{
  public:
    /** Reads `--trace-out` / `--metrics-out` / `--report-out` /
     *  `--monitor-out` / `--monitor-interval` / `--monitor-openmetrics`
     *  / `--rootcause-out` / `--slo-collective-ms` /
     *  `--slo-iteration-ms` / `--trace-capacity` / `--trace-mode`
     *  from @p flags. */
    explicit ObsSession(const util::Flags& flags);

    /** Direct construction (empty path = facility off). */
    ObsSession(std::string trace_path, std::string metrics_path,
               std::string report_path = "");

    /** Flushes on scope exit when finish() was not called. */
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /** True when a trace file was requested. */
    bool tracing() const { return !trace_path_.empty(); }

    /** True when a metrics file was requested. */
    bool metrics() const { return !metrics_path_.empty(); }

    /** True when an analysis report was requested. */
    bool reporting() const { return !report_path_.empty(); }

    /** True when live monitoring output was requested. */
    bool monitoring() const { return !monitor_path_.empty(); }

    /** True when a root-cause report was requested. */
    bool rootCause() const { return !rootcause_path_.empty(); }

    /** True when a sampling-profiler capture was requested. */
    bool profiling() const { return !profile_path_.empty(); }

    /**
     * Writes the trace JSON, metrics, and analysis-report files,
     * folding the per-rank RankCounters and the recorder's drop
     * accounting into the registry first. Idempotent.
     */
    void finish();

  private:
    void start();

    std::string trace_path_;
    std::string metrics_path_;
    std::string report_path_;
    std::string monitor_path_;
    std::string openmetrics_path_;
    std::string rootcause_path_;
    std::string profile_path_;
    double monitor_interval_s_ = 0.0;
    double profile_hz_ = 0.0;
    bool finished_ = false;
};

} // namespace obs
} // namespace ccube

#endif // CCUBE_OBS_SESSION_H_
