file(REMOVE_RECURSE
  "CMakeFiles/abl_ring_count.dir/abl_ring_count.cpp.o"
  "CMakeFiles/abl_ring_count.dir/abl_ring_count.cpp.o.d"
  "abl_ring_count"
  "abl_ring_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ring_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
