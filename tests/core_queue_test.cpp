/**
 * @file
 * Gradient-queue and chunk-mapper tests (DESIGN.md invariant #4):
 * FIFO semantics, LIC monotonicity, layer gating via the Layer-Chunk
 * Table, and the byte↔chunk↔layer mapping that derives it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/chunk_mapper.h"
#include "core/gradient_queue.h"

namespace ccube {
namespace core {
namespace {

TEST(GradientQueue, TableValidation)
{
    EXPECT_DEATH(GradientQueue({}), "empty");
    EXPECT_DEATH(GradientQueue({3, 1}), "non-decreasing");
}

TEST(GradientQueue, DequeueUnblocksAtLayerBound)
{
    // Layers gate at cumulative chunk counts 1, 3, 6 (L1 has 1 chunk,
    // L2 has 2, L3 has 3 — the Fig. 8 example).
    GradientQueue queue({1, 3, 6});
    EXPECT_EQ(queue.totalChunks(), 6);
    queue.enqueueChunk();
    EXPECT_TRUE(queue.tryDequeueLayer(0));
    EXPECT_FALSE(queue.tryDequeueLayer(1));
    queue.enqueueChunk();
    EXPECT_FALSE(queue.tryDequeueLayer(1));
    queue.enqueueChunk();
    EXPECT_TRUE(queue.tryDequeueLayer(1));
    EXPECT_EQ(queue.layerIndexCounter(), 2);
}

TEST(GradientQueue, LicAdvancesInOrderOnly)
{
    GradientQueue queue({1, 2});
    queue.enqueueChunk();
    queue.enqueueChunk();
    EXPECT_DEATH(queue.dequeueLayer(1), "in order");
    queue.dequeueLayer(0);
    queue.dequeueLayer(1);
    EXPECT_EQ(queue.layerIndexCounter(), 2);
}

TEST(GradientQueue, ZeroChunkLayersPassImmediately)
{
    // Layers without parameters (pooling) share the previous bound.
    GradientQueue queue({2, 2, 5});
    queue.enqueueChunk();
    queue.enqueueChunk();
    EXPECT_TRUE(queue.tryDequeueLayer(0));
    EXPECT_TRUE(queue.tryDequeueLayer(1)); // no extra chunks needed
    EXPECT_FALSE(queue.tryDequeueLayer(2));
}

TEST(GradientQueue, BlockingDequeueWaitsForBroadcast)
{
    GradientQueue queue({2, 4});
    std::atomic<int> dequeued{0};
    std::thread compute([&]() {
        queue.dequeueLayer(0);
        dequeued.store(1);
        queue.dequeueLayer(1);
        dequeued.store(2);
    });
    EXPECT_EQ(dequeued.load(), 0);
    queue.enqueueChunk();
    queue.enqueueChunk(); // layer 0 complete
    while (dequeued.load() < 1)
        std::this_thread::yield();
    EXPECT_EQ(dequeued.load(), 1);
    queue.enqueueChunk();
    queue.enqueueChunk(); // layer 1 complete
    compute.join();
    EXPECT_EQ(dequeued.load(), 2);
}

TEST(GradientQueue, ConcurrentEnqueueDequeueFullIteration)
{
    // A full "iteration": broadcast thread enqueues 100 chunks while
    // the compute thread dequeues 10 layers of 10 chunks each; the
    // compute thread must never observe a layer before its chunks.
    std::vector<std::int64_t> table;
    for (int l = 1; l <= 10; ++l)
        table.push_back(10 * l);
    GradientQueue queue(table);
    std::atomic<bool> violated{false};
    std::thread broadcaster([&]() {
        for (int c = 0; c < 100; ++c)
            queue.enqueueChunk();
    });
    for (int l = 0; l < 10; ++l) {
        queue.dequeueLayer(l);
        if (queue.enqueued() < queue.layerChunkBound(l))
            violated.store(true);
    }
    broadcaster.join();
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(queue.layerIndexCounter(), 10);
}

TEST(GradientQueue, ResetForNextIteration)
{
    GradientQueue queue({1});
    queue.enqueueChunk();
    queue.dequeueLayer(0);
    queue.resetIteration();
    EXPECT_EQ(queue.layerIndexCounter(), 0);
    EXPECT_EQ(queue.enqueued(), 0);
    EXPECT_FALSE(queue.tryDequeueLayer(0));
}

// ----------------------------------------------------------- mapper

TEST(ChunkMapper, SingleTreeRangesPartitionBuffer)
{
    const ChunkMapper mapper = ChunkMapper::singleTree(100.0, 7);
    double covered = 0.0;
    for (int c = 0; c < mapper.numChunks(); ++c) {
        const auto [lo, hi] = mapper.chunkByteRange(c);
        EXPECT_DOUBLE_EQ(lo, covered);
        EXPECT_GT(hi, lo);
        covered = hi;
    }
    EXPECT_DOUBLE_EQ(covered, 100.0);
}

TEST(ChunkMapper, DoubleTreeSplitsHalves)
{
    const ChunkMapper mapper = ChunkMapper::doubleTree(100.0, 2);
    EXPECT_EQ(mapper.numChunks(), 4);
    EXPECT_DOUBLE_EQ(mapper.chunkByteRange(0).first, 0.0);
    EXPECT_DOUBLE_EQ(mapper.chunkByteRange(1).second, 50.0);
    EXPECT_DOUBLE_EQ(mapper.chunkByteRange(2).first, 50.0);
    EXPECT_DOUBLE_EQ(mapper.chunkByteRange(3).second, 100.0);
}

TEST(ChunkMapper, ChunksOfLayerIntersection)
{
    const ChunkMapper mapper = ChunkMapper::singleTree(100.0, 4);
    // Layers of 30 / 0 / 45 / 25 bytes.
    const std::vector<double> layers{30.0, 0.0, 45.0, 25.0};
    EXPECT_EQ(mapper.chunksOfLayer(layers, 0),
              (std::vector<int>{0, 1}));
    EXPECT_TRUE(mapper.chunksOfLayer(layers, 1).empty());
    EXPECT_EQ(mapper.chunksOfLayer(layers, 2),
              (std::vector<int>{1, 2}));
    EXPECT_EQ(mapper.chunksOfLayer(layers, 3),
              (std::vector<int>{3}));
}

TEST(ChunkMapper, LayerReadyTimeIsMaxOfGatingChunks)
{
    const ChunkMapper mapper = ChunkMapper::singleTree(100.0, 4);
    const std::vector<double> layers{30.0, 0.0, 45.0, 25.0};
    const std::vector<double> ready{1.0, 4.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mapper.layerReadyTime(layers, 0, ready), 4.0);
    EXPECT_DOUBLE_EQ(mapper.layerReadyTime(layers, 1, ready), 0.0);
    EXPECT_DOUBLE_EQ(mapper.layerReadyTime(layers, 2, ready), 4.0);
    EXPECT_DOUBLE_EQ(mapper.layerReadyTime(layers, 3, ready), 3.0);
}

TEST(ChunkMapper, LayerChunkTableIsMonotoneAndMatchesFig8)
{
    // Fig. 8: L1 has 1 chunk, L2 has 2, L3 has 3 — with 6 equal
    // chunks of equal bytes the cumulative table is 1, 3, 6.
    const ChunkMapper mapper = ChunkMapper::singleTree(60.0, 6);
    const std::vector<double> layers{10.0, 20.0, 30.0};
    const auto table = mapper.layerChunkTable(layers);
    EXPECT_EQ(table, (std::vector<std::int64_t>{1, 3, 6}));
}

TEST(ChunkMapper, TableHandlesZeroByteLayers)
{
    const ChunkMapper mapper = ChunkMapper::singleTree(40.0, 4);
    const std::vector<double> layers{10.0, 0.0, 10.0, 0.0, 20.0};
    const auto table = mapper.layerChunkTable(layers);
    EXPECT_EQ(table, (std::vector<std::int64_t>{1, 1, 2, 2, 4}));
}

TEST(ChunkMapper, RingMapperUsesOneSlicePerRank)
{
    const ChunkMapper mapper = ChunkMapper::ring(80.0, 8);
    EXPECT_EQ(mapper.numChunks(), 8);
    EXPECT_DOUBLE_EQ(mapper.chunkByteRange(7).second, 80.0);
}

} // namespace
} // namespace core
} // namespace ccube
