#include "sim/resource.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace sim {

FifoResource::FifoResource(Simulation& simulation, std::string name)
    : sim_(simulation), name_(std::move(name)),
      recorder_(obs::TraceRecorder::global()),
      registry_(obs::MetricRegistry::global()),
      monitor_(obs::Monitor::global())
{
}

void
FifoResource::request(HoldFn hold, DoneFn done, double payload)
{
    Pending pending{std::move(hold), std::move(done), payload,
                    sim_.now()};
    if (busy_) {
        waiting_.push_back(std::move(pending));
        return;
    }
    grant(std::move(pending));
}

void
FifoResource::setTraceIdentity(int pid, int tid)
{
    trace_pid_ = pid;
    trace_tid_ = tid;
}

void
FifoResource::grant(Pending pending)
{
    CCUBE_CHECK(!busy_, "grant while busy on " << name_);
    busy_ = true;
    ++grants_;
    const Time duration = pending.hold();
    CCUBE_CHECK(duration >= 0.0, "negative hold on " << name_);
    busy_time_ += duration;
    const bool want_metrics =
        recorder_.enabled() || registry_.enabled();
    if (want_metrics || monitor_.enabled()) {
        // Busy intervals feed both the trace/metrics reports and the
        // monitor's busy-fraction gauges; the heavier per-grant
        // accounting (payload totals, queue-wait histogram) is only
        // for the report paths, so live monitoring alone stays cheap.
        if (busy_intervals_.size() < kMaxBusyIntervals) {
            if (busy_intervals_.capacity() == 0)
                busy_intervals_.reserve(64); // skip the tiny-regrowth
                                             // malloc ladder
            busy_intervals_.emplace_back(sim_.now(),
                                         sim_.now() + duration);
        } else {
            ++busy_intervals_dropped_;
        }
    }
    if (want_metrics) {
        total_payload_ += pending.payload;
        const Time queue_wait = sim_.now() - pending.requested_at;
        queue_wait_.add(queue_wait);
        if (trace_pid_ >= 0 && recorder_.enabled()) {
            const double offset = recorder_.simOffsetUs();
            recorder_.completeEvent(
                name_, "simnet.channel", trace_pid_, trace_tid_,
                offset + sim_.now() * 1e6, duration * 1e6,
                {{"queue_wait_us", queue_wait * 1e6},
                 {"bytes", pending.payload}});
        }
    }

    // The release event captures only `this`: the completion callback
    // is stashed in active_done_ (moved out before release() so a
    // back-to-back grant can install its own), keeping the scheduled
    // lambda within EventFn's inline buffer — no allocation per grant.
    active_done_ = std::move(pending.done);
    sim_.after(duration, [this]() {
        DoneFn done = std::move(active_done_);
        release();
        if (done)
            done();
    });
}

void
FifoResource::release()
{
    CCUBE_CHECK(busy_, "release while idle on " << name_);
    busy_ = false;
    if (!waiting_.empty()) {
        Pending next = std::move(waiting_.front());
        waiting_.pop_front();
        grant(std::move(next));
    }
}

} // namespace sim
} // namespace ccube
