#ifndef CCUBE_CCL_PRIMITIVES_H_
#define CCUBE_CCL_PRIMITIVES_H_

/**
 * @file
 * The remaining collective primitives of the mini-NCCL: pipelined
 * tree broadcast, tree reduce, and the ring Reduce-Scatter /
 * AllGather halves — the building blocks the AllReduce algorithms
 * compose (§II-A: "AllReduce often consists of two phases —
 * reduction phase (or ReduceScatter) and broadcast phase (or
 * AllGather)").
 */

#include "ccl/allreduce.h"
#include "ccl/communicator.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace ccl {

/**
 * Pipelined tree broadcast: the root's buffer is sent down the tree
 * in @p num_chunks chunks; on return every rank's buffer equals the
 * root's. Detour edges are serviced by forwarding threads.
 */
void treeBroadcast(Communicator& comm, RankBuffers& buffers,
                   const topo::TreeEmbedding& embedding, int num_chunks,
                   FlowId flow = kFlowTree0Broadcast,
                   Protocol proto = Protocol::kSimple);

/**
 * Pipelined tree reduce: every rank's buffer is summed toward the
 * root; on return the root's buffer holds the elementwise sum (other
 * buffers hold partial sums).
 */
void treeReduce(Communicator& comm, RankBuffers& buffers,
                const topo::TreeEmbedding& embedding, int num_chunks,
                FlowId flow = kFlowTree0Reduce,
                Protocol proto = Protocol::kSimple);

/**
 * Ring Reduce-Scatter: after P−1 steps, the rank at ring position i
 * holds the fully reduced slice (i+1) mod P (slice = position chunk).
 */
void ringReduceScatter(Communicator& comm, RankBuffers& buffers,
                       const topo::RingEmbedding& ring,
                       Protocol proto = Protocol::kSimple);

/**
 * Ring AllGather: each position starts owning slice (pos+1) mod P
 * (the Reduce-Scatter postcondition) and circulates it; on return
 * every rank holds every slice.
 */
void ringAllGather(Communicator& comm, RankBuffers& buffers,
                   const topo::RingEmbedding& ring,
                   Protocol proto = Protocol::kSimple);

/** AllReduce algorithm selector for the dispatcher. */
enum class AllReduceAlgorithm {
    kRing,           ///< 2(P−1)-step ring (R)
    kTree,           ///< two-phase single tree
    kOverlappedTree, ///< reduction-broadcast chained single tree (C1)
    kDoubleTree,     ///< two-phase double tree (B)
    kCCubeDoubleTree,///< overlapped double tree (C-Cube)
};

/** Dispatcher options. */
struct AllReduceOptions {
    AllReduceAlgorithm algorithm = AllReduceAlgorithm::kCCubeDoubleTree;
    int num_chunks = 8; ///< per tree for tree algorithms
    /** Wire protocol: kSimple (fenced bulk), kLL (inline flags), or
     *  kAuto — resolved via the ccl::Tuner's model per message size.
     *  Defaults to CCUBE_CCL_PROTO when set. */
    Protocol protocol = protocolFromEnv();
    /** Live per-chunk availability callback (gradient-queue hook). */
    AllReduceTrace::Observer observer;
};

/**
 * One-call AllReduce over a physical topology: embeds the logical
 * topology the chosen algorithm needs (Hamiltonian ring, inorder
 * tree with detours, or the conflict-aware double tree) and runs it.
 */
AllReduceTrace allReduce(Communicator& comm, RankBuffers& buffers,
                         const topo::Graph& graph,
                         const AllReduceOptions& options = {});

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_PRIMITIVES_H_
