#ifndef CCUBE_SIM_SIMULATION_H_
#define CCUBE_SIM_SIMULATION_H_

/**
 * @file
 * Simulation context: owns the event queue and simulation-wide state.
 *
 * Components (channels, devices, schedules) hold a reference to one
 * Simulation and use it as their single source of simulated time.
 */

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/event_queue.h"

namespace ccube {
namespace sim {

/**
 * Top-level simulation context.
 *
 * Also carries a simple named-counter facility used by components to
 * export statistics (transfers completed, bytes moved, ...) without
 * each component defining its own bookkeeping.
 */
class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** The event queue driving this simulation. */
    EventQueue& queue() { return queue_; }

    /** Current simulated time in seconds. */
    Time now() const { return queue_.now(); }

    /** Schedules @p fn to run @p delay seconds from now. */
    void after(Time delay, EventFn fn, int priority = 0);

    /** Schedules @p fn at absolute time @p when. */
    void at(Time when, EventFn fn, int priority = 0);

    /**
     * Runs to completion and returns the final simulated time. While a
     * metrics capture is enabled, also observes the wall-clock DES
     * throughput of the run as the `sim.events_per_sec` histogram and
     * counts executed events in `sim.events` (see obs::MetricRegistry).
     *
     * While the live monitor is enabled (see obs::Monitor), the run is
     * additionally chopped into --monitor-interval simulated-time
     * slices and a heartbeat snapshot fires between slices; a
     * non-positive interval keeps the single-slice fast path.
     */
    Time run();

    /** Adds @p delta to the named statistic counter. */
    void addStat(const std::string& name, double delta);

    /** Reads a named statistic counter (0 when never written). */
    double stat(const std::string& name) const;

    /** All statistics gathered so far. */
    const std::unordered_map<std::string, double>& stats() const
    {
        return stats_;
    }

    /** Clears events, time, and statistics. */
    void reset();

  private:
    EventQueue queue_;
    std::unordered_map<std::string, double> stats_;
};

} // namespace sim
} // namespace ccube

#endif // CCUBE_SIM_SIMULATION_H_
