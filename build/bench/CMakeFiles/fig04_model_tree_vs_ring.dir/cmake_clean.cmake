file(REMOVE_RECURSE
  "CMakeFiles/fig04_model_tree_vs_ring.dir/fig04_model_tree_vs_ring.cpp.o"
  "CMakeFiles/fig04_model_tree_vs_ring.dir/fig04_model_tree_vs_ring.cpp.o.d"
  "fig04_model_tree_vs_ring"
  "fig04_model_tree_vs_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_model_tree_vs_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
