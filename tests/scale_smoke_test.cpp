/**
 * @file
 * P=512 functional smoke for the state-machine runtime — the headline
 * acceptance of the async rank-task engine: a double-tree AllReduce
 * with 512 logical ranks runs on a handful of pool threads and
 * produces byte-identical results to thread-per-rank mode.
 *
 * Labeled "scale" in tests/CMakeLists.txt; CI runs it in the Release
 * perf-gate job (`ctest -L scale`) where the thread-per-rank reference
 * leg (512+ OS threads) stays comfortably inside the timeout.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "ccl/communicator.h"
#include "ccl/double_tree_allreduce.h"
#include "ccl/executor.h"
#include "ccl/ring_allreduce.h"
#include "ccl/state_machine.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "topo/tree_embedding.h"
#include "util/rng.h"

namespace ccube {
namespace {

using ccl::RankExecutor;

constexpr int kRanks = 512;
constexpr int kElems = 64;
constexpr int kSlots = 4;
constexpr int kChunksPerTree = 2;

topo::DoubleTreeEmbedding
logicalDoubleTree(int ranks)
{
    return topo::DoubleTreeEmbedding(
        topo::directEmbedding(topo::BinaryTree::inorder(ranks)),
        topo::directEmbedding(
            topo::BinaryTree::inorder(ranks).mirrored()));
}

ccl::RankBuffers
seededBuffers(int ranks, int elems, std::uint64_t seed)
{
    util::Rng rng(seed);
    ccl::RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (auto& b : buffers) {
        b.resize(static_cast<std::size_t>(elems));
        rng.fill(b, -1.0f, 1.0f);
    }
    return buffers;
}

TEST(ScaleSmoke, DoubleTreeP512ByteIdenticalToThreadPerRank)
{
    const topo::DoubleTreeEmbedding dt = logicalDoubleTree(kRanks);

    // Thread-per-rank reference: 512 rank threads (+ tree1 helpers).
    ccl::RankBuffers reference = seededBuffers(kRanks, kElems, 7);
    {
        ccl::Communicator comm(kRanks, kSlots,
                               RankExecutor::Mode::kPersistent);
        ccl::doubleTreeAllReduce(comm, reference, dt, kChunksPerTree,
                                 ccl::TreePhaseMode::kTwoPhase);
    }

    // Same collective on the state-machine pool.
    ccl::RankBuffers buffers = seededBuffers(kRanks, kElems, 7);
    {
        ccl::Communicator comm(kRanks, kSlots,
                               RankExecutor::Mode::kStateMachine);
        ccl::doubleTreeAllReduce(comm, buffers, dt, kChunksPerTree,
                                 ccl::TreePhaseMode::kTwoPhase);
    }

    for (int r = 0; r < kRanks; ++r) {
        const auto& got = buffers[static_cast<std::size_t>(r)];
        const auto& want = reference[static_cast<std::size_t>(r)];
        if (std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) != 0) {
            for (int i = 0; i < kElems; ++i)
                ASSERT_EQ(got[static_cast<std::size_t>(i)],
                          want[static_cast<std::size_t>(i)])
                    << "rank " << r << " elem " << i
                    << " diverges between engine modes";
        }
    }
}

TEST(ScaleSmoke, OverlappedDoubleTreeAndRingP512RunOnTheSharedPool)
{
    // Overlapped mode doubles the task count (separate reducer and
    // broadcaster pipelines per rank); run it and a 2(P−1)-step ring
    // purely on the state machine with exact integer sums — every
    // partial sum is an integer far below 2^24, so the expectation is
    // reduction-order independent, bit for bit.
    const topo::DoubleTreeEmbedding dt = logicalDoubleTree(kRanks);
    const topo::RingEmbedding ring = topo::makeSequentialRing(kRanks);

    auto makeBuffers = [](int elems) {
        ccl::RankBuffers buffers(kRanks);
        for (int r = 0; r < kRanks; ++r) {
            auto& b = buffers[static_cast<std::size_t>(r)];
            b.resize(static_cast<std::size_t>(elems));
            for (int i = 0; i < elems; ++i)
                b[static_cast<std::size_t>(i)] =
                    static_cast<float>((r * 7 + i * 13) % 17 - 8);
        }
        return buffers;
    };
    auto exactSums = [](int elems) {
        std::vector<float> expected(static_cast<std::size_t>(elems));
        for (int i = 0; i < elems; ++i) {
            long sum = 0;
            for (int r = 0; r < kRanks; ++r)
                sum += (r * 7 + i * 13) % 17 - 8;
            expected[static_cast<std::size_t>(i)] =
                static_cast<float>(sum);
        }
        return expected;
    };
    auto expectExact = [](const ccl::RankBuffers& buffers,
                          const std::vector<float>& expected,
                          const char* what) {
        for (std::size_t r = 0; r < buffers.size(); ++r)
            for (std::size_t i = 0; i < buffers[r].size(); ++i)
                ASSERT_EQ(buffers[r][i], expected[i])
                    << what << ": rank " << r << " elem " << i;
    };

    ccl::Communicator comm(kRanks, kSlots,
                           RankExecutor::Mode::kStateMachine);
    {
        ccl::RankBuffers buffers = makeBuffers(kElems);
        ccl::doubleTreeAllReduce(comm, buffers, dt, kChunksPerTree,
                                 ccl::TreePhaseMode::kOverlapped);
        expectExact(buffers, exactSums(kElems), "double tree");
    }
    {
        // The ring slices the buffer into P pieces, so it needs at
        // least one element per rank.
        ccl::RankBuffers buffers = makeBuffers(kRanks);
        ccl::ringAllReduce(comm, buffers, ring);
        expectExact(buffers, exactSums(kRanks), "ring");
    }

    // The acceptance bound: 512 functional ranks must not have grown
    // the pool past the "handful of threads" default.
    if (std::getenv("CCUBE_CCL_SM_WORKERS") == nullptr) {
        const int hw = static_cast<int>(
            std::thread::hardware_concurrency());
        const int bound = std::max(4, 2 * hw);
        EXPECT_LE(ccl::StateMachineEngine::shared().workerCount(),
                  bound);
    }
}

} // namespace
} // namespace ccube
