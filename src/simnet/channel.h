#ifndef CCUBE_SIMNET_CHANNEL_H_
#define CCUBE_SIMNET_CHANNEL_H_

/**
 * @file
 * Timed network: binds a physical topology to the discrete-event
 * simulator. Every unidirectional channel is a FIFO resource occupied
 * for α + N/bw per transfer, matching the linear cost model the paper
 * builds on (§II-C) while capturing contention when two logical flows
 * share a physical channel.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/monitor.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "topo/graph.h"

namespace ccube {
namespace simnet {

/** Completion callback of a transfer (move-only, inline small-buffer
 *  storage — see sim::EventFn). */
using DoneFn = sim::EventFn;

/**
 * The simulated network fabric.
 */
class Network
{
  public:
    /**
     * Binds @p graph to @p simulation. @p bandwidth_scale scales every
     * channel's bandwidth (the paper's "low-bandwidth" configuration
     * divides the AllReduce kernel's thread allocation by 4, modeled
     * here as bandwidth_scale = 0.25).
     */
    Network(sim::Simulation& simulation, const topo::Graph& graph,
            double bandwidth_scale = 1.0);

    /** Unregisters this network's live-monitor gauge source. */
    ~Network();

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /** The driving simulation. */
    sim::Simulation& simulation() { return sim_; }

    /** The physical topology. */
    const topo::Graph& graph() const { return graph_; }

    /**
     * Queues a transfer of @p bytes on channel @p channel_id; @p done
     * fires at completion. Transfers on one channel serialize FIFO.
     * @p latency_factor scales the channel's fixed latency term — the
     * wire-protocol knob (LL skips the fenced sync round-trip, so its
     * transfers pay only a fraction of α; bytes are inflated by the
     * caller).
     */
    void transferOnChannel(int channel_id, double bytes, DoneFn done,
                           double latency_factor = 1.0);

    /**
     * Queues a transfer between adjacent nodes. When several parallel
     * channels connect the pair, @p lane selects one (clamped) — the
     * mechanism by which the two trees of the C-Cube double tree each
     * claim a private channel on double-NVLink pairs.
     */
    void transfer(topo::NodeId src, topo::NodeId dst, double bytes,
                  DoneFn done, int lane = 0,
                  double latency_factor = 1.0);

    /** Cumulative busy time of a channel (utilization telemetry). */
    double channelBusyTime(int channel_id) const;

    /** Total transfers granted on a channel. */
    std::uint64_t channelGrants(int channel_id) const;

    /** Total bytes granted on a channel. */
    double channelBytes(int channel_id) const;

    /** Queue-wait statistics of a channel (time requests spent
     *  serialized behind earlier transfers). */
    const util::RunningStats& channelQueueWait(int channel_id) const;

    /**
     * Per-grant busy intervals [start, end] of a channel in simulated
     * seconds (grant order). Captured only while tracing or a metrics
     * capture is enabled and bounded by
     * sim::FifoResource::kMaxBusyIntervals; the DES-side ground truth
     * for trace-derived channel timelines (obs::TraceAnalyzer).
     */
    const std::vector<std::pair<double, double>>&
    channelBusyIntervals(int channel_id) const;

    /** Time one transfer of @p bytes occupies channel @p channel_id;
     *  @p latency_factor as in transferOnChannel(). */
    double occupancy(int channel_id, double bytes,
                     double latency_factor = 1.0) const;

    // ---- live fault state (driven by simnet::FaultPlan) ----

    /**
     * Marks @p channel_id failed: new transfer requests on it are
     * dropped — the done callback never fires, so dependent flows
     * stall exactly like traffic into a dead NVLink. Transfers already
     * holding or queued on the channel complete normally (they were on
     * the wire).
     */
    void failChannel(int channel_id);

    /** Clears a failure; subsequent transfers proceed normally. */
    void restoreChannel(int channel_id);

    /**
     * Scales @p channel_id's effective bandwidth by @p factor (> 0;
     * multiplies onto any previous factor, so repeated degradations
     * compound). Affects transfers requested after the call.
     */
    void setChannelBandwidthFactor(int channel_id, double factor);

    /**
     * Degrades every channel into or out of @p node by @p factor — a
     * straggling GPU slows all of its links, not one of them.
     */
    void slowNode(topo::NodeId node, double factor);

    /** Whether @p channel_id is currently failed. */
    bool channelFailed(int channel_id) const;

    /** Current bandwidth factor of @p channel_id (1.0 = healthy). */
    double channelBandwidthFactor(int channel_id) const;

    /** Transfers dropped on failed channels. */
    std::uint64_t droppedTransfers() const { return dropped_transfers_; }

    /** Bytes dropped on failed channels. */
    double droppedBytes() const { return dropped_bytes_; }

    /** Total bytes pushed through the fabric (every channel). */
    double totalBytes() const { return net_bytes_; }

    /** Total transfers issued on the fabric. */
    std::uint64_t totalTransfers() const { return net_transfers_; }

    /**
     * Exports per-channel telemetry into @p registry under @p prefix:
     * gauges `<prefix>.channel.<id>.{bytes,busy_s,grants,utilization}`
     * (utilization = busy / @p horizon), histogram
     * `<prefix>.queue_wait_s` pooled over all channels, and histogram
     * `<prefix>.channel_utilization` over channels that carried
     * traffic — the numbers `bench/ext_link_utilization` prints.
     */
    void exportMetrics(obs::MetricRegistry& registry, double horizon,
                       const std::string& prefix = "simnet") const;

    /**
     * Registers this network's nodes/channels as named processes and
     * tracks in the global trace recorder (no-op while disabled).
     * Called from the constructor; call again after enabling tracing
     * if the network outlives the ObsSession setup.
     */
    void announceTraceTopology() const;

    /** Closes the current trace epoch after a finished simulation run
     *  ending at @p run_end (simulated seconds), so the next run's
     *  spans land after this one on the trace timeline. */
    void closeTraceEpoch(double run_end) const;

  private:
    /**
     * obs::Monitor gauge source: per-channel busy fraction over the
     * window since this network's previous sample (from
     * sim::FifoResource::busyIntervals), plus live queue depth.
     * Registered at construction while the monitor is enabled.
     */
    void sampleMonitorGauges(
        double t_s,
        std::vector<std::pair<std::string, double>>& out);

    /** Channel ids src → dst in graph order, cached at construction so
     *  the per-transfer lane pick is one hash probe instead of a
     *  heap-allocated Graph::channelIds() vector. */
    const std::vector<int>& pairChannels(topo::NodeId src,
                                         topo::NodeId dst) const;

    /** Per-channel mutable fault state (indexed by channel id). */
    struct ChannelState {
        bool failed = false;
        double factor = 1.0; ///< live bandwidth multiplier
    };

    sim::Simulation& sim_;
    const topo::Graph& graph_;
    double bandwidth_scale_;
    std::vector<std::unique_ptr<sim::FifoResource>> resources_;
    std::unordered_map<std::uint64_t, std::vector<int>> pair_channels_;
    std::vector<ChannelState> channel_state_;
    double net_bytes_ = 0.0;
    std::uint64_t net_transfers_ = 0;
    std::uint64_t dropped_transfers_ = 0;
    double dropped_bytes_ = 0.0;
    obs::Monitor* monitor_ = nullptr; ///< set while registered
    int monitor_token_ = 0;
    std::vector<std::size_t> monitor_cursor_; ///< per-channel interval
                                              ///< index already sampled
    double monitor_last_t_ = 0.0;
};

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_CHANNEL_H_
