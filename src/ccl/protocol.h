#ifndef CCUBE_CCL_PROTOCOL_H_
#define CCUBE_CCL_PROTOCOL_H_

/**
 * @file
 * Wire protocols for the mailbox fast path, mirroring NCCL's
 * LL / Simple split ("Demystifying NCCL"):
 *
 *  - kSimple: the fenced bulk path. Chunks move through the
 *    preallocated ring guarded by counting semaphores; every post and
 *    every wait pays the semaphore lock/post/fence round-trip (the
 *    per-chunk sync alpha), but payload bytes travel 1:1.
 *  - kLL: the low-latency flag-based path. Every 32-bit payload word
 *    is paired with an inline 32-bit flag word carrying the message
 *    sequence number, so the receiver spins on data arrival directly
 *    and no semaphore is touched on the data path. Latency drops to a
 *    couple of cache-line round-trips; effective bandwidth halves
 *    (half of every line is flags).
 *  - kAuto: defer the choice to the tuner (ccl/tuner.h), which picks
 *    (algorithm x protocol x chunking) per message-size bucket.
 *
 * The analytic-model / DES view of the same tradeoff lives in
 * ProtocolCosts: Simple is the identity (existing baselines are
 * calibrated against it), LL inflates serialized bytes by 2x and cuts
 * the per-message latency term to a quarter.
 */

#include <cstdlib>
#include <cstring>

namespace ccube {
namespace ccl {

/** Which wire protocol a collective (or a single mailbox op) uses. */
enum class Protocol {
    kSimple, ///< fenced bulk transfers through the semaphore ring
    kLL,     ///< inline flag-per-word spinning, no semaphores
    kAuto,   ///< let the tuner pick per (size, topology, algorithm)
};

inline const char*
protocolName(Protocol proto)
{
    switch (proto) {
    case Protocol::kSimple:
        return "simple";
    case Protocol::kLL:
        return "ll";
    case Protocol::kAuto:
        return "auto";
    }
    return "?";
}

/**
 * Protocol selected by $CCUBE_CCL_PROTO (ll | simple | auto).
 * Unset or unrecognized means kSimple — the fenced path is the
 * pre-protocol behaviour and every existing baseline assumes it.
 */
inline Protocol
protocolFromEnv()
{
    const char* env = std::getenv("CCUBE_CCL_PROTO");
    if (env == nullptr)
        return Protocol::kSimple;
    if (std::strcmp(env, "ll") == 0)
        return Protocol::kLL;
    if (std::strcmp(env, "auto") == 0)
        return Protocol::kAuto;
    return Protocol::kSimple;
}

/**
 * Model-side cost shape of a protocol, applied on top of a link's
 * AlphaBeta (model::) or a channel's latency/bandwidth (simnet::).
 * Simple is exactly {1, 1} so pre-protocol schedules, baselines and
 * tests are bit-for-bit unchanged.
 */
struct ProtocolCosts {
    /** Serialized bytes per payload byte (LL: flag word per word). */
    double payload_factor = 1.0;
    /** Scale on the per-message latency term alpha. */
    double alpha_factor = 1.0;
};

inline ProtocolCosts
protocolCosts(Protocol proto)
{
    switch (proto) {
    case Protocol::kLL:
        // Half of every line is flags => 2x serialized bytes. The
        // flag spin replaces the semaphore lock/post/fence round
        // trip, modelled as a 4x cut in the alpha term.
        return ProtocolCosts{2.0, 0.25};
    case Protocol::kSimple:
    case Protocol::kAuto: // resolved before costs are consulted
        break;
    }
    return ProtocolCosts{1.0, 1.0};
}

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_PROTOCOL_H_
