#ifndef CCUBE_CCL_ALLREDUCE_H_
#define CCUBE_CCL_ALLREDUCE_H_

/**
 * @file
 * Shared types for the functional AllReduce implementations.
 */

#include <functional>
#include <span>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace ccl {

/** One gradient buffer per rank; all must have equal length. */
using RankBuffers = std::vector<std::vector<float>>;

/**
 * Order in which fully reduced chunks became available at each rank.
 *
 * The tree algorithm's in-order property (paper Observation #3) —
 * chunks complete in index order at every rank — is what makes
 * gradient queuing possible; the ring algorithm violates it. Tests
 * assert both directions from this trace.
 */
class AllReduceTrace
{
  public:
    /** Live notification: chunk became available at rank. */
    using Observer = std::function<void(int rank, int chunk)>;

    /** Creates a trace for @p num_ranks ranks. */
    explicit AllReduceTrace(int num_ranks);

    /**
     * Installs a live observer invoked on every record() — the hook
     * gradient queuing attaches its enqueue to. Must be set before
     * the collective starts; invoked under the per-rank lock.
     */
    void setObserver(Observer observer);

    /** Records that @p chunk became available at @p rank (thread-safe
     *  across the helper threads of a single rank). */
    void record(int rank, int chunk);

    /** Completion order at @p rank. */
    const std::vector<int>& order(int rank) const;

    /** True when every rank saw chunks in ascending index order. */
    bool inOrder() const;

  private:
    struct PerRank {
        SpinLock lock;
        std::vector<int> order;
    };
    std::vector<PerRank> per_rank_;
    Observer observer_;
};

/**
 * Splits [0, total) into @p chunks half-open subranges of near-equal
 * size; chunk c covers [begin(c), end(c)).
 */
class ChunkSplit
{
  public:
    ChunkSplit(std::size_t total, int chunks);

    std::size_t begin(int chunk) const;
    std::size_t end(int chunk) const;
    int count() const { return chunks_; }

    /** Subspan of @p buffer covering chunk @p chunk. */
    std::span<float> slice(std::span<float> buffer, int chunk) const;
    std::span<const float>
    slice(std::span<const float> buffer, int chunk) const;

  private:
    std::size_t total_;
    int chunks_;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_ALLREDUCE_H_
