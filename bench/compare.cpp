/**
 * @file
 * bench_compare — the perf-regression gate.
 *
 * Diffs a current bench_ccl/v1 file against a checked-in baseline:
 *
 *   bench_compare --baseline=bench/baselines/BENCH_baseline.json \
 *                 --current=BENCH_ccl.json [--threshold=0.25]     \
 *                 [--warn-only] [--report-out=FILE] [--html-out=FILE]
 *
 * Records are keyed by (source, kind, name, mode, bytes); duplicate
 * keys keep the *minimum* ns_per_op on each side (best observed run,
 * the standard noise filter for latency benches). A record regresses
 * when current exceeds baseline by more than --threshold (relative).
 * Exit status is 1 when any record regressed, unless --warn-only.
 * Keys present on only one side are reported but never fail the gate
 * (benches come and go as figures are added).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "util/bench_json.h"
#include "util/flags.h"

namespace {

using ccube::util::BenchRecord;

using Key = std::tuple<std::string, std::string, std::string,
                       std::string, std::int64_t>;

std::string
keyLabel(const Key& key)
{
    std::ostringstream out;
    out << std::get<0>(key) << "/" << std::get<1>(key) << "/"
        << std::get<2>(key) << "/" << std::get<3>(key);
    if (std::get<4>(key) != 0)
        out << "/" << std::get<4>(key) << "B";
    return out.str();
}

/** Best (minimum ns_per_op) record per key. */
std::map<Key, double>
index(const std::vector<BenchRecord>& records)
{
    std::map<Key, double> best;
    for (const BenchRecord& record : records) {
        const Key key{record.source, record.kind, record.name,
                      record.mode, record.bytes};
        const auto it = best.find(key);
        if (it == best.end() || record.ns_per_op < it->second)
            best[key] = record.ns_per_op;
    }
    return best;
}

struct Row {
    std::string label;
    double baseline_ns = 0.0;
    double current_ns = 0.0;
    double delta = 0.0; ///< (current - baseline) / baseline
    bool regressed = false;
};

std::string
fmtNs(double ns)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1f", ns);
    return buffer;
}

std::string
fmtDelta(double delta)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%+.1f%%", delta * 100.0);
    return buffer;
}

void
writeTextReport(std::ostream& out, const std::vector<Row>& rows,
                const std::vector<std::string>& baseline_only,
                const std::vector<std::string>& current_only,
                double threshold, int regressions)
{
    out << "=== bench_compare (threshold "
        << fmtDelta(threshold).substr(1) << ") ===\n";
    for (const Row& row : rows) {
        out << (row.regressed ? "REGRESSION " : "ok         ")
            << row.label << "  " << fmtNs(row.baseline_ns) << " -> "
            << fmtNs(row.current_ns) << " ns/op  ("
            << fmtDelta(row.delta) << ")\n";
    }
    for (const std::string& label : current_only)
        out << "new        " << label << "  (no baseline)\n";
    for (const std::string& label : baseline_only)
        out << "missing    " << label << "  (in baseline only)\n";
    out << regressions << " regression(s) across " << rows.size()
        << " compared record(s)\n";
}

void
writeHtmlReport(std::ostream& out, const std::vector<Row>& rows,
                double threshold, int regressions)
{
    out << "<!doctype html><html><head><meta charset=\"utf-8\">"
        << "<title>bench_compare</title><style>"
        << "body{font-family:monospace}"
        << "table{border-collapse:collapse}"
        << "td,th{border:1px solid #999;padding:4px 8px;"
        << "text-align:right}"
        << "td:first-child{text-align:left}"
        << ".bad{background:#fdd}.ok{background:#dfd}"
        << "</style></head><body>"
        << "<h1>bench_compare</h1><p>threshold "
        << threshold * 100.0 << "% &mdash; " << regressions
        << " regression(s) / " << rows.size() << " record(s)</p>"
        << "<table><tr><th>benchmark</th><th>baseline ns/op</th>"
        << "<th>current ns/op</th><th>delta</th></tr>";
    for (const Row& row : rows) {
        out << "<tr class=\"" << (row.regressed ? "bad" : "ok")
            << "\"><td>" << row.label << "</td><td>"
            << fmtNs(row.baseline_ns) << "</td><td>"
            << fmtNs(row.current_ns) << "</td><td>"
            << fmtDelta(row.delta) << "</td></tr>";
    }
    out << "</table></body></html>\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    const std::string baseline_path = flags.get("baseline");
    const std::string current_path = flags.get("current");
    const double threshold = flags.getDouble("threshold", 0.25);
    const bool warn_only = flags.has("warn-only");

    if (baseline_path.empty() || current_path.empty()) {
        std::cerr << "usage: bench_compare --baseline=FILE "
                     "--current=FILE [--threshold=0.25] [--warn-only] "
                     "[--report-out=FILE] [--html-out=FILE]\n";
        return 2;
    }

    const auto baseline =
        index(ccube::util::readBenchRecords(baseline_path));
    const auto current =
        index(ccube::util::readBenchRecords(current_path));
    if (baseline.empty()) {
        std::cerr << "bench_compare: empty/unreadable baseline "
                  << baseline_path << "\n";
        return 2;
    }
    if (current.empty()) {
        std::cerr << "bench_compare: empty/unreadable current "
                  << current_path << "\n";
        return 2;
    }

    std::vector<Row> rows;
    std::vector<std::string> baseline_only;
    std::vector<std::string> current_only;
    int regressions = 0;
    for (const auto& [key, baseline_ns] : baseline) {
        const auto it = current.find(key);
        if (it == current.end()) {
            baseline_only.push_back(keyLabel(key));
            continue;
        }
        Row row;
        row.label = keyLabel(key);
        row.baseline_ns = baseline_ns;
        row.current_ns = it->second;
        row.delta = baseline_ns > 0.0
                        ? (it->second - baseline_ns) / baseline_ns
                        : 0.0;
        row.regressed = row.delta > threshold;
        if (row.regressed)
            ++regressions;
        rows.push_back(std::move(row));
    }
    for (const auto& [key, ns] : current) {
        if (!baseline.count(key))
            current_only.push_back(keyLabel(key));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) {
                  return a.delta > b.delta; // worst first
              });

    writeTextReport(std::cout, rows, baseline_only, current_only,
                    threshold, regressions);

    const std::string report_path = flags.get("report-out");
    if (!report_path.empty()) {
        std::ofstream out(report_path);
        if (out)
            writeTextReport(out, rows, baseline_only, current_only,
                            threshold, regressions);
        else
            std::cerr << "bench_compare: cannot write " << report_path
                      << "\n";
    }
    const std::string html_path = flags.get("html-out");
    if (!html_path.empty()) {
        std::ofstream out(html_path);
        if (out)
            writeHtmlReport(out, rows, threshold, regressions);
        else
            std::cerr << "bench_compare: cannot write " << html_path
                      << "\n";
    }

    if (regressions > 0 && !warn_only)
        return 1;
    return 0;
}
