#include "obs/trace.h"

#include <cstdlib>
#include <iomanip>
#include <ostream>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace ccube {
namespace obs {

namespace {

/** Per-thread redirect target installed by ScopedTraceRedirect. */
thread_local TraceRecorder* t_redirect = nullptr;

/** Escapes a string for embedding in a JSON string literal. */
void
writeJsonString(std::ostream& out, std::string_view s)
{
    out << '"';
    for (char c : s) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\t': out << "\\t"; break;
          case '\r': out << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c)
                    << std::dec << std::setfill(' ');
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

void
writeEventCommon(std::ostream& out, std::string_view name,
                 std::string_view cat, char phase, int pid, int tid,
                 double ts_us)
{
    out << "{\"name\":";
    writeJsonString(out, name);
    out << ",\"cat\":";
    writeJsonString(out, cat);
    out << ",\"ph\":\"" << phase << "\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"ts\":" << ts_us;
}

/** CCUBE_TRACE_CAPACITY, or the compiled-in default when unset. */
std::size_t
envCapacity()
{
    const char* env = std::getenv("CCUBE_TRACE_CAPACITY");
    if (!env || !*env)
        return TraceRecorder::kDefaultCapacity;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end == env || value == 0)
        return TraceRecorder::kDefaultCapacity;
    return static_cast<std::size_t>(value);
}

} // namespace

TraceRecorder::TraceRecorder() : capacity_(envCapacity()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder&
TraceRecorder::global()
{
    return t_redirect ? *t_redirect : process();
}

TraceRecorder&
TraceRecorder::process()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::absorb(const TraceRecorder& other)
{
    if (&other == this)
        return;
    std::scoped_lock guard(mutex_, other.mutex_);
    const double shift = sim_offset_us_;
    const std::vector<TraceEvent> incoming_ring =
        other.flight_ ? other.flight_->snapshot()
                      : std::vector<TraceEvent>{};
    const std::vector<TraceEvent>& incoming =
        other.flight_ ? incoming_ring : other.events_;
    for (const TraceEvent& source : incoming) {
        TraceEvent event = source;
        event.ts_us += shift;
        if (flight_) {
            flight_->record(std::move(event));
        } else if (events_.size() < capacity_) {
            events_.push_back(std::move(event));
        } else {
            ++dropped_;
        }
    }
    dropped_ +=
        other.dropped_ + (other.flight_ ? other.flight_->dropped() : 0);
    for (const auto& [pid, name] : other.process_names_)
        process_names_[pid] = name;
    for (const auto& [key, name] : other.thread_names_)
        thread_names_[key] = name;
    sim_offset_us_ += other.sim_offset_us_;
}

ScopedTraceRedirect::ScopedTraceRedirect(TraceRecorder* recorder)
{
    if (!recorder)
        return;
    previous_ = t_redirect;
    t_redirect = recorder;
    active_ = true;
}

ScopedTraceRedirect::~ScopedTraceRedirect()
{
    if (active_)
        t_redirect = previous_;
}

void
TraceRecorder::enable()
{
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_release);
}

void
TraceRecorder::disable()
{
    enabled_.store(false, std::memory_order_release);
}

double
TraceRecorder::wallNowUs() const
{
    if (!enabled())
        return 0.0;
    const auto delta = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration<double, std::micro>(delta).count();
}

void
TraceRecorder::completeEvent(
    std::string_view name, std::string_view cat, int pid, int tid,
    double ts_us, double dur_us,
    std::initializer_list<std::pair<std::string_view, double>> args)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name.assign(name);
    event.cat.assign(cat);
    event.phase = 'X';
    event.pid = pid;
    event.tid = tid;
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.args.reserve(args.size());
    for (const auto& [key, value] : args)
        event.args.emplace_back(std::string(key), value);
    push(std::move(event));
}

void
TraceRecorder::record(TraceEvent event)
{
    if (!enabled())
        return;
    push(std::move(event));
}

void
TraceRecorder::push(TraceEvent&& event)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (flight_) {
        flight_->record(std::move(event));
        return;
    }
    if (events_.size() >= capacity_) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void
TraceRecorder::instantEvent(std::string_view name, std::string_view cat,
                            int pid, int tid, double ts_us)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name.assign(name);
    event.cat.assign(cat);
    event.phase = 'i';
    event.pid = pid;
    event.tid = tid;
    event.ts_us = ts_us;
    push(std::move(event));
}

void
TraceRecorder::setProcessName(int pid, std::string_view name)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    process_names_[pid].assign(name);
}

void
TraceRecorder::setThreadName(int pid, int tid, std::string_view name)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    thread_names_[{pid, tid}].assign(name);
}

double
TraceRecorder::simOffsetUs() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return sim_offset_us_;
}

void
TraceRecorder::advanceSimEpoch(double run_end_us)
{
    if (run_end_us < 0.0)
        return;
    std::lock_guard<std::mutex> guard(mutex_);
    // Small gap so consecutive runs are visually distinct.
    sim_offset_us_ += run_end_us * 1.05 + 1.0;
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return flight_ ? flight_->size() : events_.size();
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return flight_ ? flight_->snapshot() : events_;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    events_.clear();
    if (flight_)
        flight_->clear();
    dropped_ = 0;
    process_names_.clear();
    thread_names_.clear();
    sim_offset_us_ = 0.0;
}

void
TraceRecorder::setCapacity(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    std::lock_guard<std::mutex> guard(mutex_);
    if (flight_) {
        // Carry ring contents back into the capped vector.
        std::vector<TraceEvent> kept = flight_->snapshot();
        dropped_ += flight_->dropped();
        flight_.reset();
        events_ = std::move(kept);
    }
    capacity_ = capacity;
    while (events_.size() > capacity_) {
        events_.pop_back();
        ++dropped_;
    }
}

std::size_t
TraceRecorder::capacity() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return flight_ ? flight_->capacity() : capacity_;
}

void
TraceRecorder::setFlightCapacity(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    std::lock_guard<std::mutex> guard(mutex_);
    std::uint64_t prior_dropped = 0;
    std::vector<TraceEvent> pending = std::move(events_);
    events_.clear();
    if (flight_) {
        pending = flight_->snapshot();
        prior_dropped = flight_->dropped();
    }
    flight_ = std::make_unique<FlightRecorder>(capacity);
    dropped_ += prior_dropped;
    for (TraceEvent& event : pending)
        flight_->record(std::move(event));
}

bool
TraceRecorder::flightMode() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return flight_ != nullptr;
}

std::uint64_t
TraceRecorder::droppedEvents() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return dropped_ + (flight_ ? flight_->dropped() : 0);
}

void
TraceRecorder::exportTo(MetricRegistry& registry) const
{
    registry.addCounter("trace.events",
                        static_cast<double>(eventCount()));
    registry.addCounter("trace.dropped_events",
                        static_cast<double>(droppedEvents()));
}

void
TraceRecorder::writeJson(std::ostream& out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    const std::vector<TraceEvent> ring =
        flight_ ? flight_->snapshot() : std::vector<TraceEvent>{};
    const std::vector<TraceEvent>& events = flight_ ? ring : events_;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",";
        first = false;
        out << "\n";
    };
    for (const auto& [pid, name] : process_names_) {
        sep();
        out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
            << ",\"tid\":0,\"args\":{\"name\":";
        writeJsonString(out, name);
        out << "}}";
    }
    for (const auto& [key, name] : thread_names_) {
        sep();
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
            << key.first << ",\"tid\":" << key.second
            << ",\"args\":{\"name\":";
        writeJsonString(out, name);
        out << "}}";
    }
    for (const TraceEvent& event : events) {
        sep();
        writeEventCommon(out, event.name, event.cat, event.phase,
                         event.pid, event.tid, event.ts_us);
        if (event.phase == 'X')
            out << ",\"dur\":" << event.dur_us;
        if (event.phase == 'i')
            out << ",\"s\":\"t\"";
        if (!event.args.empty()) {
            out << ",\"args\":{";
            bool first_arg = true;
            for (const auto& [key, value] : event.args) {
                if (!first_arg)
                    out << ",";
                first_arg = false;
                writeJsonString(out, key);
                out << ":" << value;
            }
            out << "}";
        }
        out << "}";
    }
    out << "\n]}\n";
}

ScopedSpan::ScopedSpan(TraceRecorder& recorder, std::string_view name,
                       std::string_view cat, int pid, int tid)
{
    if (!recorder.enabled())
        return;
    recorder_ = &recorder;
    name_.assign(name);
    cat_.assign(cat);
    pid_ = pid;
    tid_ = tid;
    start_us_ = recorder.wallNowUs();
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view cat,
                       int pid, int tid)
    : ScopedSpan(TraceRecorder::global(), name, cat, pid, tid)
{
}

ScopedSpan::~ScopedSpan()
{
    if (!recorder_)
        return;
    const double end_us = recorder_->wallNowUs();
    TraceEvent event;
    event.name = std::move(name_);
    event.cat = std::move(cat_);
    event.phase = 'X';
    event.pid = pid_;
    event.tid = tid_;
    event.ts_us = start_us_;
    event.dur_us = end_us > start_us_ ? end_us - start_us_ : 0.0;
    event.args = std::move(args_);
    recorder_->record(std::move(event));
}

void
ScopedSpan::arg(std::string_view key, double value)
{
    if (!recorder_)
        return;
    args_.emplace_back(std::string(key), value);
}

} // namespace obs
} // namespace ccube
