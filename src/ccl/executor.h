#ifndef CCUBE_CCL_EXECUTOR_H_
#define CCUBE_CCL_EXECUTOR_H_

/**
 * @file
 * Persistent rank executor: the host-side analog of the paper's
 * persistent kernels.
 *
 * The paper launches its collective as long-lived CUDA kernels exactly
 * once and then drives every AllReduce through device-side semaphores,
 * amortizing the per-invocation launch cost that dominates small
 * messages (Fig. 3). The functional runtime used to do the opposite:
 * every collective constructed and joined fresh std::threads per rank
 * (plus more per forwarding rule). This executor owns one long-lived
 * parked thread per rank plus a per-rank pool of helper threads
 * (forwarding kernels, the overlapped reducer, the second tree of a
 * double tree); collectives enqueue closures into the already-running
 * threads instead of spawning.
 *
 * A third strategy lives in ccl/state_machine.h: instead of a thread
 * per rank, each rank body is compiled into a resumable RankTask and
 * multiplexed onto a small shared worker pool — the mode that scales
 * the functional runtime to P=512–1024. Selecting it here
 * (Mode::kStateMachine) makes the collective algorithms build task
 * sets; legacy run()/submit() callers still get persistent threads.
 *
 * Along with state_machine.cpp, this is one of the only two
 * translation units in src/ccl/ allowed to construct std::thread.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ccube {
namespace ccl {

/**
 * One parked worker thread per rank plus an elastic-but-persistent
 * helper pool per rank. Thread-safe: run() is called from one external
 * thread at a time; submit() may be called from any executor-owned
 * thread while a run() is in flight.
 */
class RankExecutor
{
  public:
    /** Execution strategy; kSpawnPerCall keeps the legacy behaviour
     *  for A/B benchmarking. */
    enum class Mode {
        kPersistent,   ///< parked threads, reused across collectives
        kSpawnPerCall, ///< legacy: construct/join threads per call
        kStateMachine, ///< resumable rank tasks on a shared pool
    };

    /**
     * Default mode: kPersistent, unless the environment variable
     * CCUBE_CCL_EXECUTOR is set to "spawn" or to
     * "statemachine"/"sm" (read once per process).
     */
    static Mode defaultMode();

    /**
     * Completion tracker for a batch of helper tasks submitted by one
     * rank body (the analog of joining the forwarder threads).
     */
    class Group
    {
      public:
        Group() = default;
        Group(const Group&) = delete;
        Group& operator=(const Group&) = delete;

        /** Waits for completion of the whole batch. */
        ~Group();

        /**
         * Blocks until every task submitted through this group has
         * finished; rethrows the first exception any of them threw.
         */
        void wait();

      private:
        friend class RankExecutor;

        std::mutex mutex_;
        std::condition_variable cv_;
        int pending_ = 0;
        std::exception_ptr error_;
    };

    /**
     * Creates the executor for @p num_ranks ranks. In persistent mode
     * the rank threads start parked immediately; helper threads are
     * created on first demand and then reused forever.
     */
    explicit RankExecutor(int num_ranks, Mode mode = defaultMode());

    /** Stops and joins every owned thread. */
    ~RankExecutor();

    RankExecutor(const RankExecutor&) = delete;
    RankExecutor& operator=(const RankExecutor&) = delete;

    /** Number of ranks. */
    int numRanks() const { return num_ranks_; }

    /** Execution strategy in use. */
    Mode mode() const { return mode_; }

    /**
     * Runs @p body concurrently on every rank's persistent thread and
     * waits for all of them. Rethrows the first exception thrown by
     * any rank body (after every rank body has finished); the executor
     * stays usable afterwards.
     */
    void run(const std::function<void(int rank)>& body);

    /**
     * Enqueues @p fn onto a pooled helper thread attributed to
     * @p rank, tracked by @p group. @p role labels the thread's trace
     * track ("forward", "reduce", "tree1", ...). Safe to call from
     * inside rank bodies and from other helper tasks.
     */
    void submit(Group& group, int rank, const char* role,
                std::function<void()> fn);

    // ---- telemetry (used by tests and exported via obs) ----

    /** Live threads owned: rank mains + helpers ever created. */
    int threadCount() const;

    /** Helper threads ever created (persistent once created). */
    int helperCount() const;

    /** Tasks executed across all owned threads (bodies + helpers). */
    std::int64_t tasksExecuted() const;

  private:
    struct Worker;
    struct RunState;

    /** Hands @p task to @p worker (its task slot must be free). */
    void dispatch(Worker& worker, std::function<void()> task);

    /** Pops a parked helper for @p rank or creates a new one. */
    Worker& acquireHelper(int rank);

    /** Returns @p worker to its rank's free list. */
    void releaseHelper(Worker& worker);

    void workerLoop(Worker& worker);

    const int num_ranks_;
    const Mode mode_;

    /** Rank main workers, index = rank (persistent mode only). */
    std::vector<std::unique_ptr<Worker>> mains_;

    /** Helper pool, all ranks (guarded by pool_mutex_). */
    std::mutex pool_mutex_;
    std::vector<std::unique_ptr<Worker>> helpers_;
    std::vector<std::vector<Worker*>> free_helpers_; ///< per rank
    std::vector<int> busy_helpers_;                  ///< per rank

    std::atomic<int> helper_count_{0};
    std::atomic<std::int64_t> tasks_executed_{0};
};

/**
 * Deadline watchdog for collectives: one lazy long-lived timer thread
 * that, once armed, invokes a caller-supplied expiry callback if the
 * deadline passes before disarm(). The Communicator arms it around
 * every run() with a callback that trips the abort epoch — the
 * host-side analog of NCCL's async error watchdog thread.
 *
 * arm()/disarm() pair per collective; disarm() blocks until any
 * in-flight expiry callback has returned, so the caller can safely
 * inspect fired() and tear down afterwards. Lives in the executor
 * header because executor.cpp is the only translation unit in
 * src/ccl/ allowed to construct std::thread.
 */
class CommWatchdog
{
  public:
    CommWatchdog();

    /** Stops and joins the timer thread (disarms first). */
    ~CommWatchdog();

    CommWatchdog(const CommWatchdog&) = delete;
    CommWatchdog& operator=(const CommWatchdog&) = delete;

    /**
     * Starts a watch: if @p deadline elapses before disarm(),
     * @p on_expire runs once on the watchdog thread. Must not be
     * called while already armed.
     */
    void arm(std::chrono::nanoseconds deadline,
             std::function<void()> on_expire);

    /**
     * Cancels the watch. Blocks until an expiry callback that already
     * started has returned, so after disarm() the callback is either
     * fully done (fired() == true) or will never run.
     */
    void disarm();

    /** Whether the most recent watch expired (callback ran). */
    bool fired() const;

  private:
    void loop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::thread thread_;
    std::uint64_t generation_ = 0; ///< bumped by arm/disarm
    bool armed_ = false;
    bool stop_ = false;
    bool callback_running_ = false;
    bool fired_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    std::function<void()> on_expire_;
};

} // namespace ccl
} // namespace ccube

#endif // CCUBE_CCL_EXECUTOR_H_
