file(REMOVE_RECURSE
  "CMakeFiles/ccl_mailbox_test.dir/ccl_mailbox_test.cpp.o"
  "CMakeFiles/ccl_mailbox_test.dir/ccl_mailbox_test.cpp.o.d"
  "ccl_mailbox_test"
  "ccl_mailbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccl_mailbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
