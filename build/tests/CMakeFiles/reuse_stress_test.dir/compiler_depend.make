# Empty compiler generated dependencies file for reuse_stress_test.
# This may be replaced when dependencies are built.
