#ifndef CCUBE_CORE_DUAL_GRADIENT_QUEUE_H_
#define CCUBE_CORE_DUAL_GRADIENT_QUEUE_H_

/**
 * @file
 * Gradient queuing for the double tree.
 *
 * The double-tree AllReduce splits the buffer in half; each tree
 * delivers *its own* chunks in order, but arrivals interleave across
 * trees, so a single enqueue semaphore cannot gate layers. The dual
 * queue keeps one enqueue semaphore per tree and a per-tree
 * layer-chunk table: a layer dequeues when *both* trees have
 * delivered its chunks (a layer whose bytes live entirely in one
 * half is gated by that tree alone).
 */

#include <atomic>
#include <cstdint>
#include <vector>

#include "ccl/sync_primitives.h"

namespace ccube {
namespace core {

/**
 * Two-tree gradient queue for one rank.
 */
class DualGradientQueue
{
  public:
    /**
     * @param table_tree0  per layer, cumulative count of tree-0
     *        chunks up to and including that layer
     * @param table_tree1  same for tree 1 (tree-local chunk ids)
     */
    DualGradientQueue(std::vector<std::int64_t> table_tree0,
                      std::vector<std::int64_t> table_tree1);

    DualGradientQueue(const DualGradientQueue&) = delete;
    DualGradientQueue& operator=(const DualGradientQueue&) = delete;

    /** Number of layers. */
    int numLayers() const
    {
        return static_cast<int>(tables_[0].size());
    }

    /** Broadcast side of tree @p tree delivered one chunk in order. */
    void enqueueChunk(int tree);

    /** Blocks until layer @p layer is complete in both trees, then
     *  advances the LIC. Layers must dequeue in order. */
    void dequeueLayer(int layer);

    /** Non-blocking variant; true when the layer was ready. */
    bool tryDequeueLayer(int layer);

    /** Layer Index Counter. */
    int layerIndexCounter() const
    {
        return lic_.load(std::memory_order_acquire);
    }

    /** Chunks enqueued so far by tree @p tree. */
    std::int64_t enqueued(int tree) const;

    /** Resets for the next iteration. */
    void resetIteration();

  private:
    std::int64_t bound(int tree, int layer) const;

    ccl::CheckableCounter semaphores_[2];
    std::atomic<int> lic_{0};
    std::vector<std::int64_t> tables_[2];
};

} // namespace core
} // namespace ccube

#endif // CCUBE_CORE_DUAL_GRADIENT_QUEUE_H_
