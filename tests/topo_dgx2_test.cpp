/**
 * @file
 * DGX-2 (NVSwitch) topology tests — the paper's future-work platform:
 * structure, plane-private double trees, conflict freedom with spare
 * planes, and timed behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "topo/detour_router.h"
#include "topo/dgx2.h"
#include "util/units.h"

namespace ccube {
namespace topo {
namespace {

TEST(Dgx2, StructureMatchesPlatform)
{
    const Dgx2Params params;
    const Graph g = makeDgx2(params);
    // 16 GPUs + 6 switch planes.
    EXPECT_EQ(g.nodeCount(), 22);
    // Every GPU: one link per plane.
    for (NodeId gpu = 0; gpu < 16; ++gpu) {
        EXPECT_EQ(static_cast<int>(g.outChannels(gpu).size()), 6);
        EXPECT_FALSE(g.isSwitch(gpu));
    }
    for (int p = 0; p < 6; ++p) {
        const NodeId sw = dgx2SwitchNode(params, p);
        EXPECT_TRUE(g.isSwitch(sw));
        EXPECT_EQ(static_cast<int>(g.outChannels(sw).size()), 16);
    }
}

TEST(Dgx2, NoDirectGpuPairs)
{
    const Graph g = makeDgx2();
    for (NodeId a = 0; a < 16; ++a) {
        for (NodeId b = 0; b < 16; ++b) {
            if (a != b) {
                EXPECT_FALSE(g.hasChannel(a, b));
            }
        }
    }
    // But every pair is two hops through a plane.
    EXPECT_EQ(g.shortestPath(0, 15).size(), 3u);
}

TEST(Dgx2, DoubleTreeIsConflictFreeWithoutDetourKernels)
{
    const Dgx2Params params;
    const Graph g = makeDgx2(params);
    const DoubleTreeEmbedding dt = makeDgx2DoubleTree(g, params);
    EXPECT_TRUE(dt.tree0.tree.valid());
    EXPECT_TRUE(dt.tree1.tree.valid());
    EXPECT_TRUE(isConflictFree(g, dt));
    // Switch transits are not GPU forwarding kernels: no rules.
    // (extractForwardingRules reports 3-hop routes; the transits are
    // switches, which the GPU tax model must not count — verified by
    // checking each transit is a switch node.)
    for (const ForwardingRule& rule : extractForwardingRules(dt))
        EXPECT_TRUE(g.isSwitch(rule.transit));
}

TEST(Dgx2, TreesUseDisjointPlaneSets)
{
    // Tree 0 edge-colors across planes {0,1,2}, tree 1 across
    // {3,4,5}: no plane carries both trees.
    const Dgx2Params params;
    const Graph g = makeDgx2(params);
    const DoubleTreeEmbedding dt = makeDgx2DoubleTree(g, params);
    for (const Route& route : dt.tree0.routes) {
        EXPECT_GE(route.hops[1], dgx2SwitchNode(params, 0));
        EXPECT_LE(route.hops[1], dgx2SwitchNode(params, 2));
    }
    for (const Route& route : dt.tree1.routes) {
        EXPECT_GE(route.hops[1], dgx2SwitchNode(params, 3));
        EXPECT_LE(route.hops[1], dgx2SwitchNode(params, 5));
    }
}

TEST(Dgx2, EdgeColoringKeepsGpuPortsExclusive)
{
    // No GPU uses the same plane for two logical edges of one tree —
    // the property that makes the embedding conflict-free.
    const Dgx2Params params;
    const Graph g = makeDgx2(params);
    const DoubleTreeEmbedding dt = makeDgx2DoubleTree(g, params);
    for (const TreeEmbedding* emb : {&dt.tree0, &dt.tree1}) {
        std::set<std::pair<NodeId, NodeId>> gpu_plane;
        for (const Route& route : emb->routes) {
            // Endpoint ports of this edge: (parent, plane) and
            // (child, plane).
            EXPECT_TRUE(gpu_plane
                            .insert({route.hops[0], route.hops[1]})
                            .second);
            EXPECT_TRUE(gpu_plane
                            .insert({route.hops[2], route.hops[1]})
                            .second);
        }
    }
}

TEST(Dgx2, OverlappedBeatsTwoPhase)
{
    const Dgx2Params params;
    const Graph g = makeDgx2(params);
    const DoubleTreeEmbedding dt = makeDgx2DoubleTree(g, params);
    const double bytes = util::mib(64);

    sim::Simulation sim_a;
    simnet::Network net_a(sim_a, g);
    const double base =
        simnet::runDoubleTreeSchedule(sim_a, net_a, dt, bytes,
                                      simnet::PhaseMode::kTwoPhase, 32)
            .completion_time;
    sim::Simulation sim_b;
    simnet::Network net_b(sim_b, g);
    const double over =
        simnet::runDoubleTreeSchedule(sim_b, net_b, dt, bytes,
                                      simnet::PhaseMode::kOverlapped,
                                      32)
            .completion_time;
    // Same ≥1.6x communication win as on the DGX-1.
    EXPECT_GT(base / over, 1.6);
}

TEST(Dgx2, CutThroughKeepsSwitchHopsCheap)
{
    // One logical edge = 2 physical hops; both are GPU ports, so the
    // edge costs exactly two port holds (entry + exit) — the switch
    // itself adds only its latency, folded into each hop's α here.
    const Dgx2Params params;
    const Graph g = makeDgx2(params);
    sim::Simulation sim;
    simnet::Network net(sim, g);
    simnet::TransferEngine engine(net);
    double done_at = -1.0;
    const double bytes = 1e6;
    engine.sendAlongRoute(
        topo::Route{{0, dgx2SwitchNode(params, 0), 1}}, bytes,
        [&]() { done_at = sim.now(); });
    sim.run();
    const double hold =
        params.nvlink_latency + params.switch_latency + bytes / 25e9;
    EXPECT_NEAR(done_at, 2 * hold, 1e-12);
}

} // namespace
} // namespace topo
} // namespace ccube
