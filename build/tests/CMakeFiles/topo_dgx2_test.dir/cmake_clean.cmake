file(REMOVE_RECURSE
  "CMakeFiles/topo_dgx2_test.dir/topo_dgx2_test.cpp.o"
  "CMakeFiles/topo_dgx2_test.dir/topo_dgx2_test.cpp.o.d"
  "topo_dgx2_test"
  "topo_dgx2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topo_dgx2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
