/**
 * @file
 * Ablation: detour routes vs host-routed PCIe (§IV-A).
 *
 * The logical edge GPU2→GPU4 has no direct NVLink. The paper's detour
 * forwards through GPU0 over NVLink; the alternative the detour
 * exists to avoid routes through the host over PCIe. This harness
 * runs the same overlapped tree with both routes.
 */

#include <iostream>
#include <vector>

#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/tree_schedule.h"
#include "sweep/sweep.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    using namespace ccube;

    std::cout << "=== Ablation: detour (NVLink via GPU0) vs "
                 "host-routed PCIe for the 2-4 tree edge ===\n\n";

    topo::Dgx1Params params;
    params.with_host = true;
    const topo::Graph graph = topo::makeDgx1(params);
    const topo::DoubleTreeEmbedding dt = topo::makeDgx1DoubleTree(graph);

    // Variant: replace tree0's detour route with 2 → host → 4.
    topo::TreeEmbedding pcie_tree = dt.tree0;
    for (topo::Route& route : pcie_tree.routes) {
        if (route.isDetour())
            route.hops = {route.hops.front(), topo::kDgx1Host,
                          route.hops.back()};
    }

    util::Table table(
        {"size", "detour_ms", "pcie_ms", "detour_advantage_%"});
    const std::vector<double> sizes_mb{8.0, 32.0, 128.0};
    // One task per message size, each filling a pre-assigned row.
    std::vector<std::vector<std::string>> rows(sizes_mb.size());
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), sizes_mb.size(),
        [&](std::size_t i) {
            const double bytes = util::mib(sizes_mb[i]);
            const int chunks = 32;

            sim::Simulation sim_a;
            simnet::Network net_a(sim_a, graph);
            const double detour =
                simnet::runTreeSchedule(sim_a, net_a, dt.tree0, bytes,
                                        simnet::PhaseMode::kOverlapped,
                                        chunks)
                    .completion_time;

            sim::Simulation sim_b;
            simnet::Network net_b(sim_b, graph);
            const double pcie =
                simnet::runTreeSchedule(sim_b, net_b, pcie_tree, bytes,
                                        simnet::PhaseMode::kOverlapped,
                                        chunks)
                    .completion_time;

            rows[i] = {util::formatBytes(bytes),
                       util::formatDouble(detour * 1e3, 3),
                       util::formatDouble(pcie * 1e3, 3),
                       util::formatDouble((pcie / detour - 1.0) * 100,
                                          1)};
        });
    for (std::vector<std::string>& row : rows)
        table.addRow(std::move(row));
    table.print(std::cout);
    std::cout << "\nThe PCIe route throttles the whole pipeline to "
                 "host-link bandwidth; the GPU detour keeps the tree "
                 "at NVLink speed at the cost of one extra hop.\n";
    return 0;
}
