/**
 * @file
 * Extension experiment (the paper's §VI future work): C-Cube on an
 * NVSwitch machine (DGX-2, 16 GPUs, 6 switch planes).
 *
 * On the hybrid mesh-cube, the overlapped double tree needed detours
 * and double-link placement; on the DGX-2 each tree simply claims a
 * private switch plane — no detours, no conflicts, four planes to
 * spare. The ring stripes one ring per plane (all planes identical,
 * so one plane's ring carrying N/6 is simulated and holds for all by
 * symmetry).
 */

#include <iostream>

#include "obs/session.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/ring_schedule.h"
#include "topo/detour_router.h"
#include "topo/dgx2.h"
#include "topo/ring_embedding.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

int
main(int argc, char** argv)
{
    using namespace ccube;

    const util::Flags flags(argc, argv);
    obs::ObsSession obs_session(flags);

    std::cout << "=== Extension: C-Cube on the DGX-2 (NVSwitch, "
                 "16 GPUs) ===\n\n";

    const topo::Dgx2Params params;
    const topo::Graph dgx2 = topo::makeDgx2(params);
    const auto dt = topo::makeDgx2DoubleTree(dgx2, params);

    int gpu_forwarding_kernels = 0;
    for (const topo::ForwardingRule& rule :
         topo::extractForwardingRules(dt)) {
        if (!dgx2.isSwitch(rule.transit))
            ++gpu_forwarding_kernels;
    }
    std::cout << "GPU detour forwarding kernels needed: "
              << gpu_forwarding_kernels
              << " (the switch planes are the detour)\n";
    std::cout << "Overlap-conflict check: "
              << (topo::isConflictFree(dgx2, dt) ? "conflict-free"
                                                 : "CONFLICTS")
              << "\n\n";

    util::Table table({"size", "B_ms", "C1_ms", "R6_ms",
                       "C1_over_B_%", "C1_turnaround_ms"});
    for (double mb : {16.0, 64.0, 256.0}) {
        const double bytes = util::mib(mb);
        const int chunks = 32;

        sim::Simulation sim_b;
        simnet::Network net_b(sim_b, dgx2);
        const auto base = simnet::runDoubleTreeSchedule(
            sim_b, net_b, dt, bytes, simnet::PhaseMode::kTwoPhase,
            chunks);

        sim::Simulation sim_c;
        simnet::Network net_c(sim_c, dgx2);
        const auto over = simnet::runDoubleTreeSchedule(
            sim_c, net_c, dt, bytes, simnet::PhaseMode::kOverlapped,
            chunks);

        // Ring striped across all 6 planes: by symmetry each plane's
        // ring carries bytes/6 and they finish together.
        sim::Simulation sim_r;
        simnet::Network net_r(sim_r, dgx2);
        const auto ring = simnet::runRingSchedule(
            sim_r, net_r, topo::makeSequentialRing(params.num_gpus),
            bytes / params.num_switch_planes);

        table.addRow(
            {util::formatBytes(bytes),
             util::formatDouble(base.completion_time * 1e3, 3),
             util::formatDouble(over.completion_time * 1e3, 3),
             util::formatDouble(ring.completion_time * 1e3, 3),
             util::formatDouble(
                 (base.completion_time / over.completion_time - 1.0) *
                     100,
                 1),
             util::formatDouble(over.turnaroundTime() * 1e3, 3)});
    }
    table.print(std::cout);
    std::cout
        << "\nThe overlapped tree keeps a ~66% win over the "
           "baseline tree on NVSwitch, with zero detour cost. The "
           "6-plane-striped ring remains bandwidth-king at this "
           "scale; edge-coloring each tree across three planes uses "
           "all six NVSwitch planes — the NVSwitch analog of the "
           "paper's double-link trick.\n";
    obs_session.finish();
    return 0;
}
