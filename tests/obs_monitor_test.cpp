/**
 * @file
 * Tests for the obs::monitor live-telemetry layer and the obs::diff
 * root-cause / differential engines: LogHistogram bucketing and
 * merge determinism, DES-heartbeat snapshots, SLO accounting, absorb
 * renumbering, golden-trace root-cause blame, and critical-path diff
 * attribution — plus an end-to-end DGX-1 fault scenario.
 */

#include <cmath>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analyze.h"
#include "obs/diff.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/trace.h"
#include "sim/simulation.h"
#include "simnet/channel.h"
#include "simnet/fault_plan.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/units.h"

namespace ccube {
namespace {

obs::TraceEvent
makeEvent(std::string name, std::string cat, char phase, int pid,
          int tid, double ts_us, double dur_us,
          std::vector<std::pair<std::string, double>> args = {})
{
    obs::TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = phase;
    event.pid = pid;
    event.tid = tid;
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.args = std::move(args);
    return event;
}

obs::TraceEvent
channelSpan(std::string name, int channel, double ts_us, double dur_us,
            double bytes)
{
    return makeEvent(std::move(name), "simnet.channel", 'X', 100,
                     channel, ts_us, dur_us,
                     {{"queue_wait_us", 0.0}, {"bytes", bytes}});
}

// --- LogHistogram ----------------------------------------------------

TEST(LogHistogram, CountsSumsAndExactExtremes)
{
    obs::LogHistogram hist;
    EXPECT_TRUE(hist.empty());
    for (double v : {1.0, 2.0, 3.0, 4.0, 100.0})
        hist.add(v);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_DOUBLE_EQ(hist.sum(), 110.0);
    EXPECT_DOUBLE_EQ(hist.min(), 1.0);
    EXPECT_DOUBLE_EQ(hist.max(), 100.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 22.0);
    // q outside (0,1) returns the exact extremes.
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 100.0);
}

TEST(LogHistogram, QuantileWithinBucketResolution)
{
    obs::LogHistogram hist;
    for (int i = 1; i <= 1000; ++i)
        hist.add(static_cast<double>(i) * 1e-3); // 1ms..1s
    // Log-bucketed with 64 sub-buckets per decade: relative error of
    // any quantile is bounded by one sub-bucket (~1.6%).
    for (double q : {0.5, 0.9, 0.99}) {
        const double exact = q; // uniform samples on (0, 1]
        const double approx = hist.quantile(q);
        EXPECT_GE(approx, exact * 0.98) << "q=" << q;
        EXPECT_LE(approx, exact * 1.05) << "q=" << q;
    }
}

TEST(LogHistogram, MergeIsOrderInvariant)
{
    obs::LogHistogram a;
    obs::LogHistogram b;
    obs::LogHistogram c;
    for (int i = 0; i < 100; ++i) {
        a.add(1e-6 * (i + 1));
        b.add(3.7 * (i + 1));
        c.add(1e6 / (i + 1));
    }
    obs::LogHistogram abc;
    abc.merge(a);
    abc.merge(b);
    abc.merge(c);
    obs::LogHistogram cba;
    cba.merge(c);
    cba.merge(b);
    cba.merge(a);
    EXPECT_EQ(abc.fingerprint(), cba.fingerprint());
    EXPECT_EQ(abc.count(), 300u);
    // Merging must agree with observing the union directly.
    obs::LogHistogram direct;
    for (int i = 0; i < 100; ++i) {
        direct.add(1e-6 * (i + 1));
        direct.add(3.7 * (i + 1));
        direct.add(1e6 / (i + 1));
    }
    EXPECT_EQ(abc.fingerprint(), direct.fingerprint());
}

TEST(LogHistogram, UnderflowAndSaturation)
{
    obs::LogHistogram hist;
    hist.add(0.0);
    hist.add(-5.0); // non-positive samples clamp to the zero bucket
    hist.add(1e300); // beyond the top decade: saturates
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);
    EXPECT_DOUBLE_EQ(hist.max(), 1e300);
    // Low quantiles resolve to the underflow bucket (reported as min),
    // the top quantile to the tracked max.
    EXPECT_DOUBLE_EQ(hist.quantile(0.1), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 1e300);
}

// --- MetricRegistry qhist kind --------------------------------------

TEST(MetricRegistry, QuantileHistogramsAbsorbAndExport)
{
    obs::MetricRegistry a;
    obs::MetricRegistry b;
    for (int i = 1; i <= 50; ++i) {
        a.observeQuantile("lat", i * 1e-3);
        b.observeQuantile("lat", i * 1e-2);
    }
    a.absorb(b);
    EXPECT_EQ(a.quantileHistogram("lat").count(), 100u);
    const auto names = a.names();
    bool found = false;
    for (const auto& [name, kind] : names)
        found = found || (name == "lat" && kind == "qhist");
    EXPECT_TRUE(found);
    std::ostringstream json;
    a.writeJson(json);
    EXPECT_NE(json.str().find("\"p99\""), std::string::npos);
}

// --- Monitor ---------------------------------------------------------

TEST(Monitor, HeartbeatSnapshotsFromSimulation)
{
    obs::Monitor monitor;
    monitor.setInterval(1.0);
    monitor.enable();
    obs::ScopedMonitorRedirect redirect(&monitor);

    sim::Simulation sim;
    for (int i = 0; i < 5; ++i)
        sim.at(static_cast<double>(i), []() {});
    sim.run();

    // Events at t=0..4 with a 1s interval tick at t=1,2,3; the run
    // ends when the queue drains, so no tick follows the last event.
    const auto snapshots = monitor.snapshots();
    ASSERT_GE(snapshots.size(), 3u);
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
        EXPECT_EQ(snapshots[i].run, 1);
        EXPECT_EQ(snapshots[i].trigger, "heartbeat");
        if (i > 0)
            EXPECT_GT(snapshots[i].t_s, snapshots[i - 1].t_s);
    }
}

TEST(Monitor, SloViolationsAndLatencyHistogram)
{
    obs::Monitor monitor;
    obs::SloSpec slo;
    slo.collective_deadline_s = 0.1;
    monitor.setSlo(slo);
    monitor.enable();

    monitor.collectiveComplete("fast", 0.0, 0.05, 1e6);
    monitor.collectiveComplete("slow", 0.0, 0.25, 1e6);
    // An aborted collective violates regardless of latency.
    monitor.collectiveComplete("dead", 0.0, 0.01, 1e6,
                               /*completed=*/false);

    EXPECT_EQ(monitor.collectivesTotal(), 3u);
    EXPECT_EQ(monitor.collectiveViolations(), 2u);
    EXPECT_EQ(monitor.collectiveLatency().count(), 3u);
    EXPECT_EQ(monitor.snapshotCount(), 3u);

    // Violation counters ride along in every snapshot row.
    std::ostringstream jsonl;
    monitor.writeJsonl(jsonl);
    EXPECT_NE(jsonl.str().find("\"slo.collective.violations\": 2"),
              std::string::npos);

    std::ostringstream om;
    monitor.writeOpenMetrics(om);
    EXPECT_NE(
        om.str().find("ccube_slo_collective_violations_total 2"),
        std::string::npos);
    EXPECT_NE(om.str().find("# EOF"), std::string::npos);
}

TEST(Monitor, AbsorbRenumbersRunsInTaskOrder)
{
    obs::Monitor parent;
    parent.enable();
    parent.beginRun();
    parent.heartbeat(0.5);

    obs::Monitor task;
    task.enable();
    task.beginRun();
    task.heartbeat(0.25);
    task.beginRun();
    task.heartbeat(0.75);

    parent.absorb(task);
    const auto snapshots = parent.snapshots();
    ASSERT_EQ(snapshots.size(), 3u);
    EXPECT_EQ(snapshots[0].run, 1);
    EXPECT_EQ(snapshots[1].run, 2); // task run 1 → after parent's runs
    EXPECT_EQ(snapshots[2].run, 3);
    EXPECT_DOUBLE_EQ(snapshots[1].t_s, 0.25);
}

// --- Root cause ------------------------------------------------------

TEST(RootCause, GoldenTraceBlamesFailedChannelAndReceiver)
{
    std::vector<obs::TraceEvent> events;
    // Healthy traffic on two channels, then channel 0 (GPU0->GPU1)
    // fails and drops three transfers.
    events.push_back(channelSpan("GPU0->GPU1#0", 0, 0.0, 10.0, 4096));
    events.push_back(channelSpan("GPU1->GPU2#1", 1, 10.0, 10.0, 4096));
    events.push_back(makeEvent("fault.channel_fail", "simnet.fault",
                               'i', 100, 0, 20.0, 0.0,
                               {{"src", 0.0}, {"dst", 1.0}}));
    for (int i = 0; i < 3; ++i)
        events.push_back(makeEvent("fault.transfer_dropped",
                                   "simnet.fault", 'i', 100, 0,
                                   21.0 + i, 0.0));

    const obs::TraceAnalyzer analyzer(events);
    const obs::RootCauseReport report = obs::analyzeRootCause(analyzer);
    ASSERT_FALSE(report.empty());
    EXPECT_EQ(report.blamed_channel, 0);
    EXPECT_EQ(report.blamed_rank, 1);
    EXPECT_EQ(report.causes.front().kind,
              obs::RootCause::Kind::kChannelFail);
    EXPECT_NE(report.causes.front().description.find("failed"),
              std::string::npos);
    EXPECT_NE(report.causes.front().description.find("3 transfers"),
              std::string::npos);

    std::ostringstream text;
    obs::writeRootCauseReport(text, report);
    EXPECT_NE(text.str().find("blamed channel: 0"), std::string::npos);
    EXPECT_EQ(text.str().find("WARNING"), std::string::npos);
}

TEST(RootCause, TruncatedTraceCarriesWarning)
{
    obs::MetricRegistry registry;
    registry.addCounter("trace.dropped_events", 7.0);
    const obs::TraceAnalyzer analyzer(
        {channelSpan("GPU0->GPU1#0", 0, 0.0, 10.0, 4096),
         makeEvent("fault.channel_fail", "simnet.fault", 'i', 100, 0,
                   20.0, 0.0)});
    const obs::RootCauseReport report =
        obs::analyzeRootCause(analyzer, &registry);
    EXPECT_TRUE(report.truncated());
    EXPECT_EQ(report.dropped_trace_events, 7u);
    std::ostringstream text;
    obs::writeRootCauseReport(text, report);
    EXPECT_NE(text.str().find("analysis may be partial"),
              std::string::npos);
}

TEST(RootCause, NamesInjectedDgx1Failure)
{
    // End-to-end: fail both directions of one DGX-1 NVLink pair
    // mid-collective and check the analysis names them.
    const topo::Graph graph = topo::makeDgx1();
    const topo::DoubleTreeEmbedding embedding =
        topo::makeDgx1DoubleTree(graph);
    const std::vector<int> failed = [&]() {
        std::vector<int> ids = graph.channelIds(2, 6);
        for (int id : graph.channelIds(6, 2))
            ids.push_back(id);
        return ids;
    }();
    ASSERT_FALSE(failed.empty());

    obs::TraceRecorder recorder;
    recorder.enable();
    {
        obs::ScopedTraceRedirect redirect(&recorder);
        sim::Simulation sim;
        simnet::Network net(sim, graph);
        simnet::FaultPlan plan;
        for (int id : failed)
            plan.failChannel(2e-4, id);
        simnet::runDoubleTreeWithFaults(
            sim, net, embedding, util::mib(16),
            simnet::PhaseMode::kOverlapped, 16, plan);
    }
    const obs::TraceAnalyzer analyzer(recorder.snapshot());
    const obs::RootCauseReport report = obs::analyzeRootCause(analyzer);
    bool named = false;
    for (int id : failed)
        named = named || report.blamed_channel == id;
    EXPECT_TRUE(named) << "blamed channel " << report.blamed_channel;
    EXPECT_TRUE(report.blamed_rank == 2 || report.blamed_rank == 6)
        << "blamed rank " << report.blamed_rank;
}

// --- Differential analysis ------------------------------------------

TEST(TraceDiff, AttributesSlowdownToTheGuiltySegment)
{
    // Baseline: a three-hop chain, 10us per hop. Current: the middle
    // hop takes 30us, everything downstream shifts.
    std::vector<obs::TraceEvent> base;
    base.push_back(channelSpan("GPU0->GPU1#0", 0, 0.0, 10.0, 4096));
    base.push_back(channelSpan("GPU1->GPU2#1", 1, 10.0, 10.0, 4096));
    base.push_back(channelSpan("GPU2->GPU3#2", 2, 20.0, 10.0, 4096));
    std::vector<obs::TraceEvent> cur;
    cur.push_back(channelSpan("GPU0->GPU1#0", 0, 0.0, 10.0, 4096));
    cur.push_back(channelSpan("GPU1->GPU2#1", 1, 10.0, 30.0, 4096));
    cur.push_back(channelSpan("GPU2->GPU3#2", 2, 40.0, 10.0, 4096));

    const obs::TraceDiff diff = obs::diffTraces(
        obs::TraceAnalyzer(base), obs::TraceAnalyzer(cur));
    EXPECT_NEAR(diff.deltaUs(), 20.0, 1e-9);
    ASSERT_FALSE(diff.segments.empty());
    EXPECT_EQ(diff.segments.front().name, "GPU1->GPU2#1");
    EXPECT_NEAR(diff.segments.front().delta_us, 20.0, 1e-9);
    EXPECT_TRUE(diff.segments.front().matched);
    // The whole delta is explained by critical-path segments.
    EXPECT_GE(diff.attributedFraction(), 0.8);
    EXPECT_NEAR(diff.attributed_us, diff.deltaUs(), 1e-6);

    std::ostringstream text;
    obs::writeDiffReport(text, diff);
    EXPECT_NE(text.str().find("GPU1->GPU2#1"), std::string::npos);
    EXPECT_NE(text.str().find("% of delta"), std::string::npos);
}

TEST(TraceDiff, IdenticalTracesHaveZeroDelta)
{
    std::vector<obs::TraceEvent> events;
    events.push_back(channelSpan("GPU0->GPU1#0", 0, 0.0, 10.0, 4096));
    events.push_back(channelSpan("GPU1->GPU2#1", 1, 10.0, 10.0, 4096));
    const obs::TraceDiff diff = obs::diffTraces(
        obs::TraceAnalyzer(events), obs::TraceAnalyzer(events));
    EXPECT_NEAR(diff.deltaUs(), 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(diff.attributedFraction(), 1.0);
    for (const obs::DiffSegment& segment : diff.segments)
        EXPECT_NEAR(segment.delta_us, 0.0, 1e-9);
}

} // namespace
} // namespace ccube
