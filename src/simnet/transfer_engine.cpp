#include "simnet/transfer_engine.h"

#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace simnet {

void
TransferEngine::sendAlongRoute(const topo::Route& route, double bytes,
                               DoneFn done, int lane)
{
    CCUBE_CHECK(route.hops.size() >= 2, "route needs at least two hops");
    ++sends_issued_;
    hop_stats_.add(static_cast<double>(route.hops.size() - 1));
    // Wire bytes: LL carries one flag word per payload word, so the
    // fabric sees payload_factor × the logical size (inflated once
    // here — runStage re-sends the same wire bytes on every segment).
    bytes *= costs_.payload_factor;

    if (route.hops.size() > 2 &&
        obs::TraceRecorder::global().enabled()) {
        // End-to-end flow span for multi-hop routes (single-channel
        // sends are already covered by the channel occupancy span).
        obs::TraceRecorder& recorder = obs::TraceRecorder::global();
        const topo::NodeId src = route.hops.front();
        const topo::NodeId dst = route.hops.back();
        const double start = net_.simulation().now();
        const double offset = recorder.simOffsetUs();
        const int hops = static_cast<int>(route.hops.size() - 1);
        done = [this, src, dst, start, offset, bytes, hops, lane,
                inner = std::move(done), &recorder]() mutable {
            const double end = net_.simulation().now();
            recorder.completeEvent(
                "flow " + net_.graph().nodeLabel(src) + "->" +
                    net_.graph().nodeLabel(dst),
                "simnet.flow", obs::pids::simNode(src),
                obs::kFlowTrackBase + lane, offset + start * 1e6,
                (end - start) * 1e6,
                {{"bytes", bytes}, {"hops", hops}});
            if (inner)
                inner();
        };
    }
    runStage(route, 0, bytes, std::move(done), lane);
}

void
TransferEngine::runStage(const topo::Route& route, std::size_t index,
                         double bytes, DoneFn done, int lane)
{
    const topo::Graph& graph = net_.graph();
    // Extend the stage across consecutive switch transits.
    std::size_t end = index + 1;
    while (end + 1 < route.hops.size() && graph.isSwitch(route.hops[end]))
        ++end;

    if (end == index + 1 && end + 1 == route.hops.size()) {
        // Final single-channel stage: the channel invokes done
        // directly — no continuation wrapper (and no callback heap
        // fallback) for the common single-hop send.
        net_.transfer(route.hops[index], route.hops[index + 1], bytes,
                      std::move(done), lane, costs_.alpha_factor);
        return;
    }

    auto continuation = [this, route, end, bytes,
                         done = std::move(done), lane]() mutable {
        if (end + 1 == route.hops.size()) {
            if (done)
                done();
        } else {
            // A non-switch transit: store-and-forward into the next
            // stage (the paper's GPU forwarding kernels).
            runStage(route, end, bytes, std::move(done), lane);
        }
    };

    if (end == index + 1) {
        // Single channel.
        net_.transfer(route.hops[index], route.hops[index + 1], bytes,
                      std::move(continuation), lane,
                      costs_.alpha_factor);
        return;
    }

    // Cut-through across switches: occupy the entry channel, add the
    // intermediate switch latencies as pure delay, then occupy the
    // exit channel (the receiver's port is a real contention point).
    double mid_latency = 0.0;
    for (std::size_t m = index + 1; m + 1 < end; ++m) {
        const auto ids = graph.channelIds(route.hops[m],
                                          route.hops[m + 1]);
        CCUBE_CHECK(!ids.empty(), "broken route");
        mid_latency += graph.channel(ids.front()).latency;
    }
    mid_latency *= costs_.alpha_factor;
    net_.transfer(
        route.hops[index], route.hops[index + 1], bytes,
        [this, route, index, end, bytes, mid_latency,
         continuation = std::move(continuation), lane]() mutable {
            net_.simulation().after(
                mid_latency,
                [this, route, end, bytes,
                 continuation = std::move(continuation), lane]() mutable {
                    net_.transfer(route.hops[end - 1], route.hops[end],
                                  bytes, std::move(continuation), lane,
                                  costs_.alpha_factor);
                });
        },
        lane);
}

void
TransferEngine::send(topo::NodeId src, topo::NodeId dst, double bytes,
                     DoneFn done, int lane)
{
    auto it = route_cache_.find({src, dst});
    if (it == route_cache_.end()) {
        topo::Route route;
        route.hops = net_.graph().shortestPath(src, dst,
                                               topo::LinkKind::kNvlink);
        CCUBE_CHECK(!route.hops.empty(),
                    "no NVLink path " << src << " → " << dst);
        it = route_cache_.emplace(std::make_pair(src, dst),
                                  std::move(route))
                 .first;
    }
    sendAlongRoute(it->second, bytes, std::move(done), lane);
}

} // namespace simnet
} // namespace ccube
