#include "core/report.h"

#include "util/units.h"

namespace ccube {
namespace core {

util::Table
makeIterationTable()
{
    return util::Table({"workload", "bw", "batch", "mode", "fwd_ms",
                        "bwd_ms", "comm_ms", "turnaround_ms", "iter_ms",
                        "norm_perf", "chain_eff"});
}

void
addIterationRow(util::Table& table, const std::string& workload,
                const std::string& bandwidth, int batch, Mode mode,
                const IterationResult& result)
{
    table.addRow({workload, bandwidth, std::to_string(batch),
                  modeName(mode),
                  util::formatDouble(result.forward_time * 1e3, 3),
                  util::formatDouble(result.backward_time * 1e3, 3),
                  util::formatDouble(result.comm_time * 1e3, 3),
                  util::formatDouble(result.turnaround_time * 1e3, 3),
                  util::formatDouble(result.iteration_time * 1e3, 3),
                  util::formatDouble(result.normalized_perf, 3),
                  util::formatDouble(result.chain_efficiency, 3)});
}

util::Table
makeCommTable()
{
    return util::Table({"algorithm", "size", "completion_ms",
                        "turnaround_ms", "bandwidth_GBps"});
}

void
addCommRow(util::Table& table, const std::string& algorithm,
           double bytes, const simnet::ScheduleResult& schedule)
{
    table.addRow(
        {algorithm, util::formatBytes(bytes),
         util::formatDouble(schedule.completion_time * 1e3, 3),
         util::formatDouble(schedule.turnaroundTime() * 1e3, 3),
         util::formatDouble(
             schedule.effectiveBandwidth(bytes) / 1e9, 2)});
}

} // namespace core
} // namespace ccube
