/**
 * @file
 * Tests for the standalone collective primitives (tree broadcast /
 * reduce, ring Reduce-Scatter / AllGather) and the one-call AllReduce
 * dispatcher — including the identity
 * ReduceScatter ∘ AllGather ≡ AllReduce and broadcast-after-reduce
 * composition.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ccl/primitives.h"
#include "ccl/ring_allreduce.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "util/rng.h"

namespace ccube {
namespace ccl {
namespace {

RankBuffers
makeBuffers(int ranks, std::size_t elems, std::uint64_t seed)
{
    util::Rng rng(seed);
    RankBuffers buffers(static_cast<std::size_t>(ranks));
    for (auto& b : buffers) {
        b.resize(elems);
        rng.fill(b, -2.0f, 2.0f);
    }
    return buffers;
}

std::vector<float>
expectedSum(const RankBuffers& buffers)
{
    std::vector<float> sum(buffers[0].size(), 0.0f);
    for (const auto& b : buffers)
        for (std::size_t i = 0; i < sum.size(); ++i)
            sum[i] += b[i];
    return sum;
}

TEST(TreeBroadcast, EveryRankGetsTheRootBuffer)
{
    const int ranks = 8;
    RankBuffers buffers = makeBuffers(ranks, 64, 3);
    const topo::TreeEmbedding embedding =
        topo::directEmbedding(topo::BinaryTree::inorder(ranks));
    const std::vector<float> root_data =
        buffers[static_cast<std::size_t>(embedding.tree.root())];
    Communicator comm(ranks);
    treeBroadcast(comm, buffers, embedding, 4);
    for (int r = 0; r < ranks; ++r)
        EXPECT_EQ(buffers[static_cast<std::size_t>(r)], root_data);
}

TEST(TreeBroadcast, WorksThroughDgx1Detours)
{
    const topo::Graph dgx1 = topo::makeDgx1();
    const auto dt = topo::makeDgx1DoubleTree(dgx1);
    RankBuffers buffers = makeBuffers(8, 32, 5);
    const std::vector<float> root_data =
        buffers[static_cast<std::size_t>(dt.tree0.tree.root())];
    Communicator comm(8);
    treeBroadcast(comm, buffers, dt.tree0, 4);
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(buffers[static_cast<std::size_t>(r)], root_data);
}

TEST(TreeReduce, RootHoldsTheSum)
{
    const int ranks = 5;
    RankBuffers buffers = makeBuffers(ranks, 40, 7);
    const std::vector<float> sum = expectedSum(buffers);
    const topo::TreeEmbedding embedding =
        topo::directEmbedding(topo::BinaryTree::inorder(ranks));
    Communicator comm(ranks);
    treeReduce(comm, buffers, embedding, 8);
    const auto& root_buf =
        buffers[static_cast<std::size_t>(embedding.tree.root())];
    for (std::size_t i = 0; i < sum.size(); ++i)
        ASSERT_NEAR(root_buf[i], sum[i], 1e-4f);
}

TEST(TreeReduceThenBroadcast, ComposesIntoAllReduce)
{
    const int ranks = 8;
    RankBuffers buffers = makeBuffers(ranks, 48, 11);
    const std::vector<float> sum = expectedSum(buffers);
    const topo::TreeEmbedding embedding =
        topo::directEmbedding(topo::BinaryTree::inorder(ranks));
    {
        Communicator comm(ranks);
        treeReduce(comm, buffers, embedding, 6);
    }
    {
        Communicator comm(ranks);
        treeBroadcast(comm, buffers, embedding, 6);
    }
    for (int r = 0; r < ranks; ++r)
        for (std::size_t i = 0; i < sum.size(); ++i)
            ASSERT_NEAR(buffers[static_cast<std::size_t>(r)][i], sum[i],
                        1e-4f);
}

TEST(RingPhases, ReduceScatterThenAllGatherIsAllReduce)
{
    const int ranks = 8;
    RankBuffers via_phases = makeBuffers(ranks, 64, 13);
    RankBuffers via_allreduce = via_phases;
    const topo::RingEmbedding ring = topo::makeSequentialRing(ranks);
    {
        Communicator comm(ranks);
        ringReduceScatter(comm, via_phases, ring);
    }
    {
        Communicator comm(ranks);
        ringAllGather(comm, via_phases, ring);
    }
    {
        Communicator comm(ranks);
        ringAllReduce(comm, via_allreduce, ring);
    }
    for (int r = 0; r < ranks; ++r)
        EXPECT_EQ(via_phases[static_cast<std::size_t>(r)],
                  via_allreduce[static_cast<std::size_t>(r)]);
}

TEST(RingReduceScatter, OwnedSliceIsFullyReduced)
{
    const int ranks = 4;
    RankBuffers buffers = makeBuffers(ranks, 16, 17);
    const std::vector<float> sum = expectedSum(buffers);
    const topo::RingEmbedding ring = topo::makeSequentialRing(ranks);
    Communicator comm(ranks);
    ringReduceScatter(comm, buffers, ring);
    const ChunkSplit split(16, ranks);
    for (int pos = 0; pos < ranks; ++pos) {
        const int owned = (pos + 1) % ranks;
        const auto& buf = buffers[static_cast<std::size_t>(
            ring.order[static_cast<std::size_t>(pos)])];
        for (std::size_t i = split.begin(owned); i < split.end(owned);
             ++i) {
            ASSERT_NEAR(buf[i], sum[i], 1e-4f)
                << "pos " << pos << " elem " << i;
        }
    }
}

class DispatcherSweep
    : public ::testing::TestWithParam<AllReduceAlgorithm>
{
};

TEST_P(DispatcherSweep, AllAlgorithmsCorrectOnDgx1)
{
    const topo::Graph dgx1 = topo::makeDgx1();
    RankBuffers buffers = makeBuffers(8, 64, 23);
    const std::vector<float> sum = expectedSum(buffers);
    Communicator comm(8);
    AllReduceOptions options;
    options.algorithm = GetParam();
    options.num_chunks = 4;
    allReduce(comm, buffers, dgx1, options);
    for (int r = 0; r < 8; ++r)
        for (std::size_t i = 0; i < sum.size(); ++i)
            ASSERT_NEAR(buffers[static_cast<std::size_t>(r)][i], sum[i],
                        1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DispatcherSweep,
    ::testing::Values(AllReduceAlgorithm::kRing,
                      AllReduceAlgorithm::kTree,
                      AllReduceAlgorithm::kOverlappedTree,
                      AllReduceAlgorithm::kDoubleTree,
                      AllReduceAlgorithm::kCCubeDoubleTree));

TEST(Dispatcher, ObserverSeesEveryChunkOnEveryRank)
{
    const topo::Graph dgx1 = topo::makeDgx1();
    RankBuffers buffers = makeBuffers(8, 64, 29);
    Communicator comm(8);
    std::vector<std::atomic<int>> seen(8);
    AllReduceOptions options;
    options.algorithm = AllReduceAlgorithm::kCCubeDoubleTree;
    options.num_chunks = 4;
    options.observer = [&seen](int rank, int) {
        seen[static_cast<std::size_t>(rank)]++;
    };
    allReduce(comm, buffers, dgx1, options);
    for (const auto& s : seen)
        EXPECT_EQ(s.load(), 8); // 2 trees × 4 chunks
}

} // namespace
} // namespace ccl
} // namespace ccube
