# Empty compiler generated dependencies file for scaleout_explorer.
# This may be replaced when dependencies are built.
