#include "core/recovery.h"

#include <chrono>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace ccube {
namespace core {

namespace {

/**
 * True when every ordered pair of ranks is NVLink-reachable on
 * @p graph — the precondition for embedTree()/makeMirroredDoubleTree()
 * (which CCUBE_CHECK-abort on an unreachable edge rather than throw,
 * so the ladder must prove routability before climbing a rung).
 */
bool
allPairsNvlinkReachable(const topo::Graph& graph, int num_ranks)
{
    for (topo::NodeId src = 0; src < num_ranks; ++src) {
        for (topo::NodeId dst = 0; dst < num_ranks; ++dst) {
            if (src == dst)
                continue;
            if (graph.shortestPath(src, dst, topo::LinkKind::kNvlink)
                    .empty())
                return false;
        }
    }
    return true;
}

} // namespace

const char*
recoveryKindName(RecoveryKind kind)
{
    switch (kind) {
    case RecoveryKind::kCCube:
        return "ccube";
    case RecoveryKind::kDoubleTree:
        return "double_tree";
    case RecoveryKind::kRing:
        return "ring";
    case RecoveryKind::kNone:
        return "none";
    }
    return "unknown";
}

RecoveryResult
recoverSchedule(const topo::Graph& graph,
                const std::vector<int>& failed_channels,
                const RecoveryOptions& options)
{
    const auto start = std::chrono::steady_clock::now();
    RecoveryResult out;
    out.graph = topo::withoutChannels(graph, failed_channels);
    const int num_ranks = options.search.num_ranks > 0
                              ? options.search.num_ranks
                              : out.graph.nodeCount();

    obs::TraceRecorder& recorder = obs::TraceRecorder::global();
    obs::ScopedSpan span(recorder, "recoverSchedule", "core.recovery",
                         obs::pids::core(), 0);
    span.arg("failed_channels",
             static_cast<double>(failed_channels.size()));

    // Rung 1: full C-Cube — a conflict-free double tree on the
    // survivors keeps the overlapped schedule at full performance.
    topo::EmbeddingSearchOptions search = options.search;
    search.num_ranks = num_ranks;
    if (auto embedding =
            topo::findConflictFreeDoubleTree(out.graph, search)) {
        out.kind = RecoveryKind::kCCube;
        out.double_tree = std::move(*embedding);
    } else if (allPairsNvlinkReachable(out.graph, num_ranks)) {
        // Rung 2: any routable mirrored double tree. Contended
        // channels mean the overlap premise is gone — callers should
        // run it two-phase — but the collective still completes.
        out.kind = RecoveryKind::kDoubleTree;
        out.double_tree =
            topo::makeMirroredDoubleTree(out.graph, num_ranks);
    } else {
        // Rung 3: disjoint rings (a ring only needs neighbor
        // adjacency along one Hamiltonian cycle, not all-pairs
        // reachability).
        out.rings =
            topo::findDisjointRings(out.graph, num_ranks,
                                    options.ring_count);
        out.kind = out.rings.empty() ? RecoveryKind::kNone
                                     : RecoveryKind::kRing;
    }

    out.search_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    span.arg("rung", static_cast<double>(static_cast<int>(out.kind)));
    if (recorder.enabled())
        recorder.instantEvent(
            std::string("recovery.") + recoveryKindName(out.kind),
            "core.recovery", obs::pids::core(), 0,
            recorder.wallNowUs());
    return out;
}

} // namespace core
} // namespace ccube
