/**
 * @file
 * Ablation: sensitivity to a degraded link (straggler).
 *
 * Synchronous collectives are gated by their slowest member. This
 * harness degrades one NVLink pair's bandwidth and compares how the
 * multi-ring and the overlapped double tree degrade — the ring
 * pushes every byte through every link, so one slow link caps it;
 * the tree only suffers where the slow pair carries tree traffic.
 */

#include <iostream>
#include <vector>

#include "obs/session.h"
#include "sweep/sweep.h"
#include "simnet/channel.h"
#include "simnet/double_tree_schedule.h"
#include "simnet/multi_ring_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/ring_embedding.h"
#include "util/bench_json.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/units.h"

namespace {

using namespace ccube;

struct Timing {
    double ring;
    double tree_c1;
};

Timing
measure(const topo::Graph& graph, double bytes)
{
    const auto dt = topo::makeDgx1DoubleTree(graph);
    const auto rings = topo::findDisjointRings(graph, 8, 4);

    sim::Simulation sim_r;
    simnet::Network net_r(sim_r, graph);
    const double ring =
        simnet::runMultiRingSchedule(sim_r, net_r, rings, bytes)
            .completion_time;

    sim::Simulation sim_t;
    simnet::Network net_t(sim_t, graph);
    const double tree =
        simnet::runDoubleTreeSchedule(sim_t, net_t, dt, bytes,
                                      simnet::PhaseMode::kOverlapped,
                                      32)
            .completion_time;
    return Timing{ring, tree};
}

} // namespace

int
main(int argc, char** argv)
{
    const ccube::util::Flags flags(argc, argv);
    ccube::obs::ObsSession obs_session(flags);
    std::cout << "=== Ablation: straggler link sensitivity "
                 "(DGX-1, 64 MiB, pair (2,3) degraded) ===\n\n";

    const double bytes = util::mib(64);

    // Slowdown factors including healthy; each cell simulates its own
    // degraded graph, so the grid fans over the sweep pool.
    const std::vector<double> factors{1.0, 0.5, 0.25, 0.1};
    std::vector<Timing> timings(factors.size());
    sweep::runIndexed(
        sweep::Options::fromFlags(flags), factors.size(),
        [&](std::size_t i) {
            topo::Graph graph = topo::makeDgx1();
            if (factors[i] < 1.0) {
                for (int id : graph.channelIds(2, 3))
                    graph.scaleChannelBandwidth(id, factors[i]);
                for (int id : graph.channelIds(3, 2))
                    graph.scaleChannelBandwidth(id, factors[i]);
            }
            timings[i] = measure(graph, bytes);
        });

    const Timing healthy = timings.front();
    util::Table table({"link_slowdown", "ring_ms", "ring_loss_%",
                       "tree_C1_ms", "tree_loss_%"});
    table.addRow({"1.0 (healthy)",
                  util::formatDouble(healthy.ring * 1e3, 3), "0.0",
                  util::formatDouble(healthy.tree_c1 * 1e3, 3), "0.0"});
    for (std::size_t i = 1; i < factors.size(); ++i) {
        const Timing& t = timings[i];
        table.addRow(
            {util::formatDouble(factors[i], 2),
             util::formatDouble(t.ring * 1e3, 3),
             util::formatDouble((t.ring / healthy.ring - 1.0) * 100, 1),
             util::formatDouble(t.tree_c1 * 1e3, 3),
             util::formatDouble(
                 (t.tree_c1 / healthy.tree_c1 - 1.0) * 100, 1)});
    }
    table.print(std::cout);
    std::cout << "\nBoth algorithms route traffic over pair (2,3); "
                 "the ring's loss tracks the inverse link factor "
                 "directly, while the tree is partially shielded by "
                 "its pipelining until the slow pair dominates.\n";

    std::vector<util::BenchRecord> records;
    for (std::size_t i = 0; i < factors.size(); ++i) {
        const struct {
            const char* name;
            double secs;
            double healthy_secs;
        } algos[] = {
            {"multi_ring", timings[i].ring, healthy.ring},
            {"tree_c1", timings[i].tree_c1, healthy.tree_c1},
        };
        for (const auto& algo : algos) {
            util::BenchRecord record;
            record.source = "abl_straggler";
            record.kind = "straggler_slowdown";
            record.name = algo.name;
            record.bytes = static_cast<std::int64_t>(bytes);
            record.ns_per_op = algo.secs * 1e9;
            record.extra["link_factor"] = factors[i];
            record.extra["loss_pct"] =
                (algo.secs / algo.healthy_secs - 1.0) * 100.0;
            records.push_back(std::move(record));
        }
    }
    const std::string path = util::benchOutputPath();
    util::writeBenchRecords(path, records, /*append=*/true);
    std::cout << "\nwrote " << records.size() << " records to " << path
              << "\n";
    return 0;
}
