#ifndef CCUBE_TOPO_EMBEDDING_SEARCH_H_
#define CCUBE_TOPO_EMBEDDING_SEARCH_H_

/**
 * @file
 * Automated search for conflict-free double-tree embeddings.
 *
 * The paper hand-crafts its DGX-1 embedding (Fig. 10(b,c)); this
 * module automates the construction for arbitrary GPU-to-GPU
 * topologies: find two spanning binary trees (with detours for
 * missing edges) such that, when both run the overlapped algorithm
 * simultaneously, no unidirectional channel is oversubscribed —
 * cross-tree sharing is only allowed where the physical pair has
 * enough parallel links.
 *
 * Randomized-greedy with restarts: trees are grown from random roots
 * by BFS over edges with remaining capacity; detour routes consume
 * capacity on every segment. Deterministic given the seed.
 */

#include <optional>

#include "topo/double_tree.h"
#include "topo/graph.h"

namespace ccube {
namespace topo {

/** Search knobs. */
struct EmbeddingSearchOptions {
    int num_ranks = 0;        ///< 0 = all graph nodes are ranks
    int max_attempts = 2000;  ///< randomized restarts
    std::uint64_t seed = 1;   ///< RNG seed (deterministic)
    int max_detour_hops = 2;  ///< longest allowed detour route
};

/**
 * Searches for a conflict-free double tree on @p graph. Returns
 * std::nullopt when no embedding was found within the attempt budget
 * (which does not prove none exists).
 */
std::optional<DoubleTreeEmbedding>
findConflictFreeDoubleTree(const Graph& graph,
                           const EmbeddingSearchOptions& options = {});

} // namespace topo
} // namespace ccube

#endif // CCUBE_TOPO_EMBEDDING_SEARCH_H_
