/**
 * @file
 * Randomized property tests: invariants that must hold for *any*
 * workload, topology, or buffer contents — not just the hand-picked
 * cases of the unit suites. All randomness is seeded (deterministic).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/ccube_engine.h"
#include "core/chunk_mapper.h"
#include "ccl/primitives.h"
#include "simnet/channel.h"
#include "simnet/tree_schedule.h"
#include "topo/dgx1.h"
#include "topo/double_tree.h"
#include "topo/embedding_search.h"
#include "util/rng.h"
#include "util/units.h"

namespace ccube {
namespace {

/** Random synthetic workload with plausible layer profiles. */
dnn::NetworkModel
randomNetwork(util::Rng& rng)
{
    const int layers = static_cast<int>(rng.uniformInt(3, 40));
    std::vector<dnn::Layer> result;
    for (int l = 0; l < layers; ++l) {
        dnn::Layer layer;
        layer.name = "L" + std::to_string(l);
        layer.kind = dnn::LayerKind::kConv;
        layer.param_count = rng.uniformInt(0, 4000000);
        layer.forward_flops_per_sample =
            rng.uniformInt(1000000, 400000000);
        layer.output_elems_per_sample = rng.uniformInt(1, 500000);
        layer.input_elems_per_sample = rng.uniformInt(1, 500000);
        result.push_back(std::move(layer));
    }
    // Ensure at least one parameterized layer.
    if (std::all_of(result.begin(), result.end(),
                    [](const dnn::Layer& l) {
                        return l.param_count == 0;
                    })) {
        result.front().param_count = 1000000;
    }
    return dnn::NetworkModel("random", std::move(result));
}

TEST(PropertyIteration, InvariantsHoldForRandomWorkloads)
{
    util::Rng rng(2026);
    for (int trial = 0; trial < 10; ++trial) {
        core::CCubeEngine engine(randomNetwork(rng));
        core::IterationConfig config;
        config.batch = static_cast<int>(rng.uniformInt(8, 128));
        config.bandwidth_scale = rng.uniform(0.2, 1.0);

        double prev_cc = 0.0;
        for (core::Mode mode : core::allModes()) {
            const auto r = engine.evaluate(mode, config);
            // Normalized performance is a proper fraction.
            ASSERT_GT(r.normalized_perf, 0.0);
            ASSERT_LE(r.normalized_perf, 1.0 + 1e-9);
            // Iterations contain at least the compute.
            ASSERT_GE(r.iteration_time,
                      r.forward_time + r.backward_time - 1e-12);
            // Turnaround never exceeds completion.
            ASSERT_LE(r.turnaround_time, r.comm_time + 1e-12);
            if (mode == core::Mode::kCCube)
                prev_cc = r.normalized_perf;
        }
        // CC never loses to the unchained overlapped tree.
        const auto c1 =
            engine.evaluate(core::Mode::kOverlappedTree, config);
        ASSERT_GE(prev_cc, c1.normalized_perf - 1e-9) << "trial "
                                                      << trial;
    }
}

TEST(PropertyComm, OverlapNeverSlowerAcrossRandomSizes)
{
    util::Rng rng(7);
    core::CCubeEngine engine(dnn::buildResnet50());
    for (int trial = 0; trial < 12; ++trial) {
        const double bytes = rng.uniform(1e6, 3e8);
        const double bw = rng.uniform(0.2, 1.0);
        const auto base =
            engine.scheduler().commSchedule(core::Mode::kBaseline,
                                            bytes, bw);
        const auto over = engine.scheduler().commSchedule(
            core::Mode::kOverlappedTree, bytes, bw);
        ASSERT_LE(over.completion_time,
                  base.completion_time * (1.0 + 1e-9))
            << "bytes=" << bytes;
        ASSERT_LE(over.turnaroundTime(),
                  base.turnaroundTime() * (1.0 + 1e-9));
        // Chunk-ready times are monotone within each tree.
        const int k = over.num_chunks / 2;
        for (int c = 1; c < k; ++c) {
            ASSERT_LE(over.chunk_ready[static_cast<std::size_t>(c - 1)],
                      over.chunk_ready[static_cast<std::size_t>(c)] +
                          1e-15);
        }
    }
}

TEST(PropertyMapper, TablesMonotoneAndCoverAllChunks)
{
    util::Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        const int layers = static_cast<int>(rng.uniformInt(1, 30));
        std::vector<double> layer_bytes;
        double total = 0.0;
        for (int l = 0; l < layers; ++l) {
            const double b =
                rng.uniform(0.0, 1.0) < 0.2 ? 0.0
                                            : rng.uniform(1e3, 1e7);
            layer_bytes.push_back(b);
            total += b;
        }
        if (total <= 0.0) {
            layer_bytes.back() = 1e6;
            total = 1e6;
        }
        const int chunks = static_cast<int>(rng.uniformInt(1, 64));
        const core::ChunkMapper mapper =
            core::ChunkMapper::singleTree(total, chunks);
        const auto table = mapper.layerChunkTable(layer_bytes);
        for (std::size_t i = 1; i < table.size(); ++i)
            ASSERT_GE(table[i], table[i - 1]);
        ASSERT_EQ(table.back(), chunks);

        // Union of all layers' chunks covers every chunk.
        std::set<int> covered;
        for (int l = 0; l < layers; ++l)
            for (int c : mapper.chunksOfLayer(layer_bytes, l))
                covered.insert(c);
        ASSERT_EQ(static_cast<int>(covered.size()), chunks);

        // Per-tree tables agree with the dual layout.
        const auto [t0, t1] = core::perTreeLayerChunkTables(
            total, std::max(1, chunks / 2), layer_bytes);
        ASSERT_EQ(t0.size(), layer_bytes.size());
        for (std::size_t i = 1; i < t0.size(); ++i) {
            ASSERT_GE(t0[i], t0[i - 1]);
            ASSERT_GE(t1[i], t1[i - 1]);
        }
        ASSERT_EQ(t0.back(), std::max(1, chunks / 2));
        ASSERT_EQ(t1.back(), std::max(1, chunks / 2));
    }
}

TEST(PropertyDispatcher, AlgorithmsAgreeOnRandomBuffers)
{
    util::Rng rng(13);
    const topo::Graph dgx1 = topo::makeDgx1();
    for (int trial = 0; trial < 3; ++trial) {
        const std::size_t elems =
            static_cast<std::size_t>(rng.uniformInt(32, 256));
        ccl::RankBuffers reference(8);
        for (auto& b : reference) {
            b.resize(elems);
            rng.fill(b, -3.0f, 3.0f);
        }
        std::vector<float> first_result;
        for (auto algorithm :
             {ccl::AllReduceAlgorithm::kRing,
              ccl::AllReduceAlgorithm::kOverlappedTree,
              ccl::AllReduceAlgorithm::kCCubeDoubleTree}) {
            ccl::RankBuffers buffers = reference;
            ccl::Communicator comm(8);
            ccl::AllReduceOptions options;
            options.algorithm = algorithm;
            options.num_chunks = 4;
            ccl::allReduce(comm, buffers, dgx1, options);
            if (first_result.empty()) {
                first_result = buffers[0];
            } else {
                for (std::size_t i = 0; i < elems; ++i) {
                    ASSERT_NEAR(buffers[0][i], first_result[i],
                                1e-3f)
                        << "trial " << trial << " elem " << i;
                }
            }
        }
    }
}

TEST(PropertyEmbedding, ConflictAnalysisConsistency)
{
    // isConflictFree ⇔ conflictingPairs empty, for random embeddings.
    util::Rng rng(17);
    const topo::Graph dgx1 = topo::makeDgx1();
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        topo::EmbeddingSearchOptions options;
        options.seed = seed;
        options.max_attempts = 200;
        const auto found =
            topo::findConflictFreeDoubleTree(dgx1, options);
        if (!found)
            continue;
        EXPECT_TRUE(topo::conflictingPairs(dgx1, *found).empty());
        EXPECT_TRUE(topo::isConflictFree(dgx1, *found));
    }
    const auto naive = topo::makeNaiveDgx1DoubleTree(dgx1);
    EXPECT_EQ(topo::isConflictFree(dgx1, naive),
              topo::conflictingPairs(dgx1, naive).empty());
}

TEST(PropertyTreeSchedule, CompletionScalesLinearlyInBytes)
{
    // For fixed K, doubling the payload must roughly double the
    // bandwidth-dominated completion (α terms are negligible here).
    core::CCubeEngine engine(dnn::buildResnet50());
    const auto a = engine.commOnly(core::Mode::kOverlappedTree,
                                   util::mib(64));
    const auto b = engine.commOnly(core::Mode::kOverlappedTree,
                                   util::mib(128));
    const double ratio = b.completion_time / a.completion_time;
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.4);
}

} // namespace
} // namespace ccube
