#include "ccl/sync_primitives.h"

#include <cstdint>
#include <thread>

#include "obs/context.h"
#include "util/logging.h"

namespace ccube {
namespace ccl {

void
SpinLock::lock()
{
    // Paper: while atomicCAS(lock,0,1) != 0 {} followed by a fence.
    // acquire ordering plays the role of the threadfence; yield keeps
    // the protocol live on oversubscribed CPU cores.
    int expected = 0;
    std::uint64_t retries = 0;
    while (!flag_.compare_exchange_weak(expected, 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        expected = 0;
        ++retries;
        std::this_thread::yield();
    }
    // Contention telemetry, attributed to the current rank; the fast
    // path (CAS succeeds first try) records nothing.
    if (retries > 0)
        obs::RankCounters::global().addCasRetries(retries);
}

void
SpinLock::unlock()
{
    // Paper: threadfence(); atomicExch(lock, 0).
    flag_.store(0, std::memory_order_release);
}

bool
SpinLock::tryLock()
{
    int expected = 0;
    return flag_.compare_exchange_strong(expected, 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
}

BoundedSemaphore::BoundedSemaphore(int capacity, int initial)
    : count_(initial), capacity_(capacity)
{
    CCUBE_CHECK(capacity >= 1, "semaphore capacity must be positive");
    CCUBE_CHECK(initial >= 0 && initial <= capacity,
                "initial count out of range");
}

void
BoundedSemaphore::post()
{
    // Paper's post(): lock; while cnt == capacity { unlock; lock; }
    // ++cnt; unlock.
    lock_.lock();
    if (count_ == capacity_)
        obs::RankCounters::global().addPostStall();
    while (count_ == capacity_) {
        lock_.unlock();
        std::this_thread::yield();
        lock_.lock();
    }
    ++count_;
    lock_.unlock();
}

void
BoundedSemaphore::wait()
{
    // Paper's wait(): lock; while cnt == 0 { unlock; lock; } --cnt;
    // unlock.
    lock_.lock();
    if (count_ == 0)
        obs::RankCounters::global().addWaitStall();
    while (count_ == 0) {
        lock_.unlock();
        std::this_thread::yield();
        lock_.lock();
    }
    --count_;
    lock_.unlock();
}

int
BoundedSemaphore::value() const
{
    SpinLockGuard guard(lock_);
    return count_;
}

void
CheckableCounter::post()
{
    SpinLockGuard guard(lock_);
    ++count_;
}

void
CheckableCounter::check(std::int64_t value) const
{
    // Paper's check(): lock; while cnt < value { unlock; lock; }
    // (just checks, never updates); unlock.
    lock_.lock();
    while (count_ < value) {
        lock_.unlock();
        std::this_thread::yield();
        lock_.lock();
    }
    lock_.unlock();
}

bool
CheckableCounter::checkNow(std::int64_t value) const
{
    SpinLockGuard guard(lock_);
    return count_ >= value;
}

std::int64_t
CheckableCounter::value() const
{
    SpinLockGuard guard(lock_);
    return count_;
}

void
CheckableCounter::reset()
{
    SpinLockGuard guard(lock_);
    count_ = 0;
}

} // namespace ccl
} // namespace ccube
