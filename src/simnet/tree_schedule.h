#ifndef CCUBE_SIMNET_TREE_SCHEDULE_H_
#define CCUBE_SIMNET_TREE_SCHEDULE_H_

/**
 * @file
 * Timed tree AllReduce schedule (baseline and overlapped).
 *
 * Event-driven per-chunk pipeline over an embedded tree: leaves stream
 * chunks up; interior nodes reduce and forward; the root either waits
 * for the full reduction (two-phase baseline, Fig. 7(a)) or chains
 * each chunk straight into its broadcast (overlapped, Fig. 7(b)).
 */

#include <memory>
#include <vector>

#include "simnet/collective_schedule.h"
#include "simnet/transfer_engine.h"
#include "topo/tree_embedding.h"

namespace ccube {
namespace simnet {

/**
 * One timed tree AllReduce over one embedded tree.
 *
 * Usage: construct, start(), run the simulation, read result(). Two
 * schedules may share a Network (the double tree does exactly that).
 */
class TreeSchedule
{
  public:
    /**
     * @param network      fabric to run on
     * @param embedding    logical tree + physical routes
     * @param total_bytes  payload carried by *this* tree
     * @param mode         two-phase baseline or overlapped
     * @param num_chunks   pipeline chunk count (K)
     * @param up_lane      parallel-channel preference for reduction
     *                     sends (child → parent direction)
     * @param down_lane    parallel-channel preference for broadcast
     *                     sends; on shared-port fabrics a separate
     *                     lane keeps the broadcast of early chunks
     *                     from queuing behind reduction traffic
     *
     * Global chunk ids are assigned by composition: the double tree
     * merges results, so tree 1's chunks follow tree 0's.
     */
    TreeSchedule(Network& network, const topo::TreeEmbedding& embedding,
                 double total_bytes, PhaseMode mode, int num_chunks,
                 int up_lane = 0, int down_lane = -1);

    /** Selects the wire protocol the transfers model (LL inflates
     *  bytes, discounts per-transfer latency); call before start(). */
    void setProtocol(ccl::Protocol proto)
    {
        engine_.setProtocol(proto);
    }

    /** Registers the initial leaf sends at simulated time @p at. */
    void start(double at = 0.0);

    /** True once every rank has every chunk. */
    bool finished() const { return pending_arrivals_ == 0; }

    /** Chunk arrivals still outstanding (nonzero after a run whose
     *  traffic died on a failed channel). */
    int pendingArrivals() const { return pending_arrivals_; }

    /** Result (tree-local chunk ids); valid after the simulation has
     *  drained. */
    ScheduleResult result() const;

    /**
     * Like result() but tolerates an unfinished schedule (a faulted
     * run whose transfers died on a failed channel): chunks that never
     * arrived keep the -1.0 sentinel in chunk_at_rank / chunk_ready,
     * and completion_time is @p stalled_at (the time the simulation
     * drained with the schedule still incomplete).
     */
    ScheduleResult partialResult(double stalled_at) const;

  private:
    void onReduceArrival(topo::NodeId node, int chunk);
    void chunkReduced(topo::NodeId node, int chunk);
    void onBroadcastArrival(topo::NodeId node, int chunk);
    void sendUp(topo::NodeId node, int chunk);
    void sendDown(topo::NodeId node, int chunk);
    void recordAvailable(topo::NodeId node, int chunk);

    Network& net_;
    TransferEngine engine_;
    const topo::TreeEmbedding& embedding_;
    const PhaseMode mode_;
    const int num_chunks_;
    const int up_lane_;
    const int down_lane_;
    const double chunk_bytes_;

    /** Reversed child→parent routes, one per non-root node. */
    std::vector<topo::Route> up_routes_;
    /** Parent→child routes keyed by child. */
    std::vector<topo::Route> down_routes_;

    /** reduce_arrivals_[node][chunk]: children contributions so far. */
    std::vector<std::vector<int>> reduce_arrivals_;
    int root_chunks_done_ = 0;
    int pending_arrivals_ = 0;

    std::vector<std::vector<double>> available_at_;
    double completion_time_ = 0.0;
};

/** Convenience: run one tree schedule to completion on a fresh clock. */
ScheduleResult runTreeSchedule(sim::Simulation& simulation,
                               Network& network,
                               const topo::TreeEmbedding& embedding,
                               double total_bytes, PhaseMode mode,
                               int num_chunks, int up_lane = 0,
                               int down_lane = -1,
                               ccl::Protocol proto =
                                   ccl::Protocol::kSimple);

/**
 * The physical channel ids a TreeSchedule on @p embedding occupies in
 * one direction, replicating the engine's lane selection exactly
 * (channelIds(a, b) indexed by @p lane clamped to the parallel-channel
 * count). @p down selects broadcast-direction (parent → child) routes;
 * false selects reduction-direction (child → parent). Sorted, deduped.
 * Channels inside switch cut-through runs are included even though the
 * engine models them as pure delay; analyzers that skip traffic-less
 * channels are unaffected.
 */
std::vector<int> treeChannelIds(const topo::Graph& graph,
                                const topo::TreeEmbedding& embedding,
                                int lane, bool down);

} // namespace simnet
} // namespace ccube

#endif // CCUBE_SIMNET_TREE_SCHEDULE_H_
